//! Deadline-bound grid data transfer — the §4.2.8 application: "for
//! applications that care more for throughput predictability than
//! throughput maximization, perform transfers with a limited advertised
//! window."
//!
//! ```text
//! cargo run --release --example grid_transfer_scheduler
//! ```
//!
//! A grid job must ship a dataset to a compute site before a deadline.
//! The scheduler can open the socket with a saturating 1 MB window
//! (fast but erratic) or cap it at a window sized so `W/RTT` matches the
//! required rate with margin (window-limited: slower but steady).
//!
//! This example measures both strategies over many epochs on the same
//! loaded path and reports each one's throughput variability and the
//! fraction of simulated deadlines met, reproducing the paper's
//! window-limited predictability claim as an end-to-end decision.

use tcp_throughput_predictability::core::metrics::relative_error_floored;
use tcp_throughput_predictability::core::rmsre;
use tcp_throughput_predictability::netsim::link::LinkConfig;
use tcp_throughput_predictability::netsim::sources::{
    ParetoOnOffSource, PoissonSource, Sink, SourceConfig,
};
use tcp_throughput_predictability::netsim::{RateSchedule, Route, Simulator, Time};
use tcp_throughput_predictability::probes::BulkTransfer;
use tcp_throughput_predictability::stats::Summary;
use tcp_throughput_predictability::tcp::TcpConfig;

fn main() {
    // One 20 Mbps path, 60 ms RTT, with bursty cross traffic at ~40%
    // (surging to ~80% mid-experiment).
    let mut sim = Simulator::new(5);
    let fwd = sim.add_link(LinkConfig::new(20e6, Time::from_millis(30), 100));
    let rev = sim.add_link(LinkConfig::new(1e9, Time::from_millis(30), 1000));
    let (sink, _) = Sink::new();
    let sink_id = sim.add_endpoint(Box::new(sink));
    let (src, _) = ParetoOnOffSource::new(
        SourceConfig {
            route: Route::direct(fwd),
            dst: sink_id,
            packet_size: 1000,
            base_rate_bps: 8e6,
            schedule: RateSchedule::constant(1.0),
            stop: Time::MAX,
        },
        0.6, // duty: burst peaks stay below link capacity
        1.6,
        0.4,
    );
    let src_id = sim.add_endpoint(Box::new(src));
    sim.schedule_timer(src_id, 0, Time::ZERO);
    // Mid-experiment load surge: an extra smooth 5 Mbps appears for a few
    // minutes. The avail-bw drops to ~7 Mbps — still above the
    // window-limited rate, but the saturating strategy's share swings.
    let (surge, _) = PoissonSource::new(SourceConfig {
        route: Route::direct(fwd),
        dst: sink_id,
        packet_size: 1000,
        base_rate_bps: 5e6,
        schedule: RateSchedule::constant(0.0).with_burst(
            Time::from_secs(400),
            Time::from_secs(700),
            1.0,
        ),
        stop: Time::MAX,
    });
    let surge_id = sim.add_endpoint(Box::new(surge));
    sim.schedule_timer(surge_id, 0, Time::ZERO);

    // The job: 6 MB every minute, i.e. a sustained ≥ 2.4 Mbps during a
    // 20-second transfer window.
    let required_bps = 2.4e6;
    let rtt = 0.060;
    // Window-limited strategy: W sized for 1.4× the required rate.
    let w_limited = ((required_bps * 1.4) * rtt / 8.0) as u32; // bytes
    println!(
        "required rate {:.1} Mbps; window-limited W = {} kB (W/RTT = {:.1} Mbps)\n",
        required_bps / 1e6,
        w_limited / 1024,
        8.0 * w_limited as f64 / rtt / 1e6
    );

    let mut saturating = Vec::new();
    let mut limited = Vec::new();
    let mut t = Time::from_secs(5);
    for _ in 0..25 {
        for (w, out) in [(1u32 << 20, &mut saturating), (w_limited, &mut limited)] {
            let start = t;
            let stop = start + Time::from_secs(20);
            let transfer = BulkTransfer::launch(
                &mut sim,
                TcpConfig {
                    max_window: w,
                    ..TcpConfig::default()
                },
                Route::direct(fwd),
                Route::direct(rev),
                start,
                stop,
            );
            sim.run_until(stop + Time::from_secs(2));
            out.push(transfer.throughput());
            t = sim.now() + Time::from_secs(1);
        }
    }

    println!("strategy        mean_mbps  cov    deadline_met  rmsre_vs_mean");
    for (name, rates) in [
        ("saturating-1MB", &saturating),
        ("window-limited", &limited),
    ] {
        let s = Summary::from_samples(rates.iter().copied());
        let met = rates.iter().filter(|&&r| r >= required_bps).count();
        // Predictability: how well does the running mean predict each
        // next transfer? (1-step errors vs the previous mean.)
        let mut errors = Vec::new();
        let mut mean_so_far = None::<f64>;
        for (i, &r) in rates.iter().enumerate() {
            if let Some(m) = mean_so_far {
                errors.push(relative_error_floored(m, r));
            }
            mean_so_far = Some(match mean_so_far {
                None => r,
                Some(m) => (m * i as f64 + r) / (i as f64 + 1.0),
            });
        }
        println!(
            "{name:<15} {:>9.2}  {:.3}  {:>8}/{}     {:.3}",
            s.mean() / 1e6,
            s.cov().unwrap_or(f64::NAN),
            met,
            rates.len(),
            rmsre(&errors).unwrap_or(f64::NAN),
        );
    }
    println!("\nThe saturating transfers are faster on average but erratic; the window-limited");
    println!("ones give up peak throughput for a far tighter distribution — when the job only");
    println!(
        "needs {:.1} Mbps, predictability wins the deadline (Section 4.2.8).",
        required_bps / 1e6
    );
}
