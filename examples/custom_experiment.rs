//! Build your own measurement campaign: define a custom preset and path,
//! generate a small dataset programmatically, and evaluate any predictor
//! combination over it — the same machinery the figure binaries use,
//! driven from library code.
//!
//! ```text
//! cargo run --release --example custom_experiment
//! ```

use tcp_throughput_predictability::core::fb::{FbConfig, FbPredictor, PathEstimates};
use tcp_throughput_predictability::core::hb::{ArPredictor, HoltWinters, MovingAverage, Predictor};
use tcp_throughput_predictability::core::lso::Lso;
use tcp_throughput_predictability::core::metrics::{evaluate, relative_error_floored, rmsre};
use tcp_throughput_predictability::netsim::Time;
use tcp_throughput_predictability::testbed::{
    catalog_2004, run_trace, FaultConfig, Preset, RegimeConfig,
};

fn main() {
    // A compact custom preset: short epochs, no window-limited extras.
    let preset = Preset {
        name: "custom".into(),
        paths: 5,
        traces_per_path: 1,
        epochs_per_trace: 25,
        pathload_slot: Time::from_secs(10),
        pre_ping: Time::from_secs(8),
        transfer: Time::from_secs(8),
        epoch_gap: Time::from_secs(2),
        w_large: 1 << 20,
        w_small: 20 * 1024,
        with_small_window: false,
        ping_interval: Time::from_millis(100),
        seed: 0xC0FFEE,
        faults: FaultConfig::none(),
        regimes: RegimeConfig::none(),
    };

    // Pick one path from the catalog and customise it.
    let mut path = catalog_2004(preset.paths, preset.seed).remove(3);
    path.cross.utilization = 0.55;
    path.cross.shifts_per_trace = 1.5;
    println!(
        "path {}: {:.1} Mbps, {:.0} ms RTT, buffer {} pkts, {} elastic cross flows",
        path.name,
        path.capacity_bps / 1e6,
        path.base_rtt() * 1e3,
        path.buffer_packets,
        path.cross.elastic_flows,
    );

    // Simulate one trace (25 epochs, each: pathload → ping → transfer).
    let trace = run_trace(&path, 0, &preset);
    let series = trace.throughput_series();
    println!(
        "\n{} epochs simulated; throughput {:.2}..{:.2} Mbps",
        series.len(),
        series.iter().cloned().fold(f64::INFINITY, f64::min) / 1e6,
        series.iter().cloned().fold(f64::NEG_INFINITY, f64::max) / 1e6,
    );

    // Score any predictor battery over the trace, one-step-ahead.
    println!("\npredictor        rmsre");
    let batteries: Vec<(&str, Box<dyn Predictor + Send>)> = vec![
        ("10-MA", Box::new(MovingAverage::new(10))),
        ("10-MA-LSO", Box::new(Lso::new(MovingAverage::new(10)))),
        ("0.8-HW-LSO", Box::new(Lso::new(HoltWinters::new(0.8, 0.2)))),
        ("AR(2)", Box::new(ArPredictor::new(2, 64))),
    ];
    for (name, mut p) in batteries {
        let r = evaluate(&mut p, &series).rmsre().unwrap();
        println!("{name:<16} {r:.3}");
    }

    // And the FB prediction for each epoch, from its recorded a-priori
    // measurements.
    let fb = FbPredictor::new(FbConfig::default());
    let fb_errors: Vec<f64> = trace
        .records
        .iter()
        .filter_map(|rec| rec.complete())
        .map(|rec| {
            let est = PathEstimates {
                rtt: rec.t_hat,
                loss_rate: rec.p_hat,
                avail_bw: rec.a_hat,
            };
            relative_error_floored(fb.predict(&est), rec.r_large)
        })
        .collect();
    println!(
        "{:<16} {:.3}   (no history needed)",
        "FB (Eq. 3)",
        rmsre(&fb_errors).unwrap()
    );
}
