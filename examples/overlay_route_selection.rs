//! Overlay route selection — the RON use case that motivates the paper
//! (§1, ref. \[1\]): an overlay node must choose which of several paths to
//! send a bulk transfer over, *before* starting it.
//!
//! ```text
//! cargo run --release --example overlay_route_selection
//! ```
//!
//! Three candidate paths with different capacities, RTTs, and loads.
//! Each round the selector picks a path by predicted throughput, sends
//! the transfer there, and learns. Three selectors compete:
//!
//! * `fb` — Formula-Based prediction only (what RON's
//!   throughput-optimizing router did, with the square-root formula);
//! * `hb` — History-Based (HW-LSO) per path, falling back to FB until
//!   a path has history;
//! * `oracle` — hindsight: always the path that would have been best.
//!
//! The tally at the end shows the HB-informed selector approaching the
//! oracle while FB keeps mis-ranking paths whose measured loss/avail-bw
//! does not reflect what a saturating TCP flow will get.

use tcp_throughput_predictability::core::fb::{FbConfig, FbPredictor, PathEstimates};
use tcp_throughput_predictability::core::hb::{HoltWinters, Predictor};
use tcp_throughput_predictability::core::lso::Lso;
use tcp_throughput_predictability::netsim::link::LinkConfig;
use tcp_throughput_predictability::netsim::sources::{
    ParetoOnOffSource, PoissonSource, Reflector, Sink, SourceConfig,
};
use tcp_throughput_predictability::netsim::{LinkId, RateSchedule, Route, Simulator, Time};
use tcp_throughput_predictability::probes::ping::{PingProber, PingStatsHandle};
use tcp_throughput_predictability::probes::{BulkTransfer, Pathload, PathloadConfig};
use tcp_throughput_predictability::tcp::TcpConfig;

struct OverlayPath {
    name: &'static str,
    fwd: LinkId,
    rev: LinkId,
    ping: PingStatsHandle,
    hb: Lso<HoltWinters>,
}

/// Builds one candidate path inside the shared simulation.
#[allow(clippy::too_many_arguments)]
fn build_path(
    sim: &mut Simulator,
    name: &'static str,
    capacity: f64,
    one_way_ms: u64,
    buffer_pkts: u32,
    poisson_load: f64,
    bursty_load: f64,
) -> OverlayPath {
    let fwd = sim.add_link(LinkConfig::new(
        capacity,
        Time::from_millis(one_way_ms),
        buffer_pkts,
    ));
    let rev = sim.add_link(LinkConfig::new(1e9, Time::from_millis(one_way_ms), 1000));
    let (sink, _) = Sink::new();
    let sink_id = sim.add_endpoint(Box::new(sink));
    if poisson_load > 0.0 {
        let (src, _) = PoissonSource::new(SourceConfig {
            route: Route::direct(fwd),
            dst: sink_id,
            packet_size: 1000,
            base_rate_bps: poisson_load,
            schedule: RateSchedule::constant(1.0),
            stop: Time::MAX,
        });
        let id = sim.add_endpoint(Box::new(src));
        sim.schedule_timer(id, 0, Time::ZERO);
    }
    if bursty_load > 0.0 {
        let (src, _) = ParetoOnOffSource::new(
            SourceConfig {
                route: Route::direct(fwd),
                dst: sink_id,
                packet_size: 1000,
                base_rate_bps: bursty_load,
                schedule: RateSchedule::constant(1.0),
                stop: Time::MAX,
            },
            0.5,
            1.6,
            0.4,
        );
        let id = sim.add_endpoint(Box::new(src));
        sim.schedule_timer(id, 0, Time::ZERO);
    }
    let (reflector, _) = Reflector::new(Route::direct(rev));
    let refl_id = sim.add_endpoint(Box::new(reflector));
    let (prober, ping) = PingProber::new(
        Route::direct(fwd),
        refl_id,
        Time::from_millis(100),
        Time::MAX,
    );
    let prober_id = sim.add_endpoint(Box::new(prober));
    sim.schedule_timer(prober_id, 0, Time::ZERO);
    OverlayPath {
        name,
        fwd,
        rev,
        ping,
        hb: Lso::new(HoltWinters::new(0.8, 0.2)),
    }
}

fn main() {
    let mut sim = Simulator::new(1);
    let mut paths = [
        // Fast but heavily loaded: pings look fine, transfers struggle.
        build_path(&mut sim, "fast-busy", 45e6, 40, 300, 30e6, 9e6),
        // Modest and lightly loaded: the actual winner most rounds.
        build_path(&mut sim, "mid-quiet", 20e6, 25, 80, 4e6, 1e6),
        // DSL-grade: never competitive for bulk transfers.
        build_path(&mut sim, "dsl", 1.4e6, 30, 14, 0.3e6, 0.1e6),
    ];

    let fb = FbPredictor::new(FbConfig::default());
    let mut score = [0.0f64; 3]; // fb, hb, oracle throughput totals
    let mut picks = [[0usize; 3]; 3];

    // Measure avail-bw per path once per round via pathload; ping runs
    // continuously.
    let mut t = Time::from_secs(10);
    println!("round  fb_pick     hb_pick     best        (Mbps per path)");
    for round in 0..10 {
        // Per-path a-priori measurements.
        let mut estimates = Vec::new();
        let measure_start = t;
        let handles: Vec<_> = paths
            .iter()
            .map(|p| {
                Pathload::deploy(
                    &mut sim,
                    PathloadConfig::default(),
                    Route::direct(p.fwd),
                    measure_start,
                )
            })
            .collect();
        sim.run_until(measure_start + Time::from_secs(15));
        for (p, handle) in paths.iter().zip(&handles) {
            let a_hat = handle.borrow().best_guess().unwrap_or(1e6);
            let s = p
                .ping
                .borrow()
                .summarize(measure_start, measure_start + Time::from_secs(14));
            estimates.push(PathEstimates {
                rtt: s.rtt.max(1e-3),
                loss_rate: s.loss_rate,
                avail_bw: a_hat,
            });
        }

        // Selections.
        let fb_preds: Vec<f64> = estimates.iter().map(|e| fb.predict(e)).collect();
        let fb_pick = argmax(&fb_preds);
        let hb_preds: Vec<f64> = paths
            .iter()
            .zip(&fb_preds)
            .map(|(p, &fbp)| p.hb.forecast().unwrap_or(fbp))
            .collect();
        let hb_pick = argmax(&hb_preds);

        // Ground truth: run a transfer on EVERY path this round (so the
        // oracle and the learners all observe it; an overlay monitoring
        // its paths does the same with lightweight probes or piggybacked
        // transfers).
        let start = sim.now() + Time::from_secs(1);
        let stop = start + Time::from_secs(15);
        let transfers: Vec<_> = paths
            .iter()
            .map(|p| {
                BulkTransfer::launch(
                    &mut sim,
                    TcpConfig::default(),
                    Route::direct(p.fwd),
                    Route::direct(p.rev),
                    start,
                    stop,
                )
            })
            .collect();
        sim.run_until(stop + Time::from_secs(3));
        let actual: Vec<f64> = transfers.iter().map(|tr| tr.throughput()).collect();
        let best = argmax(&actual);

        score[0] += actual[fb_pick];
        score[1] += actual[hb_pick];
        score[2] += actual[best];
        picks[0][fb_pick] += 1;
        picks[1][hb_pick] += 1;
        picks[2][best] += 1;
        for (p, &a) in paths.iter_mut().zip(&actual) {
            p.hb.update(a);
        }
        println!(
            "{round:>5}  {:<10}  {:<10}  {:<10}  ({:.1} / {:.1} / {:.1})",
            paths[fb_pick].name,
            paths[hb_pick].name,
            paths[best].name,
            actual[0] / 1e6,
            actual[1] / 1e6,
            actual[2] / 1e6,
        );
        t = sim.now() + Time::from_secs(2);
    }

    println!("\ntotal transferred if following each selector (relative to oracle):");
    for (label, s) in ["fb", "hb", "oracle"].iter().zip(&score) {
        println!(
            "  {label:<7} {:>6.1} Mbit-rounds  ({:.0}%)",
            s / 1e6,
            100.0 * s / score[2]
        );
    }
}

fn argmax(xs: &[f64]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
        .map(|(i, _)| i)
        .expect("non-empty")
}
