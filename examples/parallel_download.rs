//! Peer-to-peer parallel download — another motivating application (§1):
//! a client fetches one large file from several mirrors at once and must
//! decide how much of the file to request from each.
//!
//! ```text
//! cargo run --release --example parallel_download
//! ```
//!
//! The download completes when the *slowest* assignment finishes, so
//! chunk allocation should be proportional to each mirror's throughput.
//! Two allocators race over several downloads:
//!
//! * `equal`     — naive: every mirror gets the same share;
//! * `predicted` — shares proportional to the HB (HW-LSO) prediction of
//!   each mirror path's throughput (bootstrapped with an FB prediction
//!   while a mirror has no history).
//!
//! Completion time is estimated per round from the measured per-path
//! throughputs: `max_i(bytes_i / rate_i)`.

use tcp_throughput_predictability::core::fb::{FbConfig, FbPredictor, PathEstimates};
use tcp_throughput_predictability::core::hb::{HoltWinters, Predictor};
use tcp_throughput_predictability::core::lso::Lso;
use tcp_throughput_predictability::netsim::link::LinkConfig;
use tcp_throughput_predictability::netsim::sources::{PoissonSource, Sink, SourceConfig};
use tcp_throughput_predictability::netsim::{LinkId, RateSchedule, Route, Simulator, Time};
use tcp_throughput_predictability::probes::BulkTransfer;
use tcp_throughput_predictability::tcp::TcpConfig;

struct Mirror {
    name: &'static str,
    fwd: LinkId,
    rev: LinkId,
    /// A rough a-priori guess used before any history exists.
    guess: PathEstimates,
    hb: Lso<HoltWinters>,
}

fn mirror(
    sim: &mut Simulator,
    name: &'static str,
    capacity: f64,
    one_way_ms: u64,
    load: f64,
    schedule: RateSchedule,
) -> Mirror {
    let buffer = ((capacity * 0.1 / 8.0 / 1000.0) as u32).max(14);
    let fwd = sim.add_link(LinkConfig::new(
        capacity,
        Time::from_millis(one_way_ms),
        buffer,
    ));
    let rev = sim.add_link(LinkConfig::new(1e9, Time::from_millis(one_way_ms), 1000));
    let (sink, _) = Sink::new();
    let sink_id = sim.add_endpoint(Box::new(sink));
    if load > 0.0 {
        let (src, _) = PoissonSource::new(SourceConfig {
            route: Route::direct(fwd),
            dst: sink_id,
            packet_size: 1000,
            base_rate_bps: load,
            schedule,
            stop: Time::MAX,
        });
        let id = sim.add_endpoint(Box::new(src));
        sim.schedule_timer(id, 0, Time::ZERO);
    }
    Mirror {
        name,
        fwd,
        rev,
        guess: PathEstimates {
            rtt: 2.0 * one_way_ms as f64 / 1e3,
            loss_rate: 0.0,
            avail_bw: capacity - load,
        },
        hb: Lso::new(HoltWinters::new(0.8, 0.2)),
    }
}

fn main() {
    let mut sim = Simulator::new(99);
    let mut mirrors = vec![
        mirror(
            &mut sim,
            "mirror-a",
            20e6,
            20,
            8e6,
            RateSchedule::constant(1.0),
        ),
        mirror(
            &mut sim,
            "mirror-b",
            10e6,
            45,
            2e6,
            RateSchedule::constant(1.0),
        ),
        // mirror-c suffers a mid-experiment load surge: its history has a
        // level shift the LSO wrapper must catch.
        mirror(
            &mut sim,
            "mirror-c",
            20e6,
            30,
            4e6,
            RateSchedule::constant(1.0).with_shift(Time::from_secs(160), 3.5),
        ),
        mirror(
            &mut sim,
            "mirror-d",
            5e6,
            15,
            1e6,
            RateSchedule::constant(1.0),
        ),
    ];
    let file_bits = 400e6; // a 50 MB file per round
    let fb = FbPredictor::new(FbConfig::default());

    println!("round  completion_equal_s  completion_predicted_s  (per-mirror Mbps)");
    let mut sum_equal = 0.0;
    let mut sum_predicted = 0.0;
    let mut t = Time::from_secs(5);
    for round in 0..10 {
        // Allocations by current predictions.
        let preds: Vec<f64> = mirrors
            .iter()
            .map(|m| m.hb.forecast().unwrap_or_else(|| fb.predict(&m.guess)))
            .collect();
        let total_pred: f64 = preds.iter().sum();

        // Measure each mirror path with a concurrent transfer this round.
        let start = t;
        let stop = start + Time::from_secs(20);
        let transfers: Vec<_> = mirrors
            .iter()
            .map(|m| {
                BulkTransfer::launch(
                    &mut sim,
                    TcpConfig::default(),
                    Route::direct(m.fwd),
                    Route::direct(m.rev),
                    start,
                    stop,
                )
            })
            .collect();
        sim.run_until(stop + Time::from_secs(3));
        let rates: Vec<f64> = transfers
            .iter()
            .map(|tr| tr.throughput().max(1e3))
            .collect();

        // Completion times for the two allocations.
        let n = mirrors.len() as f64;
        let equal: f64 = rates.iter().map(|&r| file_bits / n / r).fold(0.0, f64::max);
        let predicted: f64 = rates
            .iter()
            .zip(&preds)
            .map(|(&r, &p)| file_bits * (p / total_pred) / r)
            .fold(0.0, f64::max);
        sum_equal += equal;
        sum_predicted += predicted;

        let mbps: Vec<String> = rates.iter().map(|r| format!("{:.1}", r / 1e6)).collect();
        println!(
            "{round:>5}  {equal:>19.1}  {predicted:>22.1}  ({})",
            mbps.join(" / ")
        );
        for (m, &r) in mirrors.iter_mut().zip(&rates) {
            m.hb.update(r);
        }
        t = sim.now() + Time::from_secs(2);
    }
    println!(
        "\nmean completion: equal split {:.1} s, prediction-weighted {:.1} s ({:.0}% faster)",
        sum_equal / 10.0,
        sum_predicted / 10.0,
        100.0 * (1.0 - sum_predicted / sum_equal)
    );
    for m in &mirrors {
        println!(
            "  {}: final prediction {:.1} Mbps",
            m.name,
            m.hb.forecast().unwrap_or(0.0) / 1e6
        );
    }
}
