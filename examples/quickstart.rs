//! Quickstart: predict a bulk TCP transfer's throughput two ways, then
//! check both predictions against a simulated transfer.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks through the paper's whole pipeline on one path:
//!
//! 1. build a simulated network path with cross traffic;
//! 2. measure it the non-intrusive way (ping → T̂, p̂; pathload → Â);
//! 3. make a Formula-Based prediction (Eq. 3);
//! 4. run the actual 1 MB-window bulk transfer and compare;
//! 5. repeat a few epochs, feeding a History-Based predictor
//!    (Holt-Winters + LSO) and watch it beat the formula.

use tcp_throughput_predictability::core::fb::{FbConfig, FbPredictor, PathEstimates};
use tcp_throughput_predictability::core::hb::{HoltWinters, Predictor};
use tcp_throughput_predictability::core::lso::Lso;
use tcp_throughput_predictability::core::metrics::relative_error_floored;
use tcp_throughput_predictability::netsim::link::LinkConfig;
use tcp_throughput_predictability::netsim::sources::{
    PoissonSource, Reflector, Sink, SourceConfig,
};
use tcp_throughput_predictability::netsim::{RateSchedule, Route, Simulator, Time};
use tcp_throughput_predictability::probes::ping::PingProber;
use tcp_throughput_predictability::probes::{BulkTransfer, Pathload, PathloadConfig};
use tcp_throughput_predictability::tcp::TcpConfig;

fn main() {
    // ── 1. A 10 Mbps path, 60 ms RTT, carrying 4 Mbps of Poisson load ──
    let mut sim = Simulator::new(7);
    let fwd = sim.add_link(LinkConfig::new(10e6, Time::from_millis(30), 40));
    let rev = sim.add_link(LinkConfig::new(1e9, Time::from_millis(30), 1000));
    let (sink, _) = Sink::new();
    let sink_id = sim.add_endpoint(Box::new(sink));
    let (cross, _) = PoissonSource::new(SourceConfig {
        route: Route::direct(fwd),
        dst: sink_id,
        packet_size: 1000,
        base_rate_bps: 4e6,
        schedule: RateSchedule::constant(1.0),
        stop: Time::MAX,
    });
    let cross_id = sim.add_endpoint(Box::new(cross));
    sim.schedule_timer(cross_id, 0, Time::ZERO);

    // ── 2. Non-intrusive measurements ─────────────────────────────────
    let (reflector, _) = Reflector::new(Route::direct(rev));
    let refl_id = sim.add_endpoint(Box::new(reflector));
    let (prober, ping) = PingProber::new(
        Route::direct(fwd),
        refl_id,
        Time::from_millis(100),
        Time::MAX,
    );
    let prober_id = sim.add_endpoint(Box::new(prober));
    sim.schedule_timer(prober_id, 0, Time::ZERO);

    let pathload = Pathload::deploy(
        &mut sim,
        PathloadConfig::default(),
        Route::direct(fwd),
        Time::ZERO,
    );
    sim.run_until(Time::from_secs(30));
    let a_hat = pathload.borrow().best_guess().expect("avail-bw estimate");
    let pre = ping
        .borrow()
        .summarize(Time::from_secs(15), Time::from_secs(29));
    println!(
        "measured a priori:  T^ = {:.1} ms, p^ = {:.4}, A^ = {:.2} Mbps",
        pre.rtt * 1e3,
        pre.loss_rate,
        a_hat / 1e6
    );

    // ── 3. The Formula-Based prediction (Eq. 3) ────────────────────────
    let fb = FbPredictor::new(FbConfig::default());
    let est = PathEstimates {
        rtt: pre.rtt,
        loss_rate: pre.loss_rate,
        avail_bw: a_hat,
    };
    let fb_prediction = fb.predict(&est);
    println!("FB prediction:      R^ = {:.2} Mbps", fb_prediction / 1e6);

    // ── 4 & 5. Repeated transfers: score FB, train HB ─────────────────
    let mut hb = Lso::new(HoltWinters::new(0.8, 0.2));
    println!("\nepoch  actual_mbps  fb_error_E  hb_error_E");
    let mut t = Time::from_secs(30);
    for epoch in 0..8 {
        let start = t;
        let stop = start + Time::from_secs(20);
        let transfer = BulkTransfer::launch(
            &mut sim,
            TcpConfig::default(),
            Route::direct(fwd),
            Route::direct(rev),
            start,
            stop,
        );
        sim.run_until(stop + Time::from_secs(3));
        let actual = transfer.throughput();
        let fb_e = relative_error_floored(fb_prediction, actual);
        let hb_e = hb.forecast().map(|p| relative_error_floored(p, actual));
        println!(
            "{epoch:>5}  {:>11.2}  {:>10.2}  {}",
            actual / 1e6,
            fb_e,
            hb_e.map_or("    (no history)".into(), |e| format!("{e:>10.2}")),
        );
        hb.update(actual);
        t = stop + Time::from_secs(5);
    }
    println!("\nWith a few epochs of history the HB error settles well under the FB error —");
    println!("the paper's central comparison (Section 6.1.2), on your laptop.");
}
