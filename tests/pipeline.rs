//! End-to-end pipeline integration: synthetic testbed → measurements →
//! predictors → the paper's qualitative findings, across all crates.
//!
//! These tests regenerate a small dataset in-process (seconds) and assert
//! the *shape* invariants the paper reports, not absolute numbers.

use tcp_throughput_predictability::core::fb::{FbConfig, FbPredictor, PathEstimates};
use tcp_throughput_predictability::core::hb::HoltWinters;
use tcp_throughput_predictability::core::lso::Lso;
use tcp_throughput_predictability::core::metrics::{evaluate, relative_error_floored, rmsre};
use tcp_throughput_predictability::netsim::Time;
use tcp_throughput_predictability::testbed::{
    catalog_2004, generate, run_trace, Dataset, FaultConfig, Preset, RegimeConfig,
};

/// A small-but-meaningful preset: 6 paths, 1 trace, 14 epochs.
fn test_preset() -> Preset {
    Preset {
        name: "integration".into(),
        paths: 6,
        traces_per_path: 1,
        epochs_per_trace: 14,
        pathload_slot: Time::from_secs(8),
        pre_ping: Time::from_secs(6),
        transfer: Time::from_secs(6),
        epoch_gap: Time::from_secs(2),
        w_large: 1 << 20,
        w_small: 20 * 1024,
        with_small_window: true,
        ping_interval: Time::from_millis(100),
        seed: 20040701,
        faults: FaultConfig::none(),
        regimes: RegimeConfig::none(),
    }
}

fn dataset() -> Dataset {
    generate(&test_preset())
}

fn fb_for(ds: &Dataset) -> FbPredictor {
    FbPredictor::new(FbConfig {
        max_window: ds.preset.w_large,
        ..FbConfig::default()
    })
}

fn a_priori(rec: &tcp_throughput_predictability::testbed::CompleteEpoch) -> PathEstimates {
    PathEstimates {
        rtt: rec.t_hat,
        loss_rate: rec.p_hat,
        avail_bw: rec.a_hat,
    }
}

#[test]
fn dataset_has_the_requested_shape_and_sane_records() {
    let ds = dataset();
    assert_eq!(ds.paths.len(), 6);
    assert_eq!(ds.epoch_count(), 6 * 14);
    // Zero-fault presets produce only complete epochs.
    assert_eq!(ds.degraded_count(), 0);
    for (_, _, rec) in ds.complete_epochs() {
        assert!(rec.r_large > 0.0, "every transfer delivers something");
        assert!(rec.t_hat > 0.0 && rec.t_hat < 2.0);
        assert!((0.0..=1.0).contains(&rec.p_hat));
        assert!((0.0..=1.0).contains(&rec.p_tilde));
        assert!(rec.a_hat > 0.0);
        assert!(rec.r_small.unwrap() > 0.0);
        if rec.flow_rtt > 0.0 {
            // Starved epochs may record no RTT samples at all.
            assert!(
                rec.flow_rtt >= rec.t_hat * 0.5,
                "flow RTT in the same world"
            );
        }
    }
}

#[test]
fn fb_overestimation_dominates_as_in_the_paper() {
    let ds = dataset();
    let fb = fb_for(&ds);
    let errors: Vec<f64> = ds
        .complete_epochs()
        .map(|(_, _, rec)| relative_error_floored(fb.predict(&a_priori(&rec)), rec.r_large))
        .collect();
    let over = errors.iter().filter(|&&e| e > 0.0).count() as f64 / errors.len() as f64;
    assert!(
        over > 0.55,
        "FB should mostly overestimate (paper: ~80%), got {over:.2}"
    );
    // Large overestimations exist; equally large underestimations are
    // rarer (paper finding 2 of §4.3).
    let big_over = errors.iter().filter(|&&e| e > 2.0).count();
    let big_under = errors.iter().filter(|&&e| e < -2.0).count();
    assert!(
        big_over > big_under,
        "overestimation tail dominates: {big_over} vs {big_under}"
    );
}

#[test]
fn hb_beats_fb_when_history_exists() {
    let ds = dataset();
    let fb = fb_for(&ds);
    let mut hb_wins = 0usize;
    let mut traces = 0usize;
    for p in &ds.paths {
        for t in &p.traces {
            let fb_errors: Vec<f64> = t
                .records
                .iter()
                .filter_map(|rec| rec.complete())
                .map(|rec| relative_error_floored(fb.predict(&a_priori(&rec)), rec.r_large))
                .collect();
            let fb_rmsre = rmsre(&fb_errors).unwrap();
            let mut hb = Lso::new(HoltWinters::new(0.8, 0.2));
            let hb_rmsre = evaluate(&mut hb, &t.throughput_series()).rmsre().unwrap();
            traces += 1;
            if hb_rmsre < fb_rmsre {
                hb_wins += 1;
            }
        }
    }
    // Rank-based: robust against individual pathological traces where a
    // starved path makes both errors astronomical.
    assert!(
        hb_wins * 3 >= traces * 2,
        "HB should beat FB on most traces (paper §6.1.2): {hb_wins}/{traces}"
    );
}

#[test]
fn window_limited_series_are_more_predictable() {
    let ds = dataset();
    let mut large_rmsres = Vec::new();
    let mut small_rmsres = Vec::new();
    for p in &ds.paths {
        for t in &p.traces {
            let mut hb = Lso::new(HoltWinters::new(0.8, 0.2));
            if let Some(r) = evaluate(&mut hb, &t.throughput_series()).rmsre() {
                large_rmsres.push(r);
            }
            if let Some(series) = t.small_window_series() {
                let mut hb = Lso::new(HoltWinters::new(0.8, 0.2));
                if let Some(r) = evaluate(&mut hb, &series).rmsre() {
                    small_rmsres.push(r);
                }
            }
        }
    }
    let med = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    assert!(
        med(&mut small_rmsres) <= med(&mut large_rmsres),
        "W=20KB series more predictable (paper §6.1.5)"
    );
}

#[test]
fn generation_is_deterministic_end_to_end() {
    let preset = Preset {
        paths: 3,
        epochs_per_trace: 4,
        ..test_preset()
    };
    let a = generate(&preset);
    let b = generate(&preset);
    assert_eq!(a, b, "same preset, same dataset, bit for bit");
}

#[test]
fn single_trace_matches_its_slot_in_the_full_dataset() {
    // run_trace and generate must agree: the parallel fan-out cannot
    // change per-trace results.
    let preset = Preset {
        paths: 3,
        epochs_per_trace: 4,
        ..test_preset()
    };
    let ds = generate(&preset);
    let catalog = catalog_2004(3, preset.seed);
    let lone = run_trace(&catalog[1], 0, &preset);
    assert_eq!(ds.paths[1].traces[0], lone);
}

#[test]
fn posthumous_pftk_agrees_with_the_tcp_implementation() {
    // The strongest cross-validation in the workspace: feeding the PFTK
    // model the target flow's OWN measured RTT and congestion-event
    // probability (the "posthumous" estimation the PFTK authors
    // validated with, paper §3.2) must reproduce the flow's throughput
    // closely — tying the from-scratch TCP stack, the measurement
    // harness, and the analytical model together.
    use tcp_throughput_predictability::core::formulas::{pftk, rto_estimate, PftkParams};

    // Longer transfers than the other integration tests: PFTK is a
    // steady-state model, and a 6-second flow with one loss event is
    // transient behaviour, not steady state.
    // 10 paths (vs the shared preset's 6) so enough congested paths —
    // and with them lossy, steady-state epochs — land in the sample.
    let preset = Preset {
        transfer: Time::from_secs(20),
        epochs_per_trace: 8,
        paths: 10,
        ..test_preset()
    };
    let ds = generate(&preset);
    let duration = ds.preset.transfer.as_secs_f64();
    let mut errors = Vec::new();
    for (_, _, rec) in ds.complete_epochs() {
        // Steady-state epochs only: lossy a priori and enough congestion
        // events for the flow to be in its AIMD regime.
        // lint:allow(float-eq): p_hat = 0 is the exact no-loss-observed sentinel
        if rec.p_hat == 0.0 || rec.flow_loss_events < 3 || rec.flow_rtt <= 0.0 {
            continue;
        }
        let delivered_segments = rec.r_large * duration / 8.0 / 1448.0;
        if delivered_segments < 10.0 {
            continue;
        }
        let p_event = (rec.flow_loss_events as f64 / delivered_segments).min(0.9);
        let params = PftkParams {
            mss: 1448,
            rtt: rec.flow_rtt,
            rto: rto_estimate(rec.flow_rtt),
            b: 2.0,
            p: p_event,
            max_window: ds.preset.w_large,
        };
        errors.push(relative_error_floored(pftk(&params), rec.r_large));
    }
    assert!(errors.len() >= 10, "enough lossy epochs: {}", errors.len());
    let within_2x = errors.iter().filter(|e| e.abs() < 1.0).count();
    assert!(
        within_2x * 10 >= errors.len() * 7,
        "PFTK with posthumous inputs within 2x on >=70% of epochs: {}/{}",
        within_2x,
        errors.len()
    );
}
