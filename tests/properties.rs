//! Property-based tests (proptest) over the core prediction machinery:
//! invariants that must hold for *any* input, not just the paper's
//! workloads.

use proptest::prelude::*;
use tcp_throughput_predictability::core::fb::{FbConfig, FbModel, FbPredictor, PathEstimates};
use tcp_throughput_predictability::core::formulas::{pftk, pftk_full, pftk_revised, PftkParams};
use tcp_throughput_predictability::core::hb::{Ewma, HoltWinters, MovingAverage, Predictor};
use tcp_throughput_predictability::core::lso::{scan_series, Lso, LsoConfig};
use tcp_throughput_predictability::core::metrics::{
    downsample, evaluate, relative_error, rmsre, segmented_cov,
};
use tcp_throughput_predictability::stats::{Cdf, Summary};

/// Positive throughput-like values (1 kbps – 10 Gbps).
fn throughput() -> impl Strategy<Value = f64> {
    1e3..1e10f64
}

/// A throughput series of 4–60 samples.
fn series() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(throughput(), 4..60)
}

fn pftk_params() -> impl Strategy<Value = PftkParams> {
    (
        0.001f64..0.5, // p
        0.005f64..0.5, // rtt
        (16u32..2048), // max_window KB
    )
        .prop_map(|(p, rtt, w_kb)| PftkParams {
            mss: 1448,
            rtt,
            rto: f64::max(1.0, 2.0 * rtt),
            b: 2.0,
            p,
            max_window: w_kb * 1024,
        })
}

proptest! {
    #[test]
    fn relative_error_sign_tracks_over_or_under(pred in throughput(), actual in throughput()) {
        let e = relative_error(pred, actual);
        prop_assert!(e.is_finite());
        if pred > actual {
            prop_assert!(e > 0.0);
        } else if pred < actual {
            prop_assert!(e < 0.0);
        } else {
            prop_assert_eq!(e, 0.0);
        }
        // Symmetry: swapping arguments flips the sign exactly.
        let swapped = relative_error(actual, pred);
        prop_assert!((e + swapped).abs() < 1e-9 * (1.0 + e.abs()));
    }

    #[test]
    fn rmsre_bounds_the_mean_absolute_error(errors in prop::collection::vec(-100.0..100.0f64, 1..50)) {
        let r = rmsre(&errors).unwrap();
        let mean_abs = errors.iter().map(|e| e.abs()).sum::<f64>() / errors.len() as f64;
        let max_abs = errors.iter().fold(0.0f64, |m, e| m.max(e.abs()));
        // RMS is between the mean and the max of |E| (Cauchy-Schwarz).
        prop_assert!(r >= mean_abs - 1e-9);
        prop_assert!(r <= max_abs + 1e-9);
    }

    #[test]
    fn all_pftk_variants_are_positive_finite_and_window_capped(params in pftk_params()) {
        for f in [pftk, pftk_full, pftk_revised] {
            let r = f(&params);
            prop_assert!(r.is_finite() && r > 0.0, "rate {r}");
            let cap = 8.0 * params.max_window as f64 / params.rtt;
            prop_assert!(r <= cap * (1.0 + 1e-9), "rate {r} above window cap {cap}");
        }
    }

    #[test]
    fn pftk_is_monotone_decreasing_in_loss(params in pftk_params()) {
        let higher = PftkParams { p: (params.p * 1.5).min(0.9), ..params };
        // Monotone unless already window-capped at both points.
        let (a, b) = (pftk(&params), pftk(&higher));
        prop_assert!(a >= b - 1e-9, "p {} -> {}: {a} < {b}", params.p, higher.p);
    }

    #[test]
    fn fb_prediction_is_finite_and_nonnegative(
        rtt in 0.001f64..2.0,
        loss in 0.0f64..0.8,
        avail in 0.0f64..1e9,
        model_idx in 0usize..4,
    ) {
        let model = [FbModel::PftkSimple, FbModel::PftkFull, FbModel::PftkRevised, FbModel::Mathis][model_idx];
        let fb = FbPredictor::new(FbConfig { model, ..FbConfig::default() });
        let r = fb.predict(&PathEstimates { rtt, loss_rate: loss, avail_bw: avail });
        prop_assert!(r.is_finite() && r >= 0.0);
    }

    #[test]
    fn predictors_stay_inside_the_observed_hull(xs in series()) {
        // MA and EWMA forecasts are convex combinations of observations.
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut ma = MovingAverage::new(10);
        let mut ew = Ewma::new(0.8);
        // Tolerance scales with magnitude: the MA's running sum is good
        // to a few ulps, which at 1e10-scale inputs is ~1e-6 absolute.
        let tol = 1e-9 + 1e-12 * hi.abs();
        for &x in &xs {
            ma.update(x);
            ew.update(x);
            for f in [ma.forecast().unwrap(), ew.forecast().unwrap()] {
                prop_assert!(f >= lo - tol && f <= hi + tol, "{f} outside [{lo}, {hi}]");
            }
        }
    }

    #[test]
    fn evaluate_produces_one_slot_per_sample(xs in series()) {
        let mut p = Lso::new(HoltWinters::new(0.8, 0.2));
        let res = evaluate(&mut p, &xs);
        prop_assert_eq!(res.errors.len(), xs.len());
        prop_assert_eq!(res.predictions.len(), xs.len());
        // Every outlier index points into the series.
        prop_assert!(res.outliers.iter().all(|&i| i < xs.len()));
        prop_assert!(res.level_shifts.iter().all(|&i| i < xs.len()));
    }

    #[test]
    fn lso_detections_are_prefix_stable(xs in series()) {
        // Feeding a prefix yields a prefix of the detections: online
        // decisions never depend on the future.
        let (full_shifts, full_outliers) = scan_series(&xs, LsoConfig::default());
        let cut = xs.len() / 2;
        let (pre_shifts, pre_outliers) = scan_series(&xs[..cut], LsoConfig::default());
        prop_assert!(pre_shifts.iter().all(|s| full_shifts.contains(s)),
            "prefix shifts {pre_shifts:?} not all in {full_shifts:?}");
        prop_assert!(pre_outliers.iter().all(|o| full_outliers.contains(o)),
            "prefix outliers {pre_outliers:?} not all in {full_outliers:?}");
    }

    #[test]
    fn segmented_cov_is_finite_and_matches_global_when_nothing_detected(xs in series()) {
        if let Some(seg) = segmented_cov(&xs, LsoConfig::default()) {
            prop_assert!(seg.is_finite() && seg >= 0.0);
            let (shifts, outliers) = scan_series(&xs, LsoConfig::default());
            if shifts.is_empty() && outliers.is_empty() {
                // With no detections there is exactly one segment: the
                // weighted CoV must equal the plain CoV.
                let global = Summary::from_samples(xs.iter().copied())
                    .cov()
                    .unwrap_or(0.0);
                prop_assert!((seg - global).abs() <= 1e-9 * (1.0 + global),
                    "one segment: {seg} vs {global}");
            }
        }
    }

    #[test]
    fn downsampling_preserves_first_sample_and_count(xs in series(), k in 1usize..10) {
        let d = downsample(&xs, k);
        prop_assert_eq!(d[0], xs[0]);
        prop_assert_eq!(d.len(), xs.len().div_ceil(k));
    }

    #[test]
    fn cdf_quantile_and_fraction_below_are_consistent(xs in prop::collection::vec(-1e6..1e6f64, 2..100), q in 0.01f64..0.99) {
        let cdf = Cdf::from_samples(xs.iter().copied());
        let v = cdf.quantile(q);
        let frac = cdf.fraction_below(v);
        // At least q of the mass lies at or below the q-quantile.
        prop_assert!(frac + 1.0 / xs.len() as f64 >= q - 1e-9, "q={q} v={v} frac={frac}");
    }
}
