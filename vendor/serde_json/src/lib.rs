//! Offline stand-in for `serde_json`.
//!
//! Text layer over the vendored `serde` stub's [`Value`] model:
//! [`to_string`] renders, [`from_str`] parses. Floats round-trip
//! bit-exactly — written with Rust's shortest-representation `Display`
//! and read back with the correctly rounded std parser — which is the
//! property the real crate's `float_roundtrip` feature buys.

use serde::{Deserialize, Number, Serialize, Value};
use std::fmt;

/// A serialization or parse failure.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Parses a JSON string into `T`, rejecting trailing garbage.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    Ok(T::from_value(&value)?)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_number(n: Number, out: &mut String) {
    use std::fmt::Write;
    match n {
        Number::U64(v) => write!(out, "{v}").unwrap(),
        Number::I64(v) => write!(out, "{v}").unwrap(),
        Number::F64(v) if v.is_finite() => {
            // Rust's Display prints the shortest string that parses back
            // to the same f64, so this round-trips exactly. Emit a `.0`
            // for integral floats so the value re-parses as a float.
            let mut buf = format!("{v}");
            if !buf.contains(['.', 'e', 'E']) {
                buf.push_str(".0");
            }
            out.push_str(&buf);
        }
        Number::F64(_) => out.push_str("null"),
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                write!(out, "\\u{:04x}", c as u32).unwrap();
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("JSON parse error at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(&format!("unexpected byte `{}`", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by this
                            // workspace's writer; reject rather than decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            s.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let c = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8"))?
                        .chars()
                        .next()
                        .unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let num = if is_float {
            Number::F64(text.parse().map_err(|_| self.err("bad number"))?)
        } else if text.starts_with('-') {
            match text.parse::<i64>() {
                Ok(v) => Number::I64(v),
                Err(_) => Number::F64(text.parse().map_err(|_| self.err("bad number"))?),
            }
        } else {
            match text.parse::<u64>() {
                Ok(v) => Number::U64(v),
                Err(_) => Number::F64(text.parse().map_err(|_| self.err("bad number"))?),
            }
        };
        Ok(Value::Number(num))
    }
}

fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_through_text() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("a \"quoted\"\npath".into())),
            ("seed".into(), Value::Number(Number::U64(u64::MAX))),
            ("neg".into(), Value::Number(Number::I64(-42))),
            (
                "xs".into(),
                Value::Array(vec![
                    Value::Number(Number::F64(0.1)),
                    Value::Null,
                    Value::Bool(true),
                ]),
            ),
        ]);
        let mut text = String::new();
        write_value(&v, &mut text);
        assert_eq!(parse_value_complete(&text).unwrap(), v);
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for f in [
            0.1,
            1.0 / 3.0,
            6.02e23,
            5e-324,
            f64::MAX,
            -0.0,
            123_456_789.123_456_79,
            1e6,
        ] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} -> {text} -> {back}");
        }
    }

    #[test]
    fn integral_floats_reparse_as_floats() {
        // 1e6 must not come back as Number::U64 — f64 fields depend on it.
        let text = to_string(&1_000_000.0f64).unwrap();
        assert_eq!(text, "1000000.0");
        let v = parse_value_complete(&text).unwrap();
        assert_eq!(v, Value::Number(Number::F64(1e6)));
    }

    #[test]
    fn u64_precision_is_not_squeezed_through_f64() {
        let seed = u64::MAX - 1;
        let text = to_string(&seed).unwrap();
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(back, seed);
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        assert!(from_str::<f64>("1.5 x").is_err());
        assert!(from_str::<Vec<f64>>("[1,2,]").is_err());
        assert!(from_str::<f64>("").is_err());
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let opt: Option<f64> = from_str("null").unwrap();
        assert_eq!(opt, None);
    }
}
