//! Offline stand-in for `serde_derive`.
//!
//! Hand-parses the derive input token stream (no `syn`/`quote` — the
//! build environment has no crates.io access) and emits `Serialize` /
//! `Deserialize` impls for the shapes this workspace actually derives:
//!
//! * structs with named fields → JSON objects,
//! * newtype tuple structs (`struct Time(u64)`) → the inner value,
//! * enums with unit variants only → the variant name as a string.
//!
//! Anything else (generics, data-carrying enums, multi-field tuple
//! structs) panics with a clear message at derive time rather than
//! generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What a derive target looks like after parsing.
enum Shape {
    /// `struct Name { a: A, b: B }` — field names in declaration order.
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct Name(Inner);`
    Newtype { name: String },
    /// `enum Name { A, B { x: X } }` — variants in declaration order;
    /// `None` fields = unit variant, `Some` = struct variant.
    Enum {
        name: String,
        variants: Vec<(String, Option<Vec<String>>)>,
    },
}

/// Consumes leading attributes (`#[...]`) and visibility (`pub`,
/// `pub(...)`) from `toks[*i]`.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parses the body of a named-field struct: returns field names.
fn parse_named_fields(body: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        skip_attrs_and_vis(body, &mut i);
        let Some(TokenTree::Ident(name)) = body.get(i) else {
            break;
        };
        fields.push(name.to_string());
        i += 1;
        // Expect ':' then the type; skip type tokens to the next
        // top-level ',' tracking angle-bracket depth (commas inside
        // `Foo<A, B>` are not grouped by the tokenizer).
        assert!(
            matches!(body.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "serde_derive stub: expected `:` after field `{}`",
            fields.last().unwrap()
        );
        i += 1;
        let mut angle = 0i32;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Parses the body of an enum: unit variants and struct variants.
fn parse_variants(name: &str, body: &[TokenTree]) -> Vec<(String, Option<Vec<String>>)> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        skip_attrs_and_vis(body, &mut i);
        let vname = match body.get(i) {
            Some(TokenTree::Ident(v)) => v.to_string(),
            None => break,
            Some(t) => panic!("serde_derive stub: unexpected token {t} in enum `{name}`"),
        };
        i += 1;
        let fields = match body.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Some(parse_named_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => panic!(
                "serde_derive stub: enum `{name}` has a tuple variant `{vname}` — only unit and struct variants are supported"
            ),
            _ => None,
        };
        variants.push((vname, fields));
        match body.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => break,
            Some(t) => panic!("serde_derive stub: unexpected token {t} in enum `{name}`"),
        }
    }
    variants
}

fn parse_shape(input: TokenStream) -> Shape {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        t => panic!("serde_derive stub: expected `struct` or `enum`, got {t:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        t => panic!("serde_derive stub: expected type name, got {t:?}"),
    };
    i += 1;
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic type `{name}` is not supported");
    }
    match toks.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            if kind == "struct" {
                Shape::NamedStruct {
                    name,
                    fields: parse_named_fields(&body),
                }
            } else {
                let variants = parse_variants(&name, &body);
                Shape::Enum { name, variants }
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            let top_commas = {
                let mut angle = 0i32;
                let mut commas = 0;
                for t in &inner {
                    match t {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => commas += 1,
                        _ => {}
                    }
                }
                commas
            };
            assert!(
                kind == "struct" && top_commas == 0,
                "serde_derive stub: only single-field (newtype) tuple structs are supported, `{name}` has more"
            );
            Shape::Newtype { name }
        }
        t => panic!("serde_derive stub: unexpected token {t:?} after `{kind} {name}`"),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::NamedStruct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut fields: Vec<(String, ::serde::Value)> = Vec::with_capacity({n});\n\
                         {pushes}\
                         ::serde::Value::Object(fields)\n\
                     }}\n\
                 }}",
                n = fields.len()
            )
        }
        Shape::Newtype { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Serialize::to_value(&self.0) }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            // Externally tagged, like real serde: unit variants become
            // the variant name as a string; struct variants become
            // `{"Variant": {..fields..}}`.
            let arms: String = variants
                .iter()
                .map(|(v, fields)| match fields {
                    None => format!("{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),\n"),
                    Some(fs) => {
                        let binds = fs.join(", ");
                        let pushes: String = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "inner.push((\"{f}\".to_string(), ::serde::Serialize::to_value({f})));\n"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => {{\n\
                                 let mut inner: Vec<(String, ::serde::Value)> = Vec::with_capacity({n});\n\
                                 {pushes}\
                                 ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Value::Object(inner))])\n\
                             }}\n",
                            n = fs.len()
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde_derive stub: generated code failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(obj, \"{f}\", \"{name}\")?,\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let obj = v.as_object().ok_or_else(|| ::serde::Error::custom(\
                             format!(\"expected JSON object for {name}, got {{}}\", v.kind())))?;\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Newtype { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     Ok({name}(::serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, fields)| fields.is_none())
                .map(|(v, _)| format!("\"{v}\" => Ok({name}::{v}),\n"))
                .collect();
            let struct_arms: String = variants
                .iter()
                .filter_map(|(v, fields)| fields.as_ref().map(|fs| (v, fs)))
                .map(|(v, fs)| {
                    let inits: String = fs
                        .iter()
                        .map(|f| format!("{f}: ::serde::field(obj, \"{f}\", \"{name}::{v}\")?,\n"))
                        .collect();
                    format!(
                        "\"{v}\" => {{\n\
                             let obj = inner.as_object().ok_or_else(|| ::serde::Error::custom(\
                                 format!(\"expected object body for {name}::{v}, got {{}}\", inner.kind())))?;\n\
                             Ok({name}::{v} {{ {inits} }})\n\
                         }}\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::String(s) => match s.as_str() {{\n\
                                 {unit_arms}\
                                 other => Err(::serde::Error::custom(\
                                     format!(\"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                                 let (tag, inner) = &entries[0];\n\
                                 let _ = inner; // silence unused warning for all-unit enums\n\
                                 match tag.as_str() {{\n\
                                     {struct_arms}\
                                     other => Err(::serde::Error::custom(\
                                         format!(\"unknown {name} variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => Err(::serde::Error::custom(\
                                 format!(\"expected variant of {name}, got {{}}\", v.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde_derive stub: generated code failed to parse")
}
