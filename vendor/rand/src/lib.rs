//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *exact* API surface it consumes: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`]/[`RngExt`] pair with
//! `random`, `random_range`, and `random_bool`.
//!
//! Two properties matter for the reproduction and are guaranteed here:
//!
//! * **Determinism** — `StdRng::seed_from_u64(s)` is a pure function of
//!   `s`; the stream is identical across platforms and runs. (The real
//!   `StdRng` makes no cross-version stream guarantee; this one is
//!   frozen by the tests below.)
//! * **Uniformity good enough for simulation** — the core generator is
//!   xoshiro256++ seeded via SplitMix64, the standard small-state
//!   generator pairing; `f64` sampling uses the top 53 bits.
//!
//! It is intentionally *not* a cryptographic RNG and implements nothing
//! the workspace does not call.

/// A source of random 64-bit words. The object-safe core trait; all
/// convenience sampling lives on [`RngExt`].
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits (upper half of
    /// [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their "natural" domain: `[0, 1)` for
/// floats, the full range for integers, a fair coin for `bool`.
pub trait Uniform: Sized {
    /// Draws one value from `rng`.
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Uniform for f64 {
    /// Uniform in `[0, 1)` with 53-bit resolution.
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Uniform for f32 {
    /// Uniform in `[0, 1)` with 24-bit resolution.
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Uniform for bool {
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl Uniform for $t {
            fn sample_uniform<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn from: `start..end` and `start..=end` over
/// floats and integers.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::sample_uniform(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = self.into_inner();
        assert!(start <= end, "empty range");
        // Scale a 53-bit fraction onto the closed interval; the endpoint
        // has measure ~2^-53, matching how rand treats inclusive floats.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + (end - start) * u
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling over any [`Rng`] — mirrors the `rand` 0.9+ split
/// where ergonomic methods live on an extension trait.
pub trait RngExt: Rng {
    /// A uniform draw over `T`'s natural domain (see [`Uniform`]).
    fn random<T: Uniform>(&mut self) -> T {
        T::sample_uniform(self)
    }

    /// A uniform draw from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample_uniform(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Small, fast, and statistically solid for simulation
    /// workloads; **not** cryptographically secure.
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::rngs::StdRng;
    /// use rand::{RngExt, SeedableRng};
    /// let mut a = StdRng::seed_from_u64(7);
    /// let mut b = StdRng::seed_from_u64(7);
    /// assert_eq!(a.random::<u64>(), b.random::<u64>());
    /// ```
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // xoshiro's all-zero state is absorbing; SplitMix64 cannot
            // produce four zero words from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..16).map(|_| a.random::<u64>()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.random::<u64>()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.random::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn stream_is_frozen() {
        // Pin the first outputs so an accidental algorithm change (which
        // would silently invalidate every cached dataset's behavior
        // assumptions) fails loudly.
        let mut r = StdRng::seed_from_u64(0);
        assert_eq!(r.random::<u64>(), 0x53175d61490b23df_u64);
    }

    #[test]
    fn unit_interval_and_ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = r.random::<f64>();
            assert!((0.0..1.0).contains(&f));
            let x = r.random_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = r.random_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let z = r.random_range(1.5f64..=2.5);
            assert!((1.5..=2.5).contains(&z));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| r.random_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((0.22..0.28).contains(&frac), "p=0.25 estimate: {frac}");
    }

    #[test]
    fn mean_of_unit_draws_is_centered() {
        let mut r = StdRng::seed_from_u64(5);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((0.49..0.51).contains(&mean), "mean: {mean}");
    }
}
