//! Offline stand-in for `criterion`.
//!
//! Provides the entry points the workspace's benches use —
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros — backed by a simple wall-clock timer: each benchmark is
//! warmed up briefly, then timed over `sample_size` samples, and the
//! per-iteration median is printed. No statistical analysis, plots, or
//! baselines; good enough to spot order-of-magnitude regressions and to
//! keep `cargo bench` compiling and running offline.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion-style.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// The top-level harness handle.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 50,
        }
    }
}

impl Criterion {
    /// Accepted for CLI compatibility; arguments are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            sample_size,
        }
    }

    /// Benchmarks `f` directly, outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, self.default_sample_size, f);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, self.sample_size, f);
        self
    }

    /// Ends the group (a no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the closure of `bench_function`; call [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, collecting `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: aim for samples of at least ~1 ms so Instant
        // granularity doesn't dominate very fast routines.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                std_black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        self.iters_per_sample = iters;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                std_black_box(f());
            }
            self.samples.push(t.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {name}: no samples (iter was never called)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let per_iter = median.as_nanos() as f64 / b.iters_per_sample as f64;
    println!(
        "  {name}: median {:.1} ns/iter ({} samples x {} iters)",
        per_iter,
        b.samples.len(),
        b.iters_per_sample
    );
}

/// Defines a function running the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` to run the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.sample_size(2);
        let mut ran = 0u64;
        group.bench_function("counts", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        group.finish();
        assert!(ran > 0);
    }
}
