//! Offline stand-in for `serde`.
//!
//! The real serde is format-agnostic; the only format this workspace
//! uses is JSON via `serde_json`, so the stub collapses the data model
//! to a JSON [`Value`] tree: [`Serialize`] renders into a `Value`,
//! [`Deserialize`] reads back out of one, and the `serde_json` stub
//! handles text. The derive macros (re-exported from `serde_derive`)
//! generate these impls for named structs, newtype structs, and unit
//! enums — every shape the workspace derives.
//!
//! Numbers are kept in a three-way [`Number`] so `u64` values (seeds!)
//! round-trip exactly instead of being squeezed through `f64`.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A JSON number. `u64`/`i64` stay exact; everything else is `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A float (finite; non-finite floats serialize as `null`).
    F64(f64),
}

impl Number {
    /// The value as `f64` (lossy for huge integers, like serde_json).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U64(v) => v as f64,
            Number::I64(v) => v as f64,
            Number::F64(v) => v,
        }
    }
}

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion-ordered (struct field order).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// A short name of the value's JSON type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization failure: a human-readable message with
/// enough context to locate the offending field.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    /// An error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into a JSON [`Value`].
pub trait Serialize {
    /// The value tree this serializes to.
    fn to_value(&self) -> Value;
}

/// Reconstructs `Self` from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Parses the value tree, with descriptive errors on mismatch.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Looks up a struct field in an object and deserializes it. Used by the
/// derive-generated code; missing fields are an error (every writer in
/// this workspace emits all fields).
pub fn field<T: Deserialize>(obj: &[(String, Value)], key: &str, ty: &str) -> Result<T, Error> {
    let v = obj
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{key}` in {ty}")))?;
    T::from_value(v).map_err(|e| Error::custom(format!("field `{key}` of {ty}: {e}")))
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom(format!("expected bool, got {}", v.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::custom(format!("expected string, got {}", v.kind()))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Number(Number::F64(*self))
        } else {
            // JSON has no NaN/inf; serde_json writes null too.
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            _ => Err(Error::custom(format!("expected number, got {}", v.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::Number(Number::U64(n)) => *n,
                    Value::Number(Number::I64(n)) => u64::try_from(*n).map_err(|_| {
                        Error::custom(format!("negative value {n} for unsigned integer"))
                    })?,
                    Value::Number(Number::F64(f)) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    _ => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, got {}",
                            v.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 {
                    Value::Number(Number::I64(v))
                } else {
                    Value::Number(Number::U64(v as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw: i64 = match v {
                    Value::Number(Number::U64(n)) => i64::try_from(*n).map_err(|_| {
                        Error::custom(format!("{n} out of range for signed integer"))
                    })?,
                    Value::Number(Number::I64(n)) => *n,
                    Value::Number(Number::F64(f)) if f.fract() == 0.0 => *f as i64,
                    _ => {
                        return Err(Error::custom(format!(
                            "expected integer, got {}",
                            v.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom(format!("expected array, got {}", v.kind()))),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = match v {
                    Value::Array(items) => items,
                    _ => return Err(Error::custom(format!("expected array, got {}", v.kind()))),
                };
                let expect = [$($idx),+].len();
                if items.len() != expect {
                    return Err(Error::custom(format!(
                        "expected {expect}-tuple, got array of {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_values_round_trip_exactly() {
        let seed: u64 = u64::MAX - 12345;
        let v = seed.to_value();
        assert_eq!(u64::from_value(&v).unwrap(), seed);
    }

    #[test]
    fn option_null_round_trips() {
        let none: Option<f64> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<f64>::from_value(&(2.5f64).to_value()).unwrap(),
            Some(2.5)
        );
    }

    #[test]
    fn field_lookup_reports_missing_fields() {
        let obj = vec![("a".to_string(), 1u32.to_value())];
        assert_eq!(field::<u32>(&obj, "a", "T").unwrap(), 1);
        let err = field::<u32>(&obj, "b", "T").unwrap_err();
        assert!(err.to_string().contains("missing field `b`"));
    }

    #[test]
    fn type_mismatches_are_descriptive() {
        let err = f64::from_value(&Value::String("x".into())).unwrap_err();
        assert!(err.to_string().contains("expected number"));
        let err = u32::from_value(&Value::Number(Number::I64(-1))).unwrap_err();
        assert!(err.to_string().contains("negative"));
    }
}
