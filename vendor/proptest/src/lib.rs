//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//! header), range strategies over integers and floats, tuple strategies,
//! [`Strategy::prop_map`], `prop::collection::vec`, and the
//! `prop_assert*` macros.
//!
//! Semantics differ from the real crate in two deliberate ways:
//!
//! * **No shrinking.** A failing case panics with the sampled inputs in
//!   the message; reproduce it by reading them off the panic.
//! * **Deterministic by default.** Cases are drawn from a fixed-seed
//!   [`rand::rngs::StdRng`] stream, so a failure always reproduces —
//!   matching this repository's no-unseeded-RNG invariant. The first
//!   samples of every numeric range are its endpoints, so boundary
//!   values are always exercised.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

pub mod prelude {
    //! Everything a `use proptest::prelude::*` caller expects.
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError, TestRunner,
    };
}

/// Test-case failure: carries the formatted assertion message.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-block configuration; only `cases` is meaningful here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; simulation-heavy suites override this
        // downward with `with_cases`.
        ProptestConfig { cases: 256 }
    }
}

/// The sampling engine handed to strategies: a seeded [`StdRng`] plus
/// the case index (so strategies can pin early cases to boundaries).
pub struct TestRunner {
    rng: StdRng,
    case: u32,
}

impl TestRunner {
    /// A runner for case `case` of the test named `name`. Seeded from
    /// the test name so distinct tests draw distinct streams, but every
    /// run of the same binary draws the same ones.
    pub fn new(name: &str, case: u32) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the name
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        TestRunner {
            rng: StdRng::seed_from_u64(seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            case,
        }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// The zero-based case index.
    pub fn case(&self) -> u32 {
        self.case
    }
}

/// A source of values for one test argument.
pub trait Strategy {
    /// The value type produced.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<U: std::fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: std::fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, runner: &mut TestRunner) -> U {
        (self.f)(self.inner.sample(runner))
    }
}

/// A strategy producing a single fixed value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                // Case 0 pins the lower bound, case 1 the top value, so
                // boundaries are always exercised.
                match runner.case() {
                    0 => self.start,
                    1 => self.end - 1,
                    _ => runner.rng().random_range(self.clone()),
                }
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                match runner.case() {
                    0 => *self.start(),
                    1 => *self.end(),
                    _ => runner.rng().random_range(self.clone()),
                }
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, runner: &mut TestRunner) -> f64 {
        match runner.case() {
            0 => self.start,
            // Just inside the open upper bound.
            1 => self.start + (self.end - self.start) * (1.0 - 1e-12),
            _ => runner.rng().random_range(self.clone()),
        }
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, runner: &mut TestRunner) -> f64 {
        match runner.case() {
            0 => *self.start(),
            1 => *self.end(),
            _ => runner.rng().random_range(self.clone()),
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(runner),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

pub mod prop {
    //! The `prop::` namespace (`prop::collection::vec`).

    pub mod collection {
        //! Collection strategies.
        use crate::{Strategy, TestRunner};
        use rand::RngExt;

        /// A strategy for `Vec`s with lengths drawn from `len` and
        /// elements from `element`.
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        /// The strategy returned by [`vec()`].
        pub struct VecStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, runner: &mut TestRunner) -> Vec<S::Value> {
                let n = match runner.case() {
                    0 => self.len.start,
                    1 => self.len.end - 1,
                    _ => runner.rng().random_range(self.len.clone()),
                };
                (0..n).map(|_| self.element.sample(runner)).collect()
            }
        }
    }
}

/// Asserts a condition inside a `proptest!` body; on failure the case
/// aborts with the formatted message (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// The test-defining macro. Accepts an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn name(arg
/// in strategy, ...) { body }` items, exactly like the real crate.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut runner = $crate::TestRunner::new(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $arg = $crate::Strategy::sample(&$strat, &mut runner);
                    )+
                    let dbg_args = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {case} of {} failed: {e}\n  inputs: {}",
                            stringify!($name), dbg_args,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_pin_boundaries_then_sample_inside() {
        let strat = 10u32..20;
        let mut r0 = TestRunner::new("t", 0);
        let mut r1 = TestRunner::new("t", 1);
        assert_eq!(Strategy::sample(&strat, &mut r0), 10);
        assert_eq!(Strategy::sample(&strat, &mut r1), 19);
        for case in 2..50 {
            let mut r = TestRunner::new("t", case);
            let v = Strategy::sample(&strat, &mut r);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_test_name_and_case() {
        let strat = 0.0f64..1.0;
        let a = Strategy::sample(&strat, &mut TestRunner::new("x", 5));
        let b = Strategy::sample(&strat, &mut TestRunner::new("x", 5));
        let c = Strategy::sample(&strat, &mut TestRunner::new("y", 5));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let strat = (1u32..5, 0.0f64..1.0).prop_map(|(n, f)| n as f64 + f);
        let mut r = TestRunner::new("z", 7);
        let v = Strategy::sample(&strat, &mut r);
        assert!((1.0..5.0).contains(&v));
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let strat = crate::prop::collection::vec(0.0f64..1.0, 3..9);
        for case in 0..20 {
            let mut r = TestRunner::new("v", case);
            let v = Strategy::sample(&strat, &mut r);
            assert!((3..9).contains(&v.len()), "len {}", v.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_runs(x in 1u64..100, f in 0.25f64..0.75) {
            prop_assert!((1..100).contains(&x));
            prop_assert!((0.25..0.75).contains(&f) || (f - 0.75).abs() < 1e-9);
            prop_assert_ne!(x, 0);
            prop_assert_eq!(x, x);
        }
    }
}
