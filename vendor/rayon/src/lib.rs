//! Offline stand-in for `rayon`.
//!
//! Implements the one pattern this workspace uses —
//! `slice.par_iter().map(f).collect::<Vec<_>>()` — with plain
//! `std::thread::scope` fan-out: the slice is split into one contiguous
//! chunk per available core, each chunk is mapped on its own thread, and
//! results are reassembled in input order. On a single-core machine it
//! degenerates to a sequential map with no thread spawns.
//!
//! Order preservation matters here: `testbed::generate` sorts its output
//! anyway, but keeping input order makes the stub a drop-in for the real
//! crate's deterministic `collect`.

use std::num::NonZeroUsize;

pub mod prelude {
    //! The traits a `use rayon::prelude::*` caller expects.
    pub use crate::IntoParallelRefIterator;
}

/// `par_iter()` over `&self`, mirroring rayon's trait of the same name.
pub trait IntoParallelRefIterator<'a> {
    /// The element type.
    type Item: 'a;
    /// Converts to a parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

/// A borrowed parallel iterator; only `map` is provided.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each element through `f` in parallel.
    pub fn map<F, U>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> U + Sync,
        U: Send,
    {
        ParMap {
            slice: self.slice,
            f,
        }
    }
}

/// The result of [`ParIter::map`]; terminal operation is `collect`.
pub struct ParMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Evaluates the map across threads and collects the results in
    /// input order.
    pub fn collect<U, C>(self) -> C
    where
        F: Fn(&'a T) -> U + Sync,
        U: Send,
        C: FromIterator<U>,
    {
        let threads = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
            .min(self.slice.len().max(1));
        if threads <= 1 {
            return self.slice.iter().map(&self.f).collect();
        }
        let chunk_len = self.slice.len().div_ceil(threads);
        let f = &self.f;
        let mut chunks: Vec<Vec<U>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .slice
                .chunks(chunk_len)
                .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<U>>()))
                .collect();
            chunks = handles.into_iter().map(|h| h.join().unwrap()).collect();
        });
        chunks.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_input_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs_work() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
