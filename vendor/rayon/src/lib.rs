//! Offline stand-in for `rayon`.
//!
//! Implements the one pattern this workspace uses —
//! `slice.par_iter().map(f).collect::<Vec<_>>()` — with plain
//! `std::thread::scope` fan-out. Jobs are handed out *dynamically*: the
//! workers pull indices from a shared atomic cursor, so a run of slow
//! jobs (all traces of a lossy path, say) spreads across cores instead
//! of landing in one worker's contiguous chunk and dominating the wall
//! clock. Results are reassembled in input order regardless of which
//! worker ran what. On a single-core machine the whole thing
//! degenerates to a sequential map with no thread spawns.
//!
//! Order preservation matters here: `testbed::generate` sorts its output
//! anyway, but keeping input order makes the stub a drop-in for the real
//! crate's deterministic `collect`.
//!
//! A worker panic is propagated to the caller via
//! [`std::panic::resume_unwind`], preserving the original payload (a
//! panicking trace names its path and index instead of `Any { .. }`).

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude {
    //! The traits a `use rayon::prelude::*` caller expects.
    pub use crate::IntoParallelRefIterator;
}

/// Upper bound on a `RAYON_NUM_THREADS` override. The stub spawns one
/// OS thread per worker with no pooling, so honoring an absurd value
/// (`RAYON_NUM_THREADS=1000000`) would attempt that many `spawn`s and
/// abort on resource exhaustion; the real crate clamps similarly.
/// Values above this fall back to the detected core count.
const MAX_THREADS: usize = 256;

/// Parses a `RAYON_NUM_THREADS` value: a positive integer no larger
/// than [`MAX_THREADS`], with surrounding whitespace tolerated. `None`
/// (fall back to the core count) for `0`, non-numeric input, and
/// absurdly large values.
fn threads_from_env(raw: &str) -> Option<usize> {
    raw.trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| (1..=MAX_THREADS).contains(&n))
}

std::thread_local! {
    /// Per-thread worker-count override (0 = unset). A thread-local
    /// rather than `std::env::set_var` because mutating the environment
    /// is unsafe and racy across test threads (see the env-parser test
    /// below); the override only affects `collect`s issued from the
    /// thread that set it, which is exactly the calling-thread semantics
    /// the workspace needs.
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Overrides the worker count for parallel operations issued from the
/// *calling thread*: `n = 0` clears the override, any other value is
/// clamped to `1..=MAX_THREADS`. Takes precedence over
/// `RAYON_NUM_THREADS` and the detected core count. Unlike the real
/// crate (where the global pool size is fixed at init), the stub builds
/// its fan-out per `collect`, so this can be flipped at any time.
pub fn set_num_threads(n: usize) {
    THREAD_OVERRIDE.with(|c| c.set(n.min(MAX_THREADS)));
}

/// Runs `f` with the calling thread's worker count pinned to `n`
/// (clamped to `1..=MAX_THREADS`), restoring the previous override —
/// even on panic — afterwards. The scoped form tests use to exercise
/// specific worker counts without touching the process environment.
pub fn with_num_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.with(|c| c.replace(n.clamp(1, MAX_THREADS))));
    f()
}

/// Number of worker threads `collect` will use, mirroring the real
/// crate's global-pool accessor of the same name: a calling-thread
/// [`set_num_threads`]/[`with_num_threads`] override when active, else
/// the `RAYON_NUM_THREADS` environment variable when set to a sane
/// positive integer (a value in `1..=MAX_THREADS`; anything else —
/// zero, garbage, absurdly large — is ignored), the detected core count
/// otherwise.
pub fn current_num_threads() -> usize {
    let override_n = THREAD_OVERRIDE.with(Cell::get);
    if override_n != 0 {
        return override_n;
    }
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| threads_from_env(&s))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// `par_iter()` over `&self`, mirroring rayon's trait of the same name.
pub trait IntoParallelRefIterator<'a> {
    /// The element type.
    type Item: 'a;
    /// Converts to a parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

/// A borrowed parallel iterator; only `map` is provided.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each element through `f` in parallel.
    pub fn map<F, U>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> U + Sync,
        U: Send,
    {
        ParMap {
            slice: self.slice,
            f,
        }
    }
}

/// The result of [`ParIter::map`]; terminal operation is `collect`.
pub struct ParMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Evaluates the map across threads and collects the results in
    /// input order.
    ///
    /// # Panics
    ///
    /// Re-raises (via [`std::panic::resume_unwind`]) the first worker
    /// panic observed, with its original payload.
    pub fn collect<U, C>(self) -> C
    where
        F: Fn(&'a T) -> U + Sync,
        U: Send,
        C: FromIterator<U>,
    {
        let threads = current_num_threads().min(self.slice.len().max(1));
        self.collect_with_threads(threads)
    }

    /// `collect` with an explicit worker count (tests pin this to
    /// exercise the multi-threaded path on any machine).
    fn collect_with_threads<U, C>(self, threads: usize) -> C
    where
        F: Fn(&'a T) -> U + Sync,
        U: Send,
        C: FromIterator<U>,
    {
        if threads <= 1 {
            return self.slice.iter().map(&self.f).collect();
        }
        let n = self.slice.len();
        let f = &self.f;
        let slice = self.slice;
        // Dynamic job pull: each worker claims the next unclaimed index
        // until the cursor passes the end. Tagging results with their
        // index lets any worker run any job while `collect` still
        // returns them in input order.
        let cursor = AtomicUsize::new(0);
        let mut tagged: Vec<(usize, U)> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut part: Vec<(usize, U)> = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            part.push((i, f(&slice[i])));
                        }
                        part
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(part) => tagged.extend(part),
                    // Propagate the worker's own payload: the panic a
                    // caller sees names the failing job, not Any{..}.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        tagged.sort_unstable_by_key(|&(i, _)| i);
        debug_assert!(tagged.iter().enumerate().all(|(k, &(i, _))| k == i));
        tagged.into_iter().map(|(_, v)| v).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_input_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn dynamic_scheduling_preserves_order_across_many_workers() {
        // Pin a worker count well above the core count and give early
        // indices the longest work, so job completion order inverts
        // submission order — collect must still return input order.
        let xs: Vec<u64> = (0..257).collect();
        let out: Vec<u64> = xs
            .par_iter()
            .map(|&x| {
                if x < 8 {
                    std::thread::sleep(std::time::Duration::from_millis(20 - 2 * x));
                }
                x * x
            })
            .collect_with_threads(8);
        assert_eq!(out, (0..257).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs_work() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn worker_panic_payload_reaches_the_caller() {
        let xs: Vec<u32> = (0..64).collect();
        let caught = std::panic::catch_unwind(|| {
            let _: Vec<u32> = xs
                .par_iter()
                .map(|&x| {
                    assert!(x != 13, "job 13 exploded");
                    x
                })
                .collect_with_threads(4);
        });
        let payload = caught.expect_err("a worker panicked");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("job 13 exploded"),
            "payload must survive the join: {msg:?}"
        );
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn thread_local_override_wins_and_restores() {
        use super::{current_num_threads, with_num_threads, MAX_THREADS};
        let ambient = current_num_threads();
        let inside = with_num_threads(3, current_num_threads);
        assert_eq!(inside, 3, "override wins over env and core count");
        assert_eq!(current_num_threads(), ambient, "override restored");
        // Nested scopes restore to the enclosing override, not ambient.
        let (outer, inner) = with_num_threads(2, || {
            let inner = with_num_threads(5, current_num_threads);
            (current_num_threads(), inner)
        });
        assert_eq!((outer, inner), (2, 5));
        // Absurd values clamp instead of exhausting OS threads.
        assert_eq!(
            with_num_threads(1_000_000, current_num_threads),
            MAX_THREADS
        );
    }

    #[test]
    fn set_num_threads_zero_clears_the_override() {
        use super::{current_num_threads, set_num_threads};
        // Run on a dedicated thread: the override is thread-local, so
        // this cannot race the other tests' ambient readings.
        std::thread::spawn(|| {
            let ambient = current_num_threads();
            set_num_threads(4);
            assert_eq!(current_num_threads(), 4);
            set_num_threads(0);
            assert_eq!(current_num_threads(), ambient);
        })
        .join()
        .expect("override thread");
    }

    #[test]
    fn override_drives_the_worker_count_of_collect() {
        // 257 jobs with an 8-worker override: same shape as the
        // env-driven test above, but via the thread-local override.
        let xs: Vec<u64> = (0..257).collect();
        let out: Vec<u64> = super::with_num_threads(8, || xs.par_iter().map(|&x| x * 3).collect());
        assert_eq!(out, (0..257).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn env_override_accepts_sane_values_only() {
        // Pure-function tests: `std::env::set_var` is unsafe (and racy
        // across test threads), so the parser is tested directly and
        // `current_num_threads` only via whatever the ambient env is.
        use super::{threads_from_env, MAX_THREADS};
        assert_eq!(threads_from_env("4"), Some(4));
        assert_eq!(threads_from_env("1"), Some(1));
        assert_eq!(threads_from_env(" 8 "), Some(8), "whitespace tolerated");
        assert_eq!(
            threads_from_env(&MAX_THREADS.to_string()),
            Some(MAX_THREADS)
        );
        // Fallback cases: zero workers, garbage, and absurd values must
        // all yield None (→ detected core count), never a panic.
        assert_eq!(threads_from_env("0"), None);
        assert_eq!(threads_from_env(""), None);
        assert_eq!(threads_from_env("abc"), None);
        assert_eq!(threads_from_env("-2"), None);
        assert_eq!(threads_from_env("3.5"), None);
        assert_eq!(threads_from_env(&(MAX_THREADS + 1).to_string()), None);
        assert_eq!(threads_from_env("1000000"), None);
        assert_eq!(
            threads_from_env("99999999999999999999999999"),
            None,
            "overflow"
        );
    }

    /// Not a correctness test — a manual A/B of scheduling policy. Run
    /// with `cargo test -p rayon --release -- --ignored --nocapture`:
    /// prints wall clock for static contiguous chunks vs the dynamic
    /// pull above on a deliberately imbalanced (sleep-based) job mix.
    #[test]
    #[ignore = "timing demo, run manually"]
    fn imbalanced_sleep_jobs_demo() {
        use std::time::{Duration, Instant};
        const THREADS: usize = 4;
        // 16 jobs; the first 4 are 8x slower than the rest — the shape
        // of a slow lossy path's traces landing consecutively.
        let cost = |i: usize| Duration::from_millis(if i < 4 { 160 } else { 20 });
        let jobs: Vec<usize> = (0..16).collect();

        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for chunk in jobs.chunks(jobs.len().div_ceil(THREADS)) {
                scope.spawn(move || {
                    for &i in chunk {
                        std::thread::sleep(cost(i));
                    }
                });
            }
        });
        let static_wall = t0.elapsed();

        let t0 = Instant::now();
        let _: Vec<usize> = jobs
            .par_iter()
            .map(|&i| {
                std::thread::sleep(cost(i));
                i
            })
            .collect_with_threads(THREADS);
        let dynamic_wall = t0.elapsed();

        println!("static chunks: {static_wall:?}  dynamic pull: {dynamic_wall:?}");
        assert!(dynamic_wall < static_wall, "dynamic must beat static here");
    }
}
