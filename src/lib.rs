//! # tcp-throughput-predictability
//!
//! A from-scratch Rust reproduction of He, Dovrolis, Ammar,
//! *On the predictability of large transfer TCP throughput*
//! (SIGCOMM 2005; extended version in Computer Networks 51, 2007).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`core`] ([`tputpred_core`]) — the paper's contribution: formula-based
//!   (FB) predictors built on TCP throughput models (Mathis, PFTK, revised
//!   PFTK) and history-based (HB) predictors (Moving Average, EWMA,
//!   Holt-Winters) with the paper's level-shift/outlier (LSO) heuristics,
//!   plus the error metrics (relative error `E`, RMSRE, segment-weighted
//!   CoV).
//! * [`netsim`] ([`tputpred_netsim`]) — a deterministic packet-level
//!   discrete-event network simulator (the RON-testbed substitute).
//! * [`tcp`] ([`tputpred_tcp`]) — packet-level TCP Reno on the simulator.
//! * [`probes`] ([`tputpred_probes`]) — ping, pathload-style avail-bw
//!   estimation, and IPerf-style bulk transfers.
//! * [`testbed`] ([`tputpred_testbed`]) — the synthetic RON: path catalog,
//!   measurement epochs, trace datasets, presets.
//! * [`stats`] ([`tputpred_stats`]) — empirical CDFs, quantiles,
//!   correlations, and the text rendering used by the figure binaries.
//!
//! ## Quick start
//!
//! ```
//! use tcp_throughput_predictability::core::fb::{FbPredictor, PathEstimates};
//! use tcp_throughput_predictability::core::hb::{HoltWinters, Predictor};
//! use tcp_throughput_predictability::core::lso::Lso;
//!
//! // Formula-based: predict from a-priori path measurements (Eq. 3).
//! let est = PathEstimates {
//!     rtt: 0.080,             // 80 ms measured with ping before the flow
//!     loss_rate: 0.01,        // 1% ping loss before the flow
//!     avail_bw: 20e6,         // pathload estimate, bits/s
//! };
//! let fb = FbPredictor::default();
//! let r_hat = fb.predict(&est);
//! assert!(r_hat > 0.0);
//!
//! // History-based: Holt-Winters with level-shift/outlier detection.
//! let mut hb = Lso::new(HoltWinters::new(0.8, 0.2));
//! for r in [10e6, 11e6, 9.5e6, 10.2e6] {
//!     hb.update(r);
//! }
//! let next = hb.forecast().unwrap();
//! assert!(next > 8e6 && next < 12e6);
//! ```
//!
//! See `examples/` for realistic end-to-end scenarios (overlay route
//! selection, parallel downloads, grid transfer scheduling) and
//! `crates/bench/src/bin/` for the binaries that regenerate every figure of
//! the paper's evaluation.

pub use tputpred_core as core;
pub use tputpred_netsim as netsim;
pub use tputpred_probes as probes;
pub use tputpred_stats as stats;
pub use tputpred_tcp as tcp;
pub use tputpred_testbed as testbed;
