//! Port-equivalence pin for the unified-predictor refactor: driving the
//! ported families (FB, smoothed FB, MA, EWMA, HW, their LSO wrappers)
//! through the new epoch protocol ([`evaluate_epochs`]) must reproduce
//! the legacy per-series evaluation ([`evaluate`]) and the legacy
//! inherent FB arithmetic **bit for bit** on a real generated dataset.
//!
//! The committed `results/*.txt` files are the quick-preset half of this
//! guarantee (regeneration is byte-identical); this test pins the same
//! equivalence in-process on a small deterministic preset so it runs in
//! `cargo test` without the cached dataset.

use tputpred_bench::{a_priori, epoch_observations, fb_config};
use tputpred_core::catalog::BoxedPredictor;
use tputpred_core::fb::FbPredictor;
use tputpred_core::hb::{Ewma, HoltWinters, MovingAverage};
use tputpred_core::lso::Lso;
use tputpred_core::metrics::{evaluate, evaluate_epochs};
use tputpred_netsim::Time;
use tputpred_testbed::{generate, Dataset, FaultConfig, Preset, RegimeConfig};

/// Small fault-free preset: 3 paths x 1 trace x 8 epochs, enough for
/// MA/HW warm-up and an LSO window, fast enough for the test profile.
fn pin_preset() -> Preset {
    Preset {
        name: "port-pin".into(),
        paths: 3,
        traces_per_path: 1,
        epochs_per_trace: 8,
        pathload_slot: Time::from_secs(6),
        pre_ping: Time::from_secs(5),
        transfer: Time::from_secs(4),
        epoch_gap: Time::from_secs(2),
        w_large: 1 << 20,
        w_small: 20 * 1024,
        with_small_window: false,
        ping_interval: Time::from_millis(100),
        seed: 99,
        faults: FaultConfig::none(),
        regimes: RegimeConfig::none(),
    }
}

fn dataset() -> Dataset {
    generate(&pin_preset())
}

/// The series-only families, evaluated the legacy way (throughput series
/// in, [`evaluate`]) and the new way (full epochs in,
/// [`evaluate_epochs`]), must agree exactly: same forecasts, same
/// errors, same event positions relative to their own input.
#[test]
fn series_families_match_legacy_evaluate_bit_for_bit() {
    let ds = dataset();
    type Family = (&'static str, fn() -> BoxedPredictor);
    let makes: Vec<Family> = vec![
        ("1-MA", || Box::new(MovingAverage::new(1))),
        ("10-MA", || Box::new(MovingAverage::new(10))),
        ("0.8-EWMA", || Box::new(Ewma::new(0.8))),
        ("0.8-HW", || Box::new(HoltWinters::new(0.8, 0.2))),
        ("10-MA-LSO", || Box::new(Lso::new(MovingAverage::new(10)))),
        ("0.8-HW-LSO", || {
            Box::new(Lso::new(HoltWinters::new(0.8, 0.2)))
        }),
    ];
    let mut traces = 0;
    for path in &ds.paths {
        for trace in &path.traces {
            traces += 1;
            let series = trace.throughput_series();
            let epochs = epoch_observations(trace);
            // Fault-free preset: every epoch carries a throughput, so
            // the two inputs describe the same transfers.
            assert_eq!(series.len(), epochs.len());
            for (name, make) in &makes {
                let mut legacy = make();
                let mut ported = make();
                let l = evaluate(&mut legacy, &series);
                let p = evaluate_epochs(&mut ported, &epochs);
                assert_eq!(l.predictions, p.predictions, "{name}: forecasts");
                assert_eq!(l.errors, p.errors, "{name}: errors");
                assert_eq!(l.rmsre(), p.rmsre(), "{name}: rmsre");
                assert_eq!(l.outliers, p.outliers, "{name}: outliers");
                assert_eq!(l.level_shifts, p.level_shifts, "{name}: shifts");
            }
        }
    }
    assert_eq!(traces, 3, "preset shape drifted");
}

/// FB through the trait protocol reproduces the legacy inherent
/// `predict(&PathEstimates)` value on every complete epoch.
#[test]
fn fb_trait_protocol_matches_inherent_predict() {
    let ds = dataset();
    let cfg = fb_config(&ds.preset);
    let fb = FbPredictor::new(cfg);
    let mut checked = 0;
    for path in &ds.paths {
        for trace in &path.traces {
            let epochs = epoch_observations(trace);
            let mut ported = FbPredictor::new(cfg);
            let result = evaluate_epochs(&mut ported, &epochs);
            for (rec, pred) in trace
                .records
                .iter()
                .filter_map(|r| r.complete())
                .zip(&result.predictions)
            {
                assert_eq!(*pred, Some(fb.predict(&a_priori(&rec))));
                checked += 1;
            }
        }
    }
    assert_eq!(checked, 24, "3 paths x 8 epochs, all complete");
}
