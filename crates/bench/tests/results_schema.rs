//! Staleness guard for the committed CSV exports: `results/epochs_*.csv`
//! must match the schema `export_csv` writes today
//! ([`tputpred_bench::EPOCH_CSV_COLUMNS`]). The committed file went
//! stale once before (PR 2); this fails the build instead of leaving it
//! to review.

use std::fs;
use std::path::{Path, PathBuf};

use tputpred_bench::EPOCH_CSV_COLUMNS;

fn results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Every committed epoch CSV, by file name. At least `epochs_quick.csv`
/// must exist — a silently empty glob would make the guard vacuous.
fn committed_epoch_csvs() -> Vec<PathBuf> {
    let dir = results_dir();
    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("results dir {}: {e}", dir.display()))
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("epochs_") && n.ends_with(".csv"))
        })
        .collect();
    files.sort();
    assert!(
        !files.is_empty(),
        "no epochs_*.csv committed under {} — the schema guard has nothing to check",
        dir.display()
    );
    files
}

#[test]
fn committed_epoch_csvs_match_the_export_schema() {
    for file in committed_epoch_csvs() {
        let text =
            fs::read_to_string(&file).unwrap_or_else(|e| panic!("reading {}: {e}", file.display()));
        let mut lines = text.lines();
        let header = lines.next().unwrap_or_default();
        assert_eq!(
            header,
            EPOCH_CSV_COLUMNS.join(","),
            "{}: header drifted from export_csv's schema — regenerate with \
             `cargo run --release -p tputpred-bench --bin export_csv`",
            file.display()
        );
        let status_col = EPOCH_CSV_COLUMNS
            .iter()
            .position(|&c| c == "status")
            .expect("schema declares a status column");

        for (i, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            assert_eq!(
                fields.len(),
                EPOCH_CSV_COLUMNS.len(),
                "{} row {}: {} fields for {} columns",
                file.display(),
                i + 2,
                fields.len(),
                EPOCH_CSV_COLUMNS.len()
            );
            let status = fields[status_col];
            assert!(
                matches!(status, "Ok" | "Degraded" | "Missing"),
                "{} row {}: unknown status '{}'",
                file.display(),
                i + 2,
                status
            );
        }
    }
}
