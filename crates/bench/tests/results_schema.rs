//! Staleness guard for the committed CSV exports: `results/epochs_*.csv`
//! must match the schema `export_csv` writes today
//! ([`tputpred_bench::EPOCH_CSV_COLUMNS`]), `results/league_*.csv` the
//! schema `fig24_league_table` writes
//! ([`tputpred_bench::LEAGUE_CSV_COLUMNS`]), and
//! `results/resilience_*.csv` the schema `fig25_resilience` writes
//! ([`tputpred_bench::RESILIENCE_CSV_COLUMNS`]). The committed file
//! went stale once before (PR 2); this fails the build instead of
//! leaving it to review.

use std::fs;
use std::path::{Path, PathBuf};

use tputpred_bench::{EPOCH_CSV_COLUMNS, LEAGUE_CSV_COLUMNS, RESILIENCE_CSV_COLUMNS};

fn results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Every committed epoch CSV, by file name. At least `epochs_quick.csv`
/// must exist — a silently empty glob would make the guard vacuous.
fn committed_epoch_csvs() -> Vec<PathBuf> {
    let dir = results_dir();
    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("results dir {}: {e}", dir.display()))
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("epochs_") && n.ends_with(".csv"))
        })
        .collect();
    files.sort();
    assert!(
        !files.is_empty(),
        "no epochs_*.csv committed under {} — the schema guard has nothing to check",
        dir.display()
    );
    files
}

#[test]
fn committed_epoch_csvs_match_the_export_schema() {
    for file in committed_epoch_csvs() {
        let text =
            fs::read_to_string(&file).unwrap_or_else(|e| panic!("reading {}: {e}", file.display()));
        let mut lines = text.lines();
        let header = lines.next().unwrap_or_default();
        assert_eq!(
            header,
            EPOCH_CSV_COLUMNS.join(","),
            "{}: header drifted from export_csv's schema — regenerate with \
             `cargo run --release -p tputpred-bench --bin export_csv`",
            file.display()
        );
        let status_col = EPOCH_CSV_COLUMNS
            .iter()
            .position(|&c| c == "status")
            .expect("schema declares a status column");

        for (i, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            assert_eq!(
                fields.len(),
                EPOCH_CSV_COLUMNS.len(),
                "{} row {}: {} fields for {} columns",
                file.display(),
                i + 2,
                fields.len(),
                EPOCH_CSV_COLUMNS.len()
            );
            let status = fields[status_col];
            assert!(
                matches!(status, "Ok" | "Degraded" | "Missing"),
                "{} row {}: unknown status '{}'",
                file.display(),
                i + 2,
                status
            );
        }
    }
}

/// Every committed league CSV, by file name. At least `league_quick.csv`
/// must exist once `fig24_league_table` ships its output.
fn committed_league_csvs() -> Vec<PathBuf> {
    let dir = results_dir();
    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("results dir {}: {e}", dir.display()))
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("league_") && n.ends_with(".csv"))
        })
        .collect();
    files.sort();
    assert!(
        !files.is_empty(),
        "no league_*.csv committed under {} — regenerate with \
         `cargo run --release -p tputpred-bench --bin fig24_league_table`",
        dir.display()
    );
    files
}

#[test]
fn committed_league_csvs_match_the_fig24_schema() {
    let predictor_col = LEAGUE_CSV_COLUMNS
        .iter()
        .position(|&c| c == "predictor")
        .expect("schema declares a predictor column");
    let known: Vec<&str> = tputpred_core::catalog::predictor_catalog()
        .iter()
        .map(|e| e.name)
        .collect();
    for file in committed_league_csvs() {
        let text =
            fs::read_to_string(&file).unwrap_or_else(|e| panic!("reading {}: {e}", file.display()));
        let mut lines = text.lines();
        let header = lines.next().unwrap_or_default();
        assert_eq!(
            header,
            LEAGUE_CSV_COLUMNS.join(","),
            "{}: header drifted from fig24_league_table's schema — regenerate with \
             `cargo run --release -p tputpred-bench --bin fig24_league_table`",
            file.display()
        );
        let mut rows = 0;
        for (i, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            rows += 1;
            let fields: Vec<&str> = line.split(',').collect();
            assert_eq!(
                fields.len(),
                LEAGUE_CSV_COLUMNS.len(),
                "{} row {}: {} fields for {} columns",
                file.display(),
                i + 2,
                fields.len(),
                LEAGUE_CSV_COLUMNS.len()
            );
            assert!(
                known.contains(&fields[predictor_col]),
                "{} row {}: predictor '{}' is not in the registry",
                file.display(),
                i + 2,
                fields[predictor_col]
            );
        }
        // Every registry family appears (at least its 'all' row).
        for name in &known {
            assert!(
                text.lines()
                    .skip(1)
                    .any(|l| l.starts_with(&format!("{name},"))),
                "{}: registry predictor '{}' missing from the table — stale file?",
                file.display(),
                name
            );
        }
        assert!(
            rows >= known.len(),
            "{}: suspiciously few rows",
            file.display()
        );
    }
}

/// Every committed resilience CSV, by file name. At least
/// `resilience_quick.csv` must exist once `fig25_resilience` ships its
/// output.
fn committed_resilience_csvs() -> Vec<PathBuf> {
    let dir = results_dir();
    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("results dir {}: {e}", dir.display()))
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("resilience_") && n.ends_with(".csv"))
        })
        .collect();
    files.sort();
    assert!(
        !files.is_empty(),
        "no resilience_*.csv committed under {} — regenerate with \
         `cargo run --release -p tputpred-bench --bin fig25_resilience`",
        dir.display()
    );
    files
}

#[test]
fn committed_resilience_csvs_match_the_fig25_schema() {
    let col = |name: &str| {
        RESILIENCE_CSV_COLUMNS
            .iter()
            .position(|&c| c == name)
            .unwrap_or_else(|| panic!("schema declares a {name} column"))
    };
    let predictor_col = col("predictor");
    let regime_col = col("regime");
    let availability_col = col("availability");
    let known: Vec<&str> = tputpred_core::catalog::predictor_catalog()
        .iter()
        .map(|e| e.name)
        .collect();
    for file in committed_resilience_csvs() {
        let text =
            fs::read_to_string(&file).unwrap_or_else(|e| panic!("reading {}: {e}", file.display()));
        let mut lines = text.lines();
        let header = lines.next().unwrap_or_default();
        assert_eq!(
            header,
            RESILIENCE_CSV_COLUMNS.join(","),
            "{}: header drifted from fig25_resilience's schema — regenerate with \
             `cargo run --release -p tputpred-bench --bin fig25_resilience`",
            file.display()
        );
        for (i, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            assert_eq!(
                fields.len(),
                RESILIENCE_CSV_COLUMNS.len(),
                "{} row {}: {} fields for {} columns",
                file.display(),
                i + 2,
                fields.len(),
                RESILIENCE_CSV_COLUMNS.len()
            );
            assert!(
                known.contains(&fields[predictor_col]),
                "{} row {}: predictor '{}' is not in the registry",
                file.display(),
                i + 2,
                fields[predictor_col]
            );
            assert!(
                matches!(fields[regime_col], "all" | "healthy" | "degraded" | "down"),
                "{} row {}: unknown regime '{}'",
                file.display(),
                i + 2,
                fields[regime_col]
            );
            let availability: f64 = fields[availability_col].parse().unwrap_or(f64::NAN);
            assert!(
                (0.0..=1.0).contains(&availability),
                "{} row {}: availability {} outside [0, 1]",
                file.display(),
                i + 2,
                fields[availability_col]
            );
        }
        // Every registry family appears, and its pooled 'all' row too.
        for name in &known {
            assert!(
                text.lines()
                    .skip(1)
                    .any(|l| l.starts_with(&format!("{name},all,"))),
                "{}: registry predictor '{}' has no 'all' row — stale file?",
                file.display(),
                name
            );
        }
    }
}
