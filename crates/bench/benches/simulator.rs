//! Simulator throughput benchmarks: how much simulated traffic one CPU
//! second buys. The dataset generator's cost is (events/sec)⁻¹ × the
//! campaign's event count, so this is the number that decides whether
//! the `paper` preset is an overnight run or a coffee break.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tputpred_netsim::link::LinkConfig;
use tputpred_netsim::sources::{PoissonSource, Sink, SourceConfig};
use tputpred_netsim::{RateSchedule, Route, Simulator, Time};
use tputpred_tcp::{connect, TcpConfig};

/// One second of a 10 Mbps dumbbell with a saturating TCP flow.
fn tcp_second() -> u64 {
    let mut sim = Simulator::new(1);
    let fwd = sim.add_link(LinkConfig::new(10e6, Time::from_millis(20), 40));
    let rev = sim.add_link(LinkConfig::new(1e9, Time::from_millis(20), 1000));
    let (_, _, stats) = connect(
        &mut sim,
        TcpConfig::default(),
        Route::direct(fwd),
        Route::direct(rev),
        Time::ZERO,
        Time::from_secs(1),
    );
    sim.run_until(Time::from_secs(1));
    black_box(stats.borrow().bytes_delivered);
    sim.events_processed()
}

/// One second of 10 Mbps Poisson cross traffic alone.
fn poisson_second() -> u64 {
    let mut sim = Simulator::new(2);
    let fwd = sim.add_link(LinkConfig::new(20e6, Time::from_millis(20), 100));
    let (sink, rx) = Sink::new();
    let sink_id = sim.add_endpoint(Box::new(sink));
    let (src, _) = PoissonSource::new(SourceConfig {
        route: Route::direct(fwd),
        dst: sink_id,
        packet_size: 1000,
        base_rate_bps: 10e6,
        schedule: RateSchedule::constant(1.0),
        stop: Time::from_secs(1),
    });
    let id = sim.add_endpoint(Box::new(src));
    sim.schedule_timer(id, 0, Time::ZERO);
    sim.run_until(Time::from_secs(1));
    black_box(rx.borrow().packets);
    sim.events_processed()
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(20);
    group.bench_function("tcp_dumbbell_1s_sim_time", |b| b.iter(tcp_second));
    group.bench_function("poisson_cross_1s_sim_time", |b| b.iter(poisson_second));
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
