//! Benchmarks of the figure-regeneration *analysis* stage: with the
//! dataset cached, how fast every table/figure of the paper can be
//! recomputed. (The figure binaries in `src/bin/` do the same work; this
//! harness times the shared analysis kernels on a synthetic dataset so
//! `cargo bench` needs no dataset cache.)

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tputpred_bench::{a_priori, cov_per_trace, fb_config, hw_lso, rmsre_per_trace};
use tputpred_core::fb::FbPredictor;
use tputpred_core::metrics::{evaluate, relative_error_floored};
use tputpred_testbed::{catalog_2004, Dataset, EpochRecord, PathData, Preset, TraceData};

/// A synthetic dataset with the quick preset's shape (35 paths × 2
/// traces × 40 epochs) and plausible values — no simulation needed.
fn synthetic_dataset() -> Dataset {
    let preset = Preset::quick();
    let catalog = catalog_2004(preset.paths, preset.seed);
    let paths = catalog
        .into_iter()
        .enumerate()
        .map(|(pi, config)| {
            let traces = (0..preset.traces_per_path)
                .map(|ti| TraceData {
                    records: (0..preset.epochs_per_trace)
                        .map(|ei| {
                            let phase = (pi * 31 + ti * 17 + ei) as f64;
                            let r = 2e6
                                + 1.5e6 * (phase * 0.7).sin().abs()
                                + if ei % 13 == 0 { 6e6 } else { 0.0 };
                            EpochRecord {
                                status: Default::default(),
                                faults: Default::default(),
                                a_hat: Some(5e6 + 2e6 * (phase * 0.3).cos()),
                                t_hat: Some(0.04 + 0.01 * (phase * 0.2).sin().abs()),
                                p_hat: Some(if pi % 3 == 0 { 0.01 } else { 0.0 }),
                                t_tilde: Some(0.05),
                                p_tilde: Some(0.02),
                                r_large: Some(r),
                                r_small: Some(r / 4.0),
                                r_prefix_quarter: Some(r * 0.9),
                                r_prefix_half: Some(r * 0.95),
                                flow_loss_events: 3,
                                flow_retx_rate: 0.01,
                                flow_rtt: 0.05,
                                true_avail_bw: 5e6,
                            }
                        })
                        .collect(),
                })
                .collect();
            PathData { config, traces }
        })
        .collect();
    Dataset { preset, paths }
}

fn bench_figures(c: &mut Criterion) {
    let ds = synthetic_dataset();
    let mut group = c.benchmark_group("figures");
    group.sample_size(20);
    group.bench_function("fig02_fb_errors_full_dataset", |b| {
        let fb = FbPredictor::new(fb_config(&ds.preset));
        b.iter(|| {
            let errors: Vec<f64> = ds
                .complete_epochs()
                .map(|(_, _, rec)| relative_error_floored(fb.predict(&a_priori(&rec)), rec.r_large))
                .collect();
            black_box(errors.len())
        })
    });
    group.bench_function("fig16_rmsre_per_trace_hw_lso", |b| {
        b.iter(|| black_box(rmsre_per_trace(&ds, || hw_lso())))
    });
    group.bench_function("fig20_cov_per_trace", |b| {
        b.iter(|| black_box(cov_per_trace(&ds)))
    });
    group.bench_function("fig23_downsampled_rmsre", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for p in &ds.paths {
                for t in &p.traces {
                    let series = tputpred_core::metrics::downsample(&t.throughput_series(), 8);
                    let mut pred = hw_lso();
                    if let Some(r) = evaluate(&mut pred, &series).rmsre() {
                        total += r;
                    }
                }
            }
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
