//! Micro-benchmarks of the TCP throughput formulas: an FB predictor in a
//! route-selection loop evaluates these per candidate path per decision,
//! so they must be cheap.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tputpred_core::fb::{FbConfig, FbPredictor, PathEstimates};
use tputpred_core::formulas::{
    mathis, pftk, pftk_full, pftk_revised, slow_start_segments, PftkParams,
};

fn params(p: f64) -> PftkParams {
    PftkParams {
        mss: 1448,
        rtt: 0.08,
        rto: 1.0,
        b: 2.0,
        p,
        max_window: 1 << 20,
    }
}

fn bench_formulas(c: &mut Criterion) {
    let mut group = c.benchmark_group("formulas");
    group.bench_function("mathis", |b| {
        b.iter(|| {
            mathis(
                black_box(1448),
                black_box(0.08),
                black_box(2.0),
                black_box(0.01),
            )
        })
    });
    group.bench_function("pftk_eq2", |b| {
        let p = params(0.01);
        b.iter(|| pftk(black_box(&p)))
    });
    group.bench_function("pftk_full", |b| {
        let p = params(0.01);
        b.iter(|| pftk_full(black_box(&p)))
    });
    group.bench_function("pftk_revised", |b| {
        let p = params(0.01);
        b.iter(|| pftk_revised(black_box(&p)))
    });
    group.bench_function("cardwell_slow_start", |b| {
        b.iter(|| slow_start_segments(black_box(100_000), black_box(0.01)))
    });
    group.bench_function("fb_predict_eq3", |b| {
        let fb = FbPredictor::new(FbConfig::default());
        let est = PathEstimates {
            rtt: 0.08,
            loss_rate: 0.01,
            avail_bw: 20e6,
        };
        b.iter(|| fb.predict(black_box(&est)))
    });
    group.finish();
}

criterion_group!(benches, bench_formulas);
criterion_main!(benches);
