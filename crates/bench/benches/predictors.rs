//! Micro-benchmarks of the HB predictors: per-sample update+predict
//! cost, including the LSO wrapper's detection scan (the only
//! super-constant part), and a full trace evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tputpred_core::hb::{Ewma, HoltWinters, MovingAverage, Predictor};
use tputpred_core::lso::{Lso, LsoConfig};
use tputpred_core::metrics::{evaluate, segmented_cov};

/// A deterministic pseudo-throughput series with shifts and spikes.
fn series(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let base = if (i / 40) % 2 == 0 { 10e6 } else { 18e6 };
            let noise = ((i * 2654435761) % 1000) as f64 / 1000.0;
            let spike = if i % 37 == 0 { 3.0 } else { 1.0 };
            base * (0.9 + 0.2 * noise) * spike
        })
        .collect()
}

fn bench_predictors(c: &mut Criterion) {
    let xs = series(150);
    let mut group = c.benchmark_group("predictors");
    group.bench_function("ma10_update_predict", |b| {
        let mut p = MovingAverage::new(10);
        let mut i = 0;
        b.iter(|| {
            p.update(black_box(xs[i % xs.len()]));
            i += 1;
            black_box(p.forecast())
        })
    });
    group.bench_function("ewma_update_predict", |b| {
        let mut p = Ewma::new(0.8);
        let mut i = 0;
        b.iter(|| {
            p.update(black_box(xs[i % xs.len()]));
            i += 1;
            black_box(p.forecast())
        })
    });
    group.bench_function("hw_update_predict", |b| {
        let mut p = HoltWinters::new(0.8, 0.2);
        let mut i = 0;
        b.iter(|| {
            p.update(black_box(xs[i % xs.len()]));
            i += 1;
            black_box(p.forecast())
        })
    });
    group.bench_function("hw_lso_update_predict", |b| {
        let mut p = Lso::new(HoltWinters::new(0.8, 0.2));
        let mut i = 0;
        b.iter(|| {
            p.update(black_box(xs[i % xs.len()]));
            i += 1;
            black_box(p.forecast())
        })
    });
    group.bench_function("evaluate_150_epoch_trace_hw_lso", |b| {
        b.iter(|| {
            let mut p = Lso::new(HoltWinters::new(0.8, 0.2));
            black_box(evaluate(&mut p, black_box(&xs)).rmsre())
        })
    });
    group.bench_function("segmented_cov_150_epochs", |b| {
        b.iter(|| black_box(segmented_cov(black_box(&xs), LsoConfig::default())))
    });
    group.finish();
}

criterion_group!(benches, bench_predictors);
criterion_main!(benches);
