//! # tputpred-bench — figure regeneration and micro-benchmarks
//!
//! One binary per table/figure of the paper's evaluation lives in
//! `src/bin/` (see DESIGN.md's per-experiment index); the Criterion
//! micro-benchmarks live in `benches/`. This library holds what they
//! share:
//!
//! * [`cli`] — the tiny `--preset <name> --data <dir>` argument parser
//!   every figure binary uses;
//! * [`analysis`] — applying the FB predictor (Eq. 3) to epoch records,
//!   the standard HB predictor zoo (`1-MA`, `10-MA`, EWMA, HW, each with
//!   and without LSO), per-trace RMSRE evaluation, and dataset caching;
//! * [`profile`] — telemetry-enabled generation (`--profile` /
//!   `perf_report`) and the `BENCH_gen_<preset>.json` perf report.
//!
//! Figure binaries print plain-text series/tables (via
//! [`tputpred_stats::render`]) so the output is diff- and grep-friendly;
//! run them in release mode, e.g.:
//!
//! ```text
//! cargo run --release -p tputpred-bench --bin fig02_fb_error_cdf -- --preset quick
//! ```

pub mod analysis;
pub mod cli;
pub mod profile;

pub use analysis::*;
pub use cli::Args;
pub use profile::{PerfReport, StageTiming};
