//! Profiled dataset generation and the `BENCH_gen_<preset>.json` report.
//!
//! `gen_dataset --profile` and the `perf_report` binary both route
//! through [`profile_generation`]: the sharded dataset load (DESIGN.md
//! §9) runs under [`tputpred_obs::with_profiling`] (telemetry enabled
//! for exactly that call), and the raw [`TelemetryReport`] is distilled
//! into a [`PerfReport`] — stage wall-clock timings, simulator event
//! rates, the parallel speedup actually achieved, and the shard cache's
//! hit/miss/regen counts — then written as JSON.
//!
//! Telemetry is observation-only (DESIGN.md §11): the dataset produced
//! under profiling is bit-identical to an unprofiled run, and the shards
//! it writes land in the normal cache location for the other figure
//! binaries to reuse.

use std::io;
use std::path::{Path, PathBuf};

use crate::cli::Args;
use serde::{Deserialize, Serialize};
use tputpred_obs::{self as obs, TelemetryReport};
use tputpred_testbed::{for_each_path, load_or_generate_sharded, Dataset, PathData, ShardStats};

/// Wall-clock summary of one named timing scope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Scope name as registered (e.g. `stage.transfer`).
    pub name: String,
    /// Times the scope ran.
    pub calls: u64,
    /// Summed wall time across calls (seconds).
    pub total_s: f64,
    /// Mean wall time per call (seconds).
    pub mean_s: f64,
    /// Fastest single call (seconds).
    pub min_s: f64,
    /// Slowest single call (seconds).
    pub max_s: f64,
}

/// Wall time spent simulating one path's traces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathTiming {
    /// Path name from the catalog (e.g. `lossy-tight`).
    pub path: String,
    /// Traces of this path that were simulated.
    pub traces: u64,
    /// Summed wall time across those traces (seconds).
    pub total_s: f64,
}

/// One event/packet/fault counter, carried over verbatim.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterLine {
    /// Counter name (e.g. `netsim.packets_dropped`).
    pub name: String,
    /// Final count.
    pub count: u64,
}

/// The `BENCH_gen_<preset>.json` payload: what a generation run cost and
/// where the time went. Schema documented in DESIGN.md §11.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Preset that was generated.
    pub preset: String,
    /// Behavior hash of the simulation code that ran.
    pub behavior_hash: String,
    /// Worker threads the generation pool used. `None` when the run
    /// regenerated nothing (warm cache): the `testbed.workers` gauge is
    /// only set around an actual parallel fan-out, and inventing a
    /// count would make the utilization column silently wrong
    /// (DESIGN.md §15).
    pub workers: Option<u64>,
    /// Traces simulated.
    pub traces: u64,
    /// Epochs simulated (including degraded ones).
    pub epochs: u64,
    /// End-to-end wall time of `generate()` (seconds).
    pub generate_wall_s: f64,
    /// Summed per-trace wall time across all workers (seconds).
    pub trace_wall_total_s: f64,
    /// `trace_wall_total_s / generate_wall_s`: how many traces ran
    /// concurrently on average. 1.0 on a sequential run.
    pub parallel_speedup: f64,
    /// `parallel_speedup / workers`: fraction of the pool kept busy.
    /// `None` whenever `workers` is — a warm run has no pool to
    /// utilize, and the old `unwrap_or(1.0)` fallback used to report
    /// utilization = speedup in exactly that case.
    pub worker_utilization: Option<f64>,
    /// Simulator events dispatched across all traces.
    pub events: u64,
    /// Events per wall-clock second of `generate()`.
    pub events_per_wall_s: f64,
    /// Cache shards reused as-is (hash and fingerprint matched).
    pub shards_hit: u64,
    /// Cache shards absent from disk.
    pub shards_missing: u64,
    /// Cache shards present but untrusted (stale hash/fingerprint or
    /// unparseable).
    pub shards_stale: u64,
    /// Cache shards regenerated this run (`missing + stale`).
    pub shards_regenerated: u64,
    /// Per-stage wall-clock breakdown, sorted by total descending.
    pub stages: Vec<StageTiming>,
    /// Per-path wall-clock breakdown, sorted by total descending.
    pub paths: Vec<PathTiming>,
    /// All counters from the run, sorted by name.
    pub counters: Vec<CounterLine>,
}

/// Runs the sharded dataset load for `args` with telemetry enabled and
/// returns the dataset with its distilled [`PerfReport`].
///
/// Profiles the load as the figure binaries experience it: a cold cache
/// times the simulator, a warm one times shard deserialization, and a
/// partially stale one times exactly the regenerated slice — the
/// `shards_*` counters say which case ran (a CI smoke step asserts on
/// them). Delete `data/<preset>/` first to force a full simulator
/// profile.
pub fn profile_generation(args: &Args) -> io::Result<(Dataset, PerfReport)> {
    let dir = args.shard_dir();
    let (result, telemetry) = obs::with_profiling(|| load_or_generate_sharded(&dir, &args.preset));
    let (dataset, _) = result?;
    eprintln!("# profiled shard cache -> {}", dir.display());
    let report = distill(&args.preset.name, &telemetry);
    Ok((dataset, report))
}

/// Streaming counterpart of [`profile_generation`]: runs
/// [`tputpred_testbed::for_each_path`] under profiling, so `visit` sees
/// every path in catalog order while only one shard is resident — the
/// profile entry point for `synth1k`/`synth10k`-scale presets
/// (DESIGN.md §15). The distilled report is identical in shape; only
/// the peak memory differs.
pub fn profile_for_each_path<V>(args: &Args, visit: V) -> io::Result<(ShardStats, PerfReport)>
where
    V: FnMut(usize, &PathData) -> io::Result<()>,
{
    let dir = args.shard_dir();
    let (result, telemetry) = obs::with_profiling(|| for_each_path(&dir, &args.preset, visit));
    let stats = result?;
    eprintln!("# profiled shard cache -> {}", dir.display());
    let report = distill(&args.preset.name, &telemetry);
    Ok((stats, report))
}

/// Where the perf report for `preset_name` is written: the current
/// working directory, named `BENCH_gen_<preset>.json`.
pub fn perf_report_path(preset_name: &str) -> PathBuf {
    PathBuf::from(format!("BENCH_gen_{preset_name}.json"))
}

/// Serializes `report` as JSON to `path`.
pub fn write_perf_report(report: &PerfReport, path: &Path) -> io::Result<()> {
    let json = serde_json::to_string(report).map_err(io::Error::other)?;
    std::fs::write(path, json)
}

/// Reads a previously written perf report (e.g. the committed baseline
/// `results/BENCH_gen_quick.json`).
pub fn read_perf_report(path: &Path) -> io::Result<PerfReport> {
    let json = std::fs::read_to_string(path)?;
    serde_json::from_str(&json).map_err(io::Error::other)
}

/// Regression tolerance of the perf gate: a fresh run must reach at
/// least this fraction of the baseline's `events_per_wall_s`.
///
/// The gate compares absolute event rates, so it assumes comparable
/// hardware between the baseline recording and the gated run (CI pins
/// a cold, single-worker profile for this reason); the 20% margin
/// absorbs ordinary scheduler and cache noise, not a machine change.
pub const BASELINE_MIN_RATIO: f64 = 0.8;

/// Verdict of gating a fresh run against a committed baseline report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineGate {
    /// The committed baseline's event rate.
    pub baseline_events_per_wall_s: f64,
    /// The fresh run's event rate.
    pub current_events_per_wall_s: f64,
    /// `current / baseline` (∞-safe: a zero baseline always passes).
    pub ratio: f64,
    /// Whether the run is within [`BASELINE_MIN_RATIO`] of the baseline.
    pub pass: bool,
}

/// Gates `current` against `baseline` on `events_per_wall_s`.
pub fn gate_against_baseline(current: &PerfReport, baseline: &PerfReport) -> BaselineGate {
    let base = baseline.events_per_wall_s;
    let cur = current.events_per_wall_s;
    let ratio = if base > 0.0 {
        cur / base
    } else {
        f64::INFINITY
    };
    BaselineGate {
        baseline_events_per_wall_s: base,
        current_events_per_wall_s: cur,
        ratio,
        pass: ratio >= BASELINE_MIN_RATIO,
    }
}

/// Renders the gate verdict as the one-line summary the binaries print.
pub fn render_baseline_gate(g: &BaselineGate) -> String {
    format!(
        "# perf gate: {:.0} events/s vs baseline {:.0} ({:.2}x, floor {:.2}x) -> {}",
        g.current_events_per_wall_s,
        g.baseline_events_per_wall_s,
        g.ratio,
        BASELINE_MIN_RATIO,
        if g.pass { "PASS" } else { "FAIL" }
    )
}

/// Distills a raw telemetry snapshot into the [`PerfReport`] schema.
pub fn distill(preset_name: &str, t: &TelemetryReport) -> PerfReport {
    let generate_wall_s = t
        .timer_total_s("testbed.generate_wall")
        .max(f64::MIN_POSITIVE);
    let trace_wall_total_s = t.timer_total_s("testbed.trace_wall");
    // No gauge means nothing was generated (warm cache): leave the
    // worker fields absent rather than defaulting to 1 — the old
    // fallback made a warm profile report utilization = speedup.
    let workers = t.gauge("testbed.workers").map(|w| w.max(1.0));
    let parallel_speedup = trace_wall_total_s / generate_wall_s;
    let events = t.counter("netsim.events").unwrap_or(0);

    let mut stages: Vec<StageTiming> = t
        .timers
        .iter()
        .filter(|e| !e.name.starts_with("path_wall."))
        .map(|e| StageTiming {
            name: e.name.clone(),
            calls: e.count,
            total_s: e.total_s,
            mean_s: e.mean_s(),
            min_s: e.min_s,
            max_s: e.max_s,
        })
        .collect();
    stages.sort_by(|a, b| b.total_s.total_cmp(&a.total_s));

    let mut paths: Vec<PathTiming> = t
        .timers
        .iter()
        .filter_map(|e| {
            let path = e.name.strip_prefix("path_wall.")?;
            Some(PathTiming {
                path: path.to_string(),
                traces: e.count,
                total_s: e.total_s,
            })
        })
        .collect();
    paths.sort_by(|a, b| b.total_s.total_cmp(&a.total_s));

    let counters: Vec<CounterLine> = t
        .counters
        .iter()
        .map(|c| CounterLine {
            name: c.name.clone(),
            count: c.count,
        })
        .collect();

    PerfReport {
        preset: preset_name.to_string(),
        behavior_hash: tputpred_testbed::data::BEHAVIOR_HASH.to_string(),
        workers: workers.map(|w| w as u64),
        traces: t.counter("testbed.traces").unwrap_or(0),
        epochs: t.counter("testbed.epochs").unwrap_or(0),
        generate_wall_s,
        trace_wall_total_s,
        parallel_speedup,
        worker_utilization: workers.map(|w| parallel_speedup / w),
        events,
        events_per_wall_s: events as f64 / generate_wall_s,
        shards_hit: t.counter("testbed.shards.hit").unwrap_or(0),
        shards_missing: t.counter("testbed.shards.missing").unwrap_or(0),
        shards_stale: t.counter("testbed.shards.stale").unwrap_or(0),
        shards_regenerated: t.counter("testbed.shards.regenerated").unwrap_or(0),
        stages,
        paths,
        counters,
    }
}

/// Renders the report as the fixed-width text block the binaries print.
pub fn render_perf_report(r: &PerfReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# perf: preset={} hash={}", r.preset, r.behavior_hash);
    let _ = writeln!(
        out,
        "# wall={:.2}s traces={} epochs={} events={} ({:.0} events/s)",
        r.generate_wall_s, r.traces, r.epochs, r.events, r.events_per_wall_s
    );
    match (r.workers, r.worker_utilization) {
        (Some(w), Some(u)) => {
            let _ = writeln!(
                out,
                "# workers={} speedup={:.2}x utilization={:.0}%",
                w,
                r.parallel_speedup,
                u * 100.0
            );
        }
        _ => {
            let _ = writeln!(
                out,
                "# workers=n/a speedup={:.2}x utilization=n/a \
                 (nothing regenerated — warm cache, no worker pool ran)",
                r.parallel_speedup
            );
        }
    }
    let _ = writeln!(
        out,
        "# shards: hit={} missing={} stale={} regenerated={}",
        r.shards_hit, r.shards_missing, r.shards_stale, r.shards_regenerated
    );
    let _ = writeln!(
        out,
        "{:<28} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "stage", "calls", "total_s", "mean_s", "min_s", "max_s"
    );
    for s in &r.stages {
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>10.4} {:>10.6} {:>10.6} {:>10.6}",
            s.name, s.calls, s.total_s, s.mean_s, s.min_s, s.max_s
        );
    }
    if !r.paths.is_empty() {
        let _ = writeln!(out, "{:<28} {:>8} {:>10}", "path", "traces", "total_s");
        for p in &r.paths {
            let _ = writeln!(out, "{:<28} {:>8} {:>10.4}", p.path, p.traces, p.total_s);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tputpred_obs::{CounterEntry, GaugeEntry, TimerEntry};

    fn fake_telemetry() -> TelemetryReport {
        let mut t = TelemetryReport::empty();
        t.counters = vec![
            CounterEntry {
                name: "netsim.events".into(),
                count: 5_000,
            },
            CounterEntry {
                name: "testbed.epochs".into(),
                count: 12,
            },
            CounterEntry {
                name: "testbed.traces".into(),
                count: 4,
            },
            CounterEntry {
                name: "testbed.shards.hit".into(),
                count: 3,
            },
            CounterEntry {
                name: "testbed.shards.missing".into(),
                count: 1,
            },
            CounterEntry {
                name: "testbed.shards.stale".into(),
                count: 2,
            },
            CounterEntry {
                name: "testbed.shards.regenerated".into(),
                count: 3,
            },
        ];
        t.gauges = vec![GaugeEntry {
            name: "testbed.workers".into(),
            value: 2.0,
        }];
        t.timers = vec![
            TimerEntry {
                name: "path_wall.lossy".into(),
                count: 2,
                total_s: 1.5,
                min_s: 0.5,
                max_s: 1.0,
            },
            TimerEntry {
                name: "testbed.generate_wall".into(),
                count: 1,
                total_s: 2.0,
                min_s: 2.0,
                max_s: 2.0,
            },
            TimerEntry {
                name: "testbed.trace_wall".into(),
                count: 4,
                total_s: 3.0,
                min_s: 0.25,
                max_s: 1.5,
            },
        ];
        t
    }

    #[test]
    fn distill_computes_speedup_and_rates() {
        let r = distill("quick", &fake_telemetry());
        assert_eq!(r.preset, "quick");
        assert_eq!(r.workers, Some(2));
        assert_eq!(r.traces, 4);
        assert_eq!(r.epochs, 12);
        assert_eq!(r.events, 5_000);
        assert!((r.parallel_speedup - 1.5).abs() < 1e-12);
        let utilization = r.worker_utilization.expect("gauge present");
        assert!((utilization - 0.75).abs() < 1e-12);
        assert!((r.events_per_wall_s - 2_500.0).abs() < 1e-9);
        assert_eq!(r.shards_hit, 3);
        assert_eq!(r.shards_missing, 1);
        assert_eq!(r.shards_stale, 2);
        assert_eq!(r.shards_regenerated, 3);
        // path_wall.* timers become the per-path table, not stages.
        assert!(r.stages.iter().all(|s| !s.name.starts_with("path_wall.")));
        assert_eq!(r.paths.len(), 1);
        assert_eq!(r.paths[0].path, "lossy");
        assert_eq!(r.paths[0].traces, 2);
    }

    #[test]
    fn missing_worker_gauge_is_explicit_not_defaulted() {
        // The satellite bugfix: a warm run never sets `testbed.workers`
        // (nothing fans out), and the old `unwrap_or(1.0)` fallback
        // silently reported utilization = speedup. Absence must stay
        // absent, in the JSON and in the rendered text.
        let mut t = fake_telemetry();
        t.gauges.clear();
        let r = distill("quick", &t);
        assert_eq!(r.workers, None, "no gauge -> no worker count");
        assert_eq!(r.worker_utilization, None, "no gauge -> no utilization");
        assert!(
            (r.parallel_speedup - 1.5).abs() < 1e-12,
            "speedup is still well-defined without the gauge"
        );
        let text = render_perf_report(&r);
        assert!(text.contains("workers=n/a"), "render marks the gap: {text}");
        assert!(text.contains("utilization=n/a"));
        assert!(
            !text.contains("utilization=150%"),
            "must not fall back to utilization = speedup"
        );
        // And the explicit case still round-trips through JSON.
        let json = serde_json::to_string(&r).expect("serializes");
        let back: PerfReport = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back.workers, None);
        assert_eq!(back.worker_utilization, None);
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = distill("tiny", &fake_telemetry());
        let json = serde_json::to_string(&r).expect("serializes");
        let back: PerfReport = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, r);
    }

    #[test]
    fn render_names_every_stage() {
        let r = distill("tiny", &fake_telemetry());
        let text = render_perf_report(&r);
        for s in &r.stages {
            assert!(text.contains(&s.name), "missing stage {}", s.name);
        }
        assert!(text.contains("speedup=1.50x"));
        assert!(text.contains("shards: hit=3 missing=1 stale=2 regenerated=3"));
    }

    #[test]
    fn baseline_gate_passes_within_tolerance_and_fails_beyond() {
        let baseline = distill("quick", &fake_telemetry());
        // Same report gates against itself at ratio 1.0.
        let same = gate_against_baseline(&baseline, &baseline);
        assert!(same.pass);
        assert!((same.ratio - 1.0).abs() < 1e-12);

        // 21% slower: just past the 20% floor.
        let mut slow = baseline.clone();
        slow.events_per_wall_s = baseline.events_per_wall_s * 0.79;
        let g = gate_against_baseline(&slow, &baseline);
        assert!(!g.pass, "{g:?}");
        assert!(render_baseline_gate(&g).contains("FAIL"));

        // 19% slower: inside the floor.
        let mut ok = baseline.clone();
        ok.events_per_wall_s = baseline.events_per_wall_s * 0.81;
        let g = gate_against_baseline(&ok, &baseline);
        assert!(g.pass, "{g:?}");
        assert!(render_baseline_gate(&g).contains("PASS"));

        // A zero-rate baseline (empty telemetry) can never fail the gate.
        let mut zero = baseline.clone();
        zero.events_per_wall_s = 0.0;
        assert!(gate_against_baseline(&baseline, &zero).pass);
    }

    #[test]
    fn perf_report_round_trips_through_disk() {
        let r = distill("tiny", &fake_telemetry());
        let dir = std::env::temp_dir().join("tputpred-perf-report-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("BENCH_gen_roundtrip.json");
        write_perf_report(&r, &path).expect("writes");
        let back = read_perf_report(&path).expect("reads");
        assert_eq!(back, r);
        let _ = std::fs::remove_file(&path);
    }
}
