//! **Fig. 10** — scatter of the a-priori RTT `T̂` against the FB
//! prediction error `E`.
//!
//! Paper finding: no positive correlation — long-RTT paths are not
//! systematically harder to predict.

use tputpred_bench::{fb_config, fb_error, load_dataset, Args};
use tputpred_core::fb::FbPredictor;
use tputpred_stats::{pearson, render, spearman};

fn main() {
    let args = Args::parse();
    let ds = load_dataset(&args);
    let fb = FbPredictor::new(fb_config(&ds.preset));

    let points: Vec<(f64, f64)> = ds
        .complete_epochs()
        .map(|(_, _, rec)| (rec.t_hat * 1e3, fb_error(&fb, &rec)))
        .collect();

    println!("# fig10: a-priori RTT T^ (ms) vs FB prediction error E");
    print!("{}", render::series("t_hat_ms_vs_e", &points));
    let xs: Vec<f64> = points.iter().map(|&(x, _)| x).collect();
    let ys: Vec<f64> = points.iter().map(|&(_, y)| y).collect();
    println!(
        "# n={} pearson_r={} spearman_r={}",
        points.len(),
        pearson(&xs, &ys).map_or("n/a".into(), render::f),
        spearman(&xs, &ys).map_or("n/a".into(), render::f),
    );
}
