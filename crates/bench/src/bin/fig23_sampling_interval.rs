//! **Fig. 23** — HB accuracy versus the interval between transfers:
//! CDFs over traces of HW-LSO RMSRE after down-sampling each trace at
//! factors corresponding to the paper's 3/6/24/45-minute transfer
//! periods (§6.1.6).
//!
//! Paper findings: accuracy degrades gracefully — with the largest
//! period, 65% of traces still have RMSRE < 0.4, and the 90th-percentile
//! RMSRE stays ≤ 1.0. Sporadic histories are still useful.

use tputpred_bench::{hw_lso, load_dataset, require_cdf, Args};
use tputpred_core::metrics::{downsample, evaluate};
use tputpred_stats::render;

fn main() {
    let args = Args::parse();
    let ds = load_dataset(&args);

    // The paper down-samples its ~3-minute epochs by 2/8/15 to emulate
    // 6/24/45-minute transfer intervals.
    let factors = [(1usize, "x1_base"), (2, "x2"), (8, "x8"), (15, "x15")];
    println!("# fig23: CDF over traces of HW-LSO RMSRE at increasing transfer intervals");
    for (factor, label) in factors {
        let rmsres: Vec<f64> = ds
            .paths
            .iter()
            .flat_map(|p| p.traces.iter())
            .filter_map(|t| {
                let series = downsample(&t.throughput_series(), factor);
                if series.len() < 4 {
                    return None;
                }
                let mut pred = hw_lso();
                evaluate(&mut pred, &series).rmsre()
            })
            .collect();
        if rmsres.is_empty() {
            println!("# series: {label} (too few samples after downsampling)");
            continue;
        }
        let cdf = require_cdf(label, rmsres.iter().copied());
        print!("{}", render::cdf_series(label, &cdf, 50));
        println!(
            "# {label}: n={} median={:.3} p90={:.3} P(RMSRE<0.4)={:.3}",
            rmsres.len(),
            cdf.quantile(0.5),
            cdf.quantile(0.9),
            cdf.fraction_below(0.4)
        );
    }
}
