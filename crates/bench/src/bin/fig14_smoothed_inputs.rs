//! **Fig. 14** — CDF of the FB error when the formula's RTT and
//! loss-rate inputs are *history-smoothed* (a 10-sample Moving Average
//! over past epochs' measurements, §4.2.10) instead of the latest
//! measurement.
//!
//! Paper finding: the two CDFs are nearly identical — measurement noise
//! in T̂/p̂ is not what limits FB prediction; the flow's own impact on
//! the path and TCP-vs-probing sampling differences are.

use tputpred_bench::{a_priori, fb_config, load_dataset, require_cdf, Args};
use tputpred_core::fb::{FbPredictor, SmoothedFbPredictor};
use tputpred_core::metrics::relative_error_floored;
use tputpred_core::predictor::{EpochObservation, Predictor};
use tputpred_stats::render;

fn main() {
    let args = Args::parse();
    let ds = load_dataset(&args);
    let fb = FbPredictor::new(fb_config(&ds.preset));

    let mut plain = Vec::new();
    let mut smoothed = Vec::new();
    for p in &ds.paths {
        for t in &p.traces {
            // The smoothing history is per trace, in epoch order.
            let mut sm = SmoothedFbPredictor::new(fb_config(&ds.preset), 10);
            for rec in t.records.iter().filter_map(|r| r.complete()) {
                let est = a_priori(&rec);
                plain.push(relative_error_floored(fb.predict(&est), rec.r_large));
                // Predict with the epoch's fresh measurement smoothed in,
                // then ingest it for real — the old one-shot `predict_next`.
                let sm_pred = sm.predict(&est.into()).unwrap_or(f64::NAN);
                sm.observe(&EpochObservation::new(est.into(), None));
                smoothed.push(relative_error_floored(sm_pred, rec.r_large));
            }
        }
    }

    println!("# fig14: FB error CDF with latest vs 10-MA-smoothed RTT/loss inputs");
    for (name, errors) in [("latest_inputs", &plain), ("smoothed_inputs", &smoothed)] {
        let cdf = require_cdf(name, errors.iter().copied());
        print!("{}", render::cdf_series(name, &cdf, 60));
        println!(
            "# {name}: median={:.3} P(E>=1)={:.3}",
            cdf.quantile(0.5),
            1.0 - cdf.fraction_below(1.0 - 1e-12)
        );
    }
}
