//! **Fig. 2** — CDF of the relative prediction error `E` for all FB
//! predictions, for predictions on lossy paths (PFTK branch of Eq. 3),
//! and for predictions on lossless paths (avail-bw branch).
//!
//! Paper findings this should reproduce: ~40% of predictions
//! overestimate by more than 2× (E ≥ 1); overestimations ≥ 10× exist;
//! underestimation is much rarer; lossless-path predictions are markedly
//! better and almost never underestimate.

use tputpred_bench::{a_priori, fb_config, is_lossy, load_dataset, require_cdf, Args};
use tputpred_core::fb::FbPredictor;
use tputpred_core::metrics::relative_error_floored;
use tputpred_stats::render;

fn main() {
    let args = Args::parse();
    let ds = load_dataset(&args);
    let fb = FbPredictor::new(fb_config(&ds.preset));

    let mut all = Vec::new();
    let mut lossy = Vec::new();
    let mut lossless = Vec::new();
    for (_, _, rec) in ds.complete_epochs() {
        let e = relative_error_floored(fb.predict(&a_priori(&rec)), rec.r_large);
        all.push(e);
        if is_lossy(&rec) {
            lossy.push(e);
        } else {
            lossless.push(e);
        }
    }

    println!("# fig02: CDF of relative prediction error E (Eq. 4), FB predictor (Eq. 3)");
    println!("# x = E, y = fraction of predictions with error <= x");
    let groups = [("all", &all), ("lossy", &lossy), ("lossless", &lossless)];
    for (name, errors) in groups {
        if errors.is_empty() {
            println!("# series: {name} (empty)");
            continue;
        }
        let cdf = require_cdf(name, errors.iter().copied());
        print!("{}", render::cdf_series(name, &cdf, 60));
        println!(
            "# {name}: n={} P(E>=1)={:.3} P(E>=9)={:.3} P(E<=-1)={:.3}",
            errors.len(),
            1.0 - cdf.fraction_below(1.0 - 1e-12),
            1.0 - cdf.fraction_below(9.0 - 1e-12),
            cdf.fraction_below(-1.0),
        );
    }
}
