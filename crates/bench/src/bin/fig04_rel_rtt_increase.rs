//! **Fig. 4** — CDF of the *relative* RTT increase during the target
//! flow, `(T̃ − T̂)/T̃`, over lossy epochs.
//!
//! §4.2.2 relates this directly to FB error through the square-root law:
//! `E = (T̃√p̃)/(T̂√p̂) − 1`. Paper: for ~20% of epochs the relative RTT
//! increase exceeds 0.5; the mean ratio T̃/T̂ is ~1.3.

use tputpred_bench::{is_lossy, load_dataset, require_cdf, Args};
use tputpred_stats::render;

fn main() {
    let args = Args::parse();
    let ds = load_dataset(&args);

    let rel: Vec<f64> = ds
        .complete_epochs()
        .filter(|(_, _, r)| is_lossy(r) && r.t_tilde > 0.0)
        .map(|(_, _, r)| (r.t_tilde - r.t_hat) / r.t_tilde)
        .collect();
    assert!(!rel.is_empty(), "no lossy epochs in this dataset");

    println!("# fig04: CDF of relative RTT increase (T~ - T^)/T~ (lossy epochs)");
    let cdf = require_cdf("rel_rtt_increase", rel.iter().copied());
    print!("{}", render::cdf_series("rel_rtt_increase", &cdf, 60));
    let mean_ratio: f64 = ds
        .complete_epochs()
        .filter(|(_, _, r)| is_lossy(r) && r.t_hat > 0.0)
        .map(|(_, _, r)| r.t_tilde / r.t_hat)
        .sum::<f64>()
        / rel.len() as f64;
    println!(
        "# n={} P(rel increase > 0.5)={:.3} mean T~/T^={:.3}",
        rel.len(),
        1.0 - cdf.fraction_below(0.5),
        mean_ratio
    );
}
