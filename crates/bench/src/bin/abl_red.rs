//! **Ablation (paper §3.4, queue discipline)** — does RED at the
//! bottleneck make throughput more predictable than droptail?
//!
//! The paper's paths were droptail (as is the testbed); RED was the
//! ns2-era alternative. RED's early random drops keep the queue short
//! and de-cluster TCP's losses, which should (a) reduce timeouts,
//! (b) tame RTT inflation, and (c) smooth the throughput series — all of
//! which bear on both FB and HB predictability. Same path, both
//! disciplines, side by side.

use tputpred_bench::Args;
use tputpred_core::hb::HoltWinters;
use tputpred_core::lso::Lso;
use tputpred_core::metrics::evaluate;
use tputpred_netsim::link::{Aqm, LinkConfig};
use tputpred_netsim::sources::{ParetoOnOffSource, Sink, SourceConfig};
use tputpred_netsim::{RateSchedule, Route, Simulator, Time};
use tputpred_probes::BulkTransfer;
use tputpred_stats::{render, Summary};
use tputpred_tcp::TcpConfig;

fn run_discipline(red: bool, epochs: usize) -> (f64, f64, f64, f64) {
    let mut sim = Simulator::new(85);
    let mut cfg = LinkConfig::new(10e6, Time::from_millis(30), 150);
    if red {
        cfg = cfg.with_red();
    }
    let fwd = sim.add_link(cfg);
    let rev = sim.add_link(LinkConfig::new(1e9, Time::from_millis(30), 1000));
    let (sink, _) = Sink::new();
    let sink_id = sim.add_endpoint(Box::new(sink));
    let (src, _) = ParetoOnOffSource::new(
        SourceConfig {
            route: Route::direct(fwd),
            dst: sink_id,
            packet_size: 1000,
            base_rate_bps: 4e6,
            schedule: RateSchedule::constant(1.0),
            stop: Time::MAX,
        },
        0.5,
        1.6,
        0.3,
    );
    let id = sim.add_endpoint(Box::new(src));
    sim.schedule_timer(id, 0, Time::ZERO);

    let mut series = Vec::new();
    let mut rtts = Summary::new();
    let mut timeouts = 0u64;
    let mut t = Time::from_secs(3);
    for _ in 0..epochs {
        let stop = t + Time::from_secs(12);
        let transfer = BulkTransfer::launch(
            &mut sim,
            TcpConfig::default(),
            Route::direct(fwd),
            Route::direct(rev),
            t,
            stop,
        );
        sim.run_until(stop + Time::from_secs(2));
        series.push(transfer.throughput().max(1e3));
        let s = transfer.stats().borrow();
        rtts.push(s.rtt.mean());
        timeouts += s.timeouts;
        t = sim.now() + Time::from_secs(2);
    }
    let mean = series.iter().sum::<f64>() / series.len() as f64;
    let mut hb = Lso::new(HoltWinters::new(0.8, 0.2));
    let hb_rmsre = evaluate(&mut hb, &series).rmsre().unwrap_or(f64::NAN);
    (
        mean,
        hb_rmsre,
        rtts.mean() * 1e3,
        timeouts as f64 / epochs as f64,
    )
}

fn main() {
    let _args = Args::parse();
    println!("# abl_red: droptail vs RED at a deep-buffered bottleneck (10 Mbps, 150-pkt buffer, 40% bursty load)");
    let mut table = render::Table::new([
        "aqm",
        "mean_mbps",
        "hb_rmsre_hw_lso",
        "flow_rtt_ms",
        "timeouts/epoch",
    ]);
    for (name, red) in [("droptail", false), ("red", true)] {
        let (mean, rmsre, rtt, to) = run_discipline(red, 20);
        table.row([
            name.to_string(),
            render::mbps(mean),
            render::f(rmsre),
            format!("{rtt:.0}"),
            render::f(to),
        ]);
    }
    print!("{}", table.render());
    let _ = Aqm::DropTail; // (re-exported type referenced for the docs)
    println!("# expected shape: RED keeps the flow's RTT lower (shorter average queue) and");
    println!("# de-clusters losses; the throughput series' predictability shifts accordingly.");
}
