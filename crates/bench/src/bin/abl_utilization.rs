//! **Ablation (§6.1.4 / SIGCOMM analysis)** — prediction error versus
//! bottleneck utilization.
//!
//! The paper's queueing analysis predicts that HB prediction error
//! *increases with the utilization of the bottleneck link*; the authors
//! could not verify it on RON because utilization was unobservable.
//! Here the bottleneck is ours: sweep the inelastic cross-traffic
//! utilization of one controlled path and report the HW-LSO RMSRE and
//! the FB error at each level.
//!
//! This ablation simulates at run time (a few seconds; it does not use
//! the cached dataset). `--preset` selects the epoch scale.

use tputpred_bench::{fb_config, fb_error, hw_lso, Args};
use tputpred_core::fb::FbPredictor;
use tputpred_core::metrics::{evaluate, rmsre};
use tputpred_stats::render;
use tputpred_testbed::{catalog_2004, run_trace, Preset};

fn main() {
    let args = Args::parse();
    // A short trace per utilization level, based on the preset's epoch
    // shape but fixed to a single path and trace.
    let preset = Preset {
        name: format!("abl-util-{}", args.preset.name),
        paths: 3,
        traces_per_path: 1,
        epochs_per_trace: 30,
        ..args.preset.clone()
    };
    let mut base_path = catalog_2004(3, 4242).remove(2);
    base_path.capacity_bps = 10e6;
    base_path.buffer_packets = 40;
    base_path.cross.elastic_flows = 0;
    base_path.cross.shifts_per_trace = 1.0;
    base_path.cross.bursts_per_trace = 1.0;
    base_path.cross.pareto_sources = 2;

    println!("# abl_utilization: prediction error vs bottleneck utilization (10 Mbps path)");
    let mut table = render::Table::new([
        "utilization",
        "hb_rmsre_hw_lso",
        "fb_rmsre",
        "mean_tput_mbps",
    ]);
    let fb = FbPredictor::new(fb_config(&preset));
    for util in [0.1, 0.3, 0.5, 0.7, 0.85, 0.95] {
        let mut path = base_path.clone();
        path.cross.utilization = util;
        let trace = run_trace(&path, 0, &preset);
        let series = trace.throughput_series();
        let mut pred = hw_lso();
        let hb = evaluate(&mut pred, &series).rmsre().unwrap_or(f64::NAN);
        let fb_errors: Vec<f64> = trace
            .records
            .iter()
            .filter_map(|r| r.complete())
            .map(|r| fb_error(&fb, &r))
            .collect();
        let fb_rmsre = rmsre(&fb_errors).unwrap_or(f64::NAN);
        let mean_tput = series.iter().sum::<f64>() / series.len() as f64;
        table.row([
            render::f(util),
            render::f(hb),
            render::f(fb_rmsre),
            render::mbps(mean_tput),
        ]);
    }
    print!("{}", table.render());
    println!(
        "# expected shape: hb_rmsre grows with utilization (paper's queueing analysis, result 1)"
    );
}
