//! **Fig. 9** — scatter of the a-priori loss rate `p̂` against the FB
//! prediction error `E`, lossy epochs only.
//!
//! Paper finding: *no* correlation — a higher measured loss rate does
//! not predict a larger FB error (the error comes from how much the
//! path's state changes, not from how lossy it already was).

use tputpred_bench::{fb_config, fb_error, is_lossy, load_dataset, Args};
use tputpred_core::fb::FbPredictor;
use tputpred_stats::{pearson, render, spearman};

fn main() {
    let args = Args::parse();
    let ds = load_dataset(&args);
    let fb = FbPredictor::new(fb_config(&ds.preset));

    let points: Vec<(f64, f64)> = ds
        .complete_epochs()
        .filter(|(_, _, rec)| is_lossy(rec))
        .map(|(_, _, rec)| (rec.p_hat, fb_error(&fb, &rec)))
        .collect();
    assert!(!points.is_empty(), "no lossy epochs in this dataset");

    println!("# fig09: a-priori loss rate p^ vs FB prediction error E (lossy epochs)");
    print!("{}", render::series("p_hat_vs_e", &points));
    let xs: Vec<f64> = points.iter().map(|&(x, _)| x).collect();
    let ys: Vec<f64> = points.iter().map(|&(_, y)| y).collect();
    println!(
        "# n={} pearson_r={} spearman_r={}",
        points.len(),
        pearson(&xs, &ys).map_or("n/a".into(), render::f),
        spearman(&xs, &ys).map_or("n/a".into(), render::f),
    );
}
