//! **Fig. 19** — CDF over traces of the per-trace *FB* RMSRE, for
//! comparison against the HB predictors of Figs. 16–17 (§6.1.2).
//!
//! Paper findings: HB is dramatically better — HB RMSRE < 0.4 for ~90%
//! of traces, while the same percentile of FB RMSRE is ~20 and the FB
//! median is ~2. If a throughput history exists, use it.

use tputpred_bench::{
    fb_config, fb_error, hw_lso, load_dataset, require_cdf, rmsre_per_trace, Args,
};
use tputpred_core::fb::FbPredictor;
use tputpred_core::metrics::rmsre;
use tputpred_stats::render;

fn main() {
    let args = Args::parse();
    let ds = load_dataset(&args);
    let fb = FbPredictor::new(fb_config(&ds.preset));

    let fb_rmsres: Vec<f64> = ds
        .paths
        .iter()
        .flat_map(|p| p.traces.iter())
        .filter_map(|t| {
            let errors: Vec<f64> = t
                .records
                .iter()
                .filter_map(|rec| rec.complete())
                .map(|rec| fb_error(&fb, &rec))
                .collect();
            rmsre(&errors)
        })
        .collect();
    let hb_rmsres = rmsre_per_trace(&ds, || hw_lso());

    println!("# fig19: CDF over traces of per-trace RMSRE — FB vs HB (0.8-HW-LSO)");
    for (name, rmsres) in [("fb", &fb_rmsres), ("hb_hw_lso", &hb_rmsres)] {
        let cdf = require_cdf(name, rmsres.iter().copied());
        print!("{}", render::cdf_series(name, &cdf, 50));
        println!(
            "# {name}: n={} median={:.3} p90={:.3} P(RMSRE<0.4)={:.3}",
            rmsres.len(),
            cdf.quantile(0.5),
            cdf.quantile(0.9),
            cdf.fraction_below(0.4)
        );
    }
}
