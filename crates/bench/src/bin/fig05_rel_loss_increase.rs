//! **Fig. 5** — CDF of the *relative* loss-rate increase during the
//! target flow, `(p̃ − p̂)/p̃`, over epochs that were lossy a priori
//! (p̂ > 0).
//!
//! Paper: for >70% of such epochs the relative increase exceeds 1.25
//! (p̃ > 2.25·p̂); on average the during-flow loss rate is ~5× the
//! a-priori loss rate — the dominant cause of FB overestimation.

use tputpred_bench::{is_lossy, load_dataset, require_cdf, Args};
use tputpred_stats::render;

fn main() {
    let args = Args::parse();
    let ds = load_dataset(&args);

    let records: Vec<(f64, f64)> = ds
        .complete_epochs()
        .filter(|(_, _, r)| is_lossy(r) && r.p_tilde > 0.0)
        .map(|(_, _, r)| (r.p_hat, r.p_tilde))
        .collect();
    assert!(
        !records.is_empty(),
        "no a-priori-lossy epochs in this dataset"
    );

    let rel: Vec<f64> = records
        .iter()
        .map(|&(p_hat, p_tilde)| (p_tilde - p_hat) / p_tilde)
        .collect();
    println!("# fig05: CDF of relative loss-rate increase (p~ - p^)/p~ (a-priori lossy epochs)");
    let cdf = require_cdf("rel_loss_increase", rel.iter().copied());
    print!("{}", render::cdf_series("rel_loss_increase", &cdf, 60));
    let mean_ratio: f64 = records
        .iter()
        .map(|&(p_hat, p_tilde)| p_tilde / p_hat.max(1e-9))
        .sum::<f64>()
        / records.len() as f64;
    println!(
        "# n={} P(rel increase > 0.555 i.e. p~ > 2.25 p^)={:.3} mean p~/p^={:.2}",
        rel.len(),
        // (p~ - p^)/p~ > 1 - 1/2.25
        1.0 - cdf.fraction_below(1.0 - 1.0 / 2.25),
        mean_ratio
    );
}
