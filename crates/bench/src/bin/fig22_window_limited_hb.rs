//! **Fig. 22** — per-path HB (HW-LSO) RMSRE for window-limited
//! (W = 20 KB) versus congestion-limited (W = 1 MB) transfer series.
//!
//! Paper findings: window-limited series are more predictable (lower
//! RMSRE) on essentially every path, though the gap narrows where the
//! congestion-limited RMSRE is already small (~0.1).

use tputpred_bench::{hw_lso, load_dataset, Args};
use tputpred_core::metrics::evaluate;
use tputpred_stats::render;

fn main() {
    let args = Args::parse();
    let ds = load_dataset(&args);

    println!("# fig22: per-path HW-LSO RMSRE, W=1MB vs W=20KB series");
    let mut table = render::Table::new(["path", "rmsre_w1mb", "rmsre_w20kb"]);
    let mut wins = 0usize;
    let mut comparable = 0usize;
    for p in &ds.paths {
        let mut large = Vec::new();
        let mut small = Vec::new();
        for t in &p.traces {
            let series = t.throughput_series();
            let mut pred = hw_lso();
            if let Some(r) = evaluate(&mut pred, &series).rmsre() {
                large.push(r);
            }
            if let Some(s_series) = t.small_window_series() {
                let mut pred = hw_lso();
                if let Some(r) = evaluate(&mut pred, &s_series).rmsre() {
                    small.push(r);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        if large.is_empty() || small.is_empty() {
            continue;
        }
        let (ml, ms) = (mean(&large), mean(&small));
        comparable += 1;
        if ms <= ml {
            wins += 1;
        }
        table.row([p.config.name.clone(), render::f(ml), render::f(ms)]);
    }
    print!("{}", table.render());
    println!("# window-limited series at least as predictable on {wins}/{comparable} paths");
}
