//! Exports a dataset as flat CSV for external analysis/plotting: one row
//! per measurement epoch with the path's static parameters attached.
//!
//! ```text
//! cargo run --release -p tputpred-bench --bin export_csv -- --preset quick > epochs.csv
//! ```
//!
//! Rows stream out one shard at a time (DESIGN.md §15), so exporting a
//! `synth10k`-scale preset holds only one path's data in memory.

use tputpred_bench::{fb_config, fb_error, Args, EPOCH_CSV_COLUMNS};
use tputpred_core::fb::FbPredictor;
use tputpred_testbed::for_each_path;

/// Missing measurements (degraded/missing epochs) export as empty cells.
fn opt(v: Option<f64>) -> String {
    v.map_or(String::new(), |v| v.to_string())
}

fn main() {
    let args = Args::parse();
    let fb = FbPredictor::new(fb_config(&args.preset));

    println!("{}", EPOCH_CSV_COLUMNS.join(","));
    for_each_path(&args.shard_dir(), &args.preset, |_, p| {
        for (ti, t) in p.traces.iter().enumerate() {
            for (ei, r) in t.records.iter().enumerate() {
                let e = r
                    .complete()
                    .map(|c| fb_error(&fb, &c).to_string())
                    .unwrap_or_default();
                println!(
                    "{},{},{},{:?},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                    p.config.name,
                    ti,
                    ei,
                    r.status,
                    p.config.capacity_bps,
                    p.config.base_rtt(),
                    p.config.buffer_packets,
                    p.config.cross.utilization,
                    p.config.cross.elastic_flows,
                    opt(r.a_hat),
                    opt(r.t_hat),
                    opt(r.p_hat),
                    opt(r.t_tilde),
                    opt(r.p_tilde),
                    opt(r.r_large),
                    opt(r.r_small),
                    opt(r.r_prefix_quarter),
                    opt(r.r_prefix_half),
                    r.flow_loss_events,
                    r.flow_retx_rate,
                    r.flow_rtt,
                    r.true_avail_bw,
                    e,
                );
            }
        }
        Ok(())
    })
    .unwrap_or_else(|e| panic!("dataset load: {e}"));
}
