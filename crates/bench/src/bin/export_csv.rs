//! Exports a dataset as flat CSV for external analysis/plotting: one row
//! per measurement epoch with the path's static parameters attached.
//!
//! ```text
//! cargo run --release -p tputpred-bench --bin export_csv -- --preset quick > epochs.csv
//! ```

use tputpred_bench::{fb_config, fb_error, load_dataset, Args};
use tputpred_core::fb::FbPredictor;

fn main() {
    let args = Args::parse();
    let ds = load_dataset(&args);
    let fb = FbPredictor::new(fb_config(&ds.preset));

    println!(
        "path,trace,epoch,capacity_bps,base_rtt_s,buffer_pkts,utilization,elastic_flows,\
         a_hat_bps,t_hat_s,p_hat,t_tilde_s,p_tilde,r_large_bps,r_small_bps,\
         r_prefix_quarter_bps,r_prefix_half_bps,flow_loss_events,flow_retx_rate,\
         flow_rtt_s,true_avail_bw_bps,fb_error"
    );
    for (pi, p) in ds.paths.iter().enumerate() {
        for (ti, t) in p.traces.iter().enumerate() {
            for (ei, r) in t.records.iter().enumerate() {
                println!(
                    "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                    p.config.name,
                    ti,
                    ei,
                    p.config.capacity_bps,
                    p.config.base_rtt(),
                    p.config.buffer_packets,
                    p.config.cross.utilization,
                    p.config.cross.elastic_flows,
                    r.a_hat,
                    r.t_hat,
                    r.p_hat,
                    r.t_tilde,
                    r.p_tilde,
                    r.r_large,
                    r.r_small.unwrap_or(f64::NAN),
                    r.r_prefix_quarter,
                    r.r_prefix_half,
                    r.flow_loss_events,
                    r.flow_retx_rate,
                    r.flow_rtt,
                    r.true_avail_bw,
                    fb_error(&fb, r),
                );
                let _ = pi;
            }
        }
    }
}
