//! **Ablation (robustness, beyond the paper)** — prediction under
//! measurement faults.
//!
//! The RON testbed the paper measured was not a clean lab: nodes went
//! down, pathload runs failed to converge, probe traffic was lost. This
//! ablation injects those fault classes at increasing rates
//! ([`tputpred_testbed::FaultConfig::uniform`]) and reports how the
//! pipeline degrades:
//!
//! * **FB** predicts via [`FbPredictor::try_predict`] on every epoch's
//!   *partial* a-priori estimates — falling back across Eq. 3's branches
//!   when `Â` or `p̂` is missing, and refusing (typed error, not NaN)
//!   when no usable input survives;
//! * **HB** (HW-LSO) scores over the gappy throughput series via
//!   [`evaluate_gappy`] — missing epochs are skipped, not misread as
//!   level shifts.
//!
//! Expected shape: accuracy decays gracefully — RMSRE grows slowly with
//! the fault rate, the refusal count grows instead of errors exploding,
//! and no fault level panics or emits non-finite predictions.
//!
//! A second sweep varies the outage **burst length** instead of the
//! rate: the correlated-regime chain (DESIGN.md §13) is switched on and
//! the mean Down-dwell stretched from 1 to 12 epochs at fixed entry
//! probabilities. Independent per-epoch faults understate the serving
//! problem — the same number of dark epochs hurts far more in one
//! contiguous burst — so this table also scores the registry's
//! three-tier fallback chain (`FB->0.8-HW-LSO->LKG`), whose
//! availability should hold as bursts lengthen while bare FB's refusals
//! climb.
//!
//! Simulates at run time (no dataset cache); `--preset` selects the
//! epoch scale. Output goes to stdout **and** `results/abl_faults.txt`.

use tputpred_bench::{epoch_observations, fb_config, hw_lso, partial_a_priori, Args};
use tputpred_core::catalog::predictor_by_name;
use tputpred_core::fb::FbPredictor;
use tputpred_core::metrics::{evaluate_epochs, evaluate_gappy, relative_error_floored, rmsre};
use tputpred_stats::{quantile, render};
use tputpred_testbed::{generate, FaultConfig, Preset, RegimeConfig};

fn main() {
    let args = Args::parse();
    // A scaled-down campaign per fault level, derived from the preset's
    // epoch shape (the sweep simulates 6 datasets, so keep each small).
    let base = Preset {
        name: String::new(), // set per level below
        paths: args.preset.paths.min(8),
        traces_per_path: 1,
        epochs_per_trace: args.preset.epochs_per_trace.min(30),
        ..args.preset.clone()
    };

    println!("# abl_faults: FB/HB accuracy vs measurement-fault rate (graceful degradation)");
    let mut table = render::Table::new([
        "fault_rate",
        "epochs",
        "degraded_frac",
        "fb_scored",
        "fb_refused",
        "fb_rmsre",
        "hb_median_rmsre",
    ]);
    for rate in [0.0, 0.02, 0.05, 0.1, 0.2, 0.4] {
        let preset = Preset {
            name: format!("abl-faults-{rate:.2}"),
            faults: FaultConfig::uniform(rate),
            ..base.clone()
        };
        let ds = generate(&preset);
        let fb = FbPredictor::new(fb_config(&preset));

        // FB over EVERY epoch's partial estimates: score what it
        // predicts, count what it refuses. A prediction is scorable only
        // when the epoch's large transfer completed.
        let mut fb_errors = Vec::new();
        let mut refused = 0usize;
        for (_, _, rec) in ds.epochs() {
            match fb.try_predict(&partial_a_priori(rec)) {
                Ok(pred) => {
                    assert!(pred.is_finite(), "degraded FB prediction stays finite");
                    if let Some(r_large) = rec.r_large {
                        fb_errors.push(relative_error_floored(pred, r_large));
                    }
                }
                Err(_) => refused += 1,
            }
        }

        // HB over the gappy series of each trace.
        let hb_rmsres: Vec<f64> = ds
            .paths
            .iter()
            .flat_map(|p| p.traces.iter())
            .filter_map(|t| {
                let mut pred = hw_lso();
                evaluate_gappy(&mut pred, &t.throughput_series_gappy()).rmsre()
            })
            .collect();

        let epochs = ds.epoch_count();
        table.row([
            render::f(rate),
            epochs.to_string(),
            render::f(ds.degraded_count() as f64 / epochs.max(1) as f64),
            fb_errors.len().to_string(),
            refused.to_string(),
            rmsre(&fb_errors).map_or("n/a".into(), render::f),
            quantile(&hb_rmsres, 0.5).map_or("n/a".into(), render::f),
        ]);
    }
    let rendered = table.render();
    print!("{rendered}");
    let footer = "# expected shape: degraded_frac tracks the fault rate; FB refuses (typed\n\
                  # errors) rather than exploding; HB RMSRE drifts up slowly as gaps thin\n\
                  # the history. No fault level panics or yields non-finite predictions.\n";
    print!("{footer}");

    // Second sweep: outage burst length at a fixed fault rate. The
    // regime chain turns 5% independent faults into multi-epoch Down
    // spells whose mean dwell is the knob (DESIGN.md §13).
    let burst_header = "# abl_faults: accuracy vs outage burst length (mean Down-dwell epochs)\n";
    print!("{burst_header}");
    let mut burst_table = render::Table::new([
        "down_dwell",
        "epochs",
        "missing_frac",
        "fb_refused",
        "hb_median_rmsre",
        "chain_median_rmsre",
        "chain_availability",
    ]);
    for dwell in [1.0, 3.0, 6.0, 12.0] {
        let preset = Preset {
            name: format!("abl-dwell-{dwell:.0}"),
            faults: FaultConfig::uniform(0.05),
            regimes: RegimeConfig {
                degraded_entry: 0.1,
                down_entry: 0.2,
                mean_degraded_dwell: 3.0,
                mean_down_dwell: dwell,
                fault_multiplier: 4.0,
            },
            ..base.clone()
        };
        let ds = generate(&preset);
        let fb = FbPredictor::new(fb_config(&preset));

        let mut missing = 0usize;
        let mut refused = 0usize;
        for (_, _, rec) in ds.epochs() {
            if rec.faults.node_down {
                missing += 1;
            }
            if fb.try_predict(&partial_a_priori(rec)).is_err() {
                refused += 1;
            }
        }

        let hb_rmsres: Vec<f64> = ds
            .paths
            .iter()
            .flat_map(|p| p.traces.iter())
            .filter_map(|t| {
                let mut pred = hw_lso();
                evaluate_gappy(&mut pred, &t.throughput_series_gappy()).rmsre()
            })
            .collect();

        // The three-tier fallback chain over the full epoch protocol:
        // availability is what the policy layer buys through bursts.
        let mut chain_rmsres = Vec::new();
        let mut chain_forecasts = 0usize;
        let mut chain_epochs = 0usize;
        for trace in ds.paths.iter().flat_map(|p| p.traces.iter()) {
            let mut chain = predictor_by_name("FB->0.8-HW-LSO->LKG", &fb_config(&preset))
                .unwrap_or_else(|| unreachable!("registry entry exists"));
            let result = evaluate_epochs(&mut chain, &epoch_observations(trace));
            chain_epochs += result.predictions.len();
            chain_forecasts += result.predictions.iter().filter(|p| p.is_some()).count();
            if let Some(r) = result.rmsre() {
                chain_rmsres.push(r);
            }
        }

        let epochs = ds.epoch_count();
        burst_table.row([
            render::f(dwell),
            epochs.to_string(),
            render::f(missing as f64 / epochs.max(1) as f64),
            refused.to_string(),
            quantile(&hb_rmsres, 0.5).map_or("n/a".into(), render::f),
            quantile(&chain_rmsres, 0.5).map_or("n/a".into(), render::f),
            render::f(chain_forecasts as f64 / chain_epochs.max(1) as f64),
        ]);
    }
    let burst_rendered = burst_table.render();
    print!("{burst_rendered}");
    let burst_footer =
        "# expected shape: missing_frac climbs as bursts lengthen (same entry rate,\n\
                        # longer Down spells) and FB refusals climb with it; the fallback chain's\n\
                        # availability stays near 1 because LKG keeps answering through bursts.\n";
    print!("{burst_footer}");

    // Also persist the tables so CI's smoke run leaves an artifact.
    let out = std::path::Path::new("results").join("abl_faults.txt");
    if let Some(dir) = out.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let artifact = format!("{rendered}{footer}{burst_header}{burst_rendered}{burst_footer}");
    if let Err(e) = std::fs::write(&out, artifact) {
        eprintln!("# warning: could not write {}: {e}", out.display());
    } else {
        eprintln!("# wrote {}", out.display());
    }
}
