//! **Fig. 8** — scatter of actual throughput `R` against FB prediction
//! error `E`.
//!
//! Paper finding: the large overestimations concentrate at *small*
//! throughputs — "42% of the samples with R ≤ 0.5 Mbps have E > 10,
//! compared to 0.2% for samples with R ≥ 0.5 Mbps". Congested, slow
//! paths are the hard ones.

use tputpred_bench::{fb_config, fb_error, load_dataset, Args};
use tputpred_core::fb::FbPredictor;
use tputpred_stats::render;

fn main() {
    let args = Args::parse();
    let ds = load_dataset(&args);
    let fb = FbPredictor::new(fb_config(&ds.preset));

    let points: Vec<(f64, f64)> = ds
        .complete_epochs()
        .map(|(_, _, rec)| (rec.r_large / 1e6, fb_error(&fb, &rec)))
        .collect();

    println!("# fig08: actual throughput (Mbps) vs FB prediction error E");
    print!("{}", render::series("r_vs_e", &points));

    let slow: Vec<f64> = points
        .iter()
        .filter(|(r, _)| *r <= 0.5)
        .map(|&(_, e)| e)
        .collect();
    let fast: Vec<f64> = points
        .iter()
        .filter(|(r, _)| *r > 0.5)
        .map(|&(_, e)| e)
        .collect();
    let frac = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().filter(|&&e| e > 10.0).count() as f64 / v.len() as f64
        }
    };
    println!(
        "# P(E>10 | R<=0.5 Mbps) = {:.3} (n={}), P(E>10 | R>0.5 Mbps) = {:.3} (n={})",
        frac(&slow),
        slow.len(),
        frac(&fast),
        fast.len()
    );
}
