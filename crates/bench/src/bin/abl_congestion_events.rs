//! **Ablation (paper §3.3 / ref \[13\])** — packet loss rate versus
//! congestion-event probability.
//!
//! "Our ns2 simulations suggest that a loss rate estimate based on a
//! periodic ping-based measurement can be an order of magnitude
//! different than the congestion event probability" — Goyal et al.'s
//! \[13\] p-vs-p′ distinction. The dataset records all three views of
//! the same epochs:
//!
//! * `p̂` — ping packet-loss before the flow (what naive FB feeds PFTK);
//! * the flow's per-segment retransmission fraction (its packet loss);
//! * the flow's *congestion events per segment* (fast retransmits +
//!   timeouts over segments sent — the `p` PFTK's derivation means).
//!
//! The table reports the pairwise ratios over the lossy epochs.

use tputpred_bench::{is_lossy, load_dataset, Args};
use tputpred_stats::{quantile, render};
use tputpred_testbed::CompleteEpoch;

fn event_rate(rec: &CompleteEpoch) -> Option<f64> {
    // Segments sent ≈ delivered/MSS + retransmits; reconstruct from the
    // recorded retransmit fraction and loss events. The dataset keeps
    // flow_retx_rate = retx/sent and flow_loss_events, so sent =
    // loss_events / (events per sent); we need sent directly — derive it
    // from the transfer size instead: r_large × duration / (8 × MSS) is
    // the delivered segment count; sent = delivered / (1 − retx_rate).
    let delivered_segments = rec.r_large / 8.0 / 1448.0; // per second
    if delivered_segments <= 0.0 {
        return None;
    }
    // Per-second rates cancel in the ratio below, so use them directly:
    // events per sent-segment-per-second over segments-per-second.
    let sent_per_sec = delivered_segments / (1.0 - rec.flow_retx_rate).max(0.05);
    Some((rec.flow_loss_events as f64 / sent_per_sec).min(1.0))
}

fn main() {
    let args = Args::parse();
    let ds = load_dataset(&args);
    let duration = ds.preset.transfer.as_secs_f64();

    let mut ping_over_event = Vec::new();
    let mut pktloss_over_event = Vec::new();
    let mut ping_over_pktloss = Vec::new();
    for (_, _, rec) in ds.complete_epochs() {
        if !is_lossy(&rec) || rec.flow_loss_events == 0 {
            continue;
        }
        let Some(ev_per_sec_sent) = event_rate(&rec) else {
            continue;
        };
        // events per segment = events / (sent_per_sec × duration)
        let p_event = (ev_per_sec_sent / duration).min(1.0);
        let p_pkt = rec.flow_retx_rate;
        if p_event <= 0.0 || p_pkt <= 0.0 {
            continue;
        }
        ping_over_event.push(rec.p_hat / p_event);
        pktloss_over_event.push(p_pkt / p_event);
        ping_over_pktloss.push(rec.p_hat / p_pkt);
    }

    println!("# abl_congestion_events: three views of 'loss rate' on the same lossy epochs");
    println!("# (ratios; PFTK's p is the congestion-EVENT probability, ref [13])");
    let mut table = render::Table::new(["ratio", "p25", "median", "p75", "n"]);
    for (name, v) in [
        ("ping p^ / p_event", &ping_over_event),
        ("flow pkt-loss / p_event", &pktloss_over_event),
        ("ping p^ / flow pkt-loss", &ping_over_pktloss),
    ] {
        table.row([
            name.to_string(),
            render::f(quantile(v, 0.25).unwrap_or(f64::NAN)),
            render::f(quantile(v, 0.5).unwrap_or(f64::NAN)),
            render::f(quantile(v, 0.75).unwrap_or(f64::NAN)),
            v.len().to_string(),
        ]);
    }
    print!("{}", table.render());
    println!("# expected shape: packet loss exceeds event probability (correlated drops");
    println!("# within a window count once), and the a-priori ping rate differs from both —");
    println!("# feeding ping loss into PFTK as if it were p is already a category error.");
}
