//! Profiles the sharded dataset load end to end and emits
//! `BENCH_gen_<preset>.json` (DESIGN.md §11):
//!
//! ```text
//! cargo run --release -p tputpred-bench --bin perf_report -- --preset quick
//! ```
//!
//! The load runs with telemetry enabled against the per-path shard
//! cache `data/<preset>/` (DESIGN.md §9), so the report reflects what a
//! figure binary would pay: a cold cache profiles the simulator, a warm
//! one profiles shard deserialization, and the `shards_*` counters say
//! which case ran. Delete `data/<preset>/` first for a full simulator
//! profile. Stdout gets the human-readable stage/path tables; the JSON
//! report lands in the working directory.
//!
//! With `--baseline <file>` the run is additionally gated against a
//! committed report (DESIGN.md §14): exit code 1 when this run's
//! events/s falls below [`profile::BASELINE_MIN_RATIO`] of the
//! baseline's.

use tputpred_bench::{profile, Args};
use tputpred_testbed::EpochStatus;

fn main() {
    let args = Args::parse();
    let mut epochs = 0usize;
    let mut degraded = 0usize;
    // Stream the shards (DESIGN.md §15): the epoch tallies accumulate
    // per visited path, so a 10k-path profile never holds the dataset.
    let (_, report) = profile::profile_for_each_path(&args, |_, path| {
        for trace in &path.traces {
            for rec in &trace.records {
                epochs += 1;
                if rec.status != EpochStatus::Ok {
                    degraded += 1;
                }
            }
        }
        Ok(())
    })
    .unwrap_or_else(|e| panic!("profiled generation: {e}"));
    print!("{}", profile::render_perf_report(&report));
    println!(
        "# dataset: {} ({} epochs, {} degraded)",
        args.preset.name, epochs, degraded
    );
    let out = profile::perf_report_path(&args.preset.name);
    profile::write_perf_report(&report, &out)
        .unwrap_or_else(|e| panic!("writing {}: {e}", out.display()));
    println!("# perf report -> {}", out.display());

    if let Some(baseline_path) = &args.baseline {
        let baseline = profile::read_perf_report(baseline_path)
            .unwrap_or_else(|e| panic!("reading baseline {}: {e}", baseline_path.display()));
        let gate = profile::gate_against_baseline(&report, &baseline);
        println!("{}", profile::render_baseline_gate(&gate));
        if report.events == 0 {
            eprintln!(
                "# perf gate: this run regenerated nothing (warm shard cache), so there is \
                 no event rate to gate — delete data/{}/ and rerun cold",
                args.preset.name
            );
        }
        if !gate.pass {
            std::process::exit(1);
        }
    }
}
