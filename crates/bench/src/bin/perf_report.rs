//! Profiles dataset generation end to end and emits
//! `BENCH_gen_<preset>.json` (DESIGN.md §11):
//!
//! ```text
//! cargo run --release -p tputpred-bench --bin perf_report -- --preset quick
//! ```
//!
//! Generation always runs fresh with telemetry enabled (a cache hit
//! would time JSON parsing, not the simulator); the resulting dataset is
//! saved to the normal cache path, so a following figure binary reuses
//! it. Stdout gets the human-readable stage/path tables; the JSON report
//! lands in the working directory.

use tputpred_bench::{profile, Args};

fn main() {
    let args = Args::parse();
    let (ds, report) =
        profile::profile_generation(&args).unwrap_or_else(|e| panic!("profiled generation: {e}"));
    print!("{}", profile::render_perf_report(&report));
    println!(
        "# dataset: {} ({} epochs, {} degraded)",
        ds.preset.name,
        ds.epoch_count(),
        ds.degraded_count()
    );
    let out = profile::perf_report_path(&args.preset.name);
    profile::write_perf_report(&report, &out)
        .unwrap_or_else(|e| panic!("writing {}: {e}", out.display()));
    println!("# perf report -> {}", out.display());
}
