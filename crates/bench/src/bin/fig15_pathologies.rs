//! **Fig. 15** — the three pathological example traces and the RMSRE of
//! each predictor on them:
//!
//! (a) a clean level shift; (b) a trend plus level shift plus outliers;
//! (c) a level shift plus outliers. Bars: `n-MA` for n ∈ {1, 5, 10, 20},
//! the same with LSO, EWMA/HW at α ∈ {0.3, 0.5, 0.8}, and HW-LSO.
//!
//! Paper findings (§5.3): without LSO the parameter choice matters a
//! lot; LSO cuts the error sharply and makes all predictors perform
//! alike.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tputpred_bench::PredictorZoo;
use tputpred_core::hb::{Ewma, HoltWinters, MovingAverage};
use tputpred_core::lso::Lso;
use tputpred_core::metrics::evaluate;
use tputpred_stats::render;

/// Noise around a level: ±5%.
fn noisy(rng: &mut StdRng, level: f64) -> f64 {
    level * rng.random_range(0.95..1.05)
}

/// (a) A stable level with one clean downward level shift.
fn trace_a(rng: &mut StdRng) -> Vec<f64> {
    (0..60)
        .map(|i| noisy(rng, if i < 30 { 20e6 } else { 8e6 }))
        .collect()
}

/// (b) A rising trend, then a level shift, with two outliers.
fn trace_b(rng: &mut StdRng) -> Vec<f64> {
    let mut xs: Vec<f64> = (0..60)
        .map(|i| {
            if i < 30 {
                noisy(rng, 5e6 + 0.2e6 * i as f64) // trend
            } else {
                noisy(rng, 18e6) // shifted level
            }
        })
        .collect();
    xs[12] = 40e6;
    xs[45] = 2e6;
    xs
}

/// (c) A level shift plus scattered outliers.
fn trace_c(rng: &mut StdRng) -> Vec<f64> {
    let mut xs: Vec<f64> = (0..60)
        .map(|i| noisy(rng, if i < 20 { 6e6 } else { 15e6 }))
        .collect();
    xs[8] = 25e6;
    xs[35] = 3e6;
    xs[50] = 45e6;
    xs
}

fn zoo() -> PredictorZoo {
    vec![
        ("1-MA", || Box::new(MovingAverage::new(1)) as _),
        ("5-MA", || Box::new(MovingAverage::new(5)) as _),
        ("10-MA", || Box::new(MovingAverage::new(10)) as _),
        ("20-MA", || Box::new(MovingAverage::new(20)) as _),
        ("5-MA-LSO", || {
            Box::new(Lso::new(MovingAverage::new(5))) as _
        }),
        ("10-MA-LSO", || {
            Box::new(Lso::new(MovingAverage::new(10))) as _
        }),
        ("20-MA-LSO", || {
            Box::new(Lso::new(MovingAverage::new(20))) as _
        }),
        ("0.3-EWMA", || Box::new(Ewma::new(0.3)) as _),
        ("0.5-EWMA", || Box::new(Ewma::new(0.5)) as _),
        ("0.8-EWMA", || Box::new(Ewma::new(0.8)) as _),
        ("0.3-HW", || Box::new(HoltWinters::new(0.3, 0.2)) as _),
        ("0.5-HW", || Box::new(HoltWinters::new(0.5, 0.2)) as _),
        ("0.8-HW", || Box::new(HoltWinters::new(0.8, 0.2)) as _),
        ("0.8-HW-LSO", || {
            Box::new(Lso::new(HoltWinters::new(0.8, 0.2))) as _
        }),
    ]
}

fn main() {
    let mut rng = StdRng::seed_from_u64(15);
    let traces = [
        ("a_level_shift", trace_a(&mut rng)),
        ("b_trend_shift_outliers", trace_b(&mut rng)),
        ("c_shift_outliers", trace_c(&mut rng)),
    ];

    println!("# fig15: pathological traces (Mbps) and per-predictor RMSRE");
    for (name, series) in &traces {
        let pts: Vec<(f64, f64)> = series
            .iter()
            .enumerate()
            .map(|(i, &x)| (i as f64, x / 1e6))
            .collect();
        print!("{}", render::series(&format!("trace_{name}"), &pts));
    }

    let mut table = render::Table::new(["predictor", "trace_a", "trace_b", "trace_c"]);
    for (label, make) in zoo() {
        let mut cells = vec![label.to_string()];
        for (_, series) in &traces {
            let mut p = make();
            let rmsre = evaluate(&mut p, series).rmsre().unwrap_or(f64::NAN);
            cells.push(render::f(rmsre));
        }
        table.row(cells);
    }
    print!("{}", table.render());
}
