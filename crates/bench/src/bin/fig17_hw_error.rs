//! **Fig. 17** — CDF over traces of the per-trace RMSRE for
//! Holt-Winters (several α) and EWMA, with and without LSO.
//!
//! Paper findings: α = 0.8 is near-optimal; EWMA performs like HW; LSO
//! improves HW significantly; HW-LSO edges out MA-LSO only slightly
//! (few traces have persistent linear trends).

use tputpred_bench::{load_dataset, require_cdf, rmsre_per_trace, Args, PredictorZoo};
use tputpred_core::hb::{Ewma, HoltWinters};
use tputpred_core::lso::Lso;
use tputpred_stats::render;

fn main() {
    let args = Args::parse();
    let ds = load_dataset(&args);

    let variants: PredictorZoo = vec![
        ("0.3-HW", || Box::new(HoltWinters::new(0.3, 0.2)) as _),
        ("0.5-HW", || Box::new(HoltWinters::new(0.5, 0.2)) as _),
        ("0.8-HW", || Box::new(HoltWinters::new(0.8, 0.2)) as _),
        ("0.8-EWMA", || Box::new(Ewma::new(0.8)) as _),
        ("0.3-HW-LSO", || {
            Box::new(Lso::new(HoltWinters::new(0.3, 0.2))) as _
        }),
        ("0.8-HW-LSO", || {
            Box::new(Lso::new(HoltWinters::new(0.8, 0.2))) as _
        }),
        ("0.8-EWMA-LSO", || Box::new(Lso::new(Ewma::new(0.8))) as _),
    ];

    println!("# fig17: CDF over traces of per-trace RMSRE, HW/EWMA predictors +/- LSO");
    for (name, make) in variants {
        let rmsres = rmsre_per_trace(&ds, make);
        let cdf = require_cdf(name, rmsres.iter().copied());
        print!("{}", render::cdf_series(name, &cdf, 50));
        println!(
            "# {name}: n={} median={:.3} P(RMSRE<0.4)={:.3}",
            rmsres.len(),
            cdf.quantile(0.5),
            cdf.fraction_below(0.4)
        );
    }
}
