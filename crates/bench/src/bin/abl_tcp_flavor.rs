//! **Ablation (paper §1)** — sensitivity of throughput and FB prediction
//! to the TCP flavor at the end hosts.
//!
//! The paper lists "the exact implementation of TCP at the end-hosts"
//! among the factors TCP throughput depends on, and the PFTK model is
//! derived for Reno specifically. This ablation runs the same path and
//! cross traffic with Reno and NewReno target flows and reports the
//! achieved throughput, loss-recovery mix, and the FB error each flavor
//! would induce — quantifying how much a formula calibrated for one
//! flavor misses on another.

use tputpred_bench::Args;
use tputpred_core::fb::{FbConfig, FbPredictor, PathEstimates};
use tputpred_core::metrics::{relative_error_floored, rmsre};
use tputpred_netsim::link::LinkConfig;
use tputpred_netsim::sources::{ParetoOnOffSource, Sink, SourceConfig};
use tputpred_netsim::{RateSchedule, Route, Simulator, Time};
use tputpred_probes::BulkTransfer;
use tputpred_stats::{render, Summary};
use tputpred_tcp::{TcpConfig, TcpFlavor};

fn run_flavor(flavor: TcpFlavor, buffer: u32, epochs: usize) -> (f64, f64, f64, f64) {
    let mut sim = Simulator::new(27);
    let fwd = sim.add_link(LinkConfig::new(10e6, Time::from_millis(30), buffer));
    let rev = sim.add_link(LinkConfig::new(1e9, Time::from_millis(30), 1000));
    let (sink, _) = Sink::new();
    let sink_id = sim.add_endpoint(Box::new(sink));
    let (src, _) = ParetoOnOffSource::new(
        SourceConfig {
            route: Route::direct(fwd),
            dst: sink_id,
            packet_size: 1000,
            base_rate_bps: 4e6,
            schedule: RateSchedule::constant(1.0),
            stop: Time::MAX,
        },
        0.5,
        1.6,
        0.3,
    );
    let id = sim.add_endpoint(Box::new(src));
    sim.schedule_timer(id, 0, Time::ZERO);

    let fb = FbPredictor::new(FbConfig::default());
    let est = PathEstimates {
        rtt: 0.060,
        loss_rate: 0.0,
        avail_bw: 6e6,
    };
    let mut tputs = Summary::new();
    let mut errors = Vec::new();
    let mut timeouts = 0u64;
    let mut fast = 0u64;
    let mut t = Time::from_secs(3);
    for _ in 0..epochs {
        let stop = t + Time::from_secs(12);
        let transfer = BulkTransfer::launch(
            &mut sim,
            TcpConfig {
                flavor,
                ..TcpConfig::default()
            },
            Route::direct(fwd),
            Route::direct(rev),
            t,
            stop,
        );
        sim.run_until(stop + Time::from_secs(2));
        let r = transfer.throughput().max(1e3);
        tputs.push(r);
        errors.push(relative_error_floored(fb.predict(&est), r));
        let s = transfer.stats().borrow();
        timeouts += s.timeouts;
        fast += s.fast_retransmits;
        t = sim.now() + Time::from_secs(2);
    }
    (
        tputs.mean(),
        rmsre(&errors).unwrap_or(f64::NAN),
        timeouts as f64 / epochs as f64,
        fast as f64 / epochs as f64,
    )
}

fn main() {
    let _args = Args::parse();
    println!("# abl_tcp_flavor: Reno vs NewReno target flows on the same loaded path");
    let mut table = render::Table::new([
        "flavor",
        "buffer_pkts",
        "mean_mbps",
        "fb_rmsre",
        "timeouts/epoch",
        "fastretx/epoch",
    ]);
    for buffer in [12u32, 30] {
        for (name, flavor) in [("reno", TcpFlavor::Reno), ("newreno", TcpFlavor::NewReno)] {
            let (mean, fb_rmsre, to, fr) = run_flavor(flavor, buffer, 15);
            table.row([
                name.to_string(),
                buffer.to_string(),
                render::mbps(mean),
                render::f(fb_rmsre),
                render::f(to),
                render::f(fr),
            ]);
        }
    }
    print!("{}", table.render());
    println!("# expected shape: NewReno converts timeouts into fast recoveries on shallow");
    println!("# buffers, raising throughput slightly; the FB error moves with it — the");
    println!("# formula's accuracy depends on the end-host TCP flavor (paper section 1).");
}
