//! **Fig. 20** — scatter of the segment-weighted Coefficient of
//! Variation of each trace's throughput series against the HW-LSO
//! per-trace RMSRE (§6.1.3).
//!
//! Paper finding: a strong correlation (r = 0.91) — to first order, the
//! HB prediction error *is* the CoV of the underlying time series, so
//! path variability determines predictability.

use tputpred_bench::{hw_lso, load_dataset, Args};
use tputpred_core::lso::LsoConfig;
use tputpred_core::metrics::{evaluate, segmented_cov};
use tputpred_stats::{pearson, render, spearman};

fn main() {
    let args = Args::parse();
    let ds = load_dataset(&args);

    let mut points = Vec::new();
    for p in &ds.paths {
        for t in &p.traces {
            let series = t.throughput_series();
            let Some(cov) = segmented_cov(&series, LsoConfig::default()) else {
                continue;
            };
            let mut pred = hw_lso();
            let Some(rmsre) = evaluate(&mut pred, &series).rmsre() else {
                continue;
            };
            points.push((cov, rmsre));
        }
    }

    println!("# fig20: per-trace segmented CoV vs 0.8-HW-LSO RMSRE");
    print!("{}", render::series("cov_vs_rmsre", &points));
    let xs: Vec<f64> = points.iter().map(|&(x, _)| x).collect();
    let ys: Vec<f64> = points.iter().map(|&(_, y)| y).collect();
    // Raw Pearson is fragile to a single catastrophic trace (a sudden
    // collapse no predictor can foresee); report it alongside the rank
    // correlation and a Pearson over the non-catastrophic bulk — the
    // paper likewise excluded its "excessive error" paths from such
    // summaries (§4.2.4).
    let trimmed: Vec<(f64, f64)> = points.iter().copied().filter(|&(_, y)| y < 10.0).collect();
    let txs: Vec<f64> = trimmed.iter().map(|&(x, _)| x).collect();
    let tys: Vec<f64> = trimmed.iter().map(|&(_, y)| y).collect();
    println!(
        "# n={} pearson_r={} spearman_r={} pearson_r_rmsre_below_10={} (n={})",
        points.len(),
        pearson(&xs, &ys).map_or("n/a".into(), render::f),
        spearman(&xs, &ys).map_or("n/a".into(), render::f),
        pearson(&txs, &tys).map_or("n/a".into(), render::f),
        trimmed.len(),
    );
}
