//! **Fig. 7** — per-path variation of the FB prediction error: median
//! and 10th/90th percentiles of `E` for each path.
//!
//! Paper findings: most paths mainly overestimate; ~10/35 paths have far
//! larger errors and wider ranges (up to E = 10 and beyond) — path
//! predictability itself is path-dependent. (The paper drops its three
//! worst paths from the plot; we print all and flag the extremes.)

use tputpred_bench::{fb_config, fb_error, load_dataset, Args};
use tputpred_core::fb::FbPredictor;
use tputpred_stats::{quantile, render};

fn main() {
    let args = Args::parse();
    let ds = load_dataset(&args);
    let fb = FbPredictor::new(fb_config(&ds.preset));

    println!("# fig07: per-path FB error quantiles (E)");
    let mut table = render::Table::new(["path", "n", "p10", "median", "p90", "extreme"]);
    for p in &ds.paths {
        let errors: Vec<f64> = p
            .traces
            .iter()
            .flat_map(|t| t.records.iter())
            .filter_map(|rec| rec.complete())
            .map(|rec| fb_error(&fb, &rec))
            .collect();
        if errors.is_empty() {
            continue;
        }
        let p10 = quantile(&errors, 0.1).unwrap();
        let med = quantile(&errors, 0.5).unwrap();
        let p90 = quantile(&errors, 0.9).unwrap();
        table.row([
            p.config.name.clone(),
            errors.len().to_string(),
            render::f(p10),
            render::f(med),
            render::f(p90),
            if p90 > 10.0 {
                "*".into()
            } else {
                String::new()
            },
        ]);
    }
    print!("{}", table.render());
}
