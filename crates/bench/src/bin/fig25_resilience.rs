//! **Fig. 25 (beyond the paper)** — the resilience league table: every
//! registry predictor driven through a correlated-outage campaign,
//! scored per outage regime on availability × accuracy.
//!
//! The paper's RON campaign discarded failed epochs after the fact; a
//! serving predictor must answer *through* them. This binary turns the
//! regime process of `tputpred_testbed::faults` (DESIGN.md §13) on — a
//! per-trace Healthy ↔ Degraded ↔ Down semi-Markov chain with geometric
//! dwell times amplifying the fault rates — and evaluates the whole
//! predictor registry, including the resilience policy combinators
//! (fallback chains, staleness guards, circuit breakers), with the same
//! [`evaluate_epochs`] protocol as `fig24_league_table`.
//!
//! Per (predictor, regime) the table reports how often the predictor
//! produced a forecast at all (**availability**) and the pooled RMSRE of
//! the forecasts that could be scored — accuracy *conditioned on outage
//! state* (cf. arXiv:2111.14080), not averaged away. The regime of each
//! epoch is recomputed from the trace seed via
//! [`tputpred_testbed::draw_regimes`]; it is a prefix of the same salted
//! fault stream the generator consumed, so the labels match the dataset
//! bit for bit.
//!
//! Simulates at run time (no dataset cache: the campaign preset differs
//! from the stock ones); `--preset` selects the epoch scale. Output: a
//! fixed-width table plus policy `obs` counters on stdout (replayed
//! bit-identically across runs, which CI checks), and
//! `results/resilience_<preset>.csv` (schema
//! [`tputpred_bench::RESILIENCE_CSV_COLUMNS`], pinned by
//! `crates/bench/tests/results_schema.rs`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use tputpred_bench::{epoch_observations, fb_config, Args, RESILIENCE_CSV_COLUMNS};
use tputpred_core::catalog::predictor_catalog;
use tputpred_core::metrics::{evaluate_epochs, rmsre};
use tputpred_stats::render;
use tputpred_testbed::{
    draw_regimes, generate_each, trace_seed, FaultConfig, OutageRegime, Preset, RegimeConfig,
};

/// Regime columns of the table: the pooled "all" plus one per state.
const REGIME_LABELS: [&str; 4] = ["all", "healthy", "degraded", "down"];

/// Index of a regime's column (offset by one for "all").
fn regime_column(regime: OutageRegime) -> usize {
    match regime {
        OutageRegime::Healthy => 1,
        OutageRegime::Degraded => 2,
        OutageRegime::Down => 3,
    }
}

/// Per-(predictor, regime) accumulation.
#[derive(Default)]
struct Cell {
    /// Epochs of this regime the predictor was evaluated over.
    epochs: usize,
    /// Epochs it produced a forecast on.
    forecasts: usize,
    /// Relative errors of the scoreable forecasts (outliers excluded).
    errors: Vec<f64>,
}

fn main() {
    let args = Args::parse();
    // A scaled-down campaign derived from the preset's epoch shape,
    // with moderate base faults for the regime chain to amplify.
    let preset = Preset {
        name: format!("resilience-{}", args.preset.name),
        paths: args.preset.paths.min(8),
        traces_per_path: 1,
        epochs_per_trace: args.preset.epochs_per_trace.min(40),
        faults: FaultConfig::uniform(0.08),
        regimes: RegimeConfig::flaky(),
        ..args.preset.clone()
    };
    let cfg = fb_config(&preset);
    let catalog = predictor_catalog();

    // The campaign streams (DESIGN.md §15): each path is simulated,
    // evaluated, and dropped, so a synth-scale preset never holds more
    // than one fan-out chunk of traces in memory.
    let mut cells: BTreeMap<(usize, usize), Cell> = BTreeMap::new();
    let ((), report) = tputpred_obs::with_profiling(|| {
        generate_each(&preset, |_, path| {
            for (t_idx, trace) in path.traces.iter().enumerate() {
                let epochs = epoch_observations(trace);
                let regimes = draw_regimes(
                    &preset.regimes,
                    trace_seed(&path.config, t_idx),
                    preset.epochs_per_trace,
                );
                for (pos, entry) in catalog.iter().enumerate() {
                    let mut predictor = (entry.make)(&cfg);
                    let result = evaluate_epochs(&mut predictor, &epochs);
                    for (k, regime) in regimes.iter().enumerate() {
                        let scoreable = result.errors.get(k).copied().flatten();
                        let answered = result.predictions.get(k).is_some_and(|p| p.is_some());
                        let outlier = result.outliers.contains(&k);
                        for col in [0, regime_column(*regime)] {
                            let cell = cells.entry((pos, col)).or_default();
                            cell.epochs += 1;
                            if answered {
                                cell.forecasts += 1;
                            }
                            if let Some(e) = scoreable {
                                if !outlier {
                                    cell.errors.push(e);
                                }
                            }
                        }
                    }
                }
            }
        });
    });

    println!(
        "# fig25: availability x RMSRE per outage regime, {} predictors x {} paths ({} preset)",
        catalog.len(),
        preset.paths,
        args.preset.name
    );
    println!("# regimes: flaky chain over uniform(0.08) base faults (DESIGN.md 13);");
    println!("# availability = epochs with a forecast / epochs; rmsre pools scoreable");
    println!("# epochs of the regime, LSO outliers excluded.");
    let mut table = render::Table::new([
        "predictor",
        "regime",
        "epochs",
        "forecasts",
        "availability",
        "scored",
        "rmsre",
    ]);
    let mut csv = String::new();
    csv.push_str(&RESILIENCE_CSV_COLUMNS.join(","));
    csv.push('\n');
    for ((pos, col), cell) in &cells {
        let name = catalog[*pos].name;
        let regime = REGIME_LABELS[*col];
        let availability = cell.forecasts as f64 / cell.epochs.max(1) as f64;
        let pooled = rmsre(&cell.errors);
        table.row([
            name.to_string(),
            regime.to_string(),
            cell.epochs.to_string(),
            cell.forecasts.to_string(),
            render::f(availability),
            cell.errors.len().to_string(),
            pooled.map_or("n/a".into(), render::f),
        ]);
        let _ = writeln!(
            csv,
            "{name},{regime},{},{},{availability},{},{}",
            cell.epochs,
            cell.forecasts,
            cell.errors.len(),
            pooled.map_or("n/a".to_string(), |r| r.to_string()),
        );
    }
    print!("{}", table.render());

    // The policy layer's own decision counters, from the same run.
    for counter in report.counters_with_prefix("core.resilience.") {
        println!("# {} = {}", counter.name, counter.count);
    }

    // Down-regime ranking: who keeps answering when the node is dark,
    // and at what accuracy.
    let mut down: Vec<(&str, f64)> = cells
        .iter()
        .filter(|((_, col), _)| *col == 3)
        .map(|((pos, _), cell)| {
            (
                catalog[*pos].name,
                cell.forecasts as f64 / cell.epochs.max(1) as f64,
            )
        })
        .collect();
    down.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let ranking: Vec<String> = down
        .iter()
        .map(|(name, avail)| format!("{name}={avail:.3}"))
        .collect();
    println!("# down-regime availability ranking: {}", ranking.join(" "));

    let out = std::path::Path::new("results").join(format!("resilience_{}.csv", args.preset.name));
    if let Some(dir) = out.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&out, &csv) {
        Ok(()) => eprintln!("# wrote {}", out.display()),
        Err(e) => eprintln!("# warning: could not write {}: {e}", out.display()),
    }
}
