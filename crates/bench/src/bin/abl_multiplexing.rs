//! **Ablation (§6.1.4 / SIGCOMM analysis)** — prediction error versus
//! the degree of statistical multiplexing at constant utilization.
//!
//! The paper's queueing analysis predicts that at fixed utilization the
//! prediction error *decreases as the number of competing flows rises*
//! (aggregate traffic smooths out); unverifiable on RON, verifiable
//! here: split the same bursty load across 1–16 independent on-off
//! sources and report the HW-LSO RMSRE and the trace CoV.

use tputpred_bench::{hw_lso, Args};
use tputpred_core::lso::LsoConfig;
use tputpred_core::metrics::{evaluate, segmented_cov};
use tputpred_stats::render;
use tputpred_testbed::{catalog_2004, run_trace, Preset};

fn main() {
    let args = Args::parse();
    let preset = Preset {
        name: format!("abl-mux-{}", args.preset.name),
        paths: 3,
        traces_per_path: 1,
        epochs_per_trace: 30,
        with_small_window: false,
        ..args.preset.clone()
    };
    let mut base_path = catalog_2004(3, 77).remove(2);
    base_path.capacity_bps = 10e6;
    base_path.buffer_packets = 40;
    base_path.cross.utilization = 0.7;
    base_path.cross.pareto_fraction = 1.0; // all load is bursty on-off
    base_path.cross.elastic_flows = 0;
    base_path.cross.shifts_per_trace = 0.0;
    base_path.cross.bursts_per_trace = 0.0;

    println!("# abl_multiplexing: prediction error vs competing sources at 70% utilization");
    let mut table = render::Table::new(["sources", "hb_rmsre_hw_lso", "trace_cov"]);
    for n in [1u32, 2, 4, 8, 16] {
        let mut path = base_path.clone();
        path.cross.pareto_sources = n;
        let trace = run_trace(&path, 0, &preset);
        let series = trace.throughput_series();
        let mut pred = hw_lso();
        let hb = evaluate(&mut pred, &series).rmsre().unwrap_or(f64::NAN);
        let cov = segmented_cov(&series, LsoConfig::default()).unwrap_or(f64::NAN);
        table.row([n.to_string(), render::f(hb), render::f(cov)]);
    }
    print!("{}", table.render());
    println!("# expected shape: rmsre and cov fall as sources rise (paper's queueing analysis, result 2)");
}
