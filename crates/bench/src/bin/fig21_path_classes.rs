//! **Fig. 21** — per-path close-ups: for each path, the per-trace RMSRE
//! of `1-MA`, `10-MA`, `0.8-HW` and `0.8-HW-LSO`, and the path's
//! predictability class:
//!
//! * **(a) predictable** — low RMSRE everywhere;
//! * **(b) stable errors** — larger but consistent RMSRE;
//! * **(c) unpredictable errors** — RMSRE varies a lot across traces;
//! * **(d) unpredictable** — high RMSRE.
//!
//! Paper finding: paths genuinely differ in predictability; HW-LSO is
//! almost always the best of the four.

use tputpred_bench::{load_dataset, trace_rmsre, Args, PredictorZoo};
use tputpred_core::hb::{HoltWinters, MovingAverage};
use tputpred_core::lso::Lso;
use tputpred_stats::{render, Summary};

fn classify(rmsres: &[f64]) -> &'static str {
    let s = Summary::from_samples(rmsres.iter().copied());
    let mean = s.mean();
    let spread = s.max() - s.min();
    match (mean, spread) {
        (m, _) if m < 0.15 => "a_predictable",
        (m, sp) if m < 0.5 && sp < 0.3 => "b_stable_errors",
        (m, _) if m < 0.5 => "c_varying_errors",
        _ => "d_unpredictable",
    }
}

fn main() {
    let args = Args::parse();
    let ds = load_dataset(&args);

    let zoo: PredictorZoo = vec![
        ("1-MA", || Box::new(MovingAverage::new(1)) as _),
        ("10-MA", || Box::new(MovingAverage::new(10)) as _),
        ("0.8-HW", || Box::new(HoltWinters::new(0.8, 0.2)) as _),
        ("0.8-HW-LSO", || {
            Box::new(Lso::new(HoltWinters::new(0.8, 0.2))) as _
        }),
    ];

    println!("# fig21: per-path per-trace RMSRE for four predictors, with path class");
    let mut table = render::Table::new([
        "path",
        "trace",
        "1-MA",
        "10-MA",
        "0.8-HW",
        "0.8-HW-LSO",
        "class",
    ]);
    let mut class_counts = std::collections::BTreeMap::new();
    for p in &ds.paths {
        // Class from the headline predictor (HW-LSO) across traces.
        let hw_lso_rmsres: Vec<f64> = p
            .traces
            .iter()
            .filter_map(|t| trace_rmsre(zoo[3].1, &t.throughput_series()))
            .collect();
        if hw_lso_rmsres.is_empty() {
            continue;
        }
        let class = classify(&hw_lso_rmsres);
        *class_counts.entry(class).or_insert(0usize) += 1;
        for (ti, t) in p.traces.iter().enumerate() {
            let series = t.throughput_series();
            let mut row = vec![p.config.name.clone(), ti.to_string()];
            for (_, make) in &zoo {
                row.push(trace_rmsre(*make, &series).map_or("n/a".into(), render::f));
            }
            row.push(class.to_string());
            table.row(row);
        }
    }
    print!("{}", table.render());
    for (class, count) in class_counts {
        println!("# class {class}: {count} paths");
    }
}
