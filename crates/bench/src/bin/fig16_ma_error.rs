//! **Fig. 16** — CDF over traces of the per-trace RMSRE for Moving
//! Average predictors, with and without LSO.
//!
//! Paper findings: `n-MA` for n < 20 all perform similarly (only `1-MA`
//! is worse); LSO significantly reduces RMSRE and removes the
//! sensitivity to `n`.

use tputpred_bench::{load_dataset, require_cdf, rmsre_per_trace, Args, PredictorZoo};
use tputpred_core::hb::MovingAverage;
use tputpred_core::lso::Lso;
use tputpred_stats::render;

fn main() {
    let args = Args::parse();
    let ds = load_dataset(&args);

    let variants: PredictorZoo = vec![
        ("1-MA", || Box::new(MovingAverage::new(1)) as _),
        ("5-MA", || Box::new(MovingAverage::new(5)) as _),
        ("10-MA", || Box::new(MovingAverage::new(10)) as _),
        ("20-MA", || Box::new(MovingAverage::new(20)) as _),
        ("5-MA-LSO", || {
            Box::new(Lso::new(MovingAverage::new(5))) as _
        }),
        ("10-MA-LSO", || {
            Box::new(Lso::new(MovingAverage::new(10))) as _
        }),
        ("20-MA-LSO", || {
            Box::new(Lso::new(MovingAverage::new(20))) as _
        }),
    ];

    println!("# fig16: CDF over traces of per-trace RMSRE, MA predictors +/- LSO");
    for (name, make) in variants {
        let rmsres = rmsre_per_trace(&ds, make);
        let cdf = require_cdf(name, rmsres.iter().copied());
        print!("{}", render::cdf_series(name, &cdf, 50));
        println!(
            "# {name}: n={} median={:.3} P(RMSRE<0.4)={:.3}",
            rmsres.len(),
            cdf.quantile(0.5),
            cdf.fraction_below(0.4)
        );
    }
}
