//! **Ablation (paper §5 / refs \[14, 15\])** — does an ARIMA-class
//! predictor beat the simple ones?
//!
//! The paper skips ARMA/ARIMA because fitting them "requires a large
//! number of past measurements", citing Vazhkudai et al. and Zhang et
//! al., who both found fancy linear models no better than moving
//! averages on throughput series. With [`tputpred_core::hb::ArPredictor`]
//! implemented, the claim is testable on our dataset: per-trace RMSRE of
//! AR(p) for several orders, against the paper's simple predictors, with
//! and without LSO.

use tputpred_bench::{load_dataset, rmsre_per_trace, Args, PredictorZoo};
use tputpred_core::hb::{ArPredictor, HoltWinters, MovingAverage};
use tputpred_core::lso::Lso;
use tputpred_stats::{quantile, render};

fn main() {
    let args = Args::parse();
    let ds = load_dataset(&args);

    let variants: PredictorZoo = vec![
        ("AR(1)", || Box::new(ArPredictor::new(1, 64)) as _),
        ("AR(2)", || Box::new(ArPredictor::new(2, 64)) as _),
        ("AR(4)", || Box::new(ArPredictor::new(4, 64)) as _),
        ("AR(2)-LSO", || {
            Box::new(Lso::new(ArPredictor::new(2, 64))) as _
        }),
        ("10-MA", || Box::new(MovingAverage::new(10)) as _),
        ("10-MA-LSO", || {
            Box::new(Lso::new(MovingAverage::new(10))) as _
        }),
        ("0.8-HW-LSO", || {
            Box::new(Lso::new(HoltWinters::new(0.8, 0.2))) as _
        }),
    ];

    println!("# abl_ar: AR(p) (Yule-Walker, sliding window) vs the paper's simple predictors");
    let mut table = render::Table::new(["predictor", "p25", "median", "p75", "p90"]);
    for (name, make) in variants {
        let rmsres = rmsre_per_trace(&ds, make);
        table.row([
            name.to_string(),
            render::f(quantile(&rmsres, 0.25).unwrap_or(f64::NAN)),
            render::f(quantile(&rmsres, 0.5).unwrap_or(f64::NAN)),
            render::f(quantile(&rmsres, 0.75).unwrap_or(f64::NAN)),
            render::f(quantile(&rmsres, 0.9).unwrap_or(f64::NAN)),
        ]);
    }
    print!("{}", table.render());
    println!("# expected shape: no AR order beats the LSO-wrapped simple predictors —");
    println!("# the paper's reason for not bothering with ARIMA (section 5, refs [14, 15]).");
}
