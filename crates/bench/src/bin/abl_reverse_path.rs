//! **Ablation (beyond the paper)** — congestion on the *reverse* (ACK)
//! path.
//!
//! The paper's measurements — and our testbed — treat the reverse path
//! as uncongested: ping and the models see only forward-path state. But
//! TCP is ACK-clocked, so a congested reverse path stretches and drops
//! ACKs, cutting throughput in a way no forward-path measurement can
//! anticipate. This ablation loads the reverse link at increasing
//! levels and reports the transfer throughput and the error of an
//! FB-style prediction computed from forward-path state alone — an
//! error source the FB method cannot even observe.

use tputpred_bench::Args;
use tputpred_core::metrics::relative_error_floored;
use tputpred_netsim::link::LinkConfig;
use tputpred_netsim::sources::{PoissonSource, Sink, SourceConfig};
use tputpred_netsim::{RateSchedule, Route, Simulator, Time};
use tputpred_probes::BulkTransfer;
use tputpred_stats::{render, Summary};
use tputpred_tcp::TcpConfig;

fn run_reverse_load(rev_util: f64, epochs: usize) -> (f64, f64, f64) {
    let capacity = 10e6;
    // The reverse link is a modest 2 Mbps access uplink (ADSL-style
    // asymmetry) shared with `rev_util` of upstream cross traffic.
    let rev_capacity = 2e6;
    let mut sim = Simulator::new(73);
    let fwd = sim.add_link(LinkConfig::new(capacity, Time::from_millis(30), 66));
    let rev = sim.add_link(LinkConfig::new(rev_capacity, Time::from_millis(30), 30));
    if rev_util > 0.0 {
        let (sink, _) = Sink::new();
        let sink_id = sim.add_endpoint(Box::new(sink));
        let (src, _) = PoissonSource::new(SourceConfig {
            route: Route::direct(rev),
            dst: sink_id,
            packet_size: 1000,
            base_rate_bps: rev_util * rev_capacity,
            schedule: RateSchedule::constant(1.0),
            stop: Time::MAX,
        });
        let id = sim.add_endpoint(Box::new(src));
        sim.schedule_timer(id, 0, Time::ZERO);
    }
    // Forward path is idle: a forward-only FB prediction says min(W/T, C).
    let fb_prediction = (8.0 * (1u64 << 20) as f64 / 0.120).min(capacity);
    let mut tput = Summary::new();
    let mut errors = Vec::new();
    let mut acks_dropped = 0u64;
    let mut t = Time::from_secs(2);
    for _ in 0..epochs {
        let stop = t + Time::from_secs(15);
        let transfer = BulkTransfer::launch(
            &mut sim,
            TcpConfig::default(),
            Route::direct(fwd),
            Route::direct(rev),
            t,
            stop,
        );
        let drops_before = sim.link(rev).stats().drops;
        sim.run_until(stop + Time::from_secs(2));
        acks_dropped += sim.link(rev).stats().drops - drops_before;
        let r = transfer.throughput().max(1e3);
        tput.push(r);
        errors.push(relative_error_floored(fb_prediction, r));
        t = sim.now() + Time::from_secs(2);
    }
    (
        tput.mean(),
        tputpred_core::metrics::rmsre(&errors).unwrap_or(f64::NAN),
        acks_dropped as f64 / epochs as f64,
    )
}

fn main() {
    let _args = Args::parse();
    println!("# abl_reverse_path: ACK-path congestion (idle 10 Mbps forward, 2 Mbps reverse)");
    let mut table = render::Table::new([
        "rev_utilization",
        "mean_mbps",
        "fb_rmsre_fwd_only",
        "ack_drops/epoch",
    ]);
    for util in [0.0, 0.3, 0.6, 0.8, 0.95] {
        let (mean, rmsre, drops) = run_reverse_load(util, 8);
        table.row([
            render::f(util),
            render::mbps(mean),
            render::f(rmsre),
            format!("{drops:.0}"),
        ]);
    }
    print!("{}", table.render());
    println!("# expected shape: throughput falls and forward-only FB error grows as the");
    println!("# ACK path saturates — a blind spot of any forward-path measurement, and a");
    println!("# reason HB (which sees realized throughput, whatever its cause) stays robust.");
}
