//! **Ablation (paper §3.4 / refs \[20, 21\])** — which avail-bw
//! estimator feeds the FB predictor's lossless branch better?
//!
//! The paper uses pathload \[20\]; pathChirp \[21\] is its cited
//! alternative. Both are implemented from scratch; this ablation runs
//! them side by side over a load sweep on the same path and reports each
//! estimate against the true spare capacity and against the throughput a
//! bulk transfer then achieves — separating *estimator bias* from the
//! *avail-bw-vs-TCP gap* (§3.4).

use tputpred_bench::Args;
use tputpred_netsim::link::LinkConfig;
use tputpred_netsim::sources::{ParetoOnOffSource, PoissonSource, Sink, SourceConfig};
use tputpred_netsim::{LinkId, RateSchedule, Route, Simulator, Time};
use tputpred_probes::{BulkTransfer, PathChirp, PathChirpConfig, Pathload, PathloadConfig};
use tputpred_stats::render;
use tputpred_tcp::TcpConfig;

fn build(seed: u64, capacity: f64, load: f64, bursty: bool) -> (Simulator, LinkId, LinkId) {
    let mut sim = Simulator::new(seed);
    let fwd = sim.add_link(LinkConfig::new(capacity, Time::from_millis(25), 70));
    let rev = sim.add_link(LinkConfig::new(1e9, Time::from_millis(25), 1000));
    if load > 0.0 {
        let (sink, _) = Sink::new();
        let sink_id = sim.add_endpoint(Box::new(sink));
        let cfg = SourceConfig {
            route: Route::direct(fwd),
            dst: sink_id,
            packet_size: 1000,
            base_rate_bps: load,
            schedule: RateSchedule::constant(1.0),
            stop: Time::MAX,
        };
        let id = if bursty {
            let (src, _) = ParetoOnOffSource::new(cfg, 0.6, 1.6, 0.4);
            sim.add_endpoint(Box::new(src))
        } else {
            let (src, _) = PoissonSource::new(cfg);
            sim.add_endpoint(Box::new(src))
        };
        sim.schedule_timer(id, 0, Time::ZERO);
    }
    (sim, fwd, rev)
}

fn main() {
    let _args = Args::parse();
    let capacity = 10e6;
    println!("# abl_availbw: pathload vs pathChirp as FB inputs (10 Mbps path, 25 ms one-way)");
    let mut table = render::Table::new([
        "load",
        "kind",
        "true_avail_mbps",
        "pathload_mbps",
        "pathchirp_mbps",
        "bulk_r_mbps",
    ]);
    for (frac, bursty) in [
        (0.0, false),
        (0.3, false),
        (0.3, true),
        (0.6, false),
        (0.6, true),
        (0.85, false),
    ] {
        let load = frac * capacity;
        let (mut sim, fwd, rev) = build(61, capacity, load, bursty);
        let pl = Pathload::deploy(
            &mut sim,
            PathloadConfig {
                max_rate: capacity * 1.5,
                ..PathloadConfig::default()
            },
            Route::direct(fwd),
            Time::from_secs(2),
        );
        sim.run_until(Time::from_secs(40));
        let pl_est = pl.borrow().best_guess().unwrap_or(f64::NAN);
        let pc = PathChirp::deploy(
            &mut sim,
            PathChirpConfig {
                max_rate: capacity * 1.5,
                ..PathChirpConfig::default()
            },
            Route::direct(fwd),
            Time::from_secs(40),
        );
        sim.run_until(Time::from_secs(70));
        let pc_est = pc.borrow().estimate.unwrap_or(f64::NAN);
        let transfer = BulkTransfer::launch(
            &mut sim,
            TcpConfig::default(),
            Route::direct(fwd),
            Route::direct(rev),
            Time::from_secs(70),
            Time::from_secs(100),
        );
        sim.run_until(Time::from_secs(100));
        table.row([
            format!("{frac:.2}"),
            if bursty { "pareto" } else { "poisson" }.into(),
            render::mbps(capacity - load),
            render::mbps(pl_est),
            render::mbps(pc_est),
            render::mbps(transfer.throughput()),
        ]);
    }
    print!("{}", table.render());
    println!("# expected shape: both estimators track the residual on smooth load and drift");
    println!("# high on bursty load (they sample instants, the mean is lower); the bulk");
    println!("# transfer lands below either estimate — the section 3.4 gap FB inherits.");
}
