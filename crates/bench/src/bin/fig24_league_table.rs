//! **Fig. 24 (beyond the paper)** — the cross-predictor league table:
//! every family in the predictor registry
//! ([`tputpred_core::catalog::predictor_catalog`]), scored per path
//! class with one protocol.
//!
//! Every predictor is driven through the unified
//! [`Predictor`](tputpred_core::predictor::Predictor) trait by
//! [`tputpred_core::metrics::evaluate_epochs`]: per epoch it forecasts
//! from the epoch's a-priori probe features, is scored against the
//! measured large-window throughput (Eq. 4), and then observes the full
//! epoch. Per-trace RMSRE (Eq. 5, outlier epochs excluded) is
//! aggregated into per-class quantiles — the grouping of Fig. 21, now
//! across *all* families instead of FB alone.
//!
//! Series-only predictors (MA/EWMA/HW/AR, with or without LSO) see
//! exactly the protocol of `fig16`/`fig17` (feature-only epochs are
//! no-ops for them), so their numbers match those figures; FB matches
//! `fig02`'s per-trace aggregation; the combined families (hybrid,
//! regression, conditional, rtt-cv-gated) are scored on equal footing.
//!
//! Output: a fixed-width table on stdout plus
//! `results/league_<preset>.csv` (schema
//! [`tputpred_bench::LEAGUE_CSV_COLUMNS`], pinned by
//! `crates/bench/tests/results_schema.rs`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use tputpred_bench::LEAGUE_CSV_COLUMNS;
use tputpred_bench::{epoch_observations, fb_config, path_class, Args};
use tputpred_core::catalog::predictor_catalog;
use tputpred_core::metrics::evaluate_epochs;
use tputpred_stats::{quantile, render};
use tputpred_testbed::for_each_path;

/// Per-(predictor, class) accumulation: one RMSRE per scored trace plus
/// the number of epochs that produced an error sample.
#[derive(Default)]
struct Cell {
    rmsres: Vec<f64>,
    scored_epochs: usize,
}

fn main() {
    let args = Args::parse();
    let cfg = fb_config(&args.preset);

    // BTreeMap keyed by (catalog position, class) keeps the output in
    // registry order with classes alphabetical inside each predictor.
    // The cells accumulate while the shards stream past one path at a
    // time (DESIGN.md §15), so a `synth10k`-scale league table never
    // materializes the full dataset.
    let mut cells: BTreeMap<(usize, String), Cell> = BTreeMap::new();
    let mut n_paths = 0usize;
    let catalog = predictor_catalog();
    for_each_path(&args.shard_dir(), &args.preset, |_, path| {
        n_paths += 1;
        let class = path_class(&path.config.name);
        for trace in &path.traces {
            let epochs = epoch_observations(trace);
            for (pos, entry) in catalog.iter().enumerate() {
                let mut predictor = (entry.make)(&cfg);
                let result = evaluate_epochs(&mut predictor, &epochs);
                let Some(rmsre) = result.rmsre() else {
                    continue;
                };
                let scored = result.errors.iter().flatten().count();
                for key in [(pos, class.to_string()), (pos, "all".to_string())] {
                    let cell = cells.entry(key).or_default();
                    cell.rmsres.push(rmsre);
                    cell.scored_epochs += scored;
                }
            }
        }
        Ok(())
    })
    .unwrap_or_else(|e| panic!("dataset load: {e}"));

    println!(
        "# fig24: per-path-class RMSRE league table, {} predictors x {} paths ({} preset)",
        catalog.len(),
        n_paths,
        args.preset.name
    );
    println!("# protocol: evaluate_epochs (a-priori features in, one forecast per epoch,");
    println!("# per-trace RMSRE excluding LSO outliers); 'all' pools every class.");
    let mut table = render::Table::new([
        "predictor",
        "class",
        "traces",
        "scored_epochs",
        "rmsre_p25",
        "rmsre_median",
        "rmsre_p75",
    ]);
    let mut csv = String::new();
    csv.push_str(&LEAGUE_CSV_COLUMNS.join(","));
    csv.push('\n');
    for ((pos, class), cell) in &cells {
        let name = catalog[*pos].name;
        let p25 = quantile(&cell.rmsres, 0.25).unwrap_or(f64::NAN);
        let median = quantile(&cell.rmsres, 0.5).unwrap_or(f64::NAN);
        let p75 = quantile(&cell.rmsres, 0.75).unwrap_or(f64::NAN);
        table.row([
            name.to_string(),
            class.clone(),
            cell.rmsres.len().to_string(),
            cell.scored_epochs.to_string(),
            render::f(p25),
            render::f(median),
            render::f(p75),
        ]);
        let _ = writeln!(
            csv,
            "{name},{class},{},{},{p25},{median},{p75}",
            cell.rmsres.len(),
            cell.scored_epochs,
        );
    }
    print!("{}", table.render());

    // The overall ranking, best first — the headline of the table.
    let mut overall: Vec<(&str, f64)> = cells
        .iter()
        .filter(|((_, class), _)| class == "all")
        .map(|((pos, _), cell)| {
            (
                catalog[*pos].name,
                quantile(&cell.rmsres, 0.5).unwrap_or(f64::NAN),
            )
        })
        .collect();
    overall.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    let ranking: Vec<String> = overall
        .iter()
        .map(|(name, median)| format!("{name}={median:.3}"))
        .collect();
    println!("# ranking by overall median RMSRE: {}", ranking.join(" "));

    let out = std::path::Path::new("results").join(format!("league_{}.csv", args.preset.name));
    match std::fs::write(&out, &csv) {
        Ok(()) => eprintln!("# wrote {}", out.display()),
        Err(e) => eprintln!("# warning: could not write {}: {e}", out.display()),
    }
}
