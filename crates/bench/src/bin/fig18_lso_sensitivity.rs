//! **Fig. 18** — sensitivity of MA-5-LSO to the LSO thresholds: CDF of
//! `|E|` for several (χ, ψ) pairs.
//!
//! Paper finding: the detection heuristics are *not* sensitive to their
//! parameters — the CDFs for different (χ, ψ) nearly coincide.

use tputpred_bench::{load_dataset, require_cdf, Args};
use tputpred_core::hb::MovingAverage;
use tputpred_core::lso::{Lso, LsoConfig};
use tputpred_core::metrics::evaluate;
use tputpred_stats::render;

fn main() {
    let args = Args::parse();
    let ds = load_dataset(&args);

    let grids = [(0.2, 0.3), (0.3, 0.4), (0.4, 0.5), (0.3, 0.6), (0.5, 0.4)];
    println!("# fig18: CDF of |E| for 5-MA-LSO under different (chi, psi) thresholds");
    for (gamma, psi) in grids {
        let mut abs_errors = Vec::new();
        for p in &ds.paths {
            for t in &p.traces {
                let cfg = LsoConfig {
                    gamma,
                    psi,
                    ..LsoConfig::default()
                };
                let mut pred = Lso::with_config(MovingAverage::new(5), cfg);
                let res = evaluate(&mut pred, &t.throughput_series());
                abs_errors.extend(
                    res.errors
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| !res.outliers.contains(i))
                        .filter_map(|(_, e)| e.map(f64::abs)),
                );
            }
        }
        let name = format!("chi{gamma}_psi{psi}");
        let cdf = require_cdf(&name, abs_errors.iter().copied());
        print!("{}", render::cdf_series(&name, &cdf, 50));
        println!(
            "# {name}: n={} median|E|={:.3} p90={:.3}",
            abs_errors.len(),
            cdf.quantile(0.5),
            cdf.quantile(0.9)
        );
    }
}
