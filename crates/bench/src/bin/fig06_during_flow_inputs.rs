//! **Fig. 6** — CDF of the FB prediction error when the formula is fed
//! the *during-flow* probe estimates (T̃, p̃) instead of the a-priori
//! ones (T̂, p̂), over lossy epochs.
//!
//! §4.2.3's hypothetical: even knowing the path's state during the flow,
//! periodic probing samples the path differently than TCP does, so large
//! errors remain — but the error distribution becomes roughly symmetric
//! and much tighter than with a-priori inputs.

use tputpred_bench::{a_priori, during_flow, fb_config, is_lossy, load_dataset, require_cdf, Args};
use tputpred_core::fb::FbPredictor;
use tputpred_core::metrics::relative_error_floored;
use tputpred_stats::render;

fn main() {
    let args = Args::parse();
    let ds = load_dataset(&args);
    let fb = FbPredictor::new(fb_config(&ds.preset));

    let mut with_a_priori = Vec::new();
    let mut with_during = Vec::new();
    for (_, _, rec) in ds.complete_epochs() {
        if !is_lossy(&rec) {
            continue;
        }
        with_a_priori.push(relative_error_floored(
            fb.predict(&a_priori(&rec)),
            rec.r_large,
        ));
        with_during.push(relative_error_floored(
            fb.predict(&during_flow(&rec)),
            rec.r_large,
        ));
    }
    assert!(!with_during.is_empty(), "no lossy epochs in this dataset");

    println!(
        "# fig06: FB error with during-flow (T~, p~) vs a-priori (T^, p^) inputs (lossy epochs)"
    );
    for (name, errors) in [
        ("a_priori_inputs", &with_a_priori),
        ("during_flow_inputs", &with_during),
    ] {
        let cdf = require_cdf(name, errors.iter().copied());
        print!("{}", render::cdf_series(name, &cdf, 60));
        println!(
            "# {name}: n={} median={:.3} P(|E|<3)={:.3} P(E>0)={:.3}",
            errors.len(),
            cdf.quantile(0.5),
            cdf.fraction_below(3.0) - cdf.fraction_below(-3.0),
            1.0 - cdf.fraction_below(0.0),
        );
    }
}
