//! Generates (or refreshes) the dataset cache for a preset, printing a
//! compact sanity summary. Run this once before the figure binaries to
//! pay the simulation cost up front:
//!
//! ```text
//! cargo run --release -p tputpred-bench --bin gen_dataset -- --preset quick
//! ```

use tputpred_bench::{a_priori, fb_config, is_lossy, load_dataset, Args};
use tputpred_core::fb::FbPredictor;
use tputpred_core::metrics::relative_error_floored;
use tputpred_stats::{render, Cdf};

fn main() {
    let args = Args::parse();
    let ds = load_dataset(&args);
    println!(
        "# dataset: {} ({} epochs)",
        ds.preset.name,
        ds.epoch_count()
    );

    let fb = FbPredictor::new(fb_config(&ds.preset));
    let mut errors = Vec::new();
    let mut lossy = 0usize;
    let mut over = 0usize;
    let mut r_all = Vec::new();
    for (_, _, rec) in ds.complete_epochs() {
        let e = relative_error_floored(fb.predict(&a_priori(&rec)), rec.r_large);
        if e > 0.0 {
            over += 1;
        }
        if is_lossy(&rec) {
            lossy += 1;
        }
        errors.push(e);
        r_all.push(rec.r_large);
    }
    let n = errors.len();
    let cdf = Cdf::from_samples(errors.iter().copied());
    let tput = Cdf::from_samples(r_all);
    let mut t = render::Table::new(["metric", "value"]);
    t.row(["epochs", &n.to_string()]);
    t.row(["degraded/missing epochs", &ds.degraded_count().to_string()]);
    t.row(["lossy fraction", &render::f(lossy as f64 / n as f64)]);
    t.row([
        "FB overestimation fraction",
        &render::f(over as f64 / n as f64),
    ]);
    t.row([
        "median |E|",
        &render::f(Cdf::from_samples(errors.iter().map(|e| e.abs())).quantile(0.5)),
    ]);
    t.row([
        "P(E >= 1) (off by >= 2x)",
        &render::f(1.0 - cdf.fraction_below(1.0 - 1e-12)),
    ]);
    t.row([
        "P(E >= 9) (off by >= 10x)",
        &render::f(1.0 - cdf.fraction_below(9.0 - 1e-12)),
    ]);
    t.row([
        "median throughput (Mbps)",
        &render::mbps(tput.quantile(0.5)),
    ]);
    print!("{}", t.render());
}
