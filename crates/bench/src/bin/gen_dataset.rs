//! Generates (or refreshes) the sharded dataset cache for a preset,
//! printing a compact sanity summary. Run this once before the figure
//! binaries to pay the simulation cost up front:
//!
//! ```text
//! cargo run --release -p tputpred-bench --bin gen_dataset -- --preset quick
//! ```
//!
//! The cache is per-path shards under `data/<preset>/` (DESIGN.md §9):
//! only missing, corrupt, or out-of-date shards are regenerated, and the
//! shard reuse counts are reported either way. With `--profile`, the
//! load runs with telemetry enabled and writes a `BENCH_gen_<preset>.json`
//! perf report to the working directory (stage timings, event rates,
//! parallel speedup, shard counts; DESIGN.md §11). The dataset is
//! bit-identical with or without profiling.

use tputpred_bench::{
    a_priori, fb_config, is_lossy, load_dataset_with_shards, profile, require_cdf, Args,
};
use tputpred_core::fb::FbPredictor;
use tputpred_core::metrics::relative_error_floored;
use tputpred_stats::render;

fn main() {
    let args = Args::parse();
    let ds = if args.profile {
        let (ds, report) = profile::profile_generation(&args)
            .unwrap_or_else(|e| panic!("profiled generation: {e}"));
        let out = profile::perf_report_path(&args.preset.name);
        profile::write_perf_report(&report, &out)
            .unwrap_or_else(|e| panic!("writing {}: {e}", out.display()));
        eprint!("{}", profile::render_perf_report(&report));
        eprintln!("# perf report -> {}", out.display());
        ds
    } else {
        let (ds, shards) = load_dataset_with_shards(&args);
        eprintln!(
            "# shards: hit={} missing={} stale={} regenerated={}",
            shards.hits,
            shards.missing,
            shards.stale,
            shards.regenerated()
        );
        ds
    };
    println!(
        "# dataset: {} ({} epochs)",
        ds.preset.name,
        ds.epoch_count()
    );

    let fb = FbPredictor::new(fb_config(&ds.preset));
    let mut errors = Vec::new();
    let mut lossy = 0usize;
    let mut over = 0usize;
    let mut r_all = Vec::new();
    for (_, _, rec) in ds.complete_epochs() {
        let e = relative_error_floored(fb.predict(&a_priori(&rec)), rec.r_large);
        if e > 0.0 {
            over += 1;
        }
        if is_lossy(&rec) {
            lossy += 1;
        }
        errors.push(e);
        r_all.push(rec.r_large);
    }
    let n = errors.len();
    let cdf = require_cdf("fb_error", errors.iter().copied());
    let tput = require_cdf("throughput_bps", r_all);
    let mut t = render::Table::new(["metric", "value"]);
    t.row(["epochs", &n.to_string()]);
    t.row(["degraded/missing epochs", &ds.degraded_count().to_string()]);
    t.row(["lossy fraction", &render::f(lossy as f64 / n as f64)]);
    t.row([
        "FB overestimation fraction",
        &render::f(over as f64 / n as f64),
    ]);
    t.row([
        "median |E|",
        &render::f(require_cdf("abs_fb_error", errors.iter().map(|e| e.abs())).quantile(0.5)),
    ]);
    t.row([
        "P(E >= 1) (off by >= 2x)",
        &render::f(1.0 - cdf.fraction_below(1.0 - 1e-12)),
    ]);
    t.row([
        "P(E >= 9) (off by >= 10x)",
        &render::f(1.0 - cdf.fraction_below(9.0 - 1e-12)),
    ]);
    t.row([
        "median throughput (Mbps)",
        &render::mbps(tput.quantile(0.5)),
    ]);
    print!("{}", t.render());
}
