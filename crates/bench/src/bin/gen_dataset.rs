//! Generates (or refreshes) the sharded dataset cache for a preset,
//! printing a compact sanity summary. Run this once before the figure
//! binaries to pay the simulation cost up front:
//!
//! ```text
//! cargo run --release -p tputpred-bench --bin gen_dataset -- --preset quick
//! ```
//!
//! The cache is per-path shards under `data/<preset>/` (DESIGN.md §9):
//! only missing, corrupt, or out-of-date shards are regenerated, and the
//! shard reuse counts are reported either way. Paths are **streamed**
//! (DESIGN.md §15): the summary accumulates while each shard is visited
//! and dropped, so `synth10k`-scale presets cost O(one path) memory.
//! With `--profile`, the load runs with telemetry enabled and writes a
//! `BENCH_gen_<preset>.json` perf report to the working directory
//! (stage timings, event rates, parallel speedup, shard counts;
//! DESIGN.md §11). The dataset is bit-identical with or without
//! profiling.

use tputpred_bench::{a_priori, fb_config, is_lossy, profile, require_cdf, Args};
use tputpred_core::fb::FbPredictor;
use tputpred_core::metrics::relative_error_floored;
use tputpred_stats::render;
use tputpred_testbed::{for_each_path, EpochStatus, PathData};

fn main() {
    let args = Args::parse();
    let fb = FbPredictor::new(fb_config(&args.preset));

    // The per-epoch summary state: fed by the streaming visitor one
    // path at a time, identical to what a full-Dataset pass computed.
    let mut epoch_count = 0usize;
    let mut degraded = 0usize;
    let mut errors = Vec::new();
    let mut lossy = 0usize;
    let mut over = 0usize;
    let mut r_all = Vec::new();
    let visit = |_id: usize, path: &PathData| {
        for trace in &path.traces {
            for rec in &trace.records {
                epoch_count += 1;
                if rec.status != EpochStatus::Ok {
                    degraded += 1;
                }
                let Some(rec) = rec.complete() else { continue };
                let e = relative_error_floored(fb.predict(&a_priori(&rec)), rec.r_large);
                if e > 0.0 {
                    over += 1;
                }
                if is_lossy(&rec) {
                    lossy += 1;
                }
                errors.push(e);
                r_all.push(rec.r_large);
            }
        }
        Ok(())
    };

    if args.profile {
        let (_, report) = profile::profile_for_each_path(&args, visit)
            .unwrap_or_else(|e| panic!("profiled generation: {e}"));
        let out = profile::perf_report_path(&args.preset.name);
        profile::write_perf_report(&report, &out)
            .unwrap_or_else(|e| panic!("writing {}: {e}", out.display()));
        eprint!("{}", profile::render_perf_report(&report));
        eprintln!("# perf report -> {}", out.display());
    } else {
        let shards = for_each_path(&args.shard_dir(), &args.preset, visit)
            .unwrap_or_else(|e| panic!("dataset load: {e}"));
        eprintln!(
            "# shards: hit={} missing={} stale={} regenerated={}",
            shards.hits,
            shards.missing,
            shards.stale,
            shards.regenerated()
        );
    }
    println!("# dataset: {} ({} epochs)", args.preset.name, epoch_count);

    let n = errors.len();
    let cdf = require_cdf("fb_error", errors.iter().copied());
    let tput = require_cdf("throughput_bps", r_all);
    let mut t = render::Table::new(["metric", "value"]);
    t.row(["epochs", &n.to_string()]);
    t.row(["degraded/missing epochs", &degraded.to_string()]);
    t.row(["lossy fraction", &render::f(lossy as f64 / n as f64)]);
    t.row([
        "FB overestimation fraction",
        &render::f(over as f64 / n as f64),
    ]);
    t.row([
        "median |E|",
        &render::f(require_cdf("abs_fb_error", errors.iter().map(|e| e.abs())).quantile(0.5)),
    ]);
    t.row([
        "P(E >= 1) (off by >= 2x)",
        &render::f(1.0 - cdf.fraction_below(1.0 - 1e-12)),
    ]);
    t.row([
        "P(E >= 9) (off by >= 10x)",
        &render::f(1.0 - cdf.fraction_below(9.0 - 1e-12)),
    ]);
    t.row([
        "median throughput (Mbps)",
        &render::mbps(tput.quantile(0.5)),
    ]);
    print!("{}", t.render());
}
