//! **Ablation (paper §2, related work)** — NWS-style probe-based
//! prediction versus the paper's two approaches.
//!
//! The Network Weather Service \[16\] predicted transfer throughput from
//! *small probe transfers* (64 KB with a 32 KB socket buffer). Vazhkudai
//! et al. \[14\] showed such probes badly underestimate bulk-transfer
//! throughput — the probe lives in slow start and under a tiny window.
//! This ablation reproduces that comparison end to end on three
//! controlled paths:
//!
//! * `nws`  — predict the next bulk transfer's throughput as the MA(10)
//!   of recent 64 KB/32 KB probe throughputs (probe sent just before
//!   each target transfer, as NWS's sensors did);
//! * `fb`   — Eq. 3 from a-priori measurements (using the epoch's
//!   recorded estimates);
//! * `hb`   — HW-LSO over previous *bulk* transfer throughputs.
//!
//! Expected shape: NWS probes are fast to measure but systematically low
//! for bulk targets, giving large underestimation; HB over real
//! transfers wins.

use tputpred_bench::Args;
use tputpred_core::fb::{FbConfig, FbPredictor, PathEstimates};
use tputpred_core::hb::{HoltWinters, MovingAverage, Predictor};
use tputpred_core::lso::Lso;
use tputpred_core::metrics::{relative_error_floored, rmsre};
use tputpred_netsim::link::LinkConfig;
use tputpred_netsim::sources::{PoissonSource, Sink, SourceConfig};
use tputpred_netsim::{RateSchedule, Route, Simulator, Time};
use tputpred_probes::BulkTransfer;
use tputpred_stats::render;
use tputpred_tcp::{connect_sized, TcpConfig};

struct PathSpec {
    name: &'static str,
    capacity: f64,
    one_way_ms: u64,
    buffer: u32,
    cross: f64,
}

fn run_path(spec: &PathSpec, epochs: usize) -> (f64, f64, f64, f64, f64) {
    let mut sim = Simulator::new(16);
    let fwd = sim.add_link(LinkConfig::new(
        spec.capacity,
        Time::from_millis(spec.one_way_ms),
        spec.buffer,
    ));
    let rev = sim.add_link(LinkConfig::new(
        1e9,
        Time::from_millis(spec.one_way_ms),
        1000,
    ));
    if spec.cross > 0.0 {
        let (sink, _) = Sink::new();
        let sink_id = sim.add_endpoint(Box::new(sink));
        let (src, _) = PoissonSource::new(SourceConfig {
            route: Route::direct(fwd),
            dst: sink_id,
            packet_size: 1000,
            base_rate_bps: spec.cross,
            schedule: RateSchedule::constant(1.0),
            stop: Time::MAX,
        });
        let id = sim.add_endpoint(Box::new(src));
        sim.schedule_timer(id, 0, Time::ZERO);
    }
    let rtt = 2.0 * spec.one_way_ms as f64 / 1e3;
    let fb = FbPredictor::new(FbConfig::default());
    let fb_est = PathEstimates {
        rtt,
        loss_rate: 0.0,
        avail_bw: spec.capacity - spec.cross,
    };

    let mut nws = MovingAverage::new(10);
    let mut hb = Lso::new(HoltWinters::new(0.8, 0.2));
    let mut e_nws = Vec::new();
    let mut e_fb = Vec::new();
    let mut e_hb = Vec::new();
    let mut probe_ratio = Vec::new();
    let mut t = Time::from_secs(5);
    for _ in 0..epochs {
        // 1. NWS probe: 64 KB over a 32 KB-buffer connection.
        let probe_cfg = TcpConfig {
            max_window: 32 * 1024,
            ..TcpConfig::default()
        };
        let (_, _, probe) = connect_sized(
            &mut sim,
            probe_cfg,
            Route::direct(fwd),
            Route::direct(rev),
            t,
            t + Time::from_secs(20),
            64 * 1024,
        );
        sim.run_until(t + Time::from_secs(20));
        let probe_tput = {
            let s = probe.borrow();
            match s.finished_at {
                Some(done) => s.bytes_delivered as f64 * 8.0 / (done - t).as_secs_f64(),
                None => 1e3,
            }
        };
        nws.update(probe_tput);

        // 2. The bulk target transfer.
        let start = sim.now() + Time::from_secs(1);
        let stop = start + Time::from_secs(15);
        let target = BulkTransfer::launch(
            &mut sim,
            TcpConfig::default(),
            Route::direct(fwd),
            Route::direct(rev),
            start,
            stop,
        );
        sim.run_until(stop + Time::from_secs(2));
        let actual = target.throughput().max(1e3);
        probe_ratio.push(probe_tput / actual);

        if let Some(p) = nws.forecast() {
            e_nws.push(relative_error_floored(p, actual));
        }
        e_fb.push(relative_error_floored(fb.predict(&fb_est), actual));
        if let Some(p) = hb.forecast() {
            e_hb.push(relative_error_floored(p, actual));
        }
        hb.update(actual);
        t = sim.now() + Time::from_secs(2);
    }
    let mean_ratio = probe_ratio.iter().sum::<f64>() / probe_ratio.len() as f64;
    let under = e_nws.iter().filter(|&&e| e < 0.0).count() as f64 / e_nws.len() as f64;
    (
        rmsre(&e_nws).unwrap_or(f64::NAN),
        rmsre(&e_fb).unwrap_or(f64::NAN),
        rmsre(&e_hb).unwrap_or(f64::NAN),
        mean_ratio,
        under,
    )
}

fn main() {
    let _args = Args::parse();
    let specs = [
        PathSpec {
            name: "quiet-20M",
            capacity: 20e6,
            one_way_ms: 30,
            buffer: 100,
            cross: 5e6,
        },
        PathSpec {
            name: "loaded-10M",
            capacity: 10e6,
            one_way_ms: 25,
            buffer: 40,
            cross: 6e6,
        },
        PathSpec {
            name: "dsl-1.4M",
            capacity: 1.4e6,
            one_way_ms: 30,
            buffer: 14,
            cross: 0.4e6,
        },
    ];
    println!("# abl_nws: NWS-style 64KB/32KB probe prediction vs FB and HB, 20 epochs per path");
    let mut table = render::Table::new([
        "path",
        "rmsre_nws",
        "rmsre_fb",
        "rmsre_hb_hw_lso",
        "probe/bulk",
        "nws_underest_frac",
    ]);
    for spec in &specs {
        let (nws, fb, hb, ratio, under) = run_path(spec, 20);
        table.row([
            spec.name.to_string(),
            render::f(nws),
            render::f(fb),
            render::f(hb),
            render::f(ratio),
            render::f(under),
        ]);
    }
    print!("{}", table.render());
    println!(
        "# expected shape: probe/bulk << 1 (slow-start + 32KB window), so NWS underestimates;"
    );
    println!("# HB over real transfers is the most accurate (paper section 2 + ref [14]).");
}
