//! **Fig. 11** — FB prediction accuracy for transfers of different
//! lengths, using the second (2006-style) measurement set with longer
//! transfers: the same prediction is scored against the throughput of
//! the first quarter, the first half, and the full transfer (the
//! paper's 30/60/120 s split).
//!
//! Paper finding: no noticeable correlation between transfer duration
//! and prediction error (for flows long enough that slow start is
//! negligible).
//!
//! Defaults to `--preset quick-2006`.

use tputpred_bench::{a_priori, fb_config, load_dataset, require_cdf, Args};
use tputpred_core::fb::FbPredictor;
use tputpred_core::metrics::relative_error_floored;
use tputpred_stats::render;

fn main() {
    let mut args = Args::parse_from(std::env::args().skip(1)).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    // This figure is defined on the long-transfer dataset.
    if args.preset.name == "quick" {
        args.preset = tputpred_testbed::Preset::quick_2006();
    }
    let ds = load_dataset(&args);
    let fb = FbPredictor::new(fb_config(&ds.preset));

    let mut quarter = Vec::new();
    let mut half = Vec::new();
    let mut full = Vec::new();
    for (_, _, rec) in ds.complete_epochs() {
        let pred = fb.predict(&a_priori(&rec));
        quarter.push(relative_error_floored(pred, rec.r_prefix_quarter));
        half.push(relative_error_floored(pred, rec.r_prefix_half));
        full.push(relative_error_floored(pred, rec.r_large));
    }

    let secs = ds.preset.transfer.as_secs_f64();
    println!("# fig11: FB error CDF vs transfer length (prefixes of {secs:.0}-s transfers)");
    for (name, errors) in [
        (format!("first_{:.0}s", secs / 4.0), &quarter),
        (format!("first_{:.0}s", secs / 2.0), &half),
        (format!("full_{secs:.0}s"), &full),
    ] {
        let cdf = require_cdf(&name, errors.iter().copied());
        print!("{}", render::cdf_series(&name, &cdf, 60));
        println!(
            "# {name}: median={:.3} P(|E|<1)={:.3}",
            cdf.quantile(0.5),
            cdf.fraction_below(1.0) - cdf.fraction_below(-1.0)
        );
    }
}
