//! **Fig. 3** — CDF of the *absolute* RTT and loss-rate increases during
//! the target flow: `T̃ − T̂` (milliseconds) and `p̃ − p̂`.
//!
//! Paper findings: in ~half the epochs the RTT barely moves; a large
//! fraction sees increases of 5–60 ms; loss rate increases by 0.1–2% in
//! almost all epochs — the §3.2 "errors due to load increase" mechanism.

use tputpred_bench::{load_dataset, require_cdf, Args};
use tputpred_stats::render;

fn main() {
    let args = Args::parse();
    let ds = load_dataset(&args);

    let rtt_inc_ms: Vec<f64> = ds
        .complete_epochs()
        .map(|(_, _, r)| (r.t_tilde - r.t_hat) * 1e3)
        .collect();
    let loss_inc: Vec<f64> = ds
        .complete_epochs()
        .map(|(_, _, r)| r.p_tilde - r.p_hat)
        .collect();

    println!("# fig03: CDF of absolute RTT and loss-rate increase during the target flow");
    let rtt = require_cdf("rtt_increase_ms", rtt_inc_ms.iter().copied());
    print!("{}", render::cdf_series("rtt_increase_ms", &rtt, 60));
    println!(
        "# rtt: median={:.2} ms, P(increase > 5 ms)={:.3}",
        rtt.quantile(0.5),
        1.0 - rtt.fraction_below(5.0)
    );
    let loss = require_cdf("loss_rate_increase", loss_inc.iter().copied());
    print!("{}", render::cdf_series("loss_rate_increase", &loss, 60));
    println!(
        "# loss: median={:.5}, P(increase > 0.001)={:.3}",
        loss.quantile(0.5),
        1.0 - loss.fraction_below(0.001)
    );
}
