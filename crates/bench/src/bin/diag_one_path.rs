//! Diagnostic: per-epoch detail for the quietest catalog paths, to see
//! what limits transfer throughput relative to spare capacity.

use tputpred_bench::Args;
use tputpred_stats::render;
use tputpred_testbed::{catalog_for, run_trace};

fn main() {
    let args = Args::parse();
    let catalog = catalog_for(&args.preset);
    let mut quiet: Vec<_> = catalog
        .iter()
        .filter(|p| p.cross.utilization < 0.5 && p.cross.elastic_flows == 0)
        .take(3)
        .collect();
    quiet.sort_by(|a, b| {
        a.cross
            .utilization
            .partial_cmp(&b.cross.utilization)
            .unwrap()
    });
    for path in quiet {
        println!(
            "# path {} cap={:.1}M rtt={:.0}ms buf={}pkts util={:.2} pareto_frac={:.2} duty={:.2} srcs={} shifts={:.1} bursts={:.1}",
            path.name,
            path.capacity_bps / 1e6,
            path.base_rtt() * 1e3,
            path.buffer_packets,
            path.cross.utilization,
            path.cross.pareto_fraction,
            path.cross.duty_cycle,
            path.cross.pareto_sources,
            path.cross.shifts_per_trace,
            path.cross.bursts_per_trace,
        );
        let mut preset = args.preset.clone();
        preset.epochs_per_trace = 8;
        let trace = run_trace(path, 0, &preset);
        let mut t = render::Table::new([
            "epoch",
            "r_mbps",
            "true_avail",
            "a_hat",
            "p_hat",
            "p_tilde",
            "loss_ev",
            "retx",
            "t_hat_ms",
        ]);
        for (i, r) in trace.records.iter().enumerate() {
            t.row([
                i.to_string(),
                render::mbps(r.r_large.unwrap_or(f64::NAN)),
                render::mbps(r.true_avail_bw),
                render::mbps(r.a_hat.unwrap_or(f64::NAN)),
                render::f(r.p_hat.unwrap_or(f64::NAN)),
                render::f(r.p_tilde.unwrap_or(f64::NAN)),
                r.flow_loss_events.to_string(),
                render::f(r.flow_retx_rate),
                format!("{:.1}", r.t_hat.unwrap_or(f64::NAN) * 1e3),
            ]);
        }
        print!("{}", t.render());
    }
}
