//! **Ablation (paper §3.2, last paragraph)** — "posthumous" PFTK
//! validation.
//!
//! "Note that the experimental validation of the PFTK result … was based
//! on the 'posthumous' estimation of p and T, i.e., from tcpdump packet
//! traces collected at the sender/receiver while the target flow was in
//! progress. Of course the same approach is not possible for prediction."
//!
//! We *can* do it in the simulator: every epoch records the flow's own
//! RTT and its congestion-event count. Feeding those — the values the
//! model's derivation actually means — back into PFTK checks that our
//! TCP implementation and the model agree the way the PFTK authors
//! demonstrated, and measures how much of FB's error is inputs (most of
//! it) versus model error (the residual here).

use tputpred_bench::{a_priori, fb_config, is_lossy, load_dataset, require_cdf, Args};
use tputpred_core::fb::FbPredictor;
use tputpred_core::formulas::{pftk, rto_estimate, PftkParams};
use tputpred_core::metrics::relative_error_floored;
use tputpred_stats::render;

fn main() {
    let args = Args::parse();
    let ds = load_dataset(&args);
    let duration = ds.preset.transfer.as_secs_f64();
    let fb = FbPredictor::new(fb_config(&ds.preset));

    let mut posthumous = Vec::new();
    let mut a_priori_errors = Vec::new();
    for (_, _, rec) in ds.complete_epochs() {
        if !is_lossy(&rec) || rec.flow_loss_events == 0 || rec.flow_rtt <= 0.0 {
            continue;
        }
        // The flow's own congestion-event probability: events per
        // *delivered* segment (PFTK's packet balance counts useful
        // segments per loss event).
        let delivered_segments = rec.r_large * duration / 8.0 / 1448.0;
        if delivered_segments < 1.0 {
            continue;
        }
        let p_event = (rec.flow_loss_events as f64 / delivered_segments).min(0.9);
        let params = PftkParams {
            mss: 1448,
            rtt: rec.flow_rtt,
            rto: rto_estimate(rec.flow_rtt),
            b: 2.0,
            p: p_event,
            max_window: ds.preset.w_large,
        };
        posthumous.push(relative_error_floored(pftk(&params), rec.r_large));
        a_priori_errors.push(relative_error_floored(
            fb.predict(&a_priori(&rec)),
            rec.r_large,
        ));
    }
    assert!(!posthumous.is_empty(), "no scorable lossy epochs");

    println!("# abl_pftk_posthumous: PFTK fed the flow's OWN (T, p_event) vs a-priori ping inputs");
    for (name, errors) in [
        ("posthumous_inputs", &posthumous),
        ("a_priori_inputs", &a_priori_errors),
    ] {
        let cdf = require_cdf(name, errors.iter().copied());
        print!("{}", render::cdf_series(name, &cdf, 50));
        println!(
            "# {name}: n={} median={:.3} P(|E|<1)={:.3} P(|E|<3)={:.3}",
            errors.len(),
            cdf.quantile(0.5),
            cdf.fraction_below(1.0) - cdf.fraction_below(-1.0),
            cdf.fraction_below(3.0) - cdf.fraction_below(-3.0),
        );
    }
    println!("# expected shape: with its own inputs, PFTK lands within ~2x for most epochs");
    println!("# (the PFTK paper's validation result); the gap to a-priori inputs is the part");
    println!("# of FB error that no better formula can remove.");
}
