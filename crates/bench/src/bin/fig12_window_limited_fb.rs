//! **Fig. 12** — per-path FB RMSRE for congestion-limited (W = 1 MB)
//! versus window-limited (W = 20 KB) transfers (log-scale Y in the
//! paper).
//!
//! Paper findings: the window-limited transfers are more predictable on
//! every path, often by a large factor; on most window-limited paths
//! RMSRE < 1.0, an error level many applications can live with
//! (§4.2.8's advice: cap the advertised window if you care about
//! predictability more than peak throughput).

use tputpred_bench::{a_priori, fb_config, fb_config_small, load_dataset, Args};
use tputpred_core::fb::FbPredictor;
use tputpred_core::metrics::{relative_error_floored, rmsre};
use tputpred_stats::render;

fn main() {
    let args = Args::parse();
    let ds = load_dataset(&args);
    let fb_large = FbPredictor::new(fb_config(&ds.preset));
    let fb_small = FbPredictor::new(fb_config_small(&ds.preset));

    println!("# fig12: per-path FB RMSRE, W=1MB (congestion-limited) vs W=20KB (window-limited)");
    let mut table = render::Table::new([
        "path",
        "rmsre_w1mb",
        "rmsre_w20kb",
        "ratio",
        "window_limited_frac",
    ]);
    let mut small_below_one = 0usize;
    let mut paths_with_small = 0usize;
    for p in &ds.paths {
        let mut e_large = Vec::new();
        let mut e_small = Vec::new();
        let mut wl = 0usize;
        let mut n = 0usize;
        for rec in p
            .traces
            .iter()
            .flat_map(|t| t.records.iter())
            .filter_map(|r| r.complete())
        {
            e_large.push(relative_error_floored(
                fb_large.predict(&a_priori(&rec)),
                rec.r_large,
            ));
            if let Some(r_small) = rec.r_small {
                e_small.push(relative_error_floored(
                    fb_small.predict(&a_priori(&rec)),
                    r_small,
                ));
            }
            if fb_small.is_window_limited(&a_priori(&rec)) {
                wl += 1;
            }
            n += 1;
        }
        let rl = rmsre(&e_large).unwrap_or(f64::NAN);
        let rs = rmsre(&e_small);
        if let Some(rs) = rs {
            paths_with_small += 1;
            if rs < 1.0 {
                small_below_one += 1;
            }
        }
        table.row([
            p.config.name.clone(),
            render::f(rl),
            rs.map_or("n/a".into(), render::f),
            rs.map_or("n/a".into(), |rs| render::f(rl / rs)),
            render::f(wl as f64 / n.max(1) as f64),
        ]);
    }
    print!("{}", table.render());
    println!("# paths with window-limited RMSRE < 1.0: {small_below_one}/{paths_with_small}");
}
