//! Diagnostic (not a paper figure): decomposes FB error sources against
//! the simulator's ground truth, guiding testbed calibration.
//!
//! * `a_hat / true_avail` — pathload bias;
//! * `r_large / true_avail` — how close the transfer gets to the spare
//!   capacity (lossless paths);
//! * `p_hat` vs the flow's own retransmit rate — probing-vs-TCP sampling.

use tputpred_bench::{is_lossy, load_dataset, Args};
use tputpred_stats::{quantile, render};

fn q(v: &mut [f64]) -> (f64, f64, f64) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (
        quantile(v, 0.25).unwrap_or(f64::NAN),
        quantile(v, 0.5).unwrap_or(f64::NAN),
        quantile(v, 0.75).unwrap_or(f64::NAN),
    )
}

fn main() {
    let args = Args::parse();
    let ds = load_dataset(&args);

    let mut availbw_bias = Vec::new();
    let mut r_vs_avail_lossless = Vec::new();
    let mut r_vs_avail_lossy = Vec::new();
    let mut p_hat_lossy = Vec::new();
    let mut flow_retx_lossy = Vec::new();
    let mut t_ratio = Vec::new();
    for (_, _, rec) in ds.complete_epochs() {
        if rec.true_avail_bw > 1e3 {
            availbw_bias.push(rec.a_hat / rec.true_avail_bw);
            if is_lossy(&rec) {
                r_vs_avail_lossy.push(rec.r_large / rec.true_avail_bw);
            } else {
                r_vs_avail_lossless.push(rec.r_large / rec.true_avail_bw);
            }
        }
        if is_lossy(&rec) {
            p_hat_lossy.push(rec.p_hat);
            flow_retx_lossy.push(rec.flow_retx_rate);
        }
        if rec.t_hat > 0.0 && rec.flow_rtt > 0.0 {
            t_ratio.push(rec.flow_rtt / rec.t_hat);
        }
    }

    let mut table = render::Table::new(["quantity", "p25", "median", "p75"]);
    for (name, v) in [
        ("a_hat / true_avail", &mut availbw_bias),
        ("r_large / true_avail (lossless)", &mut r_vs_avail_lossless),
        ("r_large / true_avail (lossy)", &mut r_vs_avail_lossy),
        ("p_hat (lossy)", &mut p_hat_lossy),
        ("flow retx rate (lossy)", &mut flow_retx_lossy),
        ("flow_rtt / t_hat", &mut t_ratio),
    ] {
        if v.is_empty() {
            continue;
        }
        let (a, b, c) = q(v);
        table.row([name.to_string(), render::f(a), render::f(b), render::f(c)]);
    }
    print!("{}", table.render());
}
