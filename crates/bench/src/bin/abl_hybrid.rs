//! **Ablation (paper §7, future work)** — the hybrid FB/HB predictor:
//! "it would be interesting to examine hybrid predictors, which rely on
//! TCP models as well as on recent history."
//!
//! Evaluates three predictors over every trace with the *same* protocol:
//! one prediction per epoch, scored against the epoch's large-window
//! transfer, using that epoch's a-priori measurements (FB inputs) and
//! the previous epochs' throughputs (HB inputs):
//!
//! * `fb`     — Eq. 3 alone (no history needed);
//! * `hb`     — HW-LSO alone (undefined until history exists; those
//!   epochs are skipped in its score);
//! * `hybrid` — [`tputpred_core::hybrid::HybridPredictor`]: FB-weighted
//!   while history is short, HB-dominated after (weight 1/(h+1)).
//!
//! All three are resolved from the predictor registry
//! ([`tputpred_core::catalog::predictor_by_name`]) and driven through
//! the unified [`Predictor`] trait.
//!
//! Expected shape: the hybrid matches FB on the first epochs of a trace
//! and converges to HB's accuracy — it is never much worse than the
//! better of the two, which is the point of hybridising.

use tputpred_bench::{a_priori, fb_config, load_dataset, Args};
use tputpred_core::catalog::predictor_by_name;
use tputpred_core::metrics::{relative_error_floored, rmsre};
use tputpred_core::predictor::{EpochObservation, Predictor};
use tputpred_stats::{quantile, render};

fn main() {
    let args = Args::parse();
    let ds = load_dataset(&args);
    let cfg = fb_config(&ds.preset);
    let fb = predictor_by_name("FB", &cfg).expect("FB is in the registry");

    let mut fb_rmsres = Vec::new();
    let mut hb_rmsres = Vec::new();
    let mut hybrid_rmsres = Vec::new();
    let mut early_fb = Vec::new(); // errors on the first 3 epochs per trace
    let mut early_hybrid = Vec::new();
    for p in &ds.paths {
        for t in &p.traces {
            let mut hb = predictor_by_name("0.8-HW-LSO", &cfg).expect("in the registry");
            let mut hybrid = predictor_by_name("hybrid", &cfg).expect("in the registry");
            let mut fb_errors = Vec::new();
            let mut hb_errors = Vec::new();
            let mut hybrid_errors = Vec::new();
            for (i, rec) in t.records.iter().filter_map(|r| r.complete()).enumerate() {
                let features = a_priori(&rec).into();
                let e_fb =
                    relative_error_floored(fb.predict(&features).unwrap_or(f64::NAN), rec.r_large);
                fb_errors.push(e_fb);
                if let Some(pred) = hb.forecast() {
                    hb_errors.push(relative_error_floored(pred, rec.r_large));
                }
                let e_hy = relative_error_floored(
                    hybrid.predict(&features).unwrap_or(1.0).max(1.0),
                    rec.r_large,
                );
                hybrid_errors.push(e_hy);
                if i < 3 {
                    early_fb.push(e_fb);
                    early_hybrid.push(e_hy);
                }
                hb.update(rec.r_large);
                hybrid.observe(&EpochObservation::sample(rec.r_large));
            }
            if let Some(r) = rmsre(&fb_errors) {
                fb_rmsres.push(r);
            }
            if let Some(r) = rmsre(&hb_errors) {
                hb_rmsres.push(r);
            }
            if let Some(r) = rmsre(&hybrid_errors) {
                hybrid_rmsres.push(r);
            }
        }
    }

    println!("# abl_hybrid: per-trace RMSRE quantiles for FB, HB (HW-LSO), and the hybrid");
    let mut table = render::Table::new(["predictor", "p25", "median", "p75"]);
    for (name, rmsres) in [
        ("fb", &fb_rmsres),
        ("hb_hw_lso", &hb_rmsres),
        ("hybrid", &hybrid_rmsres),
    ] {
        table.row([
            name.to_string(),
            render::f(quantile(rmsres, 0.25).unwrap_or(f64::NAN)),
            render::f(quantile(rmsres, 0.5).unwrap_or(f64::NAN)),
            render::f(quantile(rmsres, 0.75).unwrap_or(f64::NAN)),
        ]);
    }
    print!("{}", table.render());
    println!("# cold start (first 3 epochs, where pure HB has little or no history):");
    println!(
        "#   fb median |E| = {:.3}, hybrid median |E| = {:.3}",
        quantile(&early_fb.iter().map(|e| e.abs()).collect::<Vec<_>>(), 0.5).unwrap(),
        quantile(
            &early_hybrid.iter().map(|e| e.abs()).collect::<Vec<_>>(),
            0.5
        )
        .unwrap(),
    );
}
