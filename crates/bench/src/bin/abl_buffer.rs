//! **Ablation (paper §3.4)** — bottleneck buffer size and the avail-bw
//! vs TCP-throughput gap.
//!
//! "Whether a TCP flow can saturate the avail-bw of a path depends on
//! the buffer space B at the bottleneck. If B is not sufficiently large,
//! packet losses can cause significant underutilization and the
//! resulting TCP throughput can be lower than Â." The paper could not
//! vary B on real routers; here B is a parameter: sweep the buffer from
//! a quarter BDP to four BDPs and measure the transfer's fraction of the
//! spare capacity and the FB (avail-bw branch) error.

use tputpred_bench::Args;
use tputpred_core::metrics::relative_error_floored;
use tputpred_netsim::link::LinkConfig;
use tputpred_netsim::sources::{PoissonSource, Sink, SourceConfig};
use tputpred_netsim::{RateSchedule, Route, Simulator, Time};
use tputpred_probes::BulkTransfer;
use tputpred_stats::{render, Summary};
use tputpred_tcp::TcpConfig;

fn run_buffer(bdp_mult: f64, epochs: usize) -> (u32, f64, f64, f64, f64) {
    let capacity = 10e6;
    let one_way = Time::from_millis(40);
    let rtt = 0.080;
    let bdp_pkts = LinkConfig::bdp_packets(capacity, Time::from_millis(80), 1500);
    let buffer = ((bdp_pkts as f64 * bdp_mult) as u32).max(3);
    let cross = 3e6;
    let avail = capacity - cross;

    let mut sim = Simulator::new(44);
    let fwd = sim.add_link(LinkConfig::new(capacity, one_way, buffer));
    let rev = sim.add_link(LinkConfig::new(1e9, one_way, 1000));
    let (sink, _) = Sink::new();
    let sink_id = sim.add_endpoint(Box::new(sink));
    let (src, _) = PoissonSource::new(SourceConfig {
        route: Route::direct(fwd),
        dst: sink_id,
        packet_size: 1000,
        base_rate_bps: cross,
        schedule: RateSchedule::constant(1.0),
        stop: Time::MAX,
    });
    let id = sim.add_endpoint(Box::new(src));
    sim.schedule_timer(id, 0, Time::ZERO);

    let mut fraction = Summary::new();
    let mut flow_rtt = Summary::new();
    let mut losses = 0u64;
    let mut errors = Vec::new();
    let mut t = Time::from_secs(3);
    for _ in 0..epochs {
        let stop = t + Time::from_secs(45);
        let transfer = BulkTransfer::launch(
            &mut sim,
            TcpConfig::default(),
            Route::direct(fwd),
            Route::direct(rev),
            t,
            stop,
        );
        sim.run_until(stop + Time::from_secs(2));
        let r = transfer.throughput().max(1e3);
        fraction.push(r / avail);
        {
            let s = transfer.stats().borrow();
            flow_rtt.push(s.rtt.mean());
            losses += s.loss_events();
        }
        // The FB lossless branch predicts min(W/T, Â); with W = 1 MB the
        // avail-bw term binds. Feed it the true avail-bw: the remaining
        // error is purely the §3.4 buffer effect.
        let prediction = (8.0 * (1u64 << 20) as f64 / rtt).min(avail);
        errors.push(relative_error_floored(prediction, r));
        t = sim.now() + Time::from_secs(2);
    }
    let rmsre = tputpred_core::metrics::rmsre(&errors).unwrap_or(f64::NAN);
    (
        buffer,
        fraction.mean(),
        rmsre,
        flow_rtt.mean() * 1e3,
        losses as f64 / epochs as f64,
    )
}

fn main() {
    let _args = Args::parse();
    println!(
        "# abl_buffer: transfer throughput vs bottleneck buffer (10 Mbps, 80 ms RTT, 30% load)"
    );
    println!("# FB prediction fed the TRUE avail-bw: residual error is the buffer effect alone");
    let mut table = render::Table::new([
        "buffer_bdp",
        "buffer_pkts",
        "r_over_avail",
        "fb_rmsre_true_availbw",
        "flow_rtt_ms",
        "loss_ev/epoch",
    ]);
    for mult in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let (pkts, frac, rmsre, rtt_ms, losses) = run_buffer(mult, 8);
        table.row([
            format!("{mult:.2}"),
            pkts.to_string(),
            render::f(frac),
            render::f(rmsre),
            format!("{rtt_ms:.0}"),
            render::f(losses),
        ]);
    }
    print!("{}", table.render());
    println!("# expected shape: throughput/avail peaks around ~0.5-1 BDP. Below that, droptail");
    println!("# losses starve the flow (3.4's insufficient-buffering case); far above it,");
    println!("# bufferbloat inflates the flow's RTT (see flow_rtt_ms) so congestion avoidance");
    println!("# crawls and slow-start overshoot costs multi-loss windows. Either way, even the");
    println!("# TRUE avail-bw is an inaccurate FB prediction — the formula's inputs are not");
    println!("# the problem; the flow/path interaction is.");
}
