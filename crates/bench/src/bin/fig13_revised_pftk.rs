//! **Fig. 13** — CDF of the FB error using the original PFTK
//! approximation (Eq. 2) versus the revised PFTK model (the paper's
//! ref. \[26\]); the full PFTK model is included as a third series.
//!
//! Paper finding: the difference between the predictors is *negligible*
//! compared to FB prediction's other error sources — fixing the formula
//! does not fix FB prediction.

use tputpred_bench::{a_priori, fb_config_with_model, is_lossy, load_dataset, require_cdf, Args};
use tputpred_core::fb::{FbModel, FbPredictor};
use tputpred_core::metrics::relative_error_floored;
use tputpred_stats::render;

fn main() {
    let args = Args::parse();
    let ds = load_dataset(&args);

    println!("# fig13: FB error CDF with original vs revised (vs full) PFTK (lossy epochs)");
    let models = [
        ("pftk_eq2", FbModel::PftkSimple),
        ("pftk_revised", FbModel::PftkRevised),
        ("pftk_full", FbModel::PftkFull),
    ];
    let mut medians = Vec::new();
    for (name, model) in models {
        let fb = FbPredictor::new(fb_config_with_model(&ds.preset, model));
        let errors: Vec<f64> = ds
            .complete_epochs()
            .filter(|(_, _, rec)| is_lossy(rec))
            .map(|(_, _, rec)| relative_error_floored(fb.predict(&a_priori(&rec)), rec.r_large))
            .collect();
        assert!(!errors.is_empty(), "no lossy epochs in this dataset");
        let cdf = require_cdf(name, errors.iter().copied());
        print!("{}", render::cdf_series(name, &cdf, 60));
        medians.push((name, cdf.quantile(0.5)));
        println!(
            "# {name}: median={:.3} P(E>=1)={:.3}",
            cdf.quantile(0.5),
            1.0 - cdf.fraction_below(1.0 - 1e-12)
        );
    }
    let spread = medians
        .iter()
        .map(|&(_, m)| m)
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), m| {
            (lo.min(m), hi.max(m))
        });
    println!(
        "# median spread across models: {:.3} (negligible vs the error magnitudes above)",
        spread.1 - spread.0
    );
}
