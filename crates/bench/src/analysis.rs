//! Shared analysis: FB prediction over epoch records, the HB predictor
//! zoo, per-trace evaluation, dataset caching.

use crate::cli::Args;
use tputpred_core::fb::{FbConfig, FbModel, FbPredictor, PartialEstimates, PathEstimates};
use tputpred_core::hb::{Ewma, HoltWinters, MovingAverage};
use tputpred_core::lso::{Lso, LsoConfig};
use tputpred_core::metrics::{self, relative_error_floored};
use tputpred_core::predictor::EpochObservation;
use tputpred_stats::{Cdf, CdfError};
use tputpred_testbed::{
    load_or_generate_sharded, CompleteEpoch, Dataset, EpochRecord, Preset, ShardStats, TraceData,
};

/// Builds the CDF a figure series needs from a possibly degraded sample.
///
/// Fault injection (DESIGN.md §10) means a heavily faulted preset can
/// leave a series with no scoreable epochs, and derived metrics can in
/// principle go non-finite. This is the figure binaries' filter-or-refuse
/// policy in one place: non-finite samples are dropped with a stderr
/// note, and an empty series terminates the binary with a message naming
/// the series instead of a panic backtrace.
pub fn require_cdf<I: IntoIterator<Item = f64>>(label: &str, samples: I) -> Cdf {
    let all: Vec<f64> = samples.into_iter().collect();
    let finite: Vec<f64> = all.iter().copied().filter(|v| v.is_finite()).collect();
    let dropped = all.len() - finite.len();
    if dropped > 0 {
        eprintln!("# series '{label}': dropped {dropped} non-finite sample(s)");
    }
    match Cdf::try_from_samples(finite) {
        Ok(cdf) => cdf,
        Err(CdfError::Empty) => {
            eprintln!(
                "error: series '{label}' has no usable samples (all epochs refused or faulted?)"
            );
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("error: series '{label}': {e}");
            std::process::exit(1);
        }
    }
}

/// A heap predictor — everything in the zoo is `Send` so evaluation can
/// parallelize if needed. (The same alias the predictor registry hands
/// out.)
pub use tputpred_core::catalog::BoxedPredictor;

/// A fresh-predictor constructor, so figure binaries can re-run a
/// predictor from scratch per trace.
pub type PredictorCtor = fn() -> BoxedPredictor;

/// A labelled predictor line-up, as the figure binaries tabulate them.
pub type PredictorZoo = Vec<(&'static str, PredictorCtor)>;

/// Loads the dataset for `args` from the per-path shard cache
/// (`<data_dir>/<preset>/`), regenerating only the shards the running
/// binary no longer trusts — missing, corrupt, or written by different
/// simulation code or a different (preset, config) (see
/// `tputpred_testbed::behavior_hash` and DESIGN.md §9). Regeneration
/// parallelizes across cores; progress goes to stderr so figure output
/// on stdout stays clean.
pub fn load_dataset(args: &Args) -> Dataset {
    load_dataset_with_shards(args).0
}

/// [`load_dataset`] plus the shard reuse counts, for binaries that
/// report cache effectiveness (`gen_dataset`, `perf_report`).
pub fn load_dataset_with_shards(args: &Args) -> (Dataset, ShardStats) {
    let dir = args.shard_dir();
    load_or_generate_sharded(&dir, &args.preset)
        .unwrap_or_else(|e| panic!("dataset at {}: {e}", dir.display()))
}

/// The column set of the epoch CSV export (`export_csv`), in order.
/// The committed `results/epochs_<preset>.csv` files follow this
/// schema; `crates/bench/tests/results_schema.rs` fails when they drift
/// from it.
pub const EPOCH_CSV_COLUMNS: &[&str] = &[
    "path",
    "trace",
    "epoch",
    "status",
    "capacity_bps",
    "base_rtt_s",
    "buffer_pkts",
    "utilization",
    "elastic_flows",
    "a_hat_bps",
    "t_hat_s",
    "p_hat",
    "t_tilde_s",
    "p_tilde",
    "r_large_bps",
    "r_small_bps",
    "r_prefix_quarter_bps",
    "r_prefix_half_bps",
    "flow_loss_events",
    "flow_retx_rate",
    "flow_rtt_s",
    "true_avail_bw_bps",
    "fb_error",
];

/// The FB configuration matching the preset's large-window transfers.
pub fn fb_config(preset: &Preset) -> FbConfig {
    FbConfig {
        max_window: preset.w_large,
        ..FbConfig::default()
    }
}

/// The FB configuration for the window-limited (20 KB) transfers.
pub fn fb_config_small(preset: &Preset) -> FbConfig {
    FbConfig {
        max_window: preset.w_small,
        ..FbConfig::default()
    }
}

/// FB configuration with an explicit model (Fig. 13 compares
/// [`FbModel::PftkSimple`] against [`FbModel::PftkRevised`]).
pub fn fb_config_with_model(preset: &Preset, model: FbModel) -> FbConfig {
    FbConfig {
        model,
        ..fb_config(preset)
    }
}

/// A-priori estimates of one epoch — what Eq. 3 is allowed to see.
pub fn a_priori(rec: &CompleteEpoch) -> PathEstimates {
    PathEstimates {
        rtt: rec.t_hat,
        loss_rate: rec.p_hat,
        avail_bw: rec.a_hat,
    }
}

/// A-priori estimates of a possibly degraded epoch — what
/// [`FbPredictor::try_predict`] sees when measurement tools fail
/// (`None` where the tool produced nothing).
pub fn partial_a_priori(rec: &EpochRecord) -> PartialEstimates {
    PartialEstimates {
        rtt: rec.t_hat,
        loss_rate: rec.p_hat,
        avail_bw: rec.a_hat,
    }
}

/// A trace as the unified predictor protocol consumes it: one
/// [`EpochObservation`] per epoch record, a-priori probe features from
/// [`partial_a_priori`] (`None` where a tool faulted) and the
/// large-window throughput as the measured outcome (`None` where the
/// transfer failed). This is the input of
/// [`tputpred_core::metrics::evaluate_epochs`] and the league table.
pub fn epoch_observations(trace: &TraceData) -> Vec<EpochObservation> {
    trace
        .records
        .iter()
        .map(|rec| EpochObservation::new(partial_a_priori(rec).into(), rec.r_large))
        .collect()
}

/// The path's class — the catalog name (`dsl-03`, `eu-us-07`, …) with
/// its per-path index stripped (`dsl`, `eu-us`), matching the grouping
/// of Fig. 21. Names not of that shape fall into `"other"`.
pub fn path_class(name: &str) -> &str {
    match name.rfind('-') {
        Some(i)
            if i > 0
                && !name[i + 1..].is_empty()
                && name[i + 1..].bytes().all(|b| b.is_ascii_digit()) =>
        {
            &name[..i]
        }
        _ => "other",
    }
}

/// The column set of the league-table CSV (`fig24_league_table`), in
/// order. The committed `results/league_<preset>.csv` files follow this
/// schema; `crates/bench/tests/results_schema.rs` fails when they drift
/// from it.
pub const LEAGUE_CSV_COLUMNS: &[&str] = &[
    "predictor",
    "class",
    "traces",
    "scored_epochs",
    "rmsre_p25",
    "rmsre_median",
    "rmsre_p75",
];

/// The column set of the resilience-table CSV (`fig25_resilience`), in
/// order: per (predictor, outage regime), how often the predictor
/// answered and how well. The committed `results/resilience_<preset>.csv`
/// files follow this schema; `crates/bench/tests/results_schema.rs`
/// fails when they drift from it.
pub const RESILIENCE_CSV_COLUMNS: &[&str] = &[
    "predictor",
    "regime",
    "epochs",
    "forecasts",
    "availability",
    "scored_epochs",
    "rmsre",
];

/// During-flow estimates (T̃, p̃) of one epoch — the hypothetical inputs
/// of §4.2.3 / Fig. 6.
pub fn during_flow(rec: &CompleteEpoch) -> PathEstimates {
    PathEstimates {
        rtt: rec.t_tilde,
        loss_rate: rec.p_tilde,
        avail_bw: rec.a_hat,
    }
}

/// Was this epoch's path lossy *a priori* (PFTK branch of Eq. 3) rather
/// than lossless (avail-bw branch)?
pub fn is_lossy(rec: &CompleteEpoch) -> bool {
    rec.p_hat > 0.0
}

/// Relative FB prediction error `E` (Eq. 4) of one epoch against the
/// large-window transfer.
pub fn fb_error(fb: &FbPredictor, rec: &CompleteEpoch) -> f64 {
    relative_error_floored(fb.predict(&a_priori(rec)), rec.r_large)
}

/// The standard predictor zoo of the HB evaluation (§6.1.1):
/// `(label, constructor)` pairs.
pub fn hb_zoo() -> PredictorZoo {
    vec![
        ("1-MA", || Box::new(MovingAverage::new(1)) as BoxedPredictor),
        ("5-MA", || Box::new(MovingAverage::new(5)) as BoxedPredictor),
        ("10-MA", || {
            Box::new(MovingAverage::new(10)) as BoxedPredictor
        }),
        ("20-MA", || {
            Box::new(MovingAverage::new(20)) as BoxedPredictor
        }),
        ("0.8-EWMA", || Box::new(Ewma::new(0.8)) as BoxedPredictor),
        ("0.8-HW", || {
            Box::new(HoltWinters::new(0.8, 0.2)) as BoxedPredictor
        }),
        ("5-MA-LSO", || {
            Box::new(Lso::new(MovingAverage::new(5))) as BoxedPredictor
        }),
        ("10-MA-LSO", || {
            Box::new(Lso::new(MovingAverage::new(10))) as BoxedPredictor
        }),
        ("20-MA-LSO", || {
            Box::new(Lso::new(MovingAverage::new(20))) as BoxedPredictor
        }),
        ("0.8-HW-LSO", || {
            Box::new(Lso::new(HoltWinters::new(0.8, 0.2))) as BoxedPredictor
        }),
    ]
}

/// The paper's headline HB predictor: Holt-Winters(α = 0.8, β = 0.2)
/// with LSO.
pub fn hw_lso() -> BoxedPredictor {
    Box::new(Lso::new(HoltWinters::new(0.8, 0.2)))
}

/// One-step-ahead RMSRE of a fresh `make()` predictor over a throughput
/// series (outlier epochs excluded per §6.1.3). `None` when the series is
/// too short to score.
pub fn trace_rmsre(make: fn() -> BoxedPredictor, series: &[f64]) -> Option<f64> {
    let mut p = make();
    metrics::evaluate(&mut p, series).rmsre()
}

/// Per-trace RMSREs of a predictor across the whole dataset, using the
/// large-window throughput series.
pub fn rmsre_per_trace(dataset: &Dataset, make: fn() -> BoxedPredictor) -> Vec<f64> {
    dataset
        .paths
        .iter()
        .flat_map(|p| p.traces.iter())
        .filter_map(|t| trace_rmsre(make, &t.throughput_series()))
        .collect()
}

/// Segment-weighted CoV (§6.1.3) of every trace's throughput series.
pub fn cov_per_trace(dataset: &Dataset) -> Vec<f64> {
    dataset
        .paths
        .iter()
        .flat_map(|p| p.traces.iter())
        .filter_map(|t| metrics::segmented_cov(&t.throughput_series(), LsoConfig::default()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tputpred_testbed::{PathData, TraceData};

    fn record(p_hat: f64, r: f64) -> EpochRecord {
        EpochRecord {
            status: Default::default(),
            faults: Default::default(),
            a_hat: Some(5e6),
            t_hat: Some(0.05),
            p_hat: Some(p_hat),
            t_tilde: Some(0.06),
            p_tilde: Some(p_hat * 2.0),
            r_large: Some(r),
            r_small: Some(r / 4.0),
            r_prefix_quarter: Some(r),
            r_prefix_half: Some(r),
            flow_loss_events: 0,
            flow_retx_rate: 0.0,
            flow_rtt: 0.055,
            true_avail_bw: 5e6,
        }
    }

    fn complete(p_hat: f64, r: f64) -> CompleteEpoch {
        record(p_hat, r).complete().expect("record is complete")
    }

    fn tiny_dataset() -> Dataset {
        let config = tputpred_testbed::catalog_2004(3, 1).remove(0);
        Dataset {
            preset: Preset::tiny(),
            paths: vec![PathData {
                config,
                traces: vec![TraceData {
                    records: (0..20)
                        .map(|i| record(0.0, 4e6 + (i % 3) as f64 * 1e5))
                        .collect(),
                }],
            }],
        }
    }

    #[test]
    fn lossless_epoch_uses_availbw_branch() {
        let rec = complete(0.0, 4e6);
        let fb = FbPredictor::new(fb_config(&Preset::tiny()));
        // W/T̂ = 8 MiB / 0.05 s ≈ 168 Mbps ≫ Â = 5 Mbps → predict Â.
        assert_eq!(fb.predict(&a_priori(&rec)), 5e6);
        assert!(!is_lossy(&rec));
    }

    #[test]
    fn lossy_epoch_uses_pftk_branch() {
        let rec = complete(0.02, 1e6);
        assert!(is_lossy(&rec));
        let fb = FbPredictor::new(fb_config(&Preset::tiny()));
        let pred = fb.predict(&a_priori(&rec));
        assert!(pred < 5e6, "PFTK at 2% loss, 50 ms: {pred}");
        let e = fb_error(&fb, &rec);
        assert!(e.is_finite());
    }

    #[test]
    fn during_flow_estimates_swap_in_tilde_values() {
        let rec = complete(0.02, 1e6);
        let d = during_flow(&rec);
        assert_eq!(d.rtt, rec.t_tilde);
        assert_eq!(d.loss_rate, rec.p_tilde);
    }

    #[test]
    fn partial_a_priori_forwards_the_gaps() {
        let mut rec = record(0.02, 1e6);
        rec.a_hat = None;
        let p = partial_a_priori(&rec);
        assert_eq!(p.rtt, Some(0.05));
        assert_eq!(p.loss_rate, Some(0.02));
        assert_eq!(p.avail_bw, None);
    }

    #[test]
    fn zoo_contains_the_papers_predictors() {
        let names: Vec<&str> = hb_zoo().iter().map(|(n, _)| *n).collect();
        for expected in ["1-MA", "10-MA", "0.8-EWMA", "0.8-HW", "0.8-HW-LSO"] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        // Constructors produce predictors with matching self-reported
        // names.
        for (label, make) in hb_zoo() {
            assert_eq!(make().name(), label);
        }
    }

    #[test]
    fn path_class_strips_the_index() {
        assert_eq!(path_class("dsl-03"), "dsl");
        assert_eq!(path_class("eu-us-07"), "eu-us");
        assert_eq!(path_class("kr-us-1"), "kr-us");
        assert_eq!(path_class("us-12"), "us");
        assert_eq!(path_class("weird"), "other");
        assert_eq!(path_class("trailing-"), "other");
        assert_eq!(path_class("-3"), "other");
    }

    #[test]
    fn epoch_observations_carry_features_and_gaps() {
        let mut records: Vec<EpochRecord> = (0..3).map(|_| record(0.01, 4e6)).collect();
        records[1].r_large = None;
        records[1].t_hat = None;
        let trace = TraceData { records };
        let epochs = epoch_observations(&trace);
        assert_eq!(epochs.len(), 3);
        assert_eq!(epochs[0].throughput_bps, Some(4e6));
        assert_eq!(epochs[0].features.probes.rtt, Some(0.05));
        assert_eq!(epochs[1].throughput_bps, None);
        assert_eq!(epochs[1].features.probes.rtt, None);
        assert_eq!(epochs[1].features.probes.loss_rate, Some(0.01));
    }

    #[test]
    fn rmsre_per_trace_scores_every_trace() {
        let ds = tiny_dataset();
        let rmsres = rmsre_per_trace(&ds, || Box::new(MovingAverage::new(10)));
        assert_eq!(rmsres.len(), 1);
        assert!(rmsres[0] < 0.1, "nearly constant series: {}", rmsres[0]);
    }

    #[test]
    fn cov_per_trace_matches_series_variability() {
        let ds = tiny_dataset();
        let covs = cov_per_trace(&ds);
        assert_eq!(covs.len(), 1);
        assert!(covs[0] > 0.0 && covs[0] < 0.1);
    }
}
