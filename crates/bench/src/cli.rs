//! Minimal command-line handling shared by the figure binaries.
//!
//! Hand-rolled (two flags) rather than pulling in a CLI crate:
//!
//! * `--preset <paper|quick|tiny|quick-2006>` — experiment scale
//!   (default `quick`);
//! * `--data <dir>` — dataset cache directory (default `data/`): the
//!   first binary to run populates the per-path shard cache
//!   `<dir>/<preset>/` (DESIGN.md §9), later ones reuse it —
//!   regenerating only shards the running binary no longer trusts;
//! * `--profile` — regenerate the dataset with telemetry enabled and
//!   write a `BENCH_gen_<preset>.json` perf report (see
//!   [`crate::profile`]; honored by `gen_dataset`, implied by
//!   `perf_report`);
//! * `--baseline <file>` — a committed perf report to gate against:
//!   `perf_report` exits non-zero when the fresh run's events/s falls
//!   more than 20% below it (DESIGN.md §14; the CI perf gate).

use std::path::PathBuf;
use tputpred_testbed::Preset;

/// Parsed figure-binary arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    /// Experiment scale.
    pub preset: Preset,
    /// Dataset cache directory.
    pub data_dir: PathBuf,
    /// Profile generation and emit `BENCH_gen_<preset>.json`.
    pub profile: bool,
    /// Committed perf report to gate this run's events/s against.
    pub baseline: Option<PathBuf>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            preset: Preset::quick(),
            data_dir: PathBuf::from("data"),
            profile: false,
            baseline: None,
        }
    }
}

impl Args {
    /// Parses from an explicit argument list (excluding argv\[0\]).
    ///
    /// Returns an error message for unknown flags or bad preset names —
    /// binaries print it and exit non-zero.
    pub fn parse_from<I, S>(args: I) -> Result<Args, String>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut parsed = Args::default();
        let mut iter = args.into_iter().map(Into::into);
        while let Some(flag) = iter.next() {
            match flag.as_str() {
                "--preset" => {
                    let name = iter.next().ok_or("--preset needs a value")?;
                    parsed.preset = Preset::by_name(&name).ok_or_else(|| {
                        format!("unknown preset '{name}' (paper|quick|tiny|quick-2006)")
                    })?;
                }
                "--data" => {
                    let dir = iter.next().ok_or("--data needs a value")?;
                    parsed.data_dir = PathBuf::from(dir);
                }
                "--profile" => parsed.profile = true,
                "--baseline" => {
                    let file = iter.next().ok_or("--baseline needs a value")?;
                    parsed.baseline = Some(PathBuf::from(file));
                }
                other => return Err(format!("unknown flag '{other}'")),
            }
        }
        Ok(parsed)
    }

    /// Parses the process arguments; prints the error and exits on
    /// failure.
    pub fn parse() -> Args {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!(
                    "usage: <bin> [--preset paper|quick|tiny|quick-2006] [--data DIR] \
                     [--profile] [--baseline FILE]"
                );
                std::process::exit(2);
            }
        }
    }

    /// The shard-cache directory this argument set resolves to
    /// (`<data_dir>/<preset>/`, one `path-<id>.json` per catalog path).
    pub fn shard_dir(&self) -> PathBuf {
        self.data_dir.join(&self.preset.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_quick_and_data_dir() {
        let a = Args::parse_from(Vec::<String>::new()).unwrap();
        assert_eq!(a.preset.name, "quick");
        assert_eq!(a.data_dir, PathBuf::from("data"));
        assert_eq!(a.shard_dir(), PathBuf::from("data/quick"));
    }

    #[test]
    fn flags_are_parsed() {
        let a = Args::parse_from(["--preset", "tiny", "--data", "/tmp/x"]).unwrap();
        assert_eq!(a.preset.name, "tiny");
        assert_eq!(a.shard_dir(), PathBuf::from("/tmp/x/tiny"));
        assert!(!a.profile);
    }

    #[test]
    fn profile_flag_is_parsed() {
        let a = Args::parse_from(["--profile"]).unwrap();
        assert!(a.profile);
        assert_eq!(a.baseline, None);
    }

    #[test]
    fn baseline_flag_is_parsed() {
        let a = Args::parse_from(["--baseline", "results/BENCH_gen_quick.json"]).unwrap();
        assert_eq!(
            a.baseline,
            Some(PathBuf::from("results/BENCH_gen_quick.json"))
        );
        assert!(Args::parse_from(["--baseline"]).is_err());
    }

    #[test]
    fn bad_preset_is_an_error() {
        assert!(Args::parse_from(["--preset", "huge"]).is_err());
        assert!(Args::parse_from(["--preset"]).is_err());
        assert!(Args::parse_from(["--frobnicate"]).is_err());
    }
}
