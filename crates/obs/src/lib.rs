//! Observation-only telemetry for the simulation pipeline.
//!
//! This crate is the one place in the workspace that may read the wall
//! clock. The simulation crates (`netsim`, `tcp`, `probes`, `testbed`,
//! `core`) are scanned by the `nondeterminism` xtask rule and must not
//! name `Instant`/`SystemTime`; they call the name-based API here
//! (`obs::add`, `obs::time_scope`, ...) instead, which keeps every
//! wall-clock read outside simulation state.
//!
//! # Determinism contract
//!
//! Telemetry is *write-only* from the simulation's point of view:
//! nothing in this crate feeds a value back into simulation logic, no
//! RNG is consumed, and no event ordering depends on it. Datasets
//! generated with telemetry enabled, disabled, or contended by many
//! worker threads are bit-identical (pinned by
//! `crates/testbed/tests/telemetry_purity.rs` and the zero-fault pin).
//!
//! Counter totals are themselves deterministic — each worker's
//! increments are a pure function of its trace, and addition commutes —
//! while timer and gauge readings are wall-clock measurements and vary
//! run to run by design.
//!
//! # Instruments
//!
//! * [`add`] — monotonic `u64` counters (events dispatched, drops, ...)
//! * [`gauge_set`] — last-write-wins `f64` gauges (worker count, ...)
//! * [`record`] — `f64` sample distributions (count/total/min/max)
//! * [`time_scope`] / [`TimeScope`] — wall-clock timing scopes that
//!   accumulate nanosecond durations, reported in seconds
//!
//! All instruments are no-ops while telemetry is disabled (the
//! default); enable with [`set_enabled`] and harvest with [`snapshot`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

pub mod report;

pub use report::{CounterEntry, DistEntry, GaugeEntry, TelemetryReport, TimerEntry};

/// A monotonic counter cell. Lock-free; increments are relaxed atomic
/// adds, so contended workers never serialize on telemetry.
#[derive(Debug, Default)]
struct CounterCell {
    count: AtomicU64,
}

/// Last-write-wins gauge storing `f64` bits.
#[derive(Debug)]
struct GaugeCell {
    bits: AtomicU64,
}

impl Default for GaugeCell {
    fn default() -> Self {
        GaugeCell {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

/// Sample distribution: count, sum, min, max over `f64` samples.
/// Min/max use compare-exchange loops with float comparison, so
/// negative samples order correctly too.
#[derive(Debug)]
struct DistCell {
    count: AtomicU64,
    total_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Default for DistCell {
    fn default() -> Self {
        DistCell {
            count: AtomicU64::new(0),
            total_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }
}

/// Wall-clock timer accumulator in nanoseconds.
#[derive(Debug, Default)]
struct TimerCell {
    count: AtomicU64,
    total_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

/// The process-wide instrument registry. Cells are interned by name and
/// live for the process lifetime; `reset` zeroes them in place so that
/// concurrent writers never observe a dangling cell.
#[derive(Debug, Default)]
struct Registry {
    enabled: AtomicBool,
    counters: Mutex<BTreeMap<String, Arc<CounterCell>>>,
    gauges: Mutex<BTreeMap<String, Arc<GaugeCell>>>,
    dists: Mutex<BTreeMap<String, Arc<DistCell>>>,
    timers: Mutex<BTreeMap<String, Arc<TimerCell>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Interns a cell by name. Poisoned-mutex recovery: telemetry must
/// never abort the pipeline, so a poisoned lock degrades to the inner
/// guard (the maps hold only interned `Arc`s, which cannot be left in a
/// torn state by a panicking writer).
fn intern<C: Default>(map: &Mutex<BTreeMap<String, Arc<C>>>, name: &str) -> Arc<C> {
    let mut guard = match map.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    if let Some(cell) = guard.get(name) {
        return Arc::clone(cell);
    }
    let cell = Arc::new(C::default());
    guard.insert(name.to_string(), Arc::clone(&cell));
    cell
}

fn locked<C>(
    map: &Mutex<BTreeMap<String, Arc<C>>>,
) -> std::sync::MutexGuard<'_, BTreeMap<String, Arc<C>>> {
    match map.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Turns telemetry collection on or off. Disabled (the default), every
/// instrument is a cheap no-op and [`snapshot`] reports whatever was
/// recorded before. Enabling does not clear prior data; call [`reset`]
/// for a fresh window.
pub fn set_enabled(on: bool) {
    registry().enabled.store(on, Ordering::Relaxed);
}

/// Whether telemetry collection is currently enabled.
pub fn enabled() -> bool {
    registry().enabled.load(Ordering::Relaxed)
}

/// Zeroes every registered instrument in place. Interned names survive
/// (zero-valued entries still appear in [`snapshot`]), and instrument
/// handles held by other threads stay valid.
pub fn reset() {
    let reg = registry();
    for cell in locked(&reg.counters).values() {
        cell.count.store(0, Ordering::Relaxed);
    }
    for cell in locked(&reg.gauges).values() {
        cell.bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
    for cell in locked(&reg.dists).values() {
        cell.count.store(0, Ordering::Relaxed);
        cell.total_bits.store(0f64.to_bits(), Ordering::Relaxed);
        cell.min_bits
            .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        cell.max_bits
            .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
    }
    for cell in locked(&reg.timers).values() {
        cell.count.store(0, Ordering::Relaxed);
        cell.total_ns.store(0, Ordering::Relaxed);
        cell.min_ns.store(0, Ordering::Relaxed);
        cell.max_ns.store(0, Ordering::Relaxed);
    }
}

/// Adds `n` to the counter `name`. No-op while disabled.
pub fn add(name: &str, n: u64) {
    if !enabled() || n == 0 {
        return;
    }
    intern(&registry().counters, name)
        .count
        .fetch_add(n, Ordering::Relaxed);
}

/// Sets the gauge `name` to `value` (last write wins). No-op while
/// disabled.
pub fn gauge_set(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    intern(&registry().gauges, name)
        .bits
        .store(value.to_bits(), Ordering::Relaxed);
}

fn dist_fold(cell: &AtomicU64, sample: f64, pick: fn(f64, f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = pick(f64::from_bits(cur), sample).to_bits();
        if next == cur {
            return;
        }
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

fn dist_push(cell: &DistCell, count: u64, total: f64, min: f64, max: f64) {
    cell.count.fetch_add(count, Ordering::Relaxed);
    dist_fold(&cell.total_bits, total, |acc, v| acc + v);
    dist_fold(&cell.min_bits, min, f64::min);
    dist_fold(&cell.max_bits, max, f64::max);
}

/// Records one sample into the distribution `name`. No-op while
/// disabled; non-finite samples are dropped.
pub fn record(name: &str, sample: f64) {
    if !enabled() || !sample.is_finite() {
        return;
    }
    dist_push(&intern(&registry().dists, name), 1, sample, sample, sample);
}

/// Merges a pre-aggregated summary (count, sum, min, max) into the
/// distribution `name`. Lets hot paths keep cheap thread-local
/// summaries and fold them in once per trace. No-op while disabled or
/// when `count` is zero.
pub fn record_summary(name: &str, count: u64, total: f64, min: f64, max: f64) {
    if !enabled() || count == 0 {
        return;
    }
    if !(total.is_finite() && min.is_finite() && max.is_finite()) {
        return;
    }
    dist_push(&intern(&registry().dists, name), count, total, min, max);
}

/// Records a pre-measured duration (in nanoseconds) into the timer
/// `name`. No-op while disabled.
pub fn timer_record_ns(name: &str, elapsed_ns: u64) {
    if !enabled() {
        return;
    }
    timer_push(&intern(&registry().timers, name), elapsed_ns);
}

fn timer_push(cell: &TimerCell, elapsed_ns: u64) {
    let prior = cell.count.fetch_add(1, Ordering::Relaxed);
    cell.total_ns.fetch_add(elapsed_ns, Ordering::Relaxed);
    if prior == 0 {
        // First sample seeds min directly; fetch_min against the
        // default 0 would otherwise pin min at 0 forever. A racing
        // first sample is resolved by the fetch_min below.
        cell.min_ns.store(elapsed_ns, Ordering::Relaxed);
    }
    cell.min_ns.fetch_min(elapsed_ns, Ordering::Relaxed);
    cell.max_ns.fetch_max(elapsed_ns, Ordering::Relaxed);
}

/// An in-flight wall-clock measurement. Records into its timer when
/// dropped (or explicitly via [`TimeScope::stop`]). Holds no lock; the
/// clock is read at start and stop only.
#[derive(Debug)]
pub struct TimeScope {
    live: Option<(Arc<TimerCell>, Instant)>,
}

impl TimeScope {
    /// Stops the scope now and records the elapsed time. Idempotent.
    pub fn stop(&mut self) {
        if let Some((cell, started)) = self.live.take() {
            let elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            timer_push(&cell, elapsed_ns);
        }
    }

    /// Abandons the measurement without recording it.
    pub fn cancel(&mut self) {
        self.live = None;
    }
}

impl Drop for TimeScope {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Starts a wall-clock timing scope for the timer `name`. While
/// telemetry is disabled this returns an inert scope and never reads
/// the clock.
#[must_use = "a TimeScope records on drop; binding it to _ drops immediately"]
pub fn time_scope(name: &str) -> TimeScope {
    if !enabled() {
        return TimeScope { live: None };
    }
    TimeScope {
        live: Some((intern(&registry().timers, name), Instant::now())),
    }
}

/// Snapshots every registered instrument into a serializable report.
/// Entries are sorted by name; timers are reported in seconds.
pub fn snapshot() -> TelemetryReport {
    let reg = registry();
    let counters = locked(&reg.counters)
        .iter()
        .map(|(name, cell)| CounterEntry {
            name: name.clone(),
            count: cell.count.load(Ordering::Relaxed),
        })
        .collect();
    let gauges = locked(&reg.gauges)
        .iter()
        .map(|(name, cell)| GaugeEntry {
            name: name.clone(),
            value: f64::from_bits(cell.bits.load(Ordering::Relaxed)),
        })
        .collect();
    let dists = locked(&reg.dists)
        .iter()
        .map(|(name, cell)| {
            let count = cell.count.load(Ordering::Relaxed);
            DistEntry {
                name: name.clone(),
                count,
                total: f64::from_bits(cell.total_bits.load(Ordering::Relaxed)),
                min: if count == 0 {
                    0.0
                } else {
                    f64::from_bits(cell.min_bits.load(Ordering::Relaxed))
                },
                max: if count == 0 {
                    0.0
                } else {
                    f64::from_bits(cell.max_bits.load(Ordering::Relaxed))
                },
            }
        })
        .collect();
    let timers = locked(&reg.timers)
        .iter()
        .map(|(name, cell)| {
            let count = cell.count.load(Ordering::Relaxed);
            TimerEntry {
                name: name.clone(),
                count,
                total_s: cell.total_ns.load(Ordering::Relaxed) as f64 / 1e9,
                min_s: cell.min_ns.load(Ordering::Relaxed) as f64 / 1e9,
                max_s: cell.max_ns.load(Ordering::Relaxed) as f64 / 1e9,
            }
        })
        .collect();
    TelemetryReport {
        counters,
        gauges,
        dists,
        timers,
    }
}

/// Runs `f` with telemetry enabled and a fresh window, restoring the
/// previous enabled state afterwards; returns `f`'s output plus the
/// snapshot taken at the end. The profiling entry points (`gen_dataset
/// --profile`, `perf_report`) funnel through this.
pub fn with_profiling<T>(f: impl FnOnce() -> T) -> (T, TelemetryReport) {
    let was = enabled();
    reset();
    set_enabled(true);
    let out = f();
    let report = snapshot();
    set_enabled(was);
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry (and its enabled flag) is process-global, so
    /// parallel tests would race on it; every test serializes on this
    /// lock.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        match LOCK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn instruments_round_trip_through_snapshot() {
        let _guard = test_lock();
        reset();
        set_enabled(true);

        add("t.counter", 2);
        add("t.counter", 3);
        gauge_set("t.gauge", 8.5);
        record("t.dist", 1.0);
        record("t.dist", 3.0);
        record_summary("t.dist", 2, 10.0, 2.0, 8.0);
        timer_record_ns("t.timer", 1_000_000);
        {
            let _scope = time_scope("t.timer");
        }

        let report = snapshot();
        set_enabled(false);

        assert_eq!(report.counter("t.counter"), Some(5));
        let gauge = report
            .gauges
            .iter()
            .find(|g| g.name == "t.gauge")
            .map(|g| g.value);
        assert!(gauge.is_some_and(|v| (v - 8.5).abs() < 1e-12));
        let dist = report.dist("t.dist").expect("dist recorded");
        assert_eq!(dist.count, 4);
        assert!((dist.total - 14.0).abs() < 1e-12);
        assert!((dist.min - 1.0).abs() < 1e-12);
        assert!((dist.max - 8.0).abs() < 1e-12);
        let timer = report.timer("t.timer").expect("timer recorded");
        assert_eq!(timer.count, 2);
        assert!(timer.total_s >= 1e-3);

        reset();
        let zeroed = snapshot();
        assert_eq!(zeroed.counter("t.counter"), Some(0));
    }

    #[test]
    fn disabled_instruments_record_nothing() {
        let _guard = test_lock();
        set_enabled(false);
        add("t.off", 7);
        record("t.off.dist", 1.0);
        let _scope = time_scope("t.off.timer");
        let report = snapshot();
        assert_eq!(report.counter("t.off"), None);
        assert!(report.dist("t.off.dist").is_none());
        assert!(report.timer("t.off.timer").is_none());
    }

    #[test]
    fn contended_counters_sum_exactly() {
        let _guard = test_lock();
        reset();
        set_enabled(true);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        add("t.contended", 1);
                    }
                });
            }
        });
        let report = snapshot();
        set_enabled(false);
        assert_eq!(report.counter("t.contended"), Some(4000));
    }
}
