//! Serializable snapshot of the instrument registry.

use serde::{Deserialize, Serialize};

/// One monotonic counter at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterEntry {
    pub name: String,
    pub count: u64,
}

/// One gauge (last-write-wins value) at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeEntry {
    pub name: String,
    pub value: f64,
}

/// One sample distribution at snapshot time. `total` is the sample
/// sum; `min`/`max` are 0 when `count` is 0.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistEntry {
    pub name: String,
    pub count: u64,
    pub total: f64,
    pub min: f64,
    pub max: f64,
}

/// One wall-clock timer at snapshot time, reported in seconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimerEntry {
    pub name: String,
    pub count: u64,
    pub total_s: f64,
    pub min_s: f64,
    pub max_s: f64,
}

impl TimerEntry {
    /// Mean scope duration in seconds (0 when no samples).
    pub fn mean_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_s / self.count as f64
        }
    }
}

/// A structured snapshot of every registered instrument, sorted by
/// name within each kind. This is the payload embedded in
/// `BENCH_gen_<preset>.json` (DESIGN.md §11).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryReport {
    pub counters: Vec<CounterEntry>,
    pub gauges: Vec<GaugeEntry>,
    pub dists: Vec<DistEntry>,
    pub timers: Vec<TimerEntry>,
}

impl TelemetryReport {
    /// An empty report (no instruments registered).
    pub fn empty() -> Self {
        TelemetryReport {
            counters: Vec::new(),
            gauges: Vec::new(),
            dists: Vec::new(),
            timers: Vec::new(),
        }
    }

    /// All counters whose name starts with `prefix`, in name order —
    /// e.g. `counters_with_prefix("core.resilience.")` pulls the
    /// policy-layer transition counts out of a profiled run.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<&CounterEntry> {
        self.counters
            .iter()
            .filter(|c| c.name.starts_with(prefix))
            .collect()
    }

    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.count)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Looks up a distribution by name.
    pub fn dist(&self, name: &str) -> Option<&DistEntry> {
        self.dists.iter().find(|d| d.name == name)
    }

    /// Looks up a timer by name.
    pub fn timer(&self, name: &str) -> Option<&TimerEntry> {
        self.timers.iter().find(|t| t.name == name)
    }

    /// Total recorded seconds for a timer, 0 when absent.
    pub fn timer_total_s(&self, name: &str) -> f64 {
        self.timer(name).map_or(0.0, |t| t.total_s)
    }
}
