//! Computes the behavior hash — a digest of the source trees that
//! determine dataset contents (netsim, tcp, probes, testbed) — and
//! exposes it to the crate as the `TPUTPRED_BEHAVIOR_HASH` env var.
//! `Dataset::load_or_generate` compares it against the hash embedded in
//! `data/<preset>.json` and regenerates stale caches automatically.

// Shares the hashing code with the crate itself (src/behavior_hash.rs
// is std-only for exactly this reason).
mod behavior_hash {
    include!("src/behavior_hash.rs");
}
use behavior_hash::hash_source_dirs;
use std::path::Path;

fn main() {
    let manifest = std::env::var("CARGO_MANIFEST_DIR").unwrap();
    let manifest = Path::new(&manifest);
    let dirs = [
        manifest.join("../netsim/src"),
        manifest.join("../tcp/src"),
        manifest.join("../probes/src"),
        manifest.join("src"),
    ];
    for dir in &dirs {
        // A directory path re-runs the build script when anything under
        // it changes, keeping the baked-in hash current.
        println!("cargo:rerun-if-changed={}", dir.display());
    }
    let refs: Vec<&Path> = dirs.iter().map(|d| d.as_path()).collect();
    println!(
        "cargo:rustc-env=TPUTPRED_BEHAVIOR_HASH={}",
        hash_source_dirs(&refs)
    );
}
