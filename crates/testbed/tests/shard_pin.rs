//! The sharded cache's correctness guard (DESIGN.md §9): a dataset
//! assembled from per-path shards must be **bit-identical** to a
//! from-scratch `generate()` — whether the shards were written cold in
//! one pass, reloaded warm, or partially regenerated after targeted
//! damage. Compared both as structured values and as serialized JSON,
//! so a float that survives `PartialEq` but differs in bits would still
//! be caught.
//!
//! Faults are enabled so the degraded/missing epoch paths shard and
//! merge correctly too.

use std::fs;
use std::path::PathBuf;

use tputpred_netsim::Time;
use tputpred_testbed::data::{shard_file_name, SHARD_MANIFEST};
use tputpred_testbed::{
    catalog_for, for_each_path, generate, generate_paths, load_or_generate_sharded, FaultConfig,
    Preset, RegimeConfig, ShardStats,
};

fn pin_preset() -> Preset {
    Preset {
        name: "shardpin".into(),
        paths: 4,
        traces_per_path: 1,
        epochs_per_trace: 2,
        pathload_slot: Time::from_secs(6),
        pre_ping: Time::from_secs(5),
        transfer: Time::from_secs(4),
        epoch_gap: Time::from_secs(2),
        w_large: 1 << 20,
        w_small: 20 * 1024,
        with_small_window: true,
        ping_interval: Time::from_millis(100),
        seed: 4321,
        // Faults on: Option-valued measurements must survive the shard
        // round trip bit-for-bit as well.
        faults: FaultConfig::default(),
        // Regimes on: regime-modulated epochs must survive the shard
        // round trip bit-for-bit too.
        regimes: RegimeConfig::flaky(),
    }
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tputpred-shardpin-{}-{}", tag, std::process::id()))
}

#[test]
fn sharded_load_is_bit_identical_to_from_scratch_generation() {
    let preset = pin_preset();
    let reference = generate(&preset);
    let reference_json = serde_json::to_string(&reference).expect("dataset serializes");
    let dir = scratch("main");
    let _ = fs::remove_dir_all(&dir);

    // Cold: every shard generated, then merged in catalog order.
    let (cold, cold_stats) = load_or_generate_sharded(&dir, &preset).expect("cold load");
    assert_eq!(
        cold_stats,
        ShardStats {
            hits: 0,
            missing: preset.paths,
            stale: 0
        }
    );
    assert_eq!(cold, reference, "cold sharded generation diverged");
    assert_eq!(
        serde_json::to_string(&cold).expect("serializes"),
        reference_json,
        "cold sharded generation changed serialized bytes"
    );
    assert!(dir.join(SHARD_MANIFEST).is_file(), "manifest written");

    // Warm: pure reload from shards.
    let (warm, warm_stats) = load_or_generate_sharded(&dir, &preset).expect("warm load");
    assert_eq!(
        warm_stats,
        ShardStats {
            hits: preset.paths,
            missing: 0,
            stale: 0
        }
    );
    assert_eq!(
        serde_json::to_string(&warm).expect("serializes"),
        reference_json,
        "warm sharded reload changed serialized bytes"
    );

    // Targeted damage: corrupt one shard, delete another — only those
    // two regenerate, and the merge is still bit-identical.
    fs::write(dir.join(shard_file_name(1)), "{\"truncated").expect("corrupt shard");
    fs::remove_file(dir.join(shard_file_name(3))).expect("delete shard");
    let (patched, patched_stats) = load_or_generate_sharded(&dir, &preset).expect("patched load");
    assert_eq!(
        patched_stats,
        ShardStats {
            hits: preset.paths - 2,
            missing: 1,
            stale: 1
        }
    );
    assert_eq!(
        serde_json::to_string(&patched).expect("serializes"),
        reference_json,
        "partially regenerated dataset changed serialized bytes"
    );

    fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn per_path_generation_matches_the_full_pass_slice_for_slice() {
    // generate_paths() on an arbitrary subset must reproduce exactly the
    // slices of the full pass — trace seeds depend only on (path, trace
    // index), never on which batch a path was generated in.
    let preset = pin_preset();
    let catalog = catalog_for(&preset);
    let full = generate(&preset);
    let subset = generate_paths(&preset, &catalog, &[2, 0]);
    assert_eq!(subset.len(), 2);
    assert_eq!(subset[0], full.paths[2], "path 2 diverged in subset run");
    assert_eq!(subset[1], full.paths[0], "path 0 diverged in subset run");
    assert!(
        generate_paths(&preset, &catalog, &[]).is_empty(),
        "empty subset generates nothing"
    );
}

#[test]
fn multi_worker_generation_is_bit_identical_to_single_worker() {
    // The synth-preset acceptance bar (DESIGN.md §15): worker count
    // changes only the wall clock, never the bytes. Generate the same
    // preset cold through the streaming API under 1 worker and under 4,
    // and byte-compare every shard file — then check both against the
    // batch loader too.
    let preset = pin_preset();
    let dir_one = scratch("w1");
    let dir_four = scratch("w4");
    let _ = fs::remove_dir_all(&dir_one);
    let _ = fs::remove_dir_all(&dir_four);

    let mut visited_one = Vec::new();
    rayon::with_num_threads(1, || {
        for_each_path(&dir_one, &preset, |id, path| {
            visited_one.push((id, path.config.name.clone()));
            Ok(())
        })
        .expect("single-worker streaming generation")
    });
    rayon::with_num_threads(4, || {
        for_each_path(&dir_four, &preset, |_, _| Ok(())).expect("four-worker streaming generation")
    });

    // The visitor runs in catalog order regardless of the fan-out.
    let catalog = catalog_for(&preset);
    assert_eq!(
        visited_one,
        catalog
            .iter()
            .enumerate()
            .map(|(id, c)| (id, c.name.clone()))
            .collect::<Vec<_>>(),
        "streaming visit order diverged from the catalog"
    );

    for id in 0..preset.paths {
        let one = fs::read(dir_one.join(shard_file_name(id))).expect("worker-1 shard");
        let four = fs::read(dir_four.join(shard_file_name(id))).expect("worker-4 shard");
        assert_eq!(one, four, "shard {id} differs across worker counts");
    }

    // And both agree with the batch API on a warm read.
    let reference = generate(&preset);
    let (warm, stats) = load_or_generate_sharded(&dir_four, &preset).expect("warm load");
    assert_eq!(
        stats,
        ShardStats {
            hits: preset.paths,
            missing: 0,
            stale: 0
        },
        "multi-worker shards were not trusted warm"
    );
    assert_eq!(
        warm, reference,
        "multi-worker shards diverged from generate()"
    );

    fs::remove_dir_all(&dir_one).expect("cleanup");
    fs::remove_dir_all(&dir_four).expect("cleanup");
}

#[test]
fn legacy_monolithic_cache_migrates_to_shards() {
    let preset = pin_preset();
    let base = scratch("legacy");
    let _ = fs::remove_dir_all(&base);
    fs::create_dir_all(&base).expect("scratch dir");
    let dir = base.join(&preset.name);
    let legacy = base.join(format!("{}.json", preset.name));

    // A monolithic cache from the pre-shard format — even one written by
    // this very binary — is fully superseded: every shard regenerates
    // and the monolith is removed.
    let reference = generate(&preset);
    reference.save(&legacy).expect("write legacy cache");
    let (migrated, stats) = load_or_generate_sharded(&dir, &preset).expect("migrating load");
    assert_eq!(
        stats,
        ShardStats {
            hits: 0,
            missing: preset.paths,
            stale: 0
        },
        "legacy cache is treated as fully stale"
    );
    assert_eq!(migrated, reference);
    assert!(!legacy.exists(), "monolithic cache removed after migration");
    assert!(
        dir.join(shard_file_name(0)).is_file(),
        "sharded cache in place"
    );

    fs::remove_dir_all(&base).expect("cleanup");
}
