//! Property tests for the procedural path catalog (DESIGN.md §15):
//! `synth_catalog(n, seed)` must be a bitwise-deterministic pure
//! function of its inputs, every sampled path must sit inside its
//! class's documented calibration ranges ([`class_specs`]), and every
//! synth path must map to a distinct shard fingerprint so the per-path
//! cache can never alias two paths onto one `path-<id>.json`.

use proptest::prelude::*;
use std::collections::BTreeSet;
use tputpred_testbed::data::shard_fingerprint;
use tputpred_testbed::{class_specs, synth_catalog, ClassMix, PathConfig, Preset};

/// Walks the class-block layout, yielding each path with its spec.
fn with_specs(catalog: &[PathConfig]) -> Vec<(&PathConfig, usize)> {
    let counts = ClassMix::default().counts(catalog.len());
    let mut out = Vec::with_capacity(catalog.len());
    let mut at = 0usize;
    for (class, &count) in counts.iter().enumerate() {
        for _ in 0..count {
            out.push((&catalog[at], class));
            at += 1;
        }
    }
    assert_eq!(at, catalog.len(), "class blocks must tile the catalog");
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Same `(n, seed)` → the same catalog, down to the serialized
    /// bytes (the form the shard cache persists).
    #[test]
    fn synth_catalog_is_bitwise_deterministic(
        n in 1usize..400,
        seed in 0u64..u64::MAX,
    ) {
        let a = synth_catalog(n, seed);
        let b = synth_catalog(n, seed);
        prop_assert_eq!(&a, &b);
        let ja = serde_json::to_string(&a).map_err(|e| TestCaseError(format!("serialize: {e}")))?;
        let jb = serde_json::to_string(&b).map_err(|e| TestCaseError(format!("serialize: {e}")))?;
        prop_assert_eq!(ja, jb);
    }

    /// Every sampled parameter lands inside the documented range of the
    /// path's class spec — the ranges DESIGN.md §15 records as the
    /// calibration contract.
    #[test]
    fn every_path_sits_inside_its_class_ranges(
        n in 1usize..400,
        seed in 0u64..u64::MAX,
    ) {
        let catalog = synth_catalog(n, seed);
        let specs = class_specs();
        for (path, class) in with_specs(&catalog) {
            let spec = &specs[class];
            prop_assert!(
                path.name.starts_with(spec.prefix),
                "{} not of class {}", path.name, spec.prefix
            );
            if spec.capacity_steps_bps.is_empty() {
                let (lo, hi) = spec.capacity_range_bps;
                prop_assert!(
                    path.capacity_bps >= lo && path.capacity_bps < hi,
                    "{}: capacity {} outside [{lo}, {hi})", path.name, path.capacity_bps
                );
            } else {
                prop_assert!(
                    spec.capacity_steps_bps
                        .iter()
                        .any(|t| (t - path.capacity_bps).abs() < 1e-6),
                    "{}: capacity {} not a class tier", path.name, path.capacity_bps
                );
            }
            let rtt = path.base_rtt();
            let (rlo, rhi) = spec.rtt_range_s;
            // from_secs_f64 rounds to whole nanoseconds.
            prop_assert!(
                rtt >= rlo - 1e-9 && rtt < rhi + 1e-9,
                "{}: rtt {rtt} outside [{rlo}, {rhi})", path.name
            );
            prop_assert!(
                path.buffer_packets >= spec.min_buffer_packets,
                "{}: buffer {} below class floor {}",
                path.name, path.buffer_packets, spec.min_buffer_packets
            );
            let bdp_pkts = (path.capacity_bps * rtt / 8.0 / 1500.0).max(1.0);
            let deepest = spec
                .buffer_bdp_range
                .1
                .max(spec.buffer_bdp_congested_range.1);
            prop_assert!(
                f64::from(path.buffer_packets)
                    <= (bdp_pkts * deepest).max(f64::from(spec.min_buffer_packets)) + 1.0,
                "{}: buffer {} deeper than {deepest} BDP", path.name, path.buffer_packets
            );
            let (slo, shi) = spec.shifts_range;
            prop_assert!(
                path.cross.shifts_per_trace >= slo && path.cross.shifts_per_trace < shi,
                "{}: shifts {} outside [{slo}, {shi})", path.name, path.cross.shifts_per_trace
            );
            let (blo, bhi) = spec.bursts_range;
            prop_assert!(
                path.cross.bursts_per_trace >= blo && path.cross.bursts_per_trace < bhi,
                "{}: bursts {} outside [{blo}, {bhi})", path.name, path.cross.bursts_per_trace
            );
            if let Some((plo, phi)) = spec.pareto_fraction_range {
                prop_assert!(
                    path.cross.pareto_fraction >= plo && path.cross.pareto_fraction < phi,
                    "{}: pareto share {} outside [{plo}, {phi})",
                    path.name, path.cross.pareto_fraction
                );
            }
        }
    }

    /// No two synth paths fingerprint alike under one preset: the shard
    /// cache keys `path-<id>.json` by catalog slot, and staleness by
    /// [`shard_fingerprint`], so a collision would let one path's shard
    /// satisfy another's cache probe.
    #[test]
    fn shard_fingerprints_are_pairwise_distinct(
        n in 2usize..300,
        seed in 0u64..u64::MAX,
    ) {
        let preset = Preset {
            paths: n,
            seed,
            ..Preset::by_name("synth1k").unwrap_or_else(Preset::quick)
        };
        let catalog = synth_catalog(n, seed);
        let fingerprints: BTreeSet<String> = catalog
            .iter()
            .map(|config| shard_fingerprint(&preset, config))
            .collect();
        prop_assert_eq!(fingerprints.len(), catalog.len(), "fingerprint collision");
    }
}
