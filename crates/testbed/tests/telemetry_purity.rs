//! The telemetry layer's determinism guard (DESIGN.md §11): datasets
//! generated with telemetry disabled and enabled must be **bit-identical**
//! — observation must never feed back into simulation. Compared both as
//! structured values and as serialized JSON, so a float that survives
//! `PartialEq` but differs in bits would still be caught.
//!
//! Everything runs inside one `#[test]` because the obs registry is
//! process-global: a second test toggling `set_enabled` concurrently
//! would race the first. (The obs crate's own unit tests serialize on a
//! lock for the same reason.)

use tputpred_netsim::Time;
use tputpred_obs as obs;
use tputpred_testbed::{generate, FaultConfig, Preset, RegimeConfig};

fn purity_preset() -> Preset {
    Preset {
        name: "purity".into(),
        paths: 3,
        traces_per_path: 1,
        epochs_per_trace: 2,
        pathload_slot: Time::from_secs(6),
        pre_ping: Time::from_secs(5),
        transfer: Time::from_secs(4),
        epoch_gap: Time::from_secs(2),
        w_large: 1 << 20,
        w_small: 20 * 1024,
        with_small_window: true,
        ping_interval: Time::from_millis(100),
        seed: 1234,
        // Faults on: the degraded code paths must be observation-only
        // too (they have their own telemetry counters).
        faults: FaultConfig::default(),
        // Regimes on too: the correlated-outage chain must be
        // observation-free as well (its tallies are counters only).
        regimes: RegimeConfig::flaky(),
    }
}

#[test]
fn generation_is_bit_identical_with_telemetry_on_and_off() {
    let preset = purity_preset();

    obs::set_enabled(false);
    let plain = generate(&preset);

    let (profiled, telemetry) = obs::with_profiling(|| generate(&preset));
    assert!(
        !obs::enabled(),
        "with_profiling restores the disabled state"
    );

    assert_eq!(plain, profiled, "telemetry changed simulation output");
    let plain_json = serde_json::to_string(&plain).expect("dataset serializes");
    let profiled_json = serde_json::to_string(&profiled).expect("dataset serializes");
    assert_eq!(
        plain_json, profiled_json,
        "telemetry changed serialized dataset bytes"
    );

    // The profiled run must actually have observed the pipeline: a
    // report full of zeros would make purity trivially true.
    let events = telemetry.counter("netsim.events").unwrap_or(0);
    assert!(events > 0, "no simulator events recorded");
    let epochs = telemetry.counter("testbed.epochs").unwrap_or(0);
    assert_eq!(
        epochs,
        (preset.paths * preset.traces_per_path * preset.epochs_per_trace) as u64,
        "every epoch tallied"
    );
    assert!(
        telemetry.counter("tcp.transfers").unwrap_or(0) > 0,
        "transfer stats tallied"
    );
    assert!(
        telemetry.timer_total_s("testbed.generate_wall") > 0.0,
        "generation wall clock recorded"
    );
    assert!(
        telemetry.timer_total_s("testbed.trace_wall") > 0.0,
        "per-trace wall clock recorded"
    );

    // And a disabled re-run records nothing new.
    obs::reset();
    let again = generate(&preset);
    assert_eq!(again, plain, "replay is deterministic");
    let silent = obs::snapshot();
    assert_eq!(
        silent.counter("netsim.events").unwrap_or(0),
        0,
        "disabled instruments must not record"
    );
}
