//! The fault layer's determinism guard: with every fault probability at
//! zero, generation must be **bit-identical** to the pre-fault-layer
//! code. The pinned fingerprint below was computed by the same hash over
//! the same preset *before* `testbed::faults` existed (when every
//! `EpochRecord` field was a plain `f64`); the fault plan draws on its
//! own RNG stream precisely so this value never moves.

use tputpred_netsim::Time;
use tputpred_testbed::{generate, EpochStatus, FaultConfig, Preset, RegimeConfig};

/// Measurement fingerprint of `pin_preset()` generation, captured from
/// the pre-fault-layer tree. If this test fails, the fault layer leaked
/// into the zero-fault code path (e.g. a draw from the simulator RNG or
/// a changed phase boundary).
const PRE_FAULT_LAYER_FINGERPRINT: u64 = 0xb04a_5f72_dc8c_4a72;

fn pin_preset() -> Preset {
    Preset {
        name: "pin".into(),
        paths: 3,
        traces_per_path: 1,
        epochs_per_trace: 3,
        pathload_slot: Time::from_secs(6),
        pre_ping: Time::from_secs(5),
        transfer: Time::from_secs(4),
        epoch_gap: Time::from_secs(2),
        w_large: 1 << 20,
        w_small: 20 * 1024,
        with_small_window: true,
        ping_interval: Time::from_millis(100),
        seed: 99,
        faults: FaultConfig::none(),
        regimes: RegimeConfig::none(),
    }
}

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

#[test]
fn zero_fault_generation_matches_pre_fault_layer_fingerprint() {
    let ds = generate(&pin_preset());
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for (_, _, r) in ds.epochs() {
        assert_eq!(r.status, EpochStatus::Ok, "zero-fault epochs are clean");
        let c = r.complete().expect("zero-fault epochs are complete");
        for v in [
            c.a_hat,
            c.t_hat,
            c.p_hat,
            c.t_tilde,
            c.p_tilde,
            c.r_large,
            c.r_small.unwrap_or(-1.0),
            c.r_prefix_quarter,
            c.r_prefix_half,
            c.flow_retx_rate,
            c.flow_rtt,
            c.true_avail_bw,
        ] {
            fnv1a(&mut h, &v.to_bits().to_le_bytes());
        }
        fnv1a(&mut h, &c.flow_loss_events.to_le_bytes());
    }
    assert_eq!(
        h, PRE_FAULT_LAYER_FINGERPRINT,
        "zero-fault generation no longer bit-identical to pre-fault-layer code: {h:#018x}"
    );
}
