//! Engine-buffer pooling across traces (DESIGN.md §14): recycled
//! buffers change nothing about the results, and their capacity reaches
//! a steady state instead of re-growing from zero for every trace —
//! the satellite-3 leak where a 2800-trace generation run paid the same
//! warm-up allocations 2800 times.

use tputpred_netsim::{EnginePool, Time};
use tputpred_testbed::faults::{FaultConfig, RegimeConfig};
use tputpred_testbed::path::catalog_2004;
use tputpred_testbed::preset::Preset;
use tputpred_testbed::runner::{run_trace, run_trace_pooled};

fn tiny_preset() -> Preset {
    Preset {
        name: "pool-mini".into(),
        paths: 1,
        traces_per_path: 1,
        epochs_per_trace: 2,
        pathload_slot: Time::from_secs(4),
        pre_ping: Time::from_secs(3),
        transfer: Time::from_secs(3),
        epoch_gap: Time::from_secs(1),
        w_large: 1 << 20,
        w_small: 20 * 1024,
        with_small_window: false,
        ping_interval: Time::from_millis(100),
        seed: 11,
        faults: FaultConfig::none(),
        regimes: RegimeConfig::none(),
    }
}

#[test]
fn pooled_traces_replay_identically_with_steady_state_capacity() {
    let preset = tiny_preset();
    let path = {
        let mut p = catalog_2004(3, 42).remove(2);
        p.capacity_bps = 10e6;
        p.cross.elastic_flows = 1;
        p
    };

    let mut pool = EnginePool::new();
    let first = run_trace_pooled(&path, 0, &preset, &mut pool);
    let warm = pool.capacity();
    assert!(warm.arrival_entries > 0, "{warm:?}");
    assert!(warm.link_states >= 2, "fwd + rev pooled: {warm:?}");
    assert!(warm.wheel_slot_entries > 0, "{warm:?}");

    // Identical workload through the same pool: identical results, and
    // the capacity profile stops growing after the warm-up trace.
    let second = run_trace_pooled(&path, 0, &preset, &mut pool);
    assert_eq!(second, first, "pooling is capacity-only");
    let steady = pool.capacity();
    let third = run_trace_pooled(&path, 0, &preset, &mut pool);
    assert_eq!(third, first);
    assert_eq!(pool.capacity(), steady, "capacity reached steady state");

    // The implicit thread-local pool path is the same computation.
    assert_eq!(run_trace(&path, 0, &preset), first);
}
