//! Epoch orchestration and dataset generation.
//!
//! One simulated *trace* is one [`Simulator`] running the path's cross
//! traffic continuously while the epoch timeline of Fig. 1 repeats on
//! top of it:
//!
//! ```text
//! epoch k: [ pathload slot ][ ping-only window ][ 50 s transfer ]( gap )
//!          (ping probes run continuously across the whole trace)
//! ```
//!
//! When the preset enables it, a second window-limited (W = 20 KB)
//! transfer follows the main one (§4.2.8). All per-epoch measurements
//! land in an [`EpochRecord`].

use crate::data::{Dataset, EpochFaults, EpochRecord, PathData, TraceData};
use crate::faults::{EpochFaultPlan, FaultPlan, TransferFault};
use crate::path::{catalog_2004, catalog_2006, PathConfig};
use crate::preset::Preset;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use tputpred_netsim::link::LinkConfig;
use tputpred_netsim::sources::{ParetoOnOffSource, PoissonSource, Reflector, Sink, SourceConfig};
use tputpred_netsim::{EnginePool, LinkId, RateSchedule, Route, Simulator, Time};
use tputpred_obs as obs;
use tputpred_probes::ping::{PingProber, PingSummary, ProbeMask};
use tputpred_probes::{BulkTransfer, Pathload, PathloadConfig};
use tputpred_tcp::{connect, TcpConfig};

/// Guard subtracted from the end of every ping summary window so that
/// replies still in flight are not miscounted as losses.
fn summary_guard(preset: &Preset) -> Time {
    Time::from_nanos((preset.pre_ping.as_nanos() / 6).min(Time::from_secs(1).as_nanos()))
}

/// The per-trace world: simulator plus the handles the epoch loop reads.
struct TraceWorld {
    sim: Simulator,
    fwd: LinkId,
    rev: LinkId,
    ping: tputpred_probes::PingStatsHandle,
}

/// The seed every per-trace randomness stream derives from: simulator,
/// cross-traffic schedule, and fault/regime plan (each with its own
/// salt). Public so analysis binaries (`fig25_resilience`) can
/// recompute a trace's regime sequence via
/// [`crate::faults::draw_regimes`] without the dataset storing it.
pub fn trace_seed(path: &PathConfig, trace_idx: usize) -> u64 {
    path.seed
        .wrapping_add(trace_idx as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

// Per-worker recycled engine buffers: a generation run builds one
// simulator per trace (2800+ per quick dataset), and without pooling
// each re-grows the timer wheel, scratch, and per-link buffers from
// zero. Capacity-only — pooled runs are bit-identical to fresh ones
// (`tests/pool_reuse.rs`).
std::thread_local! {
    static ENGINE_POOL: std::cell::RefCell<EnginePool> =
        std::cell::RefCell::new(EnginePool::new());
}

/// Assembles the simulation of one trace: links, cross traffic with the
/// trace's random load schedule, the probe reflector, and the continuous
/// ping prober. `pool` provides recycled engine buffers (capacity-only).
fn build_trace(
    path: &PathConfig,
    trace_idx: usize,
    preset: &Preset,
    pool: EnginePool,
) -> TraceWorld {
    let seed = trace_seed(path, trace_idx);
    let mut sim = Simulator::with_pool(seed, pool);
    let fwd = sim.add_link(LinkConfig::new(
        path.capacity_bps,
        path.one_way,
        path.buffer_packets,
    ));
    // Reverse path: fast and deep enough that ACKs and echoes are never
    // the bottleneck (the paper's paths are asymmetric in load, not
    // modelled as congested backwards).
    let rev = sim.add_link(LinkConfig::new(
        (path.capacity_bps * 10.0).max(100e6),
        path.one_way,
        2_000,
    ));
    let trace_len = preset.trace_len();

    // Cross traffic: the load schedule (with its level shifts and bursts)
    // modulates the inelastic sources.
    let mut sched_rng = StdRng::seed_from_u64(seed ^ 0xC0FF_EE00);
    let cross = &path.cross;
    let schedule = RateSchedule::random(
        &mut sched_rng,
        trace_len,
        cross.shifts_per_trace,
        cross.level_range,
        cross.bursts_per_trace,
        cross.burst_len,
        cross.burst_range,
    );
    let inelastic = cross.utilization * path.capacity_bps;
    let poisson_rate = inelastic * (1.0 - cross.pareto_fraction);
    let pareto_rate = inelastic * cross.pareto_fraction;
    if poisson_rate > 1.0 {
        let (sink, _) = Sink::new();
        let sink_id = sim.add_endpoint(Box::new(sink));
        let (src, _) = PoissonSource::new(SourceConfig {
            route: Route::direct(fwd),
            dst: sink_id,
            packet_size: 1000,
            base_rate_bps: poisson_rate,
            schedule: schedule.clone(),
            stop: trace_len,
        });
        let id = sim.add_endpoint(Box::new(src));
        sim.schedule_timer(id, 0, Time::ZERO);
    }
    if pareto_rate > 1.0 {
        // The bursty load is split across `pareto_sources` independent
        // on-off sources: same mean load, smoother aggregate as the
        // degree of statistical multiplexing rises (§6.1.4).
        let (sink, _) = Sink::new();
        let sink_id = sim.add_endpoint(Box::new(sink));
        let n = cross.pareto_sources.max(1);
        for _ in 0..n {
            let (src, _) = ParetoOnOffSource::new(
                SourceConfig {
                    route: Route::direct(fwd),
                    dst: sink_id,
                    packet_size: 1000,
                    base_rate_bps: pareto_rate / n as f64,
                    schedule: schedule.clone(),
                    stop: trace_len,
                },
                cross.duty_cycle,
                1.6, // heavy-tailed on periods
                cross.mean_on,
            );
            let id = sim.add_endpoint(Box::new(src));
            sim.schedule_timer(id, 0, Time::ZERO);
        }
    }
    // Elastic cross traffic: persistent TCP flows with a moderate socket
    // buffer, competing for the bottleneck the whole trace.
    for _ in 0..cross.elastic_flows {
        let config = TcpConfig {
            max_window: 256 * 1024,
            ..TcpConfig::default()
        };
        let _ = connect(
            &mut sim,
            config,
            Route::direct(fwd),
            Route::direct(rev),
            Time::ZERO,
            trace_len,
        );
    }

    // Ping runs across the whole trace.
    let (reflector, _) = Reflector::new(Route::direct(rev));
    let refl_id = sim.add_endpoint(Box::new(reflector));
    let (prober, ping) =
        PingProber::new(Route::direct(fwd), refl_id, preset.ping_interval, trace_len);
    let prober_id = sim.add_endpoint(Box::new(prober));
    sim.schedule_timer(prober_id, 0, Time::ZERO);

    TraceWorld {
        sim,
        fwd,
        rev,
        ping,
    }
}

/// Pathload configured relative to the path: the search never needs to
/// probe beyond ~1.5× the bottleneck capacity (real pathload likewise
/// stops raising its rate once streams saturate the path).
fn pathload_config(path: &PathConfig) -> PathloadConfig {
    PathloadConfig {
        max_rate: path.capacity_bps * 1.5,
        ..PathloadConfig::default()
    }
}

/// Converts a `(start, end)` span-fraction window (from the fault plan)
/// into wall-clock times within `[span_start, span_end)`.
fn window_in_span(span_start: Time, span_end: Time, frac: (f64, f64)) -> (Time, Time) {
    let span_ns = span_end.saturating_sub(span_start).as_nanos() as f64;
    let at = |f: f64| span_start + Time::from_nanos((span_ns * f) as u64);
    (at(frac.0), at(frac.1))
}

/// Turns a (possibly masked) ping summary into the recorded
/// `(rtt, loss_rate)` pair: no probes sent → neither is measured; probes
/// sent but none answered → the loss rate is measured (1.0) while the
/// RTT is not.
fn summary_measurements(s: &PingSummary) -> (Option<f64>, Option<f64>) {
    if s.sent == 0 {
        (None, None)
    } else if s.received == 0 {
        (None, Some(s.loss_rate))
    } else {
        (Some(s.rtt), Some(s.loss_rate))
    }
}

/// Tallies one epoch's fault classes into the telemetry registry.
/// Observation-only (and a no-op unless profiling is enabled): nothing
/// here feeds back into the epoch loop.
fn tally_epoch_faults(faults: &EpochFaults) {
    obs::add("testbed.epochs", 1);
    if !faults.is_clean() {
        obs::add("testbed.epochs_degraded", 1);
    }
    let classes: [(&str, bool); 6] = [
        ("testbed.faults.node_down", faults.node_down),
        ("testbed.faults.pathload_failed", faults.pathload_failed),
        ("testbed.faults.ping_outage", faults.ping_outage),
        ("testbed.faults.reply_loss_burst", faults.reply_loss_burst),
        (
            "testbed.faults.transfer_truncated",
            faults.transfer_truncated,
        ),
        ("testbed.faults.transfer_failed", faults.transfer_failed),
    ];
    for (name, hit) in classes {
        if hit {
            obs::add(name, 1);
        }
    }
}

/// Tallies the epoch's outage regime into the telemetry registry —
/// observation-only, like [`tally_epoch_faults`].
fn tally_regime(regime: crate::faults::OutageRegime) {
    let name = match regime {
        crate::faults::OutageRegime::Healthy => "testbed.regimes.healthy",
        crate::faults::OutageRegime::Degraded => "testbed.regimes.degraded",
        crate::faults::OutageRegime::Down => "testbed.regimes.down",
    };
    obs::add(name, 1);
}

/// Folds one finished transfer's flow statistics into the telemetry
/// registry (segments, retransmissions, RTO firings, cwnd samples).
fn tally_flow(stats: &tputpred_tcp::FlowStats) {
    obs::add("tcp.transfers", 1);
    obs::add("tcp.segments_sent", stats.segments_sent);
    obs::add("tcp.retransmits", stats.retransmits);
    obs::add("tcp.fast_retransmits", stats.fast_retransmits);
    obs::add("tcp.rto_firings", stats.timeouts);
    let cwnd = &stats.cwnd_bytes;
    obs::record_summary(
        "tcp.cwnd_bytes",
        cwnd.count(),
        cwnd.mean() * cwnd.count() as f64,
        cwnd.min(),
        cwnd.max(),
    );
}

/// Folds a trace's engine, link, and probe tallies into the telemetry
/// registry once the epoch loop is over — the hot event loop itself
/// touches only the engine's plain local counters.
fn flush_trace_telemetry(world: &TraceWorld, trace_len: Time) {
    if !obs::enabled() {
        return;
    }
    let c = world.sim.counters();
    obs::add("netsim.events", c.events);
    obs::add("netsim.timer_events", c.timer_events);
    obs::add("netsim.txdone_events", c.txdone_events);
    obs::add("netsim.arrival_events", c.arrival_events);
    obs::add("netsim.packets_offered", c.packets_offered);
    obs::add("netsim.packets_tx_started", c.packets_tx_started);
    obs::add("netsim.packets_queued", c.packets_queued);
    obs::add("netsim.packets_dropped", c.packets_dropped);
    obs::add("netsim.packets_delivered", c.packets_delivered);
    obs::add("netsim.commands_applied", c.commands_applied);
    obs::add("netsim.timer_clamps", c.timer_clamps);
    obs::add("netsim.wheel_scheduled", c.wheel_scheduled);
    obs::add("netsim.overflow_scheduled", c.overflow_scheduled);
    obs::add("netsim.overflow_migrated", c.overflow_migrated);
    let fwd = world.sim.link(world.fwd).stats();
    obs::add("netsim.fwd.packets_out", fwd.packets_out);
    obs::add("netsim.fwd.bytes_out", fwd.bytes_out);
    obs::add("netsim.fwd.drops", fwd.drops);
    obs::record("netsim.fwd.drop_rate", fwd.drop_rate());
    obs::record("netsim.fwd.utilization", fwd.utilization(trace_len));
    let ping = world.ping.borrow();
    obs::add("probes.ping.sent", ping.total_sent() as u64);
    obs::add("probes.ping.replies_lost", ping.replies_lost() as u64);
}

/// What the dataset records about one epoch's faults, from its plan.
fn epoch_faults(plan: &EpochFaultPlan) -> EpochFaults {
    if plan.missing {
        // A down node masks every other fault: nothing else "happened".
        return EpochFaults {
            node_down: true,
            ..EpochFaults::default()
        };
    }
    EpochFaults {
        node_down: false,
        pathload_failed: plan.pathload_fail,
        ping_outage: plan.ping_outage.is_some(),
        reply_loss_burst: plan.reply_burst.is_some(),
        transfer_truncated: matches!(plan.transfer, TransferFault::Truncated(_)),
        transfer_failed: plan.transfer == TransferFault::Failed,
    }
}

/// Runs one complete trace and returns its epoch records.
///
/// The preset's [`crate::faults::FaultConfig`] is drawn into a
/// [`FaultPlan`] up-front on its own RNG stream, so with all
/// probabilities zero this function is call-for-call identical to a
/// build without the fault layer (the replay test pins this).
pub fn run_trace(path: &PathConfig, trace_idx: usize, preset: &Preset) -> TraceData {
    ENGINE_POOL.with(|cell| {
        let mut pool = cell.borrow_mut();
        run_trace_pooled(path, trace_idx, preset, &mut pool)
    })
}

/// [`run_trace`] with an explicit engine-buffer pool: the trace's
/// simulator is built from `pool` and its buffers are returned to it
/// afterwards. Pooling is capacity-only, so results are bit-identical
/// to a pool-free run; steady-state capacity is pinned by
/// `tests/pool_reuse.rs`.
pub fn run_trace_pooled(
    path: &PathConfig,
    trace_idx: usize,
    preset: &Preset,
    pool: &mut EnginePool,
) -> TraceData {
    let _trace_scope = obs::time_scope("testbed.trace_wall");
    let _path_scope = if obs::enabled() {
        obs::time_scope(&format!("path_wall.{}", path.name))
    } else {
        obs::time_scope("path_wall.disabled")
    };
    let mut world = build_trace(path, trace_idx, preset, std::mem::take(pool));
    let plan = FaultPlan::draw_with_regimes(
        &preset.faults,
        &preset.regimes,
        trace_seed(path, trace_idx),
        preset.epochs_per_trace,
    );
    let guard = summary_guard(preset);
    let mut records = Vec::with_capacity(preset.epochs_per_trace);

    for epoch in 0..preset.epochs_per_trace {
        let _epoch_scope = obs::time_scope("testbed.epoch_wall");
        let t0 = Time::from_nanos(preset.epoch_len().as_nanos() * epoch as u64);
        let fault = plan.epoch(epoch);
        let faults = epoch_faults(&fault);
        tally_epoch_faults(&faults);
        tally_regime(plan.regime(epoch));

        // --- Phase 1: pathload avail-bw measurement -------------------
        // A failed run still injects its probe streams (the abort is in
        // the estimator, not the traffic); a missing epoch injects
        // nothing.
        let pathload = (!fault.missing).then(|| {
            Pathload::deploy(
                &mut world.sim,
                pathload_config(path),
                Route::direct(world.fwd),
                t0,
            )
        });
        let ping_window_start = t0 + preset.pathload_slot;
        {
            let _s = obs::time_scope("stage.pathload_slot");
            world.sim.run_until(ping_window_start);
        }
        if let Some(p) = &pathload {
            let r = p.borrow();
            obs::add("probes.pathload.runs", 1);
            obs::add("probes.pathload.streams_used", r.streams_used as u64);
            if r.done {
                obs::add("probes.pathload.converged", 1);
            }
        }
        let a_hat = match &pathload {
            Some(p) if !fault.pathload_fail => {
                Some(p.borrow().best_guess().unwrap_or(path.capacity_bps))
            }
            _ => None,
        };

        // --- Phase 2: ping-only window; record ground-truth spare
        //     capacity over it ------------------------------------------
        let busy_before = world.sim.link(world.fwd).stats().busy;
        let transfer_start = ping_window_start + preset.pre_ping;
        {
            let _s = obs::time_scope("stage.ping_window");
            world.sim.run_until(transfer_start);
        }
        let busy_after = world.sim.link(world.fwd).stats().busy;
        let util = (busy_after - busy_before).as_secs_f64() / preset.pre_ping.as_secs_f64();
        let true_avail_bw = path.capacity_bps * (1.0 - util).max(0.0);

        // --- Phase 3: the target transfer ------------------------------
        let transfer_end = transfer_start + preset.transfer;
        let quarter = Time::from_nanos(preset.transfer.as_nanos() / 4);
        let half = Time::from_nanos(preset.transfer.as_nanos() / 2);
        // Floor at the measurement resolution of one segment per
        // transfer: a fully starved epoch records a tiny-but-positive
        // throughput (as a real IPerf run would), keeping relative
        // errors large but finite.
        let r_floor = 1448.0 * 8.0 / preset.transfer.as_secs_f64();
        let mut r_large = None;
        let mut r_prefix_quarter = None;
        let mut r_prefix_half = None;
        let mut flow_stats = (0_u64, 0.0, 0.0);
        let launch_main = !fault.missing && fault.transfer != TransferFault::Failed;
        let _transfer_scope = obs::time_scope("stage.transfer");
        if launch_main {
            let stop = match fault.transfer {
                TransferFault::Truncated(frac) => {
                    let len = Time::from_nanos((preset.transfer.as_nanos() as f64 * frac) as u64);
                    transfer_start + len
                }
                _ => transfer_end,
            };
            let transfer = BulkTransfer::launch(
                &mut world.sim,
                preset.tcp_large(),
                Route::direct(world.fwd),
                Route::direct(world.rev),
                transfer_start,
                stop,
            );
            if let TransferFault::Truncated(_) = fault.transfer {
                // The shortened run: one throughput sample over the
                // actual duration, no prefix samples (not comparable to
                // full-length ones), then idle to the scheduled end.
                world.sim.run_until(stop);
                let run_secs = stop.saturating_sub(transfer_start).as_secs_f64();
                let trunc_floor = 1448.0 * 8.0 / run_secs;
                r_large = Some(transfer.throughput().max(trunc_floor));
                world.sim.run_until(transfer_end);
            } else {
                world.sim.run_until(transfer_start + quarter);
                let prefix_floor = 1448.0 * 8.0 / preset.transfer.as_secs_f64();
                r_prefix_quarter = Some(transfer.throughput_over(quarter).max(prefix_floor));
                world.sim.run_until(transfer_start + half);
                r_prefix_half = Some(transfer.throughput_over(half).max(prefix_floor));
                world.sim.run_until(transfer_end);
                r_large = Some(transfer.throughput().max(r_floor));
            }
            flow_stats = {
                let s = transfer.stats().borrow();
                tally_flow(&s);
                (s.loss_events(), s.retransmit_rate(), s.rtt.mean())
            };
        } else {
            world.sim.run_until(transfer_end);
        }
        drop(_transfer_scope);
        let (flow_loss_events, flow_retx_rate, flow_rtt) = flow_stats;

        // --- Phase 4 (optional): the window-limited transfer -----------
        let mut r_small = None;
        let mut cursor = transfer_end + preset.epoch_gap;
        if preset.with_small_window {
            let _s = obs::time_scope("stage.small_transfer");
            world.sim.run_until(cursor);
            let small_end = cursor + preset.transfer;
            if !fault.missing {
                let small = BulkTransfer::launch(
                    &mut world.sim,
                    preset.tcp_small(),
                    Route::direct(world.fwd),
                    Route::direct(world.rev),
                    cursor,
                    small_end,
                );
                world.sim.run_until(small_end);
                tally_flow(&small.stats().borrow());
                r_small = Some(small.throughput().max(r_floor));
            } else {
                world.sim.run_until(small_end);
            }
            cursor = small_end + preset.epoch_gap;
        }
        world.sim.run_until(cursor);

        // --- Summarize the ping windows (reply-safe: the epoch gap has
        //     passed, so all echoes are in) ------------------------------
        let _summarize_scope = obs::time_scope("stage.summarize");
        let (t_hat, p_hat, t_tilde, p_tilde) = if fault.missing {
            (None, None, None, None)
        } else {
            // Fault windows are fractions of the whole probing span
            // (ping-window start → transfer end); both summaries see the
            // same mask.
            let span = |frac| window_in_span(ping_window_start, transfer_end, frac);
            let mask = ProbeMask {
                outage: fault.ping_outage.map(span),
                forced_loss: fault.reply_burst.map(span),
            };
            let ping = world.ping.borrow();
            let pre = ping.summarize_masked(
                ping_window_start,
                transfer_start.saturating_sub(guard),
                &mask,
            );
            let during =
                ping.summarize_masked(transfer_start, transfer_end.saturating_sub(guard), &mask);
            drop(ping);
            let (t_hat, p_hat) = summary_measurements(&pre);
            let (t_tilde, p_tilde) = summary_measurements(&during);
            (t_hat, p_hat, t_tilde, p_tilde)
        };

        records.push(EpochRecord {
            status: faults.status(),
            faults,
            a_hat,
            t_hat,
            p_hat,
            t_tilde,
            p_tilde,
            r_large,
            r_small,
            r_prefix_quarter,
            r_prefix_half,
            flow_loss_events,
            flow_retx_rate,
            flow_rtt,
            true_avail_bw,
        });
    }
    flush_trace_telemetry(&world, preset.trace_len());
    *pool = world.sim.into_pool();
    TraceData { records }
}

/// The catalog a preset draws its paths from: the procedural
/// five-class catalog (DESIGN.md §15) for `synth*` presets, the
/// 2006-style catalog for `*-2006` presets, the 2004-style one
/// otherwise.
pub fn catalog_for(preset: &Preset) -> Vec<PathConfig> {
    if preset.name.contains("synth") {
        crate::synth::synth_catalog(preset.paths, preset.seed)
    } else if preset.name.contains("2006") {
        catalog_2006(preset.paths, preset.seed)
    } else {
        catalog_2004(preset.paths, preset.seed)
    }
}

/// Generates the [`PathData`] for a subset of `catalog` (the paths at
/// `indices`, in the given order), running traces in parallel across
/// CPU cores. Deterministic: each trace's seed derives from its path's
/// seed and trace index, never from which subset it was generated in —
/// so generating paths one at a time and merging is bit-identical to
/// one full pass (`tests/shard_pin.rs` pins this).
///
/// This is the regeneration entry point of the sharded cache
/// ([`load_or_generate_sharded`]); [`generate`] is the
/// whole-catalog special case.
pub fn generate_paths(preset: &Preset, catalog: &[PathConfig], indices: &[usize]) -> Vec<PathData> {
    if indices.is_empty() {
        return Vec::new();
    }
    let jobs: Vec<(usize, usize)> = indices
        .iter()
        .flat_map(|&p| (0..preset.traces_per_path).map(move |t| (p, t)))
        .collect();
    obs::gauge_set("testbed.workers", rayon::current_num_threads() as f64);
    obs::add("testbed.traces", jobs.len() as u64);
    let mut gen_scope = obs::time_scope("testbed.generate_wall");
    let mut results: Vec<((usize, usize), TraceData)> = jobs
        .par_iter()
        .map(|&(p, t)| ((p, t), run_trace(&catalog[p], t, preset)))
        .collect();
    gen_scope.stop();
    results.sort_by_key(|&(key, _)| key);
    let mut paths: Vec<PathData> = indices
        .iter()
        .map(|&p| PathData {
            config: catalog[p].clone(),
            traces: Vec::with_capacity(preset.traces_per_path),
        })
        .collect();
    for ((p, _), trace) in results {
        // `results` is sorted by (path, trace) and `indices` is the job
        // order, so the slot is found by position in `indices`.
        if let Some(slot) = indices.iter().position(|&i| i == p) {
            paths[slot].traces.push(trace);
        }
    }
    paths
}

/// Generates a complete dataset for `preset`, running traces in parallel
/// across CPU cores. Deterministic: the result depends only on the
/// preset (every trace derives its seed from the path seed and trace
/// index).
pub fn generate(preset: &Preset) -> Dataset {
    let catalog = catalog_for(preset);
    let indices: Vec<usize> = (0..catalog.len()).collect();
    let paths = generate_paths(preset, &catalog, &indices);
    Dataset {
        preset: preset.clone(),
        paths,
    }
}

/// Loads `preset`'s dataset from the sharded cache at `dir`
/// (`data/<preset>/`), regenerating only the stale, missing, or corrupt
/// shards via [`generate_paths`]. Returns the merged dataset — bit
/// identical to [`generate`] — and the shard reuse counts.
///
/// Telemetry (observation-only, recorded when profiling is enabled):
/// `testbed.shards.hit` / `.missing` / `.stale` / `.regenerated`
/// counters and a `testbed.shard_cache_wall` scope around the whole
/// load-or-regenerate pass.
pub fn load_or_generate_sharded(
    dir: &std::path::Path,
    preset: &Preset,
) -> std::io::Result<(Dataset, crate::data::ShardStats)> {
    let mut scope = obs::time_scope("testbed.shard_cache_wall");
    let catalog = catalog_for(preset);
    let result = Dataset::load_or_generate_sharded(dir, preset, &catalog, |stale| {
        generate_paths(preset, &catalog, stale)
    });
    scope.stop();
    if let Ok((_, stats)) = &result {
        record_shard_stats(stats);
    }
    result
}

fn record_shard_stats(stats: &crate::data::ShardStats) {
    obs::add("testbed.shards.hit", stats.hits as u64);
    obs::add("testbed.shards.missing", stats.missing as u64);
    obs::add("testbed.shards.stale", stats.stale as u64);
    obs::add("testbed.shards.regenerated", stats.regenerated() as u64);
}

/// Overrides how many workers the parallel generation fan-out uses on
/// this thread (0 restores the `RAYON_NUM_THREADS`-or-core-count
/// default). Generation is deterministic per (path, trace), so the
/// worker count changes wall clock only, never output —
/// `tests/shard_pin.rs` pins multi-worker against single-worker bytes.
pub fn set_generation_workers(n: usize) {
    rayon::set_num_threads(n);
}

/// Generates one path's complete [`PathData`] — every trace, in order,
/// on the calling thread. The per-shard regeneration unit of the
/// streaming API; bit-identical to the same path's slice of a full
/// [`generate`] pass (trace seeds depend only on (path, trace index)).
pub fn generate_path(preset: &Preset, config: &PathConfig) -> PathData {
    PathData {
        config: config.clone(),
        traces: (0..preset.traces_per_path)
            .map(|t| run_trace(config, t, preset))
            .collect(),
    }
}

/// Streams `preset`'s dataset through `visit` in catalog order without
/// ever materializing the merged [`Dataset`] (DESIGN.md §15): untrusted
/// shards regenerate first — one path per parallel job, written to disk
/// as each finishes — then every shard is loaded, visited, and dropped.
/// O(one path) resident memory; the 10k-path presets depend on it.
///
/// Telemetry mirrors [`load_or_generate_sharded`]: the same
/// `testbed.shard_cache_wall` scope, `testbed.shards.*` counters, and
/// (from inside the streaming core) `testbed.generate_wall` +
/// `testbed.workers`, plus a `testbed.paths_streamed` counter.
pub fn for_each_path<V>(
    dir: &std::path::Path,
    preset: &Preset,
    mut visit: V,
) -> std::io::Result<crate::data::ShardStats>
where
    V: FnMut(usize, &PathData) -> std::io::Result<()>,
{
    let mut scope = obs::time_scope("testbed.shard_cache_wall");
    let catalog = catalog_for(preset);
    let result = Dataset::for_each_path_sharded(
        dir,
        preset,
        &catalog,
        |id| generate_path(preset, &catalog[id]),
        |id, path| {
            obs::add("testbed.paths_streamed", 1);
            visit(id, path)
        },
    );
    scope.stop();
    if let Ok(stats) = &result {
        record_shard_stats(stats);
    }
    result
}

/// Uncached streaming generation: simulates `preset`'s catalog in
/// worker-sized chunks and hands each [`PathData`] to `visit` in
/// catalog order, dropping it afterwards — for campaign binaries
/// (`fig25_resilience`) that never want a disk cache but must not hold
/// a whole `Dataset` either. Chunking preserves the parallel fan-out;
/// output is independent of the chunk size (every trace is a pure
/// function of (path config, trace index, preset)).
pub fn generate_each<V>(preset: &Preset, mut visit: V)
where
    V: FnMut(usize, PathData),
{
    let catalog = catalog_for(preset);
    let chunk = (rayon::current_num_threads() * 2).max(1);
    let mut next = 0usize;
    while next < catalog.len() {
        let indices: Vec<usize> = (next..(next + chunk).min(catalog.len())).collect();
        let paths = generate_paths(preset, &catalog, &indices);
        for (id, path) in indices.iter().zip(paths) {
            visit(*id, path);
        }
        next += chunk;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::EpochStatus;
    use crate::faults::{FaultConfig, OutageRegime, RegimeConfig};

    /// A minimal preset for unit tests: one quiet-ish path would still
    /// take seconds in debug mode at full scale, so keep it very short.
    fn mini_preset() -> Preset {
        Preset {
            name: "mini".into(),
            paths: 3,
            traces_per_path: 1,
            epochs_per_trace: 3,
            pathload_slot: Time::from_secs(6),
            pre_ping: Time::from_secs(5),
            transfer: Time::from_secs(4),
            epoch_gap: Time::from_secs(2),
            w_large: 1 << 20,
            w_small: 20 * 1024,
            with_small_window: true,
            ping_interval: Time::from_millis(100),
            seed: 99,
            faults: FaultConfig::none(),
            regimes: RegimeConfig::none(),
        }
    }

    fn quiet_path() -> PathConfig {
        let mut p = catalog_2004(3, 42).remove(2);
        p.capacity_bps = 10e6;
        p.buffer_packets = 40; // ~1 BDP at 48 ms RTT
        p.cross.utilization = 0.3;
        p.cross.elastic_flows = 0;
        p.cross.shifts_per_trace = 0.0;
        p.cross.bursts_per_trace = 0.0;
        p
    }

    #[test]
    fn trace_produces_one_record_per_epoch_with_sane_values() {
        let preset = mini_preset();
        let path = quiet_path();
        let trace = run_trace(&path, 0, &preset);
        assert_eq!(trace.records.len(), 3);
        for rec in &trace.records {
            assert_eq!(rec.status, EpochStatus::Ok);
            assert!(rec.faults.is_clean());
            let r = rec.complete().expect("fault-free epochs are complete");
            assert!(r.r_large > 100e3, "transfer made progress: {}", r.r_large);
            assert!(r.r_large <= path.capacity_bps * 1.01);
            assert!(r.r_small.unwrap() > 0.0);
            assert!(r.t_hat >= path.base_rtt() * 0.99, "T̂ ≥ propagation");
            assert!((0.0..=1.0).contains(&r.p_hat));
            assert!((0.0..=1.0).contains(&r.p_tilde));
            assert!(r.a_hat > 0.0 && r.a_hat <= path.capacity_bps * 1.6);
            assert!(r.true_avail_bw <= path.capacity_bps);
            assert!(r.r_prefix_quarter > 0.0 && r.r_prefix_half > 0.0);
        }
    }

    #[test]
    fn quiet_path_measures_low_loss_and_good_availbw() {
        let preset = mini_preset();
        let path = quiet_path();
        let trace = run_trace(&path, 0, &preset);
        for rec in &trace.records {
            let r = rec.complete().expect("fault-free epochs are complete");
            assert!(
                r.p_hat < 0.05,
                "30%-loaded path: little ping loss, {}",
                r.p_hat
            );
            // Avail-bw should be in the ballpark of the 7 Mbps residual.
            assert!(
                r.a_hat > 2e6,
                "avail-bw on a 30%-loaded 10 Mbps path: {}",
                r.a_hat
            );
            // The flow itself raises loss/queueing relative to a-priori —
            // the §3.2 mechanism — so p̃ ≥ p̂ typically; just sanity-check
            // the fields are populated and ordered sensibly.
            assert!(r.t_tilde >= path.base_rtt() * 0.99);
        }
    }

    #[test]
    fn traces_are_deterministic() {
        let preset = mini_preset();
        let path = quiet_path();
        let a = run_trace(&path, 0, &preset);
        let b = run_trace(&path, 0, &preset);
        assert_eq!(a, b);
    }

    #[test]
    fn dataset_generation_replays_bit_identically() {
        // The full generate() pass — parallel (rayon) trace fan-out and
        // assembly — must be a pure function of the preset, not just
        // each trace in isolation: this is what makes `data/*.json`
        // caching and the behavior-hash staleness guard sound.
        let preset = mini_preset();
        let a = generate(&preset);
        let b = generate(&preset);
        assert_eq!(a, b);
        // Byte-identical serialized form, i.e. the cache file itself
        // replays.
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn different_trace_indices_differ() {
        let preset = mini_preset();
        let path = quiet_path();
        let a = run_trace(&path, 0, &preset);
        let b = run_trace(&path, 1, &preset);
        assert_ne!(a, b, "trace seeds must differ");
    }

    #[test]
    fn generate_assembles_the_full_grid() {
        let preset = mini_preset();
        let ds = generate(&preset);
        assert_eq!(ds.paths.len(), 3);
        for p in &ds.paths {
            assert_eq!(p.traces.len(), 1);
            assert_eq!(p.traces[0].records.len(), 3);
        }
        assert_eq!(ds.epoch_count(), 9);
    }

    #[test]
    fn missing_epochs_record_nothing_but_keep_the_timeline() {
        let preset = Preset {
            faults: FaultConfig {
                epoch_missing: 1.0,
                ..FaultConfig::none()
            },
            ..mini_preset()
        };
        let trace = run_trace(&quiet_path(), 0, &preset);
        assert_eq!(trace.records.len(), 3, "one record per epoch, even down");
        for r in &trace.records {
            assert_eq!(r.status, EpochStatus::Missing);
            assert!(r.faults.node_down);
            assert_eq!(r.complete(), None);
            assert!(r.a_hat.is_none() && r.t_hat.is_none() && r.r_large.is_none());
            assert!(r.r_small.is_none() && r.r_prefix_half.is_none());
            assert_eq!(r.flow_loss_events, 0);
        }
        assert!(trace.throughput_series().is_empty());
        assert_eq!(trace.throughput_series_gappy(), vec![None, None, None]);
    }

    #[test]
    fn pathload_failure_loses_only_the_availbw_estimate() {
        let preset = Preset {
            faults: FaultConfig {
                pathload_fail: 1.0,
                ..FaultConfig::none()
            },
            ..mini_preset()
        };
        let trace = run_trace(&quiet_path(), 0, &preset);
        for r in &trace.records {
            assert_eq!(r.status, EpochStatus::Degraded);
            assert!(r.faults.pathload_failed && !r.faults.node_down);
            assert!(r.a_hat.is_none(), "Â is the lost measurement");
            assert!(r.t_hat.is_some() && r.p_hat.is_some());
            assert!(r.r_large.is_some() && r.r_prefix_half.is_some());
            assert_eq!(r.complete(), None, "a degraded epoch is not complete");
        }
    }

    #[test]
    fn failed_transfers_leave_throughput_unmeasured() {
        let preset = Preset {
            faults: FaultConfig {
                transfer_fail: 1.0,
                ..FaultConfig::none()
            },
            ..mini_preset()
        };
        let trace = run_trace(&quiet_path(), 0, &preset);
        for r in &trace.records {
            assert_eq!(r.status, EpochStatus::Degraded);
            assert!(r.faults.transfer_failed);
            assert!(r.r_large.is_none() && r.r_prefix_quarter.is_none());
            assert_eq!(r.flow_loss_events, 0);
            // The rest of the epoch still measured.
            assert!(r.a_hat.is_some() && r.t_hat.is_some());
            assert!(r.r_small.is_some(), "the small transfer still runs");
        }
        assert!(trace.throughput_series().is_empty());
    }

    #[test]
    fn truncated_transfers_measure_the_shortened_run_only() {
        let preset = Preset {
            faults: FaultConfig {
                transfer_truncate: 1.0,
                ..FaultConfig::none()
            },
            ..mini_preset()
        };
        let trace = run_trace(&quiet_path(), 0, &preset);
        for r in &trace.records {
            assert_eq!(r.status, EpochStatus::Degraded);
            assert!(r.faults.transfer_truncated);
            let r_large = r.r_large.expect("truncated run still yields a sample");
            assert!(r_large > 100e3, "shortened transfer made progress");
            assert!(
                r.r_prefix_quarter.is_none() && r.r_prefix_half.is_none(),
                "prefixes of a shortened run are not comparable"
            );
        }
    }

    #[test]
    fn ping_outage_degrades_but_reply_burst_inflates_loss() {
        let outage_preset = Preset {
            faults: FaultConfig {
                ping_outage: 1.0,
                ..FaultConfig::none()
            },
            ..mini_preset()
        };
        let clean = run_trace(&quiet_path(), 0, &mini_preset());
        let outage = run_trace(&quiet_path(), 0, &outage_preset);
        for (o, c) in outage.records.iter().zip(&clean.records) {
            assert_eq!(o.status, EpochStatus::Degraded);
            assert!(o.faults.ping_outage);
            // Fewer probes sampled, but the path is quiet: the values
            // that survive stay sane when present at all.
            if let (Some(to), Some(tc)) = (o.t_hat, c.t_hat) {
                assert!((to - tc).abs() < 0.05, "outage barely moves RTT");
            }
        }
        let burst_preset = Preset {
            faults: FaultConfig {
                reply_loss_burst: 1.0,
                ..FaultConfig::none()
            },
            ..mini_preset()
        };
        let burst = run_trace(&quiet_path(), 0, &burst_preset);
        let mean = |t: &TraceData| {
            let ps: Vec<f64> = t.records.iter().filter_map(|r| r.p_hat).collect();
            ps.iter().sum::<f64>() / ps.len().max(1) as f64
        };
        assert!(
            mean(&burst) > mean(&clean),
            "forced reply loss must inflate p̂: {} vs {}",
            mean(&burst),
            mean(&clean)
        );
    }

    #[test]
    fn faulty_generation_is_deterministic() {
        let preset = Preset {
            faults: FaultConfig::uniform(0.3),
            ..mini_preset()
        };
        let a = generate(&preset);
        let b = generate(&preset);
        assert_eq!(a, b);
        assert!(a.degraded_count() > 0, "30% fault rates must hit something");
        assert!(
            a.complete_epochs().count() < a.epoch_count(),
            "some epochs must be discarded"
        );
    }

    #[test]
    fn regime_down_epochs_are_missing_and_replay_deterministically() {
        // Certain entry probabilities pin the chain's shape: epoch 0
        // Healthy, epoch 1 Degraded (entered), epoch 2 Down (escalated,
        // long dwell) — so the third record must be masked even though
        // every FaultConfig probability is zero.
        let preset = Preset {
            regimes: RegimeConfig {
                degraded_entry: 1.0,
                down_entry: 1.0,
                mean_degraded_dwell: 1.0,
                mean_down_dwell: 50.0,
                fault_multiplier: 1.0,
            },
            ..mini_preset()
        };
        let path = quiet_path();
        let a = run_trace(&path, 0, &preset);
        let b = run_trace(&path, 0, &preset);
        assert_eq!(a, b, "regime-modulated traces replay bit-identically");
        let seq = crate::faults::draw_regimes(
            &preset.regimes,
            trace_seed(&path, 0),
            preset.epochs_per_trace,
        );
        assert_eq!(
            seq,
            vec![
                OutageRegime::Healthy,
                OutageRegime::Degraded,
                OutageRegime::Down
            ]
        );
        assert_eq!(a.records[0].status, EpochStatus::Ok);
        assert_eq!(
            a.records[1].status,
            EpochStatus::Ok,
            "no base faults to amplify"
        );
        assert_eq!(a.records[2].status, EpochStatus::Missing);
        assert!(a.records[2].faults.node_down);
    }

    #[test]
    fn zero_regime_generation_matches_the_regime_free_draw() {
        // `Preset.regimes = none` must leave datasets bit-identical to
        // the pre-regime fault layer, faults enabled or not.
        let preset = Preset {
            faults: FaultConfig::uniform(0.3),
            ..mini_preset()
        };
        let path = quiet_path();
        let seed = trace_seed(&path, 0);
        assert_eq!(
            FaultPlan::draw_with_regimes(
                &preset.faults,
                &preset.regimes,
                seed,
                preset.epochs_per_trace
            ),
            FaultPlan::draw(&preset.faults, seed, preset.epochs_per_trace)
        );
    }

    #[test]
    fn catalog_for_selects_by_preset_name() {
        assert_eq!(catalog_for(&Preset::quick()).len(), 35);
        let c2006 = catalog_for(&Preset::quick_2006());
        assert_eq!(c2006.len(), 24);
        assert!(c2006.iter().all(|p| !p.name.starts_with("eu")));
    }
}
