//! Deterministic measurement fault injection (DESIGN.md §10) and the
//! correlated-outage regime process layered on top of it (§13).
//!
//! The paper's campaign ran on the real RON testbed, where measurement
//! infrastructure fails: pathload sometimes aborts without converging,
//! ping probes are lost in bursts or the prober host goes down, bulk
//! transfers are cut short, and whole epochs vanish when a node reboots.
//! The authors silently discard such epochs. This module reproduces
//! those failures *deterministically*: a [`FaultPlan`] is drawn once per
//! trace from the trace seed, on an RNG stream separate from the
//! simulator's, so a plan with every probability at zero leaves the
//! generated measurements bit-identical to a build without the fault
//! layer at all — and any plan replays exactly.
//!
//! Independent per-epoch coin flips miss how real prober outages behave:
//! a crashed pathload daemon stays down for many consecutive epochs. A
//! [`RegimeConfig`] adds that correlation as a per-trace semi-Markov
//! chain over [`OutageRegime`] states (Healthy ↔ Degraded ↔ Down) with
//! geometric dwell times, drawn as a prefix of the same salted fault
//! stream: while `Degraded`, every [`FaultConfig`] probability is scaled
//! by a multiplier; while `Down`, the node measures nothing at all. With
//! [`RegimeConfig::none`] the chain is never drawn and the fault stream
//! is byte-identical to the regime-free layer (`zero_fault_pin.rs` pins
//! the zero-fault/zero-regime path end to end).
//!
//! What each fault does to the epoch is decided in `runner.rs`; what the
//! dataset records about it lives in `data::EpochStatus` /
//! `data::EpochFaults`.

use std::fmt;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Per-epoch fault probabilities, all in `[0, 1]` and independent.
/// Part of the [`crate::preset::Preset`], so fault rates are an input of
/// dataset generation like every other knob.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Whole epoch missing (node down): nothing is measured, cross
    /// traffic still flows.
    pub epoch_missing: f64,
    /// Pathload runs but aborts without converging: no `Â`.
    pub pathload_fail: f64,
    /// The ping prober is down for a contiguous window: probes in it
    /// were never sent.
    pub ping_outage: f64,
    /// A burst of probe replies is lost on the return path: probes in
    /// the window count as lost, inflating `p̂`/`p̃`.
    pub reply_loss_burst: f64,
    /// The bulk transfer is cut short at a random fraction of its
    /// scheduled duration.
    pub transfer_truncate: f64,
    /// The bulk transfer fails to start at all: no `R`.
    pub transfer_fail: f64,
}

impl FaultConfig {
    /// No faults — the default, and the configuration of every stock
    /// preset. Guarantees bit-identical output to a fault-free build.
    pub fn none() -> Self {
        Self::default()
    }

    /// Every fault type at the same probability `p` — the `abl_faults`
    /// sweep's axis.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn uniform(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "fault probability out of range");
        FaultConfig {
            epoch_missing: p,
            pathload_fail: p,
            ping_outage: p,
            reply_loss_burst: p,
            transfer_truncate: p,
            transfer_fail: p,
        }
    }

    /// True when every probability is zero (no fault can ever fire).
    /// A NaN is *not* "none": it fails `<= 0.0` like any positive rate
    /// and is then caught by [`FaultConfig::validate`] /
    /// neutralised by [`FaultConfig::sanitized`].
    pub fn is_none(&self) -> bool {
        self.epoch_missing <= 0.0
            && self.pathload_fail <= 0.0
            && self.ping_outage <= 0.0
            && self.reply_loss_burst <= 0.0
            && self.transfer_truncate <= 0.0
            && self.transfer_fail <= 0.0
    }

    /// The `(name, value)` view of every probability field, for
    /// validation and sanitization.
    fn fields(&self) -> [(&'static str, f64); 6] {
        [
            ("epoch_missing", self.epoch_missing),
            ("pathload_fail", self.pathload_fail),
            ("ping_outage", self.ping_outage),
            ("reply_loss_burst", self.reply_loss_burst),
            ("transfer_truncate", self.transfer_truncate),
            ("transfer_fail", self.transfer_fail),
        ]
    }

    /// Rejects the first probability outside `[0, 1]` (NaN included) —
    /// the reject half of the construction-boundary guard. Presets come
    /// in over serde, whose derived path performs no range checks, and a
    /// NaN would otherwise slip past [`FaultConfig::is_none`] straight
    /// into `random_bool`, which panics on it.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (field, value) in self.fields() {
            if !(0.0..=1.0).contains(&value) {
                return Err(ConfigError { field, value });
            }
        }
        Ok(())
    }

    /// The clamp half of the guard: every probability forced into
    /// `[0, 1]`, NaN to 0 (a rate nobody specified fires never, not
    /// always). In-range configs come back bit-identical, which is what
    /// lets [`FaultPlan::draw_with_regimes`] sanitize unconditionally
    /// without moving the zero-fault pin.
    pub fn sanitized(&self) -> FaultConfig {
        FaultConfig {
            epoch_missing: sanitize_probability(self.epoch_missing),
            pathload_fail: sanitize_probability(self.pathload_fail),
            ping_outage: sanitize_probability(self.ping_outage),
            reply_loss_burst: sanitize_probability(self.reply_loss_burst),
            transfer_truncate: sanitize_probability(self.transfer_truncate),
            transfer_fail: sanitize_probability(self.transfer_fail),
        }
    }

    /// This config with every probability scaled by `multiplier` and
    /// re-clamped into `[0, 1]` — the Degraded-regime modulation.
    fn scaled(&self, multiplier: f64) -> FaultConfig {
        FaultConfig {
            epoch_missing: (self.epoch_missing * multiplier).clamp(0.0, 1.0),
            pathload_fail: (self.pathload_fail * multiplier).clamp(0.0, 1.0),
            ping_outage: (self.ping_outage * multiplier).clamp(0.0, 1.0),
            reply_loss_burst: (self.reply_loss_burst * multiplier).clamp(0.0, 1.0),
            transfer_truncate: (self.transfer_truncate * multiplier).clamp(0.0, 1.0),
            transfer_fail: (self.transfer_fail * multiplier).clamp(0.0, 1.0),
        }
    }
}

/// A probability knob outside its valid domain, by field name — the
/// typed rejection of [`FaultConfig::validate`] /
/// [`RegimeConfig::validate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfigError {
    /// The offending field, e.g. `"ping_outage"`.
    pub field: &'static str,
    /// The out-of-domain value (possibly NaN).
    pub value: f64,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fault/regime knob `{}` = {} outside its valid domain",
            self.field, self.value
        )
    }
}

impl std::error::Error for ConfigError {}

/// NaN fires never; everything else is clamped into `[0, 1]`.
fn sanitize_probability(p: f64) -> f64 {
    if p.is_nan() {
        0.0
    } else {
        p.clamp(0.0, 1.0)
    }
}

/// NaN/∞ dwell means collapse to the minimum of one epoch; finite means
/// are floored at one (a state is occupied at least the epoch it is
/// entered in).
fn sanitize_dwell(mean_epochs: f64) -> f64 {
    if mean_epochs.is_finite() {
        mean_epochs.max(1.0)
    } else {
        1.0
    }
}

/// The outage state a trace is in during one epoch (DESIGN.md §13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum OutageRegime {
    /// Measurement infrastructure nominal: the base [`FaultConfig`]
    /// rates apply.
    #[default]
    Healthy,
    /// Flaky infrastructure (a prober crash-looping, a loaded
    /// monitoring host): every fault probability is scaled by
    /// [`RegimeConfig::fault_multiplier`].
    Degraded,
    /// The node is down: the whole epoch goes unmeasured, like a
    /// certain `epoch_missing` hit, for the regime's dwell.
    Down,
}

impl OutageRegime {
    /// Lower-case label, as figure tables and CSVs print it.
    pub fn label(&self) -> &'static str {
        match self {
            OutageRegime::Healthy => "healthy",
            OutageRegime::Degraded => "degraded",
            OutageRegime::Down => "down",
        }
    }
}

/// The correlated-outage regime chain: a per-trace semi-Markov process
/// Healthy ↔ Degraded ↔ Down with geometric dwell times, drawn as a
/// prefix of the salted fault stream (DESIGN.md §13). Part of the
/// [`crate::preset::Preset`]; every stock preset uses
/// [`RegimeConfig::none`], which draws nothing at all.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RegimeConfig {
    /// Per-epoch probability of leaving Healthy for Degraded.
    pub degraded_entry: f64,
    /// Per-epoch probability, while Degraded, of escalating to Down.
    pub down_entry: f64,
    /// Mean geometric dwell in Degraded, in epochs (≥ 1). Also the mean
    /// of the flaky recovery window a Down spell exits through.
    pub mean_degraded_dwell: f64,
    /// Mean geometric dwell in Down, in epochs (≥ 1).
    pub mean_down_dwell: f64,
    /// Scale applied to every [`FaultConfig`] probability while
    /// Degraded (clamped back into `[0, 1]`).
    pub fault_multiplier: f64,
}

impl RegimeConfig {
    /// No regime process at all — the default, and the configuration of
    /// every stock preset. Guarantees the fault stream is byte-identical
    /// to the regime-free layer.
    pub fn none() -> Self {
        Self::default()
    }

    /// The `fig25_resilience` scenario: frequent multi-epoch Degraded
    /// spells, occasional multi-epoch node outages, faults 6× more
    /// likely while Degraded.
    pub fn flaky() -> Self {
        RegimeConfig {
            degraded_entry: 0.12,
            down_entry: 0.15,
            mean_degraded_dwell: 4.0,
            mean_down_dwell: 3.0,
            fault_multiplier: 6.0,
        }
    }

    /// True when the chain can never leave Healthy (no entry
    /// probability): nothing is drawn and nothing is modulated. As with
    /// [`FaultConfig::is_none`], a NaN entry rate is not "none".
    pub fn is_none(&self) -> bool {
        self.degraded_entry <= 0.0 && self.down_entry <= 0.0
    }

    /// Rejects the first out-of-domain knob: entry probabilities outside
    /// `[0, 1]`, dwell means below one epoch or non-finite, or a
    /// negative/non-finite multiplier. A config that [`Self::is_none`]
    /// is vacuously valid — its dwells and multiplier are never read.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.is_none() {
            return Ok(());
        }
        for (field, value) in [
            ("degraded_entry", self.degraded_entry),
            ("down_entry", self.down_entry),
        ] {
            if !(0.0..=1.0).contains(&value) {
                return Err(ConfigError { field, value });
            }
        }
        for (field, value) in [
            ("mean_degraded_dwell", self.mean_degraded_dwell),
            ("mean_down_dwell", self.mean_down_dwell),
        ] {
            if !value.is_finite() || value < 1.0 {
                return Err(ConfigError { field, value });
            }
        }
        if !self.fault_multiplier.is_finite() || self.fault_multiplier < 0.0 {
            return Err(ConfigError {
                field: "fault_multiplier",
                value: self.fault_multiplier,
            });
        }
        Ok(())
    }

    /// The clamp half of the guard: entry rates sanitized like fault
    /// probabilities, dwell means floored at one epoch, a NaN/∞
    /// multiplier neutralised to 1 and negative ones to 0. Valid
    /// configs come back bit-identical.
    pub fn sanitized(&self) -> RegimeConfig {
        RegimeConfig {
            degraded_entry: sanitize_probability(self.degraded_entry),
            down_entry: sanitize_probability(self.down_entry),
            mean_degraded_dwell: sanitize_dwell(self.mean_degraded_dwell),
            mean_down_dwell: sanitize_dwell(self.mean_down_dwell),
            fault_multiplier: if self.fault_multiplier.is_finite() {
                self.fault_multiplier.max(0.0)
            } else {
                1.0
            },
        }
    }
}

/// What happens to an epoch's bulk transfer.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum TransferFault {
    /// Runs to completion.
    #[default]
    None,
    /// Cut short at this fraction of the scheduled duration (in
    /// `[0.25, 0.85]`): the throughput sample covers only the truncated
    /// run, and prefix throughputs past the cut are unmeasured.
    Truncated(f64),
    /// Never starts: no throughput sample at all.
    Failed,
}

/// The faults scheduled for one epoch. Window positions are fractions
/// of the epoch's probing span (ping-window start → transfer end), so
/// the plan is independent of the preset's absolute phase durations.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EpochFaultPlan {
    /// Node down: measure nothing this epoch.
    pub missing: bool,
    /// Pathload aborts: discard `Â`.
    pub pathload_fail: bool,
    /// Prober outage as `(start, end)` fractions of the probing span.
    pub ping_outage: Option<(f64, f64)>,
    /// Reply-loss burst as `(start, end)` fractions of the probing span.
    pub reply_burst: Option<(f64, f64)>,
    /// The bulk transfer's fate.
    pub transfer: TransferFault,
}

impl EpochFaultPlan {
    /// True when nothing at all is scheduled for this epoch.
    pub fn is_clean(&self) -> bool {
        *self == EpochFaultPlan::default()
    }
}

/// One trace's fault schedule: drawn up-front from the trace seed, never
/// from the simulator's RNG, so measurement values are untouched by the
/// draw itself.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    epochs: Vec<EpochFaultPlan>,
    regimes: Vec<OutageRegime>,
}

/// Salt separating the fault-plan RNG stream (regime-chain prefix
/// included) from every other consumer of the trace seed.
const FAULT_STREAM_SALT: u64 = 0xFA17_5EED_0000_0001;

/// Dwell draws are clamped here so a pathological mean cannot schedule
/// an outage longer than any realistic trace.
const MAX_DWELL_EPOCHS: u32 = 10_000;

/// One geometric dwell on `{1, 2, ...}` with the given mean, by inverse
/// CDF — a single uniform draw regardless of the outcome, keeping the
/// stream layout independent of the dwell lengths drawn.
fn geometric_dwell(rng: &mut StdRng, mean_epochs: f64) -> u32 {
    let u: f64 = rng.random_range(0.0..1.0);
    if mean_epochs <= 1.0 {
        return 1;
    }
    let leave_p = 1.0 / mean_epochs;
    let dwell = ((1.0 - u).ln() / (1.0 - leave_p).ln()).ceil();
    if dwell.is_finite() && dwell >= 1.0 {
        (dwell as u32).min(MAX_DWELL_EPOCHS)
    } else {
        1
    }
}

/// Draws one trace's regime sequence from the fault stream prefix.
/// `cfg` must already be sanitized. An `is_none` config returns all
/// Healthy *without touching the RNG* — the zero-regime guarantee.
fn draw_regime_sequence(rng: &mut StdRng, cfg: &RegimeConfig, epochs: usize) -> Vec<OutageRegime> {
    if cfg.is_none() {
        return vec![OutageRegime::Healthy; epochs];
    }
    let mut seq = Vec::with_capacity(epochs);
    let mut state = OutageRegime::Healthy;
    let mut dwell_left: u32 = 0;
    for _ in 0..epochs {
        seq.push(state);
        state = match state {
            OutageRegime::Healthy => {
                if rng.random_bool(cfg.degraded_entry) {
                    dwell_left = geometric_dwell(rng, cfg.mean_degraded_dwell);
                    OutageRegime::Degraded
                } else {
                    OutageRegime::Healthy
                }
            }
            OutageRegime::Degraded => {
                if rng.random_bool(cfg.down_entry) {
                    dwell_left = geometric_dwell(rng, cfg.mean_down_dwell);
                    OutageRegime::Down
                } else if dwell_left <= 1 {
                    OutageRegime::Healthy
                } else {
                    dwell_left -= 1;
                    OutageRegime::Degraded
                }
            }
            OutageRegime::Down => {
                if dwell_left <= 1 {
                    // A node comes back flaky, not pristine: every Down
                    // spell exits through a Degraded recovery window.
                    dwell_left = geometric_dwell(rng, cfg.mean_degraded_dwell);
                    OutageRegime::Degraded
                } else {
                    dwell_left -= 1;
                    OutageRegime::Down
                }
            }
        };
    }
    seq
}

/// Recomputes the regime sequence a trace was generated under, without
/// the fault draws — deterministic in `(config, trace_seed, epochs)`.
/// `fig25_resilience` uses this to condition per-epoch scores on the
/// regime without the dataset having to store it.
pub fn draw_regimes(config: &RegimeConfig, trace_seed: u64, epochs: usize) -> Vec<OutageRegime> {
    let mut rng = StdRng::seed_from_u64(trace_seed ^ FAULT_STREAM_SALT);
    draw_regime_sequence(&mut rng, &config.sanitized(), epochs)
}

/// One epoch's fault draws at the given (regime-modulated) rates. The
/// draw order is load-bearing: it is the regime-free layer's order, so
/// a Healthy-only chain replays the pre-regime stream exactly.
fn draw_epoch(rng: &mut StdRng, config: &FaultConfig) -> EpochFaultPlan {
    let missing = rng.random_bool(config.epoch_missing);
    let pathload_fail = rng.random_bool(config.pathload_fail);
    let ping_outage = rng
        .random_bool(config.ping_outage)
        .then(|| random_window(rng));
    let reply_burst = rng
        .random_bool(config.reply_loss_burst)
        .then(|| random_window(rng));
    let transfer = if rng.random_bool(config.transfer_fail) {
        TransferFault::Failed
    } else if rng.random_bool(config.transfer_truncate) {
        TransferFault::Truncated(rng.random_range(0.25..=0.85))
    } else {
        TransferFault::None
    };
    EpochFaultPlan {
        missing,
        pathload_fail,
        ping_outage,
        reply_burst,
        transfer,
    }
}

impl FaultPlan {
    /// Draws the regime-free plan for a trace of `epochs` epochs —
    /// [`FaultPlan::draw_with_regimes`] under [`RegimeConfig::none`].
    /// Deterministic in `(config, trace_seed, epochs)`; a
    /// zero-probability config yields an all-clean plan.
    pub fn draw(config: &FaultConfig, trace_seed: u64, epochs: usize) -> Self {
        Self::draw_with_regimes(config, &RegimeConfig::none(), trace_seed, epochs)
    }

    /// Draws a trace's plan under a correlated-outage regime chain: the
    /// regime sequence is drawn first (as a stream prefix, skipped
    /// entirely when `regimes` is none), then each epoch's faults at
    /// the regime's rates — base while Healthy, multiplied while
    /// Degraded, and a forced `missing` (no draws at all) while Down.
    /// Both configs are sanitized at this boundary, so out-of-range or
    /// NaN knobs clamp instead of panicking inside `random_bool`.
    pub fn draw_with_regimes(
        config: &FaultConfig,
        regimes: &RegimeConfig,
        trace_seed: u64,
        epochs: usize,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(trace_seed ^ FAULT_STREAM_SALT);
        let config = config.sanitized();
        let regime_cfg = regimes.sanitized();
        let regime_seq = draw_regime_sequence(&mut rng, &regime_cfg, epochs);
        let degraded = config.scaled(regime_cfg.fault_multiplier);
        let epochs = regime_seq
            .iter()
            .map(|regime| match regime {
                OutageRegime::Healthy => draw_epoch(&mut rng, &config),
                OutageRegime::Degraded => draw_epoch(&mut rng, &degraded),
                OutageRegime::Down => EpochFaultPlan {
                    missing: true,
                    ..EpochFaultPlan::default()
                },
            })
            .collect();
        FaultPlan {
            epochs,
            regimes: regime_seq,
        }
    }

    /// The plan for epoch `k`; epochs past the drawn horizon are clean.
    pub fn epoch(&self, k: usize) -> EpochFaultPlan {
        self.epochs.get(k).copied().unwrap_or_default()
    }

    /// The regime epoch `k` was drawn under; past the horizon, Healthy.
    pub fn regime(&self, k: usize) -> OutageRegime {
        self.regimes.get(k).copied().unwrap_or_default()
    }

    /// True when no epoch has any fault scheduled.
    pub fn is_clean(&self) -> bool {
        self.epochs.iter().all(EpochFaultPlan::is_clean)
    }
}

/// A `(start, end)` window in span fractions: starts in the first 70%,
/// lasts 15–40% of the span.
fn random_window(rng: &mut StdRng) -> (f64, f64) {
    let start = rng.random_range(0.0..0.7);
    let len = rng.random_range(0.15..0.4);
    (start, (start + len).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_probability_plan_is_clean() {
        let plan = FaultPlan::draw(&FaultConfig::none(), 12345, 200);
        assert!(plan.is_clean());
        assert!(plan.epoch(7).is_clean());
        assert!(FaultConfig::none().is_none());
    }

    #[test]
    fn draw_is_deterministic_in_seed_and_config() {
        let cfg = FaultConfig::uniform(0.3);
        let a = FaultPlan::draw(&cfg, 42, 50);
        let b = FaultPlan::draw(&cfg, 42, 50);
        assert_eq!(a, b);
        let c = FaultPlan::draw(&cfg, 43, 50);
        assert_ne!(a, c, "different seeds draw different plans");
    }

    #[test]
    fn certain_faults_all_fire() {
        // transfer_fail = 1.0 shadows transfer_truncate by draw order.
        let cfg = FaultConfig::uniform(1.0);
        let plan = FaultPlan::draw(&cfg, 7, 20);
        for k in 0..20 {
            let e = plan.epoch(k);
            assert!(e.missing && e.pathload_fail);
            assert!(e.ping_outage.is_some() && e.reply_burst.is_some());
            assert_eq!(e.transfer, TransferFault::Failed);
        }
    }

    #[test]
    fn windows_are_ordered_fractions() {
        let cfg = FaultConfig {
            ping_outage: 1.0,
            reply_loss_burst: 1.0,
            ..FaultConfig::none()
        };
        let plan = FaultPlan::draw(&cfg, 99, 100);
        for k in 0..100 {
            let e = plan.epoch(k);
            for (start, end) in [e.ping_outage, e.reply_burst].into_iter().flatten() {
                assert!((0.0..=1.0).contains(&start));
                assert!(start < end && end <= 1.0);
            }
        }
    }

    #[test]
    fn truncation_fractions_stay_in_range() {
        let cfg = FaultConfig {
            transfer_truncate: 1.0,
            ..FaultConfig::none()
        };
        let plan = FaultPlan::draw(&cfg, 5, 100);
        for k in 0..100 {
            match plan.epoch(k).transfer {
                TransferFault::Truncated(f) => assert!((0.25..=0.85).contains(&f)),
                other => panic!("expected truncation, got {other:?}"),
            }
        }
    }

    #[test]
    fn epochs_past_horizon_are_clean() {
        let plan = FaultPlan::draw(&FaultConfig::uniform(1.0), 1, 3);
        assert!(plan.epoch(3).is_clean());
        assert_eq!(plan.regime(3), OutageRegime::Healthy);
    }

    #[test]
    fn moderate_rate_hits_some_but_not_all_epochs() {
        let plan = FaultPlan::draw(&FaultConfig::uniform(0.2), 11, 200);
        let faulty = (0..200).filter(|&k| !plan.epoch(k).is_clean()).count();
        assert!(faulty > 50, "20% per fault type across 6 types: {faulty}");
        assert!(faulty < 200, "not every epoch should be hit: {faulty}");
    }

    // --- construction-boundary validation (satellite 1) ---------------

    #[test]
    fn validate_rejects_nan_and_out_of_range_by_field() {
        let nan = FaultConfig {
            ping_outage: f64::NAN,
            ..FaultConfig::none()
        };
        let err = nan.validate().expect_err("NaN must be rejected");
        assert_eq!(err.field, "ping_outage");
        assert!(err.value.is_nan());
        assert!(err.to_string().contains("ping_outage"), "{err}");
        assert!(!nan.is_none(), "NaN is not a zero rate");

        let big = FaultConfig {
            transfer_fail: 1.5,
            ..FaultConfig::none()
        };
        assert_eq!(
            big.validate().expect_err("1.5 rejected").field,
            "transfer_fail"
        );
        let neg = FaultConfig {
            epoch_missing: -0.2,
            ..FaultConfig::none()
        };
        assert_eq!(
            neg.validate().expect_err("-0.2 rejected").field,
            "epoch_missing"
        );
        assert!(FaultConfig::uniform(0.3).validate().is_ok());
    }

    #[test]
    fn sanitized_clamps_and_leaves_valid_configs_bit_identical() {
        let dirty = FaultConfig {
            epoch_missing: -0.2,
            pathload_fail: f64::NAN,
            ping_outage: 1.5,
            ..FaultConfig::none()
        };
        let clean = dirty.sanitized();
        assert_eq!(clean.epoch_missing, 0.0);
        assert_eq!(clean.pathload_fail, 0.0, "NaN clamps to never-fires");
        assert_eq!(clean.ping_outage, 1.0);
        assert!(clean.validate().is_ok());
        let valid = FaultConfig::uniform(0.3);
        assert_eq!(valid.sanitized(), valid, "valid configs must not move");
    }

    #[test]
    fn draw_with_invalid_config_clamps_instead_of_panicking() {
        let dirty = FaultConfig {
            pathload_fail: f64::NAN,
            ping_outage: 2.0,
            ..FaultConfig::none()
        };
        let plan = FaultPlan::draw(&dirty, 9, 50);
        assert_eq!(plan, FaultPlan::draw(&dirty.sanitized(), 9, 50));
        for k in 0..50 {
            let e = plan.epoch(k);
            assert!(!e.pathload_fail, "NaN rate must never fire");
            assert!(e.ping_outage.is_some(), "clamped-to-1 rate always fires");
        }
    }

    #[test]
    fn regime_validate_rejects_bad_knobs_and_accepts_none() {
        assert!(RegimeConfig::none().validate().is_ok());
        assert!(RegimeConfig::flaky().validate().is_ok());
        let bad_entry = RegimeConfig {
            degraded_entry: f64::NAN,
            ..RegimeConfig::flaky()
        };
        assert_eq!(
            bad_entry.validate().expect_err("NaN").field,
            "degraded_entry"
        );
        let bad_dwell = RegimeConfig {
            mean_down_dwell: 0.5,
            ..RegimeConfig::flaky()
        };
        assert_eq!(
            bad_dwell.validate().expect_err("0.5").field,
            "mean_down_dwell"
        );
        let bad_mult = RegimeConfig {
            fault_multiplier: f64::INFINITY,
            ..RegimeConfig::flaky()
        };
        assert_eq!(
            bad_mult.validate().expect_err("inf").field,
            "fault_multiplier"
        );
        let clean = bad_mult.sanitized();
        assert_eq!(
            clean.fault_multiplier, 1.0,
            "non-finite multiplier is neutral"
        );
        assert!(clean.validate().is_ok());
        assert_eq!(
            RegimeConfig::flaky().sanitized(),
            RegimeConfig::flaky(),
            "valid configs must not move"
        );
    }

    // --- the regime chain ----------------------------------------------

    #[test]
    fn zero_regime_draw_is_byte_identical_to_the_regime_free_stream() {
        // The regime layer's own pin: with RegimeConfig::none, no RNG is
        // consumed before the fault draws, so draw_with_regimes equals
        // FaultPlan::draw for every config — and zero-fault stays clean.
        let cfg = FaultConfig::uniform(0.3);
        let with = FaultPlan::draw_with_regimes(&cfg, &RegimeConfig::none(), 42, 80);
        let without = FaultPlan::draw(&cfg, 42, 80);
        assert_eq!(with, without);
        assert!((0..80).all(|k| with.regime(k) == OutageRegime::Healthy));
    }

    #[test]
    fn regime_draw_is_deterministic_and_recomputable() {
        let cfg = RegimeConfig::flaky();
        let plan = FaultPlan::draw_with_regimes(&FaultConfig::uniform(0.05), &cfg, 7, 300);
        let replay = FaultPlan::draw_with_regimes(&FaultConfig::uniform(0.05), &cfg, 7, 300);
        assert_eq!(plan, replay);
        // The standalone recompute (what fig25 uses) sees the same
        // sequence: the chain is a pure prefix of the fault stream.
        let seq = draw_regimes(&cfg, 7, 300);
        assert!((0..300).all(|k| plan.regime(k) == seq[k]));
    }

    #[test]
    fn regimes_form_contiguous_spells_through_the_birth_death_chain() {
        let seq = draw_regimes(&RegimeConfig::flaky(), 1234, 2000);
        let mut down_epochs = 0usize;
        let mut degraded_epochs = 0usize;
        for (k, pair) in seq.windows(2).enumerate() {
            // Healthy never jumps straight to Down and Down never exits
            // straight to Healthy: the chain is birth–death.
            assert!(
                !(pair[0] == OutageRegime::Healthy && pair[1] == OutageRegime::Down),
                "healthy->down jump at {k}"
            );
            assert!(
                !(pair[0] == OutageRegime::Down && pair[1] == OutageRegime::Healthy),
                "down->healthy jump at {k}"
            );
        }
        for r in &seq {
            match r {
                OutageRegime::Down => down_epochs += 1,
                OutageRegime::Degraded => degraded_epochs += 1,
                OutageRegime::Healthy => {}
            }
        }
        assert!(
            down_epochs > 20,
            "flaky scenario reaches Down: {down_epochs}"
        );
        assert!(
            degraded_epochs > down_epochs,
            "degraded spells dominate down spells: {degraded_epochs} vs {down_epochs}"
        );
    }

    #[test]
    fn down_regime_forces_missing_and_degraded_raises_fault_density() {
        let base = FaultConfig::uniform(0.05);
        let plan = FaultPlan::draw_with_regimes(&base, &RegimeConfig::flaky(), 99, 2000);
        let mut hits = [0usize; 3]; // faulty epochs per regime
        let mut totals = [0usize; 3];
        for k in 0..2000 {
            let idx = plan.regime(k) as usize;
            totals[idx] += 1;
            if plan.regime(k) == OutageRegime::Down {
                assert!(plan.epoch(k).missing, "down epochs measure nothing");
            }
            if !plan.epoch(k).is_clean() {
                hits[idx] += 1;
            }
        }
        assert!(
            totals.iter().all(|&n| n > 30),
            "all regimes visited: {totals:?}"
        );
        let healthy_rate = hits[0] as f64 / totals[0] as f64;
        let degraded_rate = hits[1] as f64 / totals[1] as f64;
        assert!(
            degraded_rate > healthy_rate * 2.0,
            "multiplied rates must show: {degraded_rate} vs {healthy_rate}"
        );
    }

    #[test]
    fn dwell_means_stretch_down_spells() {
        let spells = |mean_down_dwell: f64| {
            let seq = draw_regimes(
                &RegimeConfig {
                    mean_down_dwell,
                    ..RegimeConfig::flaky()
                },
                5,
                4000,
            );
            let mut lengths = Vec::new();
            let mut run = 0usize;
            for r in &seq {
                if *r == OutageRegime::Down {
                    run += 1;
                } else if run > 0 {
                    lengths.push(run);
                    run = 0;
                }
            }
            if run > 0 {
                lengths.push(run);
            }
            lengths.iter().sum::<usize>() as f64 / lengths.len().max(1) as f64
        };
        let short = spells(1.0);
        let long = spells(8.0);
        assert!(
            long > short * 2.0,
            "mean dwell must stretch outages: {short} vs {long}"
        );
    }
}
