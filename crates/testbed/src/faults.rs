//! Deterministic measurement fault injection (DESIGN.md §10).
//!
//! The paper's campaign ran on the real RON testbed, where measurement
//! infrastructure fails: pathload sometimes aborts without converging,
//! ping probes are lost in bursts or the prober host goes down, bulk
//! transfers are cut short, and whole epochs vanish when a node reboots.
//! The authors silently discard such epochs. This module reproduces
//! those failures *deterministically*: a [`FaultPlan`] is drawn once per
//! trace from the trace seed, on an RNG stream separate from the
//! simulator's, so a plan with every probability at zero leaves the
//! generated measurements bit-identical to a build without the fault
//! layer at all — and any plan replays exactly.
//!
//! What each fault does to the epoch is decided in `runner.rs`; what the
//! dataset records about it lives in `data::EpochStatus` /
//! `data::EpochFaults`.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Per-epoch fault probabilities, all in `[0, 1]` and independent.
/// Part of the [`crate::preset::Preset`], so fault rates are an input of
/// dataset generation like every other knob.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Whole epoch missing (node down): nothing is measured, cross
    /// traffic still flows.
    pub epoch_missing: f64,
    /// Pathload runs but aborts without converging: no `Â`.
    pub pathload_fail: f64,
    /// The ping prober is down for a contiguous window: probes in it
    /// were never sent.
    pub ping_outage: f64,
    /// A burst of probe replies is lost on the return path: probes in
    /// the window count as lost, inflating `p̂`/`p̃`.
    pub reply_loss_burst: f64,
    /// The bulk transfer is cut short at a random fraction of its
    /// scheduled duration.
    pub transfer_truncate: f64,
    /// The bulk transfer fails to start at all: no `R`.
    pub transfer_fail: f64,
}

impl FaultConfig {
    /// No faults — the default, and the configuration of every stock
    /// preset. Guarantees bit-identical output to a fault-free build.
    pub fn none() -> Self {
        Self::default()
    }

    /// Every fault type at the same probability `p` — the `abl_faults`
    /// sweep's axis.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn uniform(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "fault probability out of range");
        FaultConfig {
            epoch_missing: p,
            pathload_fail: p,
            ping_outage: p,
            reply_loss_burst: p,
            transfer_truncate: p,
            transfer_fail: p,
        }
    }

    /// True when every probability is zero (no fault can ever fire).
    pub fn is_none(&self) -> bool {
        self.epoch_missing <= 0.0
            && self.pathload_fail <= 0.0
            && self.ping_outage <= 0.0
            && self.reply_loss_burst <= 0.0
            && self.transfer_truncate <= 0.0
            && self.transfer_fail <= 0.0
    }
}

/// What happens to an epoch's bulk transfer.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum TransferFault {
    /// Runs to completion.
    #[default]
    None,
    /// Cut short at this fraction of the scheduled duration (in
    /// `[0.25, 0.85]`): the throughput sample covers only the truncated
    /// run, and prefix throughputs past the cut are unmeasured.
    Truncated(f64),
    /// Never starts: no throughput sample at all.
    Failed,
}

/// The faults scheduled for one epoch. Window positions are fractions
/// of the epoch's probing span (ping-window start → transfer end), so
/// the plan is independent of the preset's absolute phase durations.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EpochFaultPlan {
    /// Node down: measure nothing this epoch.
    pub missing: bool,
    /// Pathload aborts: discard `Â`.
    pub pathload_fail: bool,
    /// Prober outage as `(start, end)` fractions of the probing span.
    pub ping_outage: Option<(f64, f64)>,
    /// Reply-loss burst as `(start, end)` fractions of the probing span.
    pub reply_burst: Option<(f64, f64)>,
    /// The bulk transfer's fate.
    pub transfer: TransferFault,
}

impl EpochFaultPlan {
    /// True when nothing at all is scheduled for this epoch.
    pub fn is_clean(&self) -> bool {
        *self == EpochFaultPlan::default()
    }
}

/// One trace's fault schedule: drawn up-front from the trace seed, never
/// from the simulator's RNG, so measurement values are untouched by the
/// draw itself.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    epochs: Vec<EpochFaultPlan>,
}

/// Salt separating the fault-plan RNG stream from every other consumer
/// of the trace seed.
const FAULT_STREAM_SALT: u64 = 0xFA17_5EED_0000_0001;

impl FaultPlan {
    /// Draws the plan for a trace of `epochs` epochs. Deterministic in
    /// `(config, trace_seed, epochs)`; a zero-probability config yields
    /// an all-clean plan.
    pub fn draw(config: &FaultConfig, trace_seed: u64, epochs: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(trace_seed ^ FAULT_STREAM_SALT);
        let epochs = (0..epochs)
            .map(|_| {
                let missing = rng.random_bool(config.epoch_missing);
                let pathload_fail = rng.random_bool(config.pathload_fail);
                let ping_outage = rng
                    .random_bool(config.ping_outage)
                    .then(|| random_window(&mut rng));
                let reply_burst = rng
                    .random_bool(config.reply_loss_burst)
                    .then(|| random_window(&mut rng));
                let transfer = if rng.random_bool(config.transfer_fail) {
                    TransferFault::Failed
                } else if rng.random_bool(config.transfer_truncate) {
                    TransferFault::Truncated(rng.random_range(0.25..=0.85))
                } else {
                    TransferFault::None
                };
                EpochFaultPlan {
                    missing,
                    pathload_fail,
                    ping_outage,
                    reply_burst,
                    transfer,
                }
            })
            .collect();
        FaultPlan { epochs }
    }

    /// The plan for epoch `k`; epochs past the drawn horizon are clean.
    pub fn epoch(&self, k: usize) -> EpochFaultPlan {
        self.epochs.get(k).copied().unwrap_or_default()
    }

    /// True when no epoch has any fault scheduled.
    pub fn is_clean(&self) -> bool {
        self.epochs.iter().all(EpochFaultPlan::is_clean)
    }
}

/// A `(start, end)` window in span fractions: starts in the first 70%,
/// lasts 15–40% of the span.
fn random_window(rng: &mut StdRng) -> (f64, f64) {
    let start = rng.random_range(0.0..0.7);
    let len = rng.random_range(0.15..0.4);
    (start, (start + len).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_probability_plan_is_clean() {
        let plan = FaultPlan::draw(&FaultConfig::none(), 12345, 200);
        assert!(plan.is_clean());
        assert!(plan.epoch(7).is_clean());
        assert!(FaultConfig::none().is_none());
    }

    #[test]
    fn draw_is_deterministic_in_seed_and_config() {
        let cfg = FaultConfig::uniform(0.3);
        let a = FaultPlan::draw(&cfg, 42, 50);
        let b = FaultPlan::draw(&cfg, 42, 50);
        assert_eq!(a, b);
        let c = FaultPlan::draw(&cfg, 43, 50);
        assert_ne!(a, c, "different seeds draw different plans");
    }

    #[test]
    fn certain_faults_all_fire() {
        // transfer_fail = 1.0 shadows transfer_truncate by draw order.
        let cfg = FaultConfig::uniform(1.0);
        let plan = FaultPlan::draw(&cfg, 7, 20);
        for k in 0..20 {
            let e = plan.epoch(k);
            assert!(e.missing && e.pathload_fail);
            assert!(e.ping_outage.is_some() && e.reply_burst.is_some());
            assert_eq!(e.transfer, TransferFault::Failed);
        }
    }

    #[test]
    fn windows_are_ordered_fractions() {
        let cfg = FaultConfig {
            ping_outage: 1.0,
            reply_loss_burst: 1.0,
            ..FaultConfig::none()
        };
        let plan = FaultPlan::draw(&cfg, 99, 100);
        for k in 0..100 {
            let e = plan.epoch(k);
            for (start, end) in [e.ping_outage, e.reply_burst].into_iter().flatten() {
                assert!((0.0..=1.0).contains(&start));
                assert!(start < end && end <= 1.0);
            }
        }
    }

    #[test]
    fn truncation_fractions_stay_in_range() {
        let cfg = FaultConfig {
            transfer_truncate: 1.0,
            ..FaultConfig::none()
        };
        let plan = FaultPlan::draw(&cfg, 5, 100);
        for k in 0..100 {
            match plan.epoch(k).transfer {
                TransferFault::Truncated(f) => assert!((0.25..=0.85).contains(&f)),
                other => panic!("expected truncation, got {other:?}"),
            }
        }
    }

    #[test]
    fn epochs_past_horizon_are_clean() {
        let plan = FaultPlan::draw(&FaultConfig::uniform(1.0), 1, 3);
        assert!(plan.epoch(3).is_clean());
    }

    #[test]
    fn moderate_rate_hits_some_but_not_all_epochs() {
        let plan = FaultPlan::draw(&FaultConfig::uniform(0.2), 11, 200);
        let faulty = (0..200).filter(|&k| !plan.epoch(k).is_clean()).count();
        assert!(faulty > 50, "20% per fault type across 6 types: {faulty}");
        assert!(faulty < 200, "not every epoch should be hit: {faulty}");
    }
}
