//! The dataset model: what one epoch measures and how datasets persist.
//!
//! Persistence carries a staleness guard: [`Dataset::save`] embeds the
//! [`BEHAVIOR_HASH`] of the simulation source trees (netsim, tcp,
//! probes, testbed) alongside the data, and
//! [`Dataset::load_or_generate`] regenerates the cache whenever the
//! embedded hash differs from the one compiled into the running binary.
//! A cached dataset is a pure function of (preset, seed, simulator
//! code); the hash makes the third input explicit.
//!
//! The production cache is **sharded per path** (DESIGN.md §9): one
//! `path-<id>.json` per catalog path under `data/<preset>/`, plus a
//! `manifest.json`. Each shard embeds the behavior hash *and* a
//! fingerprint of (preset, path config), so
//! [`Dataset::load_or_generate_sharded`] can reuse every shard the
//! running binary still trusts and regenerate only the stale, missing,
//! or corrupt ones — the merged dataset is bit-identical to a
//! from-scratch generation (pinned by
//! `crates/testbed/tests/shard_pin.rs`).

use crate::path::PathConfig;
use crate::preset::Preset;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path as FsPath;
use tputpred_obs as obs;

/// Digest of the simulation source trees this binary was compiled
/// from, computed by `build.rs` (see `behavior_hash`).
pub const BEHAVIOR_HASH: &str = env!("TPUTPRED_BEHAVIOR_HASH");

/// The on-disk envelope: the dataset plus the behavior hash of the
/// code that generated it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct DatasetFile {
    /// [`BEHAVIOR_HASH`] at generation time.
    behavior_hash: String,
    /// The payload.
    dataset: Dataset,
}

/// How much of an epoch's measurement schedule actually ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EpochStatus {
    /// Every scheduled measurement completed.
    #[default]
    Ok,
    /// At least one measurement failed; the surviving fields are valid.
    Degraded,
    /// The node was down: nothing was measured this epoch.
    Missing,
}

/// Which fault(s) hit an epoch — the dataset's record of what
/// `faults::FaultPlan` scheduled, so analysis can condition on failure
/// mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EpochFaults {
    /// Whole epoch missing (node down).
    pub node_down: bool,
    /// Pathload ran but aborted without an estimate.
    pub pathload_failed: bool,
    /// The ping prober was down for part of the epoch.
    pub ping_outage: bool,
    /// A burst of probe replies was lost on the return path.
    pub reply_loss_burst: bool,
    /// The bulk transfer was cut short.
    pub transfer_truncated: bool,
    /// The bulk transfer never started.
    pub transfer_failed: bool,
}

impl EpochFaults {
    /// No fault hit this epoch.
    pub fn is_clean(&self) -> bool {
        *self == EpochFaults::default()
    }

    /// The [`EpochStatus`] these faults imply.
    pub fn status(&self) -> EpochStatus {
        if self.node_down {
            EpochStatus::Missing
        } else if self.is_clean() {
            EpochStatus::Ok
        } else {
            EpochStatus::Degraded
        }
    }
}

/// Everything one measurement epoch records (§4.1): the a-priori
/// estimates that feed FB prediction, the during-flow estimates of
/// Figs. 3–6, the actual throughput(s), and the target flow's own view
/// of the path.
///
/// Measurement fields are `Option`s: `None` means the measurement was
/// lost to a fault (see [`EpochRecord::faults`] for which one). On a
/// fault-free run — every stock preset — all fields are `Some` and
/// `status` is [`EpochStatus::Ok`]; [`EpochRecord::complete`] recovers
/// the plain-`f64` view the figure binaries consume.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// What ran: [`EpochStatus::Ok`], `Degraded`, or `Missing`.
    pub status: EpochStatus,
    /// Which faults hit (all-false on a clean epoch).
    pub faults: EpochFaults,
    /// Avail-bw estimate `Â` from the pathload measurement, bits/s.
    /// `None` when pathload aborted or the epoch is missing.
    pub a_hat: Option<f64>,
    /// A-priori RTT `T̂` from the pre-transfer ping window, seconds.
    /// `None` when an outage left the window with no probes.
    pub t_hat: Option<f64>,
    /// A-priori loss rate `p̂` from the pre-transfer ping window.
    pub p_hat: Option<f64>,
    /// RTT `T̃` from ping probes sent *during* the transfer, seconds.
    pub t_tilde: Option<f64>,
    /// Loss rate `p̃` from ping probes sent during the transfer.
    pub p_tilde: Option<f64>,
    /// Actual throughput `R` of the large-window (1 MB) transfer, bits/s.
    /// `None` when the transfer failed; present (over the shortened run)
    /// when it was merely truncated.
    pub r_large: Option<f64>,
    /// Actual throughput of the extra window-limited (20 KB) transfer,
    /// when the preset runs one and the epoch is not missing.
    pub r_small: Option<f64>,
    /// Throughput over the first quarter of the transfer (Fig. 11).
    /// `None` when the transfer failed or was truncated (a shortened
    /// run's prefixes are not comparable to full-length ones).
    pub r_prefix_quarter: Option<f64>,
    /// Throughput over the first half of the transfer (Fig. 11).
    pub r_prefix_half: Option<f64>,
    /// Loss events (fast retransmits + timeouts) the target flow itself
    /// saw — the model's "congestion events" (§3.3). Zero when no
    /// transfer ran.
    pub flow_loss_events: u64,
    /// The target flow's per-segment retransmission fraction.
    pub flow_retx_rate: f64,
    /// Mean RTT the target flow itself sampled, seconds.
    pub flow_rtt: f64,
    /// Ground truth: mean spare bottleneck capacity over the pre-transfer
    /// window (capacity × (1 − utilization)), bits/s. Not available to
    /// predictors; used for validation only.
    pub true_avail_bw: f64,
}

/// The plain-`f64` view of a fully-measured epoch — what every figure
/// binary consumes. Field meanings are exactly [`EpochRecord`]'s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompleteEpoch {
    /// Avail-bw estimate `Â`, bits/s.
    pub a_hat: f64,
    /// A-priori RTT `T̂`, seconds.
    pub t_hat: f64,
    /// A-priori loss rate `p̂`.
    pub p_hat: f64,
    /// During-flow RTT `T̃`, seconds.
    pub t_tilde: f64,
    /// During-flow loss rate `p̃`.
    pub p_tilde: f64,
    /// Large-window transfer throughput `R`, bits/s.
    pub r_large: f64,
    /// Window-limited transfer throughput, when the preset ran one.
    pub r_small: Option<f64>,
    /// Throughput over the first quarter of the transfer.
    pub r_prefix_quarter: f64,
    /// Throughput over the first half of the transfer.
    pub r_prefix_half: f64,
    /// The target flow's own loss events.
    pub flow_loss_events: u64,
    /// The target flow's retransmission fraction.
    pub flow_retx_rate: f64,
    /// The target flow's mean RTT, seconds.
    pub flow_rtt: f64,
    /// Ground-truth spare capacity, bits/s.
    pub true_avail_bw: f64,
}

impl EpochRecord {
    /// The plain view, if every scheduled measurement is present — the
    /// paper's own post-processing rule: epochs with failed measurements
    /// are silently discarded. A truncated transfer does not count as
    /// complete (its prefix throughputs are unmeasured).
    pub fn complete(&self) -> Option<CompleteEpoch> {
        Some(CompleteEpoch {
            a_hat: self.a_hat?,
            t_hat: self.t_hat?,
            p_hat: self.p_hat?,
            t_tilde: self.t_tilde?,
            p_tilde: self.p_tilde?,
            r_large: self.r_large?,
            r_small: self.r_small,
            r_prefix_quarter: self.r_prefix_quarter?,
            r_prefix_half: self.r_prefix_half?,
            flow_loss_events: self.flow_loss_events,
            flow_retx_rate: self.flow_retx_rate,
            flow_rtt: self.flow_rtt,
            true_avail_bw: self.true_avail_bw,
        })
    }
}

/// One trace: a consecutive sequence of epochs on one path.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceData {
    /// Epoch records in time order.
    pub records: Vec<EpochRecord>,
}

impl TraceData {
    /// The throughput time series HB predictors forecast (large-window
    /// transfers, bits/s). Epochs whose transfer failed are **skipped**,
    /// not zero-filled: this is the HB degradation rule — a predictor
    /// simply never sees the gap, so it cannot misread one as a level
    /// shift (the paper's authors likewise drop failed epochs from their
    /// RON traces). Use [`TraceData::throughput_series_gappy`] when gap
    /// positions matter.
    pub fn throughput_series(&self) -> Vec<f64> {
        self.records.iter().filter_map(|r| r.r_large).collect()
    }

    /// The large-window series with gaps preserved: one slot per epoch,
    /// `None` where the transfer failed or the epoch is missing. Feed
    /// this to `tputpred_core::metrics::evaluate_gappy` when reported
    /// positions must index the epoch timeline.
    pub fn throughput_series_gappy(&self) -> Vec<Option<f64>> {
        self.records.iter().map(|r| r.r_large).collect()
    }

    /// The window-limited throughput series (gaps skipped), or `None`
    /// when the preset measured none at all.
    pub fn small_window_series(&self) -> Option<Vec<f64>> {
        let series: Vec<f64> = self.records.iter().filter_map(|r| r.r_small).collect();
        (!series.is_empty()).then_some(series)
    }
}

/// All traces of one path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathData {
    /// The path's configuration (capacity, RTT, cross-traffic profile).
    pub config: PathConfig,
    /// The traces, in collection order.
    pub traces: Vec<TraceData>,
}

/// A complete synthetic measurement campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// The preset that generated this dataset.
    pub preset: Preset,
    /// Per-path data, catalog order.
    pub paths: Vec<PathData>,
}

impl Dataset {
    /// Iterates over every epoch record with its `(path, trace)` indices.
    pub fn epochs(&self) -> impl Iterator<Item = (usize, usize, &EpochRecord)> + '_ {
        self.paths.iter().enumerate().flat_map(|(pi, p)| {
            p.traces
                .iter()
                .enumerate()
                .flat_map(move |(ti, t)| t.records.iter().map(move |r| (pi, ti, r)))
        })
    }

    /// Iterates over the fully-measured epochs only, as plain-`f64`
    /// [`CompleteEpoch`] views with their `(path, trace)` indices —
    /// the paper's post-processing rule (degraded epochs are discarded)
    /// packaged for the figure binaries. On fault-free datasets this is
    /// every epoch.
    pub fn complete_epochs(&self) -> impl Iterator<Item = (usize, usize, CompleteEpoch)> + '_ {
        self.epochs()
            .filter_map(|(p, t, r)| r.complete().map(|c| (p, t, c)))
    }

    /// Total epoch count.
    pub fn epoch_count(&self) -> usize {
        self.epochs().count()
    }

    /// Epochs whose status is not [`EpochStatus::Ok`].
    pub fn degraded_count(&self) -> usize {
        self.epochs()
            .filter(|(_, _, r)| r.status != EpochStatus::Ok)
            .count()
    }

    /// Serializes the dataset as JSON to `path`, embedding the current
    /// [`BEHAVIOR_HASH`].
    pub fn save(&self, path: &FsPath) -> io::Result<()> {
        self.save_with_hash(path, BEHAVIOR_HASH)
    }

    /// [`Dataset::save`] with an explicit hash. Exists so tests can
    /// fabricate stale cache files; everything else wants `save`.
    ///
    /// Writes are atomic: the JSON goes to a temp file in the same
    /// directory, then renames into place, so a figure run interrupted
    /// mid-save can never leave a truncated cache behind for the next
    /// run to trip over.
    #[doc(hidden)]
    pub fn save_with_hash(&self, path: &FsPath, behavior_hash: &str) -> io::Result<()> {
        let file = DatasetFile {
            behavior_hash: behavior_hash.to_string(),
            dataset: self.clone(),
        };
        let json = serde_json::to_string(&file).map_err(io::Error::other)?;
        write_atomic(path, &json)
    }

    /// Loads a dataset saved by [`Dataset::save`], regardless of the
    /// behavior hash it was generated under. Use
    /// [`Dataset::load_or_generate`] when staleness matters.
    pub fn load(path: &FsPath) -> io::Result<Self> {
        Ok(Self::load_with_hash(path)?.1)
    }

    /// Loads `(embedded behavior hash, dataset)`.
    fn load_with_hash(path: &FsPath) -> io::Result<(String, Self)> {
        let json = fs::read_to_string(path)?;
        let file: DatasetFile = serde_json::from_str(&json).map_err(io::Error::other)?;
        Ok((file.behavior_hash, file.dataset))
    }

    /// Loads the dataset at `path` if it is present *and* was generated
    /// by the same simulation code as this binary (matching behavior
    /// hash); otherwise generates it with `generate` and saves it
    /// there. Missing files, caches from a different source tree, and
    /// unparseable files (e.g. the pre-hash format) all regenerate —
    /// the cache can be wrong only by being slow, never by being stale.
    pub fn load_or_generate<F: FnOnce() -> Dataset>(
        path: &FsPath,
        generate: F,
    ) -> io::Result<Self> {
        // A crash between the atomic save's write and rename leaks a
        // `.{name}.tmp.{pid}` file; load is the natural sweep point.
        if let Some(dir) = path.parent() {
            sweep_stale_temps(dir);
        }
        match Self::load_with_hash(path) {
            Ok((hash, ds)) if hash == BEHAVIOR_HASH => return Ok(ds),
            Ok((hash, _)) => {
                eprintln!(
                    "dataset {}: behavior hash {} != current {}; simulation code \
                     changed — regenerating",
                    path.display(),
                    hash,
                    BEHAVIOR_HASH
                );
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => {
                eprintln!(
                    "dataset {}: unreadable cache ({e}); regenerating",
                    path.display()
                );
            }
        }
        let ds = generate();
        ds.save(path)?;
        Ok(ds)
    }

    /// Shard-aware cache: loads `data/<preset>/path-<id>.json` shards,
    /// regenerates only the stale, missing, or corrupt ones through
    /// `regenerate`, and merges everything in catalog order. A shard is
    /// reused only when its embedded [`BEHAVIOR_HASH`] matches this
    /// binary *and* its config fingerprint matches
    /// [`shard_fingerprint`] of the current (preset, path config) —
    /// so simulation-code edits invalidate every shard (the behavior
    /// hash covers the whole source tree) while preset or catalog
    /// changes and cache damage invalidate only the affected shards.
    ///
    /// `regenerate` receives the catalog indices of the shards to
    /// rebuild (ascending) and must return one [`PathData`] per index,
    /// in that order. The merged dataset is bit-identical to a
    /// from-scratch generation; `crates/testbed/tests/shard_pin.rs`
    /// pins this.
    ///
    /// Housekeeping on every load: orphaned atomic-write temp files are
    /// swept, shards beyond the catalog (a shrunk preset) are removed,
    /// the manifest is rewritten when out of date, and a legacy
    /// monolithic `<dir>.json` cache — fully superseded, never trusted
    /// — is deleted once the sharded cache is in place.
    pub fn load_or_generate_sharded<F>(
        dir: &FsPath,
        preset: &Preset,
        catalog: &[PathConfig],
        regenerate: F,
    ) -> io::Result<(Self, ShardStats)>
    where
        F: FnOnce(&[usize]) -> Vec<PathData>,
    {
        fs::create_dir_all(dir)?;
        sweep_stale_temps(dir);
        remove_orphan_shards(dir, catalog.len());

        let mut stats = ShardStats::default();
        let mut slots: Vec<Option<PathData>> = Vec::with_capacity(catalog.len());
        for (id, config) in catalog.iter().enumerate() {
            let shard_path = dir.join(shard_file_name(id));
            let expected = shard_fingerprint(preset, config);
            match load_shard(&shard_path) {
                Ok(shard) if shard_trusted(&shard, &expected) => {
                    stats.hits += 1;
                    slots.push(Some(shard.path));
                }
                Ok(_) => {
                    // Present but generated by different simulation
                    // code or a different (preset, config).
                    stats.stale += 1;
                    slots.push(None);
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    stats.missing += 1;
                    slots.push(None);
                }
                Err(_) => {
                    // Unparseable or truncated: same as stale.
                    stats.stale += 1;
                    slots.push(None);
                }
            }
        }

        let stale_ids: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter_map(|(id, s)| s.is_none().then_some(id))
            .collect();
        if !stale_ids.is_empty() {
            eprintln!(
                "# dataset '{}': {} shard(s) reused, regenerating {} \
                 ({} missing, {} stale) -> {}",
                preset.name,
                stats.hits,
                stale_ids.len(),
                stats.missing,
                stats.stale,
                dir.display()
            );
            let fresh = regenerate(&stale_ids);
            if fresh.len() != stale_ids.len() {
                return Err(io::Error::other(format!(
                    "shard regeneration returned {} paths for {} stale shards",
                    fresh.len(),
                    stale_ids.len()
                )));
            }
            for (&id, data) in stale_ids.iter().zip(fresh) {
                save_shard(dir, id, preset, &data)?;
                slots[id] = Some(data);
            }
        }
        write_manifest_if_changed(dir, preset, catalog)?;

        let paths: Vec<PathData> = slots.into_iter().flatten().collect();
        if paths.len() != catalog.len() {
            return Err(io::Error::other(
                "sharded load assembled fewer paths than the catalog",
            ));
        }

        remove_legacy_monolith(dir, preset);

        Ok((
            Dataset {
                preset: preset.clone(),
                paths,
            },
            stats,
        ))
    }

    /// Streaming counterpart of [`Dataset::load_or_generate_sharded`]:
    /// the same classify → regenerate → reuse cycle, but no merged
    /// `Dataset` is ever materialized — `visit` sees each path's data
    /// in catalog order and the payload is dropped before the next one
    /// loads, so a 10 000-path preset costs O(one path) resident memory
    /// (DESIGN.md §15).
    ///
    /// `regenerate_one` rebuilds a single untrusted path; the stale set
    /// fans out across [`rayon::current_num_threads`] workers, each
    /// worker writing its shard to disk the moment it finishes (shards
    /// are independent files, so parallel atomic writes cannot
    /// collide). Because every path is a pure function of (preset,
    /// config), the shard bytes are identical no matter how many
    /// workers ran — `shard_pin.rs` pins multi-worker against
    /// single-worker output.
    ///
    /// Trusted shards are parsed twice (once to classify, once to
    /// visit): the price of not holding n payloads, and far cheaper
    /// than regenerating. Housekeeping matches the batch API: temp
    /// sweep, orphan removal, manifest refresh, legacy-monolith
    /// removal.
    pub fn for_each_path_sharded<G, V>(
        dir: &FsPath,
        preset: &Preset,
        catalog: &[PathConfig],
        regenerate_one: G,
        mut visit: V,
    ) -> io::Result<ShardStats>
    where
        G: Fn(usize) -> PathData + Sync,
        V: FnMut(usize, &PathData) -> io::Result<()>,
    {
        fs::create_dir_all(dir)?;
        sweep_stale_temps(dir);
        remove_orphan_shards(dir, catalog.len());

        let mut stats = ShardStats::default();
        let mut stale_ids: Vec<usize> = Vec::new();
        for (id, config) in catalog.iter().enumerate() {
            let expected = shard_fingerprint(preset, config);
            match load_shard(&dir.join(shard_file_name(id))) {
                Ok(shard) if shard_trusted(&shard, &expected) => stats.hits += 1,
                Ok(_) => {
                    stats.stale += 1;
                    stale_ids.push(id);
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    stats.missing += 1;
                    stale_ids.push(id);
                }
                Err(_) => {
                    stats.stale += 1;
                    stale_ids.push(id);
                }
            }
        }

        if !stale_ids.is_empty() {
            eprintln!(
                "# dataset '{}': {} shard(s) reused, regenerating {} \
                 ({} missing, {} stale) -> {}",
                preset.name,
                stats.hits,
                stale_ids.len(),
                stats.missing,
                stats.stale,
                dir.display()
            );
            // The whole parallel phase sits inside one generate-wall
            // scope with the worker count on a gauge, so a profiled run
            // can report parallel speedup (DESIGN.md §11) — telemetry
            // is observation-only, the regenerated bytes are identical
            // with it on or off.
            obs::gauge_set("testbed.workers", rayon::current_num_threads() as f64);
            obs::add(
                "testbed.traces",
                (stale_ids.len() * preset.traces_per_path) as u64,
            );
            let mut gen_scope = obs::time_scope("testbed.generate_wall");
            let outcomes: Vec<io::Result<()>> = stale_ids
                .par_iter()
                .map(|&id| save_shard(dir, id, preset, &regenerate_one(id)))
                .collect();
            gen_scope.stop();
            outcomes.into_iter().collect::<io::Result<()>>()?;
        }
        write_manifest_if_changed(dir, preset, catalog)?;
        remove_legacy_monolith(dir, preset);

        for id in 0..catalog.len() {
            let shard = load_shard(&dir.join(shard_file_name(id)))?;
            visit(id, &shard.path)?;
        }
        Ok(stats)
    }
}

// --- Sharded per-path persistence (DESIGN.md §9) ------------------------

/// File name of the shard manifest inside a shard directory.
pub const SHARD_MANIFEST: &str = "manifest.json";

/// File name of the shard holding catalog path `id`.
pub fn shard_file_name(id: usize) -> String {
    format!("path-{id}.json")
}

/// Per-shard outcome counts of one [`Dataset::load_or_generate_sharded`]
/// call: how much of the cache was reusable and why the rest was not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ShardStats {
    /// Shards loaded from disk (behavior hash and fingerprint matched).
    pub hits: usize,
    /// Shards with no file on disk.
    pub missing: usize,
    /// Shards present but untrusted: behavior-hash or fingerprint
    /// mismatch, or unparseable JSON.
    pub stale: usize,
}

impl ShardStats {
    /// Shards that had to be regenerated (`missing + stale`).
    pub fn regenerated(&self) -> usize {
        self.missing + self.stale
    }

    /// Total shards considered (`hits + regenerated`).
    pub fn total(&self) -> usize {
        self.hits + self.regenerated()
    }
}

/// The on-disk envelope of one shard: one path's data plus everything
/// needed to decide whether this binary can trust it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ShardFile {
    /// [`BEHAVIOR_HASH`] at generation time.
    behavior_hash: String,
    /// [`shard_fingerprint`] of the (preset, path config) that
    /// generated this shard.
    config_fingerprint: String,
    /// The payload.
    path: PathData,
}

/// One manifest line: which shard file covers which catalog path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ManifestEntry {
    /// Catalog index.
    id: usize,
    /// Shard file name ([`shard_file_name`]).
    file: String,
    /// Expected [`shard_fingerprint`] of the shard.
    config_fingerprint: String,
}

/// `manifest.json`: a human-readable index of the shard directory.
/// Validity is decided per shard (each shard self-describes); the
/// manifest records what the directory *should* contain so a partially
/// written or hand-edited cache is easy to diagnose.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Manifest {
    /// [`BEHAVIOR_HASH`] at the last (re)generation.
    behavior_hash: String,
    /// The preset the shards belong to.
    preset: Preset,
    /// One entry per catalog path, in catalog order.
    shards: Vec<ManifestEntry>,
}

/// FNV-1a, 64-bit — same digest family as the behavior hash.
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of everything *besides* simulation code that decides a
/// shard's contents: the full preset (epoch counts, durations, fault
/// rates, seed) and the path's own configuration. Hashed over the
/// serialized JSON of both, so any field change — however small —
/// invalidates exactly the shards it affects.
pub fn shard_fingerprint(preset: &Preset, config: &PathConfig) -> String {
    let preset_json = serde_json::to_string(preset).unwrap_or_default();
    let config_json = serde_json::to_string(config).unwrap_or_default();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    h = fnv1a(h, preset_json.as_bytes());
    h = fnv1a(h, &[0]);
    h = fnv1a(h, config_json.as_bytes());
    h = fnv1a(h, &[0]);
    format!("{h:016x}")
}

/// Whether a shard on disk can be reused by this binary: its embedded
/// behavior hash must match the compiled-in [`BEHAVIOR_HASH`] and its
/// config fingerprint must match the expected
/// [`shard_fingerprint`] of the current (preset, path config).
fn shard_trusted(shard: &ShardFile, expected_fingerprint: &str) -> bool {
    shard.behavior_hash == BEHAVIOR_HASH && shard.config_fingerprint == expected_fingerprint
}

/// Loads one shard envelope.
fn load_shard(path: &FsPath) -> io::Result<ShardFile> {
    let json = fs::read_to_string(path)?;
    serde_json::from_str(&json).map_err(io::Error::other)
}

/// Removes a monolithic `<dir>.json` cache predating the shard format.
/// It is treated as fully stale — its contents are never consulted —
/// and dropped once the sharded cache is in place.
fn remove_legacy_monolith(dir: &FsPath, preset: &Preset) {
    let legacy = dir.with_extension("json");
    if legacy.is_file() {
        eprintln!(
            "# dataset '{}': removing legacy monolithic cache {}",
            preset.name,
            legacy.display()
        );
        let _ = fs::remove_file(&legacy);
    }
}

/// Saves one shard atomically, embedding the current behavior hash and
/// the (preset, config) fingerprint.
fn save_shard(dir: &FsPath, id: usize, preset: &Preset, data: &PathData) -> io::Result<()> {
    let shard = ShardFile {
        behavior_hash: BEHAVIOR_HASH.to_string(),
        config_fingerprint: shard_fingerprint(preset, &data.config),
        path: data.clone(),
    };
    let json = serde_json::to_string(&shard).map_err(io::Error::other)?;
    write_atomic(&dir.join(shard_file_name(id)), &json)
}

/// Rewrites `manifest.json` when its expected content differs from
/// what is on disk (first generation, behavior-hash change, catalog
/// change, or a deleted/hand-edited manifest).
fn write_manifest_if_changed(
    dir: &FsPath,
    preset: &Preset,
    catalog: &[PathConfig],
) -> io::Result<()> {
    let manifest = Manifest {
        behavior_hash: BEHAVIOR_HASH.to_string(),
        preset: preset.clone(),
        shards: catalog
            .iter()
            .enumerate()
            .map(|(id, config)| ManifestEntry {
                id,
                file: shard_file_name(id),
                config_fingerprint: shard_fingerprint(preset, config),
            })
            .collect(),
    };
    let json = serde_json::to_string(&manifest).map_err(io::Error::other)?;
    let path = dir.join(SHARD_MANIFEST);
    if fs::read_to_string(&path).is_ok_and(|on_disk| on_disk == json) {
        return Ok(());
    }
    write_atomic(&path, &json)
}

/// Removes `path-<id>.json` shards beyond the catalog — left behind
/// when a preset shrinks its path count. Best-effort.
///
/// A file is a shard if and only if its name is the *canonical*
/// [`shard_file_name`] of its parsed id: `usize::from_str` alone also
/// accepts zero-padded (`path-007.json`) and signed (`path-+5.json`)
/// spellings that no load will ever consult — under a lenient parse
/// those mis-classify as live ids and survive every sweep (or, worse, a
/// padded spelling of an id beyond the catalog survives a shrink across
/// a digit boundary, e.g. 10000 → 9999). Anything matching the
/// `path-*.json` pattern without round-tripping is unreadable junk in a
/// directory this module owns, and is removed with the orphans.
fn remove_orphan_shards(dir: &FsPath, path_count: usize) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(Result::ok) {
        let name = entry.file_name().to_string_lossy().into_owned();
        let live = name
            .strip_prefix("path-")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|digits| digits.parse::<usize>().ok())
            .filter(|&id| shard_file_name(id) == name)
            .is_some_and(|id| id < path_count);
        if !live && name.starts_with("path-") && name.ends_with(".json") {
            let _ = fs::remove_file(entry.path());
        }
    }
}

/// Writes `json` to `path` atomically: a temp file in the destination
/// directory, then rename, so an interrupted save can never leave a
/// truncated cache behind. The temp name embeds the process id so
/// concurrent generators each write their own temp file; last rename
/// wins, and both outcomes are complete files with identical content
/// (generation is deterministic).
fn write_atomic(path: &FsPath, json: &str) -> io::Result<()> {
    let dir = path.parent().unwrap_or(FsPath::new("."));
    fs::create_dir_all(dir)?;
    let file_name = path.file_name().unwrap_or_default().to_string_lossy();
    let tmp = dir.join(format!(".{}.tmp.{}", file_name, std::process::id()));
    fs::write(&tmp, json)?;
    match fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Sweeps orphaned atomic-write temp files (`.{name}.tmp.{pid}`) left
/// behind by a crash between [`write_atomic`]'s write and rename. Only
/// temps **no newer than the cache file they shadow** are removed: a
/// concurrent writer's in-flight temp is strictly newer than the cache
/// it is about to replace, while a crash leftover is older than the
/// cache some later save renamed into place. A leftover with no cache
/// file at all is kept for now — the shard it shadows is about to
/// regenerate, after which the next load sweeps it. Best-effort: IO
/// errors leave the temp for the next load.
fn sweep_stale_temps(dir: &FsPath) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(Result::ok) {
        let name = entry.file_name().to_string_lossy().into_owned();
        let Some(target) = temp_target_name(&name) else {
            continue;
        };
        let temp_path = entry.path();
        let target_mtime = fs::metadata(dir.join(target)).and_then(|m| m.modified());
        let temp_mtime = fs::metadata(&temp_path).and_then(|m| m.modified());
        if let (Ok(temp_m), Ok(target_m)) = (temp_mtime, target_mtime) {
            if temp_m <= target_m {
                let _ = fs::remove_file(&temp_path);
            }
        }
    }
}

/// Parses an atomic-write temp file name: `.{name}.tmp.{pid}` yields
/// `Some(name)`, anything else `None`.
fn temp_target_name(file_name: &str) -> Option<&str> {
    let rest = file_name.strip_prefix('.')?;
    let (target, pid) = rest.rsplit_once(".tmp.")?;
    (!target.is_empty() && !pid.is_empty() && pid.bytes().all(|b| b.is_ascii_digit()))
        .then_some(target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::catalog_2004;

    fn record(r: f64) -> EpochRecord {
        EpochRecord {
            status: EpochStatus::Ok,
            faults: EpochFaults::default(),
            a_hat: Some(5e6),
            t_hat: Some(0.05),
            p_hat: Some(0.0),
            t_tilde: Some(0.06),
            p_tilde: Some(0.01),
            r_large: Some(r),
            r_small: Some(r / 4.0),
            r_prefix_quarter: Some(r * 0.8),
            r_prefix_half: Some(r * 0.9),
            flow_loss_events: 2,
            flow_retx_rate: 0.01,
            flow_rtt: 0.055,
            true_avail_bw: 5.5e6,
        }
    }

    fn missing_record() -> EpochRecord {
        EpochRecord {
            status: EpochStatus::Missing,
            faults: EpochFaults {
                node_down: true,
                ..EpochFaults::default()
            },
            a_hat: None,
            t_hat: None,
            p_hat: None,
            t_tilde: None,
            p_tilde: None,
            r_large: None,
            r_small: None,
            r_prefix_quarter: None,
            r_prefix_half: None,
            flow_loss_events: 0,
            flow_retx_rate: 0.0,
            flow_rtt: 0.0,
            true_avail_bw: 5.5e6,
        }
    }

    fn dataset() -> Dataset {
        let config = catalog_2004(3, 1).remove(0);
        Dataset {
            preset: Preset::tiny(),
            paths: vec![PathData {
                config,
                traces: vec![
                    TraceData {
                        records: vec![record(1e6), record(2e6)],
                    },
                    TraceData {
                        records: vec![record(3e6)],
                    },
                ],
            }],
        }
    }

    #[test]
    fn epochs_iterates_in_order_with_indices() {
        let ds = dataset();
        let idx: Vec<(usize, usize, Option<f64>)> =
            ds.epochs().map(|(p, t, r)| (p, t, r.r_large)).collect();
        assert_eq!(
            idx,
            vec![(0, 0, Some(1e6)), (0, 0, Some(2e6)), (0, 1, Some(3e6))]
        );
        assert_eq!(ds.epoch_count(), 3);
        assert_eq!(ds.degraded_count(), 0);
    }

    #[test]
    fn throughput_series_extracts_large_window_runs() {
        let ds = dataset();
        assert_eq!(ds.paths[0].traces[0].throughput_series(), vec![1e6, 2e6]);
        assert_eq!(
            ds.paths[0].traces[0].small_window_series(),
            Some(vec![0.25e6, 0.5e6])
        );
    }

    #[test]
    fn gappy_series_keeps_positions_dense_series_skips() {
        let trace = TraceData {
            records: vec![record(1e6), missing_record(), record(3e6)],
        };
        assert_eq!(trace.throughput_series(), vec![1e6, 3e6]);
        assert_eq!(
            trace.throughput_series_gappy(),
            vec![Some(1e6), None, Some(3e6)]
        );
        assert_eq!(trace.small_window_series(), Some(vec![0.25e6, 0.75e6]));
    }

    #[test]
    fn complete_epochs_discards_degraded_records() {
        let mut ds = dataset();
        ds.paths[0].traces[0].records.push(missing_record());
        let mut degraded = record(4e6);
        degraded.status = EpochStatus::Degraded;
        degraded.faults.pathload_failed = true;
        degraded.a_hat = None;
        ds.paths[0].traces[1].records.push(degraded);
        assert_eq!(ds.epoch_count(), 5);
        assert_eq!(ds.degraded_count(), 2);
        let complete: Vec<f64> = ds.complete_epochs().map(|(_, _, c)| c.r_large).collect();
        assert_eq!(complete, vec![1e6, 2e6, 3e6]);
    }

    #[test]
    fn complete_view_mirrors_the_record_fields() {
        let r = record(2e6);
        let c = r.complete().unwrap();
        assert_eq!(Some(c.a_hat), r.a_hat);
        assert_eq!(Some(c.t_hat), r.t_hat);
        assert_eq!(Some(c.r_large), r.r_large);
        assert_eq!(c.r_small, r.r_small);
        assert_eq!(c.flow_loss_events, r.flow_loss_events);
        assert_eq!(missing_record().complete(), None);
    }

    #[test]
    fn fault_flags_imply_status() {
        assert_eq!(EpochFaults::default().status(), EpochStatus::Ok);
        let outage = EpochFaults {
            ping_outage: true,
            ..EpochFaults::default()
        };
        assert_eq!(outage.status(), EpochStatus::Degraded);
        let down = EpochFaults {
            node_down: true,
            transfer_failed: true,
            ..EpochFaults::default()
        };
        assert_eq!(down.status(), EpochStatus::Missing);
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join("tputpred-test-data");
        let file = dir.join("ds.json");
        let ds = dataset();
        ds.save(&file).unwrap();
        let loaded = Dataset::load(&file).unwrap();
        assert_eq!(ds, loaded);
        std::fs::remove_file(&file).unwrap();
    }

    #[test]
    fn load_or_generate_generates_once() {
        let dir = std::env::temp_dir().join("tputpred-test-data2");
        let file = dir.join(format!("ds-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&file);
        let mut calls = 0;
        let ds = Dataset::load_or_generate(&file, || {
            calls += 1;
            dataset()
        })
        .unwrap();
        assert_eq!(calls, 1);
        let again = Dataset::load_or_generate(&file, || panic!("cached")).unwrap();
        assert_eq!(ds, again);
        std::fs::remove_file(&file).unwrap();
    }

    #[test]
    fn stale_behavior_hash_triggers_regeneration() {
        let dir = std::env::temp_dir().join("tputpred-test-data3");
        let file = dir.join(format!("ds-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&file);
        // A cache written by "different simulation code": same payload,
        // different hash.
        dataset().save_with_hash(&file, "0123456789abcdef").unwrap();
        let mut calls = 0;
        let ds = Dataset::load_or_generate(&file, || {
            calls += 1;
            dataset()
        })
        .unwrap();
        assert_eq!(calls, 1, "stale cache must regenerate");
        // The rewritten cache carries the current hash: hit next time.
        let again = Dataset::load_or_generate(&file, || panic!("cached")).unwrap();
        assert_eq!(ds, again);
        std::fs::remove_file(&file).unwrap();
    }

    #[test]
    fn unparseable_cache_triggers_regeneration() {
        let dir = std::env::temp_dir().join("tputpred-test-data4");
        let file = dir.join(format!("ds-{}.json", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // The pre-hash format: a bare Dataset with no envelope.
        std::fs::write(&file, "{\"preset\": {}, \"paths\": []}").unwrap();
        let mut calls = 0;
        Dataset::load_or_generate(&file, || {
            calls += 1;
            dataset()
        })
        .unwrap();
        assert_eq!(calls, 1, "legacy cache must regenerate");
        std::fs::remove_file(&file).unwrap();
    }

    #[test]
    fn truncated_cache_triggers_regeneration() {
        // A cache cut off mid-write (the pre-atomic-save hazard): the
        // loader must treat it as stale, not return an error.
        let dir = std::env::temp_dir().join("tputpred-test-data5");
        let file = dir.join(format!("ds-{}.json", std::process::id()));
        let valid_file = dir.join(format!("full-{}.json", std::process::id()));
        dataset().save(&valid_file).unwrap();
        let full = std::fs::read_to_string(&valid_file).unwrap();
        std::fs::write(&file, &full[..full.len() / 2]).unwrap();
        let mut calls = 0;
        let ds = Dataset::load_or_generate(&file, || {
            calls += 1;
            dataset()
        })
        .unwrap();
        assert_eq!(calls, 1, "truncated cache must regenerate");
        assert_eq!(ds, dataset());
        std::fs::remove_file(&file).unwrap();
        std::fs::remove_file(&valid_file).unwrap();
    }

    #[test]
    fn save_leaves_no_temp_files_behind() {
        let dir = std::env::temp_dir().join(format!("tputpred-test-data6-{}", std::process::id()));
        let file = dir.join("ds.json");
        dataset().save(&file).unwrap();
        let entries: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(entries, vec!["ds.json"], "only the renamed cache remains");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn behavior_hash_is_a_hex_digest() {
        assert_eq!(BEHAVIOR_HASH.len(), 16);
        assert!(BEHAVIOR_HASH.bytes().all(|b| b.is_ascii_hexdigit()));
    }

    /// A unique scratch directory per test (tests share one process, so
    /// the pid alone does not discriminate).
    fn scratch(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("tputpred-{}-{}", tag, std::process::id()))
    }

    #[test]
    fn stale_temp_file_is_swept_on_load() {
        let dir = scratch("temp-sweep");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("ds.json");
        // Plant the crash leftover *before* the cache exists, then save:
        // the temp's mtime is <= the cache's, exactly the state a crash
        // between write and rename leaves after a later successful save.
        let temp = dir.join(format!(".ds.json.tmp.{}", std::process::id() + 1));
        std::fs::write(&temp, "{\"partial\":").unwrap();
        dataset().save(&file).unwrap();
        assert!(temp.is_file(), "precondition: leftover planted");
        let loaded = Dataset::load_or_generate(&file, || panic!("cached")).unwrap();
        assert_eq!(loaded, dataset());
        assert!(!temp.exists(), "stale temp must be swept on load");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn temp_newer_than_cache_survives_the_sweep() {
        let dir = scratch("temp-keep");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("ds.json");
        dataset().save(&file).unwrap();
        // Rewind the cache's mtime so the temp planted next is strictly
        // newer — the signature of a concurrent writer's in-flight file.
        let old = std::fs::FileTimes::new()
            .set_modified(std::time::UNIX_EPOCH + std::time::Duration::from_secs(1));
        std::fs::File::options()
            .append(true)
            .open(&file)
            .unwrap()
            .set_times(old)
            .unwrap();
        let temp = dir.join(format!(".ds.json.tmp.{}", std::process::id() + 1));
        std::fs::write(&temp, "{\"in-flight\":").unwrap();
        let _ = Dataset::load_or_generate(&file, || panic!("cached")).unwrap();
        assert!(temp.is_file(), "an in-flight temp must not be swept");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn temp_target_name_parses_only_atomic_temp_names() {
        assert_eq!(temp_target_name(".ds.json.tmp.1234"), Some("ds.json"));
        assert_eq!(temp_target_name(".path-3.json.tmp.9"), Some("path-3.json"));
        // Name with an interior `.tmp.`: the *last* one is the marker.
        assert_eq!(temp_target_name(".a.tmp.b.tmp.77"), Some("a.tmp.b"));
        assert_eq!(temp_target_name("ds.json"), None, "no leading dot");
        assert_eq!(
            temp_target_name(".ds.json.tmp.12x"),
            None,
            "pid not numeric"
        );
        assert_eq!(temp_target_name(".ds.json.tmp."), None, "empty pid");
        assert_eq!(temp_target_name(".tmp.123"), None, "empty target");
        assert_eq!(temp_target_name(".hidden-file"), None);
    }

    fn shard_catalog() -> Vec<PathConfig> {
        catalog_2004(3, 1)
    }

    fn path_data(config: &PathConfig, r: f64) -> PathData {
        PathData {
            config: config.clone(),
            traces: vec![TraceData {
                records: vec![record(r)],
            }],
        }
    }

    /// The canonical fake regeneration: path `i` gets throughput
    /// `(i+1) MHz` so shards are distinguishable.
    fn regen(catalog: &[PathConfig]) -> impl FnOnce(&[usize]) -> Vec<PathData> + '_ {
        |ids| {
            ids.iter()
                .map(|&i| path_data(&catalog[i], (i as f64 + 1.0) * 1e6))
                .collect()
        }
    }

    #[test]
    fn sharded_cold_load_generates_then_warm_load_hits() {
        let dir = scratch("shard-cold");
        let _ = std::fs::remove_dir_all(&dir);
        let preset = Preset::tiny();
        let catalog = shard_catalog();
        let (ds, stats) =
            Dataset::load_or_generate_sharded(&dir, &preset, &catalog, regen(&catalog)).unwrap();
        assert_eq!(
            stats,
            ShardStats {
                hits: 0,
                missing: 3,
                stale: 0
            }
        );
        assert_eq!(stats.regenerated(), 3);
        assert_eq!(ds.paths.len(), 3);
        for id in 0..3 {
            assert!(dir.join(shard_file_name(id)).is_file());
        }
        assert!(dir.join(SHARD_MANIFEST).is_file());
        let (warm, warm_stats) =
            Dataset::load_or_generate_sharded(&dir, &preset, &catalog, |_| panic!("cached"))
                .unwrap();
        assert_eq!(
            warm_stats,
            ShardStats {
                hits: 3,
                missing: 0,
                stale: 0
            }
        );
        assert_eq!(ds, warm, "warm load reassembles the identical dataset");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_shard_regenerates_only_itself() {
        let dir = scratch("shard-corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let preset = Preset::tiny();
        let catalog = shard_catalog();
        Dataset::load_or_generate_sharded(&dir, &preset, &catalog, regen(&catalog)).unwrap();
        std::fs::write(dir.join(shard_file_name(1)), "{\"trunc").unwrap();
        let mut asked = Vec::new();
        let (ds, stats) = Dataset::load_or_generate_sharded(&dir, &preset, &catalog, |ids| {
            asked = ids.to_vec();
            ids.iter()
                .map(|&i| path_data(&catalog[i], (i as f64 + 1.0) * 1e6))
                .collect()
        })
        .unwrap();
        assert_eq!(asked, vec![1], "only the damaged shard regenerates");
        assert_eq!(
            stats,
            ShardStats {
                hits: 2,
                missing: 0,
                stale: 1
            }
        );
        assert_eq!(ds.paths.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn deleted_shard_counts_missing_and_regenerates() {
        let dir = scratch("shard-missing");
        let _ = std::fs::remove_dir_all(&dir);
        let preset = Preset::tiny();
        let catalog = shard_catalog();
        Dataset::load_or_generate_sharded(&dir, &preset, &catalog, regen(&catalog)).unwrap();
        std::fs::remove_file(dir.join(shard_file_name(2))).unwrap();
        let (_, stats) =
            Dataset::load_or_generate_sharded(&dir, &preset, &catalog, regen(&catalog)).unwrap();
        assert_eq!(
            stats,
            ShardStats {
                hits: 2,
                missing: 1,
                stale: 0
            }
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn config_change_invalidates_only_that_shard() {
        let dir = scratch("shard-config");
        let _ = std::fs::remove_dir_all(&dir);
        let preset = Preset::tiny();
        let mut catalog = shard_catalog();
        Dataset::load_or_generate_sharded(&dir, &preset, &catalog, regen(&catalog)).unwrap();
        catalog[2].capacity_bps *= 2.0;
        let mut asked = Vec::new();
        let (_, stats) = Dataset::load_or_generate_sharded(&dir, &preset, &catalog, |ids| {
            asked = ids.to_vec();
            ids.iter()
                .map(|&i| path_data(&catalog[i], (i as f64 + 1.0) * 1e6))
                .collect()
        })
        .unwrap();
        assert_eq!(asked, vec![2]);
        assert_eq!(
            stats,
            ShardStats {
                hits: 2,
                missing: 0,
                stale: 1
            }
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn preset_change_invalidates_every_shard() {
        let dir = scratch("shard-preset");
        let _ = std::fs::remove_dir_all(&dir);
        let catalog = shard_catalog();
        Dataset::load_or_generate_sharded(&dir, &Preset::tiny(), &catalog, regen(&catalog))
            .unwrap();
        let changed = Preset {
            seed: Preset::tiny().seed + 1,
            ..Preset::tiny()
        };
        let (_, stats) =
            Dataset::load_or_generate_sharded(&dir, &changed, &catalog, regen(&catalog)).unwrap();
        assert_eq!(
            stats,
            ShardStats {
                hits: 0,
                missing: 0,
                stale: 3
            }
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn orphan_shards_beyond_the_catalog_are_removed() {
        let dir = scratch("shard-orphan");
        let _ = std::fs::remove_dir_all(&dir);
        let preset = Preset::tiny();
        let catalog = shard_catalog();
        Dataset::load_or_generate_sharded(&dir, &preset, &catalog, regen(&catalog)).unwrap();
        let orphan = dir.join(shard_file_name(7));
        std::fs::write(&orphan, "{}").unwrap();
        Dataset::load_or_generate_sharded(&dir, &preset, &catalog, |_| panic!("cached")).unwrap();
        assert!(!orphan.exists(), "shards past the catalog must be removed");
        assert!(dir.join(shard_file_name(2)).is_file(), "live shards stay");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_monolithic_cache_is_removed_after_sharded_load() {
        let base = scratch("shard-legacy");
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        let dir = base.join("tiny");
        let legacy = base.join("tiny.json");
        dataset().save(&legacy).unwrap();
        let catalog = shard_catalog();
        let (ds, stats) =
            Dataset::load_or_generate_sharded(&dir, &Preset::tiny(), &catalog, regen(&catalog))
                .unwrap();
        assert_eq!(stats.regenerated(), 3, "legacy cache is never consulted");
        assert_eq!(ds.paths.len(), 3);
        assert!(!legacy.exists(), "superseded monolith must be removed");
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn shard_fingerprint_separates_presets_and_configs() {
        let catalog = shard_catalog();
        let tiny = Preset::tiny();
        let quick = Preset::quick();
        let fp = shard_fingerprint(&tiny, &catalog[0]);
        assert_eq!(fp.len(), 16);
        assert!(fp.bytes().all(|b| b.is_ascii_hexdigit()));
        assert_eq!(fp, shard_fingerprint(&tiny, &catalog[0]), "deterministic");
        assert_ne!(fp, shard_fingerprint(&tiny, &catalog[1]));
        assert_ne!(fp, shard_fingerprint(&quick, &catalog[0]));
    }

    #[test]
    fn orphan_sweep_is_exact_at_a_digit_boundary() {
        // The 10000 → 9999 shrink: the last live id (9999) and the first
        // orphan (10000) differ in digit count; a sweep keyed on parsed
        // ids must keep one and remove the other, in both directions.
        let dir = scratch("orphan-boundary");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(shard_file_name(9999)), "{}").unwrap();
        std::fs::write(dir.join(shard_file_name(10000)), "{}").unwrap();
        remove_orphan_shards(&dir, 10000);
        assert!(
            dir.join(shard_file_name(9999)).is_file(),
            "id 9999 is live at path_count 10000"
        );
        assert!(
            !dir.join(shard_file_name(10000)).exists(),
            "id 10000 is an orphan at path_count 10000"
        );
        remove_orphan_shards(&dir, 9999);
        assert!(
            !dir.join(shard_file_name(9999)).exists(),
            "id 9999 is an orphan once the catalog shrinks to 9999"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn orphan_sweep_removes_non_canonical_shard_names() {
        // `parse::<usize>` alone accepts zero-padded and signed
        // spellings that no load ever consults — under the old lenient
        // sweep, `path-007.json` parsed to a live id and survived
        // forever. Only the canonical `shard_file_name` round trip names
        // a shard; everything else matching `path-*.json` is junk.
        let dir = scratch("orphan-canonical");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for junk in ["path-007.json", "path-+5.json", "path-abc.json"] {
            std::fs::write(dir.join(junk), "{}").unwrap();
        }
        std::fs::write(dir.join(shard_file_name(1)), "{}").unwrap();
        std::fs::write(dir.join(SHARD_MANIFEST), "{}").unwrap();
        let temp = dir.join(".path-1.json.tmp.99");
        std::fs::write(&temp, "{").unwrap();
        remove_orphan_shards(&dir, 3);
        for junk in ["path-007.json", "path-+5.json", "path-abc.json"] {
            assert!(!dir.join(junk).exists(), "{junk} must be swept");
        }
        assert!(dir.join(shard_file_name(1)).is_file(), "canonical stays");
        assert!(dir.join(SHARD_MANIFEST).is_file(), "manifest untouched");
        assert!(temp.is_file(), "atomic temps belong to the temp sweep");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn streaming_visit_matches_the_batch_load_bit_for_bit() {
        let dir_stream = scratch("stream-cold");
        let dir_batch = scratch("stream-batch");
        let _ = std::fs::remove_dir_all(&dir_stream);
        let _ = std::fs::remove_dir_all(&dir_batch);
        let preset = Preset::tiny();
        let catalog = shard_catalog();

        let mut visited: Vec<(usize, PathData)> = Vec::new();
        let stats = Dataset::for_each_path_sharded(
            &dir_stream,
            &preset,
            &catalog,
            |id| path_data(&catalog[id], (id as f64 + 1.0) * 1e6),
            |id, p| {
                visited.push((id, p.clone()));
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(
            stats,
            ShardStats {
                hits: 0,
                missing: 3,
                stale: 0
            }
        );
        assert_eq!(
            visited.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![0, 1, 2],
            "visits arrive in catalog order"
        );

        let (batch, _) =
            Dataset::load_or_generate_sharded(&dir_batch, &preset, &catalog, regen(&catalog))
                .unwrap();
        for (id, p) in &visited {
            assert_eq!(p, &batch.paths[*id], "streamed payload diverged");
        }
        for id in 0..catalog.len() {
            assert_eq!(
                std::fs::read(dir_stream.join(shard_file_name(id))).unwrap(),
                std::fs::read(dir_batch.join(shard_file_name(id))).unwrap(),
                "shard {id} bytes diverged between streaming and batch"
            );
        }
        assert!(dir_stream.join(SHARD_MANIFEST).is_file());

        // Warm pass: nothing regenerates, same visits.
        let mut warm_ids = Vec::new();
        let warm_stats = Dataset::for_each_path_sharded(
            &dir_stream,
            &preset,
            &catalog,
            |_| panic!("warm pass must not regenerate"),
            |id, _| {
                warm_ids.push(id);
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(
            warm_stats,
            ShardStats {
                hits: 3,
                missing: 0,
                stale: 0
            }
        );
        assert_eq!(warm_ids, vec![0, 1, 2]);

        std::fs::remove_dir_all(&dir_stream).unwrap();
        std::fs::remove_dir_all(&dir_batch).unwrap();
    }

    #[test]
    fn streaming_visit_error_aborts_the_walk() {
        let dir = scratch("stream-abort");
        let _ = std::fs::remove_dir_all(&dir);
        let preset = Preset::tiny();
        let catalog = shard_catalog();
        let mut seen = 0usize;
        let err = Dataset::for_each_path_sharded(
            &dir,
            &preset,
            &catalog,
            |id| path_data(&catalog[id], 1e6),
            |id, _| {
                seen += 1;
                if id == 1 {
                    Err(io::Error::other("sink full"))
                } else {
                    Ok(())
                }
            },
        )
        .unwrap_err();
        assert_eq!(err.to_string(), "sink full");
        assert_eq!(seen, 2, "the walk stops at the failing visit");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
