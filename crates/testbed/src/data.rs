//! The dataset model: what one epoch measures and how datasets persist.
//!
//! Persistence carries a staleness guard: [`Dataset::save`] embeds the
//! [`BEHAVIOR_HASH`] of the simulation source trees (netsim, tcp,
//! probes, testbed) alongside the data, and
//! [`Dataset::load_or_generate`] regenerates the cache whenever the
//! embedded hash differs from the one compiled into the running binary.
//! A cached dataset is a pure function of (preset, seed, simulator
//! code); the hash makes the third input explicit.

use crate::path::PathConfig;
use crate::preset::Preset;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path as FsPath;

/// Digest of the simulation source trees this binary was compiled
/// from, computed by `build.rs` (see `behavior_hash`).
pub const BEHAVIOR_HASH: &str = env!("TPUTPRED_BEHAVIOR_HASH");

/// The on-disk envelope: the dataset plus the behavior hash of the
/// code that generated it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct DatasetFile {
    /// [`BEHAVIOR_HASH`] at generation time.
    behavior_hash: String,
    /// The payload.
    dataset: Dataset,
}

/// How much of an epoch's measurement schedule actually ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EpochStatus {
    /// Every scheduled measurement completed.
    #[default]
    Ok,
    /// At least one measurement failed; the surviving fields are valid.
    Degraded,
    /// The node was down: nothing was measured this epoch.
    Missing,
}

/// Which fault(s) hit an epoch — the dataset's record of what
/// `faults::FaultPlan` scheduled, so analysis can condition on failure
/// mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EpochFaults {
    /// Whole epoch missing (node down).
    pub node_down: bool,
    /// Pathload ran but aborted without an estimate.
    pub pathload_failed: bool,
    /// The ping prober was down for part of the epoch.
    pub ping_outage: bool,
    /// A burst of probe replies was lost on the return path.
    pub reply_loss_burst: bool,
    /// The bulk transfer was cut short.
    pub transfer_truncated: bool,
    /// The bulk transfer never started.
    pub transfer_failed: bool,
}

impl EpochFaults {
    /// No fault hit this epoch.
    pub fn is_clean(&self) -> bool {
        *self == EpochFaults::default()
    }

    /// The [`EpochStatus`] these faults imply.
    pub fn status(&self) -> EpochStatus {
        if self.node_down {
            EpochStatus::Missing
        } else if self.is_clean() {
            EpochStatus::Ok
        } else {
            EpochStatus::Degraded
        }
    }
}

/// Everything one measurement epoch records (§4.1): the a-priori
/// estimates that feed FB prediction, the during-flow estimates of
/// Figs. 3–6, the actual throughput(s), and the target flow's own view
/// of the path.
///
/// Measurement fields are `Option`s: `None` means the measurement was
/// lost to a fault (see [`EpochRecord::faults`] for which one). On a
/// fault-free run — every stock preset — all fields are `Some` and
/// `status` is [`EpochStatus::Ok`]; [`EpochRecord::complete`] recovers
/// the plain-`f64` view the figure binaries consume.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// What ran: [`EpochStatus::Ok`], `Degraded`, or `Missing`.
    pub status: EpochStatus,
    /// Which faults hit (all-false on a clean epoch).
    pub faults: EpochFaults,
    /// Avail-bw estimate `Â` from the pathload measurement, bits/s.
    /// `None` when pathload aborted or the epoch is missing.
    pub a_hat: Option<f64>,
    /// A-priori RTT `T̂` from the pre-transfer ping window, seconds.
    /// `None` when an outage left the window with no probes.
    pub t_hat: Option<f64>,
    /// A-priori loss rate `p̂` from the pre-transfer ping window.
    pub p_hat: Option<f64>,
    /// RTT `T̃` from ping probes sent *during* the transfer, seconds.
    pub t_tilde: Option<f64>,
    /// Loss rate `p̃` from ping probes sent during the transfer.
    pub p_tilde: Option<f64>,
    /// Actual throughput `R` of the large-window (1 MB) transfer, bits/s.
    /// `None` when the transfer failed; present (over the shortened run)
    /// when it was merely truncated.
    pub r_large: Option<f64>,
    /// Actual throughput of the extra window-limited (20 KB) transfer,
    /// when the preset runs one and the epoch is not missing.
    pub r_small: Option<f64>,
    /// Throughput over the first quarter of the transfer (Fig. 11).
    /// `None` when the transfer failed or was truncated (a shortened
    /// run's prefixes are not comparable to full-length ones).
    pub r_prefix_quarter: Option<f64>,
    /// Throughput over the first half of the transfer (Fig. 11).
    pub r_prefix_half: Option<f64>,
    /// Loss events (fast retransmits + timeouts) the target flow itself
    /// saw — the model's "congestion events" (§3.3). Zero when no
    /// transfer ran.
    pub flow_loss_events: u64,
    /// The target flow's per-segment retransmission fraction.
    pub flow_retx_rate: f64,
    /// Mean RTT the target flow itself sampled, seconds.
    pub flow_rtt: f64,
    /// Ground truth: mean spare bottleneck capacity over the pre-transfer
    /// window (capacity × (1 − utilization)), bits/s. Not available to
    /// predictors; used for validation only.
    pub true_avail_bw: f64,
}

/// The plain-`f64` view of a fully-measured epoch — what every figure
/// binary consumes. Field meanings are exactly [`EpochRecord`]'s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompleteEpoch {
    /// Avail-bw estimate `Â`, bits/s.
    pub a_hat: f64,
    /// A-priori RTT `T̂`, seconds.
    pub t_hat: f64,
    /// A-priori loss rate `p̂`.
    pub p_hat: f64,
    /// During-flow RTT `T̃`, seconds.
    pub t_tilde: f64,
    /// During-flow loss rate `p̃`.
    pub p_tilde: f64,
    /// Large-window transfer throughput `R`, bits/s.
    pub r_large: f64,
    /// Window-limited transfer throughput, when the preset ran one.
    pub r_small: Option<f64>,
    /// Throughput over the first quarter of the transfer.
    pub r_prefix_quarter: f64,
    /// Throughput over the first half of the transfer.
    pub r_prefix_half: f64,
    /// The target flow's own loss events.
    pub flow_loss_events: u64,
    /// The target flow's retransmission fraction.
    pub flow_retx_rate: f64,
    /// The target flow's mean RTT, seconds.
    pub flow_rtt: f64,
    /// Ground-truth spare capacity, bits/s.
    pub true_avail_bw: f64,
}

impl EpochRecord {
    /// The plain view, if every scheduled measurement is present — the
    /// paper's own post-processing rule: epochs with failed measurements
    /// are silently discarded. A truncated transfer does not count as
    /// complete (its prefix throughputs are unmeasured).
    pub fn complete(&self) -> Option<CompleteEpoch> {
        Some(CompleteEpoch {
            a_hat: self.a_hat?,
            t_hat: self.t_hat?,
            p_hat: self.p_hat?,
            t_tilde: self.t_tilde?,
            p_tilde: self.p_tilde?,
            r_large: self.r_large?,
            r_small: self.r_small,
            r_prefix_quarter: self.r_prefix_quarter?,
            r_prefix_half: self.r_prefix_half?,
            flow_loss_events: self.flow_loss_events,
            flow_retx_rate: self.flow_retx_rate,
            flow_rtt: self.flow_rtt,
            true_avail_bw: self.true_avail_bw,
        })
    }
}

/// One trace: a consecutive sequence of epochs on one path.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceData {
    /// Epoch records in time order.
    pub records: Vec<EpochRecord>,
}

impl TraceData {
    /// The throughput time series HB predictors forecast (large-window
    /// transfers, bits/s). Epochs whose transfer failed are **skipped**,
    /// not zero-filled: this is the HB degradation rule — a predictor
    /// simply never sees the gap, so it cannot misread one as a level
    /// shift (the paper's authors likewise drop failed epochs from their
    /// RON traces). Use [`TraceData::throughput_series_gappy`] when gap
    /// positions matter.
    pub fn throughput_series(&self) -> Vec<f64> {
        self.records.iter().filter_map(|r| r.r_large).collect()
    }

    /// The large-window series with gaps preserved: one slot per epoch,
    /// `None` where the transfer failed or the epoch is missing. Feed
    /// this to `tputpred_core::metrics::evaluate_gappy` when reported
    /// positions must index the epoch timeline.
    pub fn throughput_series_gappy(&self) -> Vec<Option<f64>> {
        self.records.iter().map(|r| r.r_large).collect()
    }

    /// The window-limited throughput series (gaps skipped), or `None`
    /// when the preset measured none at all.
    pub fn small_window_series(&self) -> Option<Vec<f64>> {
        let series: Vec<f64> = self.records.iter().filter_map(|r| r.r_small).collect();
        (!series.is_empty()).then_some(series)
    }
}

/// All traces of one path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathData {
    /// The path's configuration (capacity, RTT, cross-traffic profile).
    pub config: PathConfig,
    /// The traces, in collection order.
    pub traces: Vec<TraceData>,
}

/// A complete synthetic measurement campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// The preset that generated this dataset.
    pub preset: Preset,
    /// Per-path data, catalog order.
    pub paths: Vec<PathData>,
}

impl Dataset {
    /// Iterates over every epoch record with its `(path, trace)` indices.
    pub fn epochs(&self) -> impl Iterator<Item = (usize, usize, &EpochRecord)> + '_ {
        self.paths.iter().enumerate().flat_map(|(pi, p)| {
            p.traces
                .iter()
                .enumerate()
                .flat_map(move |(ti, t)| t.records.iter().map(move |r| (pi, ti, r)))
        })
    }

    /// Iterates over the fully-measured epochs only, as plain-`f64`
    /// [`CompleteEpoch`] views with their `(path, trace)` indices —
    /// the paper's post-processing rule (degraded epochs are discarded)
    /// packaged for the figure binaries. On fault-free datasets this is
    /// every epoch.
    pub fn complete_epochs(&self) -> impl Iterator<Item = (usize, usize, CompleteEpoch)> + '_ {
        self.epochs()
            .filter_map(|(p, t, r)| r.complete().map(|c| (p, t, c)))
    }

    /// Total epoch count.
    pub fn epoch_count(&self) -> usize {
        self.epochs().count()
    }

    /// Epochs whose status is not [`EpochStatus::Ok`].
    pub fn degraded_count(&self) -> usize {
        self.epochs()
            .filter(|(_, _, r)| r.status != EpochStatus::Ok)
            .count()
    }

    /// Serializes the dataset as JSON to `path`, embedding the current
    /// [`BEHAVIOR_HASH`].
    pub fn save(&self, path: &FsPath) -> io::Result<()> {
        self.save_with_hash(path, BEHAVIOR_HASH)
    }

    /// [`Dataset::save`] with an explicit hash. Exists so tests can
    /// fabricate stale cache files; everything else wants `save`.
    ///
    /// Writes are atomic: the JSON goes to a temp file in the same
    /// directory, then renames into place, so a figure run interrupted
    /// mid-save can never leave a truncated cache behind for the next
    /// run to trip over.
    #[doc(hidden)]
    pub fn save_with_hash(&self, path: &FsPath, behavior_hash: &str) -> io::Result<()> {
        let dir = path.parent().unwrap_or(FsPath::new("."));
        fs::create_dir_all(dir)?;
        let file = DatasetFile {
            behavior_hash: behavior_hash.to_string(),
            dataset: self.clone(),
        };
        let json = serde_json::to_string(&file).map_err(io::Error::other)?;
        // Per-process temp name: concurrent generators on the same cache
        // each write their own temp file; last rename wins, and both
        // outcomes are complete files with identical content (generation
        // is deterministic).
        let file_name = path.file_name().unwrap_or_default().to_string_lossy();
        let tmp = dir.join(format!(".{}.tmp.{}", file_name, std::process::id()));
        fs::write(&tmp, json)?;
        match fs::rename(&tmp, path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Loads a dataset saved by [`Dataset::save`], regardless of the
    /// behavior hash it was generated under. Use
    /// [`Dataset::load_or_generate`] when staleness matters.
    pub fn load(path: &FsPath) -> io::Result<Self> {
        Ok(Self::load_with_hash(path)?.1)
    }

    /// Loads `(embedded behavior hash, dataset)`.
    fn load_with_hash(path: &FsPath) -> io::Result<(String, Self)> {
        let json = fs::read_to_string(path)?;
        let file: DatasetFile = serde_json::from_str(&json).map_err(io::Error::other)?;
        Ok((file.behavior_hash, file.dataset))
    }

    /// Loads the dataset at `path` if it is present *and* was generated
    /// by the same simulation code as this binary (matching behavior
    /// hash); otherwise generates it with `generate` and saves it
    /// there. Missing files, caches from a different source tree, and
    /// unparseable files (e.g. the pre-hash format) all regenerate —
    /// the cache can be wrong only by being slow, never by being stale.
    pub fn load_or_generate<F: FnOnce() -> Dataset>(
        path: &FsPath,
        generate: F,
    ) -> io::Result<Self> {
        match Self::load_with_hash(path) {
            Ok((hash, ds)) if hash == BEHAVIOR_HASH => return Ok(ds),
            Ok((hash, _)) => {
                eprintln!(
                    "dataset {}: behavior hash {} != current {}; simulation code \
                     changed — regenerating",
                    path.display(),
                    hash,
                    BEHAVIOR_HASH
                );
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => {
                eprintln!(
                    "dataset {}: unreadable cache ({e}); regenerating",
                    path.display()
                );
            }
        }
        let ds = generate();
        ds.save(path)?;
        Ok(ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::catalog_2004;

    fn record(r: f64) -> EpochRecord {
        EpochRecord {
            status: EpochStatus::Ok,
            faults: EpochFaults::default(),
            a_hat: Some(5e6),
            t_hat: Some(0.05),
            p_hat: Some(0.0),
            t_tilde: Some(0.06),
            p_tilde: Some(0.01),
            r_large: Some(r),
            r_small: Some(r / 4.0),
            r_prefix_quarter: Some(r * 0.8),
            r_prefix_half: Some(r * 0.9),
            flow_loss_events: 2,
            flow_retx_rate: 0.01,
            flow_rtt: 0.055,
            true_avail_bw: 5.5e6,
        }
    }

    fn missing_record() -> EpochRecord {
        EpochRecord {
            status: EpochStatus::Missing,
            faults: EpochFaults {
                node_down: true,
                ..EpochFaults::default()
            },
            a_hat: None,
            t_hat: None,
            p_hat: None,
            t_tilde: None,
            p_tilde: None,
            r_large: None,
            r_small: None,
            r_prefix_quarter: None,
            r_prefix_half: None,
            flow_loss_events: 0,
            flow_retx_rate: 0.0,
            flow_rtt: 0.0,
            true_avail_bw: 5.5e6,
        }
    }

    fn dataset() -> Dataset {
        let config = catalog_2004(3, 1).remove(0);
        Dataset {
            preset: Preset::tiny(),
            paths: vec![PathData {
                config,
                traces: vec![
                    TraceData {
                        records: vec![record(1e6), record(2e6)],
                    },
                    TraceData {
                        records: vec![record(3e6)],
                    },
                ],
            }],
        }
    }

    #[test]
    fn epochs_iterates_in_order_with_indices() {
        let ds = dataset();
        let idx: Vec<(usize, usize, Option<f64>)> =
            ds.epochs().map(|(p, t, r)| (p, t, r.r_large)).collect();
        assert_eq!(
            idx,
            vec![(0, 0, Some(1e6)), (0, 0, Some(2e6)), (0, 1, Some(3e6))]
        );
        assert_eq!(ds.epoch_count(), 3);
        assert_eq!(ds.degraded_count(), 0);
    }

    #[test]
    fn throughput_series_extracts_large_window_runs() {
        let ds = dataset();
        assert_eq!(ds.paths[0].traces[0].throughput_series(), vec![1e6, 2e6]);
        assert_eq!(
            ds.paths[0].traces[0].small_window_series(),
            Some(vec![0.25e6, 0.5e6])
        );
    }

    #[test]
    fn gappy_series_keeps_positions_dense_series_skips() {
        let trace = TraceData {
            records: vec![record(1e6), missing_record(), record(3e6)],
        };
        assert_eq!(trace.throughput_series(), vec![1e6, 3e6]);
        assert_eq!(
            trace.throughput_series_gappy(),
            vec![Some(1e6), None, Some(3e6)]
        );
        assert_eq!(trace.small_window_series(), Some(vec![0.25e6, 0.75e6]));
    }

    #[test]
    fn complete_epochs_discards_degraded_records() {
        let mut ds = dataset();
        ds.paths[0].traces[0].records.push(missing_record());
        let mut degraded = record(4e6);
        degraded.status = EpochStatus::Degraded;
        degraded.faults.pathload_failed = true;
        degraded.a_hat = None;
        ds.paths[0].traces[1].records.push(degraded);
        assert_eq!(ds.epoch_count(), 5);
        assert_eq!(ds.degraded_count(), 2);
        let complete: Vec<f64> = ds.complete_epochs().map(|(_, _, c)| c.r_large).collect();
        assert_eq!(complete, vec![1e6, 2e6, 3e6]);
    }

    #[test]
    fn complete_view_mirrors_the_record_fields() {
        let r = record(2e6);
        let c = r.complete().unwrap();
        assert_eq!(Some(c.a_hat), r.a_hat);
        assert_eq!(Some(c.t_hat), r.t_hat);
        assert_eq!(Some(c.r_large), r.r_large);
        assert_eq!(c.r_small, r.r_small);
        assert_eq!(c.flow_loss_events, r.flow_loss_events);
        assert_eq!(missing_record().complete(), None);
    }

    #[test]
    fn fault_flags_imply_status() {
        assert_eq!(EpochFaults::default().status(), EpochStatus::Ok);
        let outage = EpochFaults {
            ping_outage: true,
            ..EpochFaults::default()
        };
        assert_eq!(outage.status(), EpochStatus::Degraded);
        let down = EpochFaults {
            node_down: true,
            transfer_failed: true,
            ..EpochFaults::default()
        };
        assert_eq!(down.status(), EpochStatus::Missing);
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join("tputpred-test-data");
        let file = dir.join("ds.json");
        let ds = dataset();
        ds.save(&file).unwrap();
        let loaded = Dataset::load(&file).unwrap();
        assert_eq!(ds, loaded);
        std::fs::remove_file(&file).unwrap();
    }

    #[test]
    fn load_or_generate_generates_once() {
        let dir = std::env::temp_dir().join("tputpred-test-data2");
        let file = dir.join(format!("ds-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&file);
        let mut calls = 0;
        let ds = Dataset::load_or_generate(&file, || {
            calls += 1;
            dataset()
        })
        .unwrap();
        assert_eq!(calls, 1);
        let again = Dataset::load_or_generate(&file, || panic!("cached")).unwrap();
        assert_eq!(ds, again);
        std::fs::remove_file(&file).unwrap();
    }

    #[test]
    fn stale_behavior_hash_triggers_regeneration() {
        let dir = std::env::temp_dir().join("tputpred-test-data3");
        let file = dir.join(format!("ds-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&file);
        // A cache written by "different simulation code": same payload,
        // different hash.
        dataset().save_with_hash(&file, "0123456789abcdef").unwrap();
        let mut calls = 0;
        let ds = Dataset::load_or_generate(&file, || {
            calls += 1;
            dataset()
        })
        .unwrap();
        assert_eq!(calls, 1, "stale cache must regenerate");
        // The rewritten cache carries the current hash: hit next time.
        let again = Dataset::load_or_generate(&file, || panic!("cached")).unwrap();
        assert_eq!(ds, again);
        std::fs::remove_file(&file).unwrap();
    }

    #[test]
    fn unparseable_cache_triggers_regeneration() {
        let dir = std::env::temp_dir().join("tputpred-test-data4");
        let file = dir.join(format!("ds-{}.json", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // The pre-hash format: a bare Dataset with no envelope.
        std::fs::write(&file, "{\"preset\": {}, \"paths\": []}").unwrap();
        let mut calls = 0;
        Dataset::load_or_generate(&file, || {
            calls += 1;
            dataset()
        })
        .unwrap();
        assert_eq!(calls, 1, "legacy cache must regenerate");
        std::fs::remove_file(&file).unwrap();
    }

    #[test]
    fn truncated_cache_triggers_regeneration() {
        // A cache cut off mid-write (the pre-atomic-save hazard): the
        // loader must treat it as stale, not return an error.
        let dir = std::env::temp_dir().join("tputpred-test-data5");
        let file = dir.join(format!("ds-{}.json", std::process::id()));
        let valid_file = dir.join(format!("full-{}.json", std::process::id()));
        dataset().save(&valid_file).unwrap();
        let full = std::fs::read_to_string(&valid_file).unwrap();
        std::fs::write(&file, &full[..full.len() / 2]).unwrap();
        let mut calls = 0;
        let ds = Dataset::load_or_generate(&file, || {
            calls += 1;
            dataset()
        })
        .unwrap();
        assert_eq!(calls, 1, "truncated cache must regenerate");
        assert_eq!(ds, dataset());
        std::fs::remove_file(&file).unwrap();
        std::fs::remove_file(&valid_file).unwrap();
    }

    #[test]
    fn save_leaves_no_temp_files_behind() {
        let dir = std::env::temp_dir().join(format!("tputpred-test-data6-{}", std::process::id()));
        let file = dir.join("ds.json");
        dataset().save(&file).unwrap();
        let entries: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(entries, vec!["ds.json"], "only the renamed cache remains");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn behavior_hash_is_a_hex_digest() {
        assert_eq!(BEHAVIOR_HASH.len(), 16);
        assert!(BEHAVIOR_HASH.bytes().all(|b| b.is_ascii_hexdigit()));
    }
}
