//! The dataset model: what one epoch measures and how datasets persist.
//!
//! Persistence carries a staleness guard: [`Dataset::save`] embeds the
//! [`BEHAVIOR_HASH`] of the simulation source trees (netsim, tcp,
//! probes, testbed) alongside the data, and
//! [`Dataset::load_or_generate`] regenerates the cache whenever the
//! embedded hash differs from the one compiled into the running binary.
//! A cached dataset is a pure function of (preset, seed, simulator
//! code); the hash makes the third input explicit.

use crate::path::PathConfig;
use crate::preset::Preset;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path as FsPath;

/// Digest of the simulation source trees this binary was compiled
/// from, computed by `build.rs` (see `behavior_hash`).
pub const BEHAVIOR_HASH: &str = env!("TPUTPRED_BEHAVIOR_HASH");

/// The on-disk envelope: the dataset plus the behavior hash of the
/// code that generated it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct DatasetFile {
    /// [`BEHAVIOR_HASH`] at generation time.
    behavior_hash: String,
    /// The payload.
    dataset: Dataset,
}

/// Everything one measurement epoch records (§4.1): the a-priori
/// estimates that feed FB prediction, the during-flow estimates of
/// Figs. 3–6, the actual throughput(s), and the target flow's own view
/// of the path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Avail-bw estimate `Â` from the pathload measurement, bits/s.
    pub a_hat: f64,
    /// A-priori RTT `T̂` from the pre-transfer ping window, seconds.
    pub t_hat: f64,
    /// A-priori loss rate `p̂` from the pre-transfer ping window.
    pub p_hat: f64,
    /// RTT `T̃` from ping probes sent *during* the transfer, seconds.
    pub t_tilde: f64,
    /// Loss rate `p̃` from ping probes sent during the transfer.
    pub p_tilde: f64,
    /// Actual throughput `R` of the large-window (1 MB) transfer, bits/s.
    pub r_large: f64,
    /// Actual throughput of the extra window-limited (20 KB) transfer,
    /// when the preset runs one.
    pub r_small: Option<f64>,
    /// Throughput over the first quarter of the transfer (Fig. 11).
    pub r_prefix_quarter: f64,
    /// Throughput over the first half of the transfer (Fig. 11).
    pub r_prefix_half: f64,
    /// Loss events (fast retransmits + timeouts) the target flow itself
    /// saw — the model's "congestion events" (§3.3).
    pub flow_loss_events: u64,
    /// The target flow's per-segment retransmission fraction.
    pub flow_retx_rate: f64,
    /// Mean RTT the target flow itself sampled, seconds.
    pub flow_rtt: f64,
    /// Ground truth: mean spare bottleneck capacity over the pre-transfer
    /// window (capacity × (1 − utilization)), bits/s. Not available to
    /// predictors; used for validation only.
    pub true_avail_bw: f64,
}

/// One trace: a consecutive sequence of epochs on one path.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceData {
    /// Epoch records in time order.
    pub records: Vec<EpochRecord>,
}

impl TraceData {
    /// The throughput time series HB predictors forecast (large-window
    /// transfers, bits/s).
    pub fn throughput_series(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.r_large).collect()
    }

    /// The window-limited throughput series, if the preset measured one.
    pub fn small_window_series(&self) -> Option<Vec<f64>> {
        self.records
            .iter()
            .map(|r| r.r_small)
            .collect::<Option<Vec<f64>>>()
    }
}

/// All traces of one path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathData {
    /// The path's configuration (capacity, RTT, cross-traffic profile).
    pub config: PathConfig,
    /// The traces, in collection order.
    pub traces: Vec<TraceData>,
}

/// A complete synthetic measurement campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// The preset that generated this dataset.
    pub preset: Preset,
    /// Per-path data, catalog order.
    pub paths: Vec<PathData>,
}

impl Dataset {
    /// Iterates over every epoch record with its `(path, trace)` indices.
    pub fn epochs(&self) -> impl Iterator<Item = (usize, usize, &EpochRecord)> + '_ {
        self.paths.iter().enumerate().flat_map(|(pi, p)| {
            p.traces
                .iter()
                .enumerate()
                .flat_map(move |(ti, t)| t.records.iter().map(move |r| (pi, ti, r)))
        })
    }

    /// Total epoch count.
    pub fn epoch_count(&self) -> usize {
        self.epochs().count()
    }

    /// Serializes the dataset as JSON to `path`, embedding the current
    /// [`BEHAVIOR_HASH`].
    pub fn save(&self, path: &FsPath) -> io::Result<()> {
        self.save_with_hash(path, BEHAVIOR_HASH)
    }

    /// [`Dataset::save`] with an explicit hash. Exists so tests can
    /// fabricate stale cache files; everything else wants `save`.
    #[doc(hidden)]
    pub fn save_with_hash(&self, path: &FsPath, behavior_hash: &str) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let file = DatasetFile {
            behavior_hash: behavior_hash.to_string(),
            dataset: self.clone(),
        };
        let json = serde_json::to_string(&file).map_err(io::Error::other)?;
        fs::write(path, json)
    }

    /// Loads a dataset saved by [`Dataset::save`], regardless of the
    /// behavior hash it was generated under. Use
    /// [`Dataset::load_or_generate`] when staleness matters.
    pub fn load(path: &FsPath) -> io::Result<Self> {
        Ok(Self::load_with_hash(path)?.1)
    }

    /// Loads `(embedded behavior hash, dataset)`.
    fn load_with_hash(path: &FsPath) -> io::Result<(String, Self)> {
        let json = fs::read_to_string(path)?;
        let file: DatasetFile = serde_json::from_str(&json).map_err(io::Error::other)?;
        Ok((file.behavior_hash, file.dataset))
    }

    /// Loads the dataset at `path` if it is present *and* was generated
    /// by the same simulation code as this binary (matching behavior
    /// hash); otherwise generates it with `generate` and saves it
    /// there. Missing files, caches from a different source tree, and
    /// unparseable files (e.g. the pre-hash format) all regenerate —
    /// the cache can be wrong only by being slow, never by being stale.
    pub fn load_or_generate<F: FnOnce() -> Dataset>(
        path: &FsPath,
        generate: F,
    ) -> io::Result<Self> {
        match Self::load_with_hash(path) {
            Ok((hash, ds)) if hash == BEHAVIOR_HASH => return Ok(ds),
            Ok((hash, _)) => {
                eprintln!(
                    "dataset {}: behavior hash {} != current {}; simulation code \
                     changed — regenerating",
                    path.display(),
                    hash,
                    BEHAVIOR_HASH
                );
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => {
                eprintln!(
                    "dataset {}: unreadable cache ({e}); regenerating",
                    path.display()
                );
            }
        }
        let ds = generate();
        ds.save(path)?;
        Ok(ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::catalog_2004;

    fn record(r: f64) -> EpochRecord {
        EpochRecord {
            a_hat: 5e6,
            t_hat: 0.05,
            p_hat: 0.0,
            t_tilde: 0.06,
            p_tilde: 0.01,
            r_large: r,
            r_small: Some(r / 4.0),
            r_prefix_quarter: r * 0.8,
            r_prefix_half: r * 0.9,
            flow_loss_events: 2,
            flow_retx_rate: 0.01,
            flow_rtt: 0.055,
            true_avail_bw: 5.5e6,
        }
    }

    fn dataset() -> Dataset {
        let config = catalog_2004(3, 1).remove(0);
        Dataset {
            preset: Preset::tiny(),
            paths: vec![PathData {
                config,
                traces: vec![
                    TraceData {
                        records: vec![record(1e6), record(2e6)],
                    },
                    TraceData {
                        records: vec![record(3e6)],
                    },
                ],
            }],
        }
    }

    #[test]
    fn epochs_iterates_in_order_with_indices() {
        let ds = dataset();
        let idx: Vec<(usize, usize, f64)> =
            ds.epochs().map(|(p, t, r)| (p, t, r.r_large)).collect();
        assert_eq!(idx, vec![(0, 0, 1e6), (0, 0, 2e6), (0, 1, 3e6)]);
        assert_eq!(ds.epoch_count(), 3);
    }

    #[test]
    fn throughput_series_extracts_large_window_runs() {
        let ds = dataset();
        assert_eq!(ds.paths[0].traces[0].throughput_series(), vec![1e6, 2e6]);
        assert_eq!(
            ds.paths[0].traces[0].small_window_series(),
            Some(vec![0.25e6, 0.5e6])
        );
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join("tputpred-test-data");
        let file = dir.join("ds.json");
        let ds = dataset();
        ds.save(&file).unwrap();
        let loaded = Dataset::load(&file).unwrap();
        assert_eq!(ds, loaded);
        std::fs::remove_file(&file).unwrap();
    }

    #[test]
    fn load_or_generate_generates_once() {
        let dir = std::env::temp_dir().join("tputpred-test-data2");
        let file = dir.join(format!("ds-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&file);
        let mut calls = 0;
        let ds = Dataset::load_or_generate(&file, || {
            calls += 1;
            dataset()
        })
        .unwrap();
        assert_eq!(calls, 1);
        let again = Dataset::load_or_generate(&file, || panic!("cached")).unwrap();
        assert_eq!(ds, again);
        std::fs::remove_file(&file).unwrap();
    }

    #[test]
    fn stale_behavior_hash_triggers_regeneration() {
        let dir = std::env::temp_dir().join("tputpred-test-data3");
        let file = dir.join(format!("ds-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&file);
        // A cache written by "different simulation code": same payload,
        // different hash.
        dataset().save_with_hash(&file, "0123456789abcdef").unwrap();
        let mut calls = 0;
        let ds = Dataset::load_or_generate(&file, || {
            calls += 1;
            dataset()
        })
        .unwrap();
        assert_eq!(calls, 1, "stale cache must regenerate");
        // The rewritten cache carries the current hash: hit next time.
        let again = Dataset::load_or_generate(&file, || panic!("cached")).unwrap();
        assert_eq!(ds, again);
        std::fs::remove_file(&file).unwrap();
    }

    #[test]
    fn unparseable_cache_triggers_regeneration() {
        let dir = std::env::temp_dir().join("tputpred-test-data4");
        let file = dir.join(format!("ds-{}.json", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // The pre-hash format: a bare Dataset with no envelope.
        std::fs::write(&file, "{\"preset\": {}, \"paths\": []}").unwrap();
        let mut calls = 0;
        Dataset::load_or_generate(&file, || {
            calls += 1;
            dataset()
        })
        .unwrap();
        assert_eq!(calls, 1, "legacy cache must regenerate");
        std::fs::remove_file(&file).unwrap();
    }

    #[test]
    fn behavior_hash_is_a_hex_digest() {
        assert_eq!(BEHAVIOR_HASH.len(), 16);
        assert!(BEHAVIOR_HASH.bytes().all(|b| b.is_ascii_hexdigit()));
    }
}
