//! Experiment scales: the paper-faithful structure at several sizes.
//!
//! The paper's full measurement campaign — 36 750 epochs, each ~2–3 min
//! of wall time — is a lot of simulated traffic. A [`Preset`] keeps the
//! *structure* (per-epoch timeline of Fig. 1, path diversity, per-trace
//! time-series shape) while scaling the sizes: `paper` is the faithful
//! scale, `quick` regenerates every figure in minutes, `tiny` fits CI.

use crate::faults::{FaultConfig, RegimeConfig};
use serde::{Deserialize, Serialize};
use tputpred_netsim::Time;
use tputpred_tcp::TcpConfig;

/// Every knob of a dataset-generation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Preset {
    /// Catalog label recorded into the dataset.
    pub name: String,
    /// Paths in the catalog.
    pub paths: usize,
    /// Traces collected per path (the paper: 7).
    pub traces_per_path: usize,
    /// Measurement epochs per trace (the paper: 150).
    pub epochs_per_trace: usize,
    /// Time slot reserved for the pathload measurement at the start of
    /// each epoch.
    pub pathload_slot: Time,
    /// Ping-only window before the transfer (the paper: 60 s).
    pub pre_ping: Time,
    /// Target-transfer duration (the paper: 50 s; 120 s in the 2006 set).
    pub transfer: Time,
    /// Idle tail after the transfer(s), letting queues drain.
    pub epoch_gap: Time,
    /// Socket buffer of the main (congestion-limited) transfer: 1 MB.
    pub w_large: u32,
    /// Socket buffer of the extra window-limited transfer: 20 KB.
    pub w_small: u32,
    /// Whether each epoch also runs the W = 20 KB transfer (Figs. 12, 22).
    pub with_small_window: bool,
    /// Ping probing interval (the paper: 100 ms).
    pub ping_interval: Time,
    /// Catalog seed.
    pub seed: u64,
    /// Measurement fault probabilities (DESIGN.md §10). All stock
    /// presets use [`FaultConfig::none`]; the `abl_faults` sweep raises
    /// them.
    pub faults: FaultConfig,
    /// Correlated-outage regime chain modulating the fault rates
    /// (DESIGN.md §13). All stock presets use [`RegimeConfig::none`];
    /// `fig25_resilience` and the `abl_faults` dwell sweep raise it.
    pub regimes: RegimeConfig,
}

impl Preset {
    /// The paper-faithful scale: 35 paths × 7 traces × 150 epochs with the
    /// Fig. 1 durations. This is hours of CPU; use [`Preset::quick`] for
    /// figure regeneration.
    pub fn paper() -> Self {
        Preset {
            name: "paper".into(),
            paths: 35,
            traces_per_path: 7,
            epochs_per_trace: 150,
            pathload_slot: Time::from_secs(30),
            pre_ping: Time::from_secs(60),
            transfer: Time::from_secs(50),
            epoch_gap: Time::from_secs(10),
            w_large: 1 << 20,
            w_small: 20 * 1024,
            with_small_window: true,
            ping_interval: Time::from_millis(100),
            seed: 2004,
            faults: FaultConfig::none(),
            regimes: RegimeConfig::none(),
        }
    }

    /// A minutes-scale run preserving the structure: all 35 paths, 2
    /// traces each, 40 epochs per trace, with proportionally shortened
    /// epoch phases.
    pub fn quick() -> Self {
        Preset {
            name: "quick".into(),
            paths: 35,
            traces_per_path: 2,
            epochs_per_trace: 40,
            pathload_slot: Time::from_secs(12),
            pre_ping: Time::from_secs(12),
            transfer: Time::from_secs(10),
            epoch_gap: Time::from_secs(3),
            w_large: 1 << 20,
            w_small: 20 * 1024,
            with_small_window: true,
            ping_interval: Time::from_millis(100),
            seed: 2004,
            faults: FaultConfig::none(),
            regimes: RegimeConfig::none(),
        }
    }

    /// CI-sized: a handful of paths, one short trace each.
    pub fn tiny() -> Self {
        Preset {
            name: "tiny".into(),
            paths: 4,
            traces_per_path: 1,
            epochs_per_trace: 12,
            pathload_slot: Time::from_secs(8),
            pre_ping: Time::from_secs(6),
            transfer: Time::from_secs(6),
            epoch_gap: Time::from_secs(2),
            w_large: 1 << 20,
            w_small: 20 * 1024,
            with_small_window: true,
            ping_interval: Time::from_millis(100),
            seed: 2004,
            faults: FaultConfig::none(),
            regimes: RegimeConfig::none(),
        }
    }

    /// The 2006-set analogue (Fig. 11): fewer, longer transfers so prefix
    /// throughputs at ¼, ½ and full length can be compared. Scaled like
    /// [`Preset::quick`].
    pub fn quick_2006() -> Self {
        Preset {
            name: "quick-2006".into(),
            paths: 24,
            traces_per_path: 1,
            epochs_per_trace: 25,
            pathload_slot: Time::from_secs(12),
            pre_ping: Time::from_secs(12),
            transfer: Time::from_secs(24),
            epoch_gap: Time::from_secs(3),
            w_large: 1 << 20,
            w_small: 20 * 1024,
            with_small_window: false,
            ping_interval: Time::from_millis(100),
            seed: 2006,
            faults: FaultConfig::none(),
            regimes: RegimeConfig::none(),
        }
    }

    /// The procedural-catalog scale (DESIGN.md §15): 1000 synth paths
    /// across the five-class mix, one short trace each — comparable
    /// total simulated traffic to [`Preset::quick`], but 1000-path wide
    /// so the per-path rayon fan-out and the streaming shard API have
    /// something real to chew on.
    pub fn synth1k() -> Self {
        Preset {
            name: "synth1k".into(),
            paths: 1000,
            traces_per_path: 1,
            epochs_per_trace: 6,
            pathload_slot: Time::from_secs(8),
            pre_ping: Time::from_secs(6),
            transfer: Time::from_secs(6),
            epoch_gap: Time::from_secs(2),
            w_large: 1 << 20,
            w_small: 20 * 1024,
            with_small_window: false,
            ping_interval: Time::from_millis(100),
            seed: 2080,
            faults: FaultConfig::none(),
            regimes: RegimeConfig::none(),
        }
    }

    /// [`Preset::synth1k`] at 10 000 paths (ROADMAP item 1's headline
    /// scale), with shorter traces so a full cold generation stays in
    /// minutes. Figure binaries must stream this one shard at a time —
    /// the whole `Dataset` does not belong in RAM.
    pub fn synth10k() -> Self {
        Preset {
            name: "synth10k".into(),
            paths: 10_000,
            epochs_per_trace: 4,
            ..Self::synth1k()
        }
    }

    /// Every registered preset name, in [`Preset::by_name`] order — the
    /// single source of truth the CLI derives its usage and error
    /// strings from.
    pub fn names() -> &'static [&'static str] {
        &[
            "paper",
            "quick",
            "tiny",
            "quick-2006",
            "synth1k",
            "synth10k",
        ]
    }

    /// Parses a preset by name (one of [`Preset::names`]) — the
    /// `--preset` flag of the figure binaries.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "paper" => Some(Self::paper()),
            "quick" => Some(Self::quick()),
            "tiny" => Some(Self::tiny()),
            "quick-2006" => Some(Self::quick_2006()),
            "synth1k" => Some(Self::synth1k()),
            "synth10k" => Some(Self::synth10k()),
            _ => None,
        }
    }

    /// Duration of one epoch on the trace timeline.
    pub fn epoch_len(&self) -> Time {
        let mut len = self.pathload_slot + self.pre_ping + self.transfer + self.epoch_gap;
        if self.with_small_window {
            len += self.transfer + self.epoch_gap;
        }
        len
    }

    /// Total duration of one trace.
    pub fn trace_len(&self) -> Time {
        Time::from_nanos(self.epoch_len().as_nanos() * self.epochs_per_trace as u64)
    }

    /// TCP configuration of the large-window target flow.
    pub fn tcp_large(&self) -> TcpConfig {
        TcpConfig {
            max_window: self.w_large,
            ..TcpConfig::default()
        }
    }

    /// TCP configuration of the window-limited target flow.
    pub fn tcp_small(&self) -> TcpConfig {
        TcpConfig {
            max_window: self.w_small,
            ..TcpConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset_matches_the_campaign() {
        let p = Preset::paper();
        assert_eq!(p.paths * p.traces_per_path * p.epochs_per_trace, 36_750);
        assert_eq!(p.transfer, Time::from_secs(50));
        assert_eq!(p.pre_ping, Time::from_secs(60));
        assert_eq!(p.w_large, 1 << 20);
        assert_eq!(p.w_small, 20 * 1024);
    }

    #[test]
    fn epoch_length_includes_both_transfers_when_enabled() {
        let p = Preset::tiny();
        let without = Preset {
            with_small_window: false,
            ..p.clone()
        };
        assert_eq!(
            p.epoch_len().as_nanos() - without.epoch_len().as_nanos(),
            (p.transfer + p.epoch_gap).as_nanos()
        );
    }

    #[test]
    fn trace_length_is_epochs_times_epoch_len() {
        let p = Preset::quick();
        assert_eq!(
            p.trace_len().as_nanos(),
            p.epoch_len().as_nanos() * p.epochs_per_trace as u64
        );
    }

    #[test]
    fn by_name_round_trips_every_registered_name() {
        for name in Preset::names() {
            assert_eq!(
                Preset::by_name(name).map(|p| p.name),
                Some(name.to_string()),
                "registered name {name} must parse back to itself"
            );
        }
        assert!(Preset::by_name("nope").is_none());
    }

    #[test]
    fn synth_presets_scale_the_procedural_catalog() {
        let k1 = Preset::synth1k();
        let k10 = Preset::synth10k();
        assert_eq!(k1.paths, 1000);
        assert_eq!(k10.paths, 10_000);
        assert_eq!(k1.seed, k10.seed, "same catalog family, different size");
        assert!(k1.name.starts_with("synth") && k10.name.starts_with("synth"));
    }

    #[test]
    fn tcp_configs_use_the_preset_windows() {
        let p = Preset::quick();
        assert_eq!(p.tcp_large().max_window, 1 << 20);
        assert_eq!(p.tcp_small().max_window, 20 * 1024);
    }
}
