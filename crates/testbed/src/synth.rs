//! Procedural path catalogs: seeded class-mix sampling at any scale.
//!
//! The paper's conclusions rest on 35 hand-picked RON paths (§4.1). To
//! ask whether FB-vs-HB predictability is a property of *path classes*
//! rather than of those particular paths, [`synth_catalog`] samples an
//! arbitrarily large catalog — a pure function of `(seed, size, class
//! mix)` — across five classes (DESIGN.md §15):
//!
//! * **`dsl`** — sub-2 Mbps DSL bottlenecks, calibrated to the
//!   [`crate::path::catalog_2004`] DSL block.
//! * **`us`** — ≥ 10 Mbps US university paths (the 2004 majority).
//! * **`eu-us`** — transatlantic paths: same capacity tiers, 90–140 ms
//!   RTT.
//! * **`cell`** — cellular-like paths after the empirical conditional
//!   method's LTE/HSPA+ traces (ECM, \[arXiv:2111.14080\]): a few Mbps,
//!   long and variable RTT, deep bufferbloat-style buffers, and
//!   frequent cross-load level shifts standing in for channel-rate
//!   variation.
//! * **`wless`** — lossy wireless links (the regime the
//!   `network_listener` probe/scheduler stack targets): shallow
//!   buffers, heavily bursty heavy-tailed cross traffic, so the target
//!   flow sees genuine non-congestion-style loss epochs.
//!
//! Class names follow the `class-<digits>` shape that
//! `bench::path_class` strips, so per-class league tables group synth
//! paths for free. Cross-traffic draws reuse
//! `crate::path::draw_cross`'s 2004-calibrated congested/quiet split,
//! with per-class overrides only where a class is *defined* by
//! deviating from it (shift rate, burstiness, Pareto share).

use crate::path::{draw_cross, PathConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tputpred_netsim::Time;

/// Salt folded into the catalog seed so a synth catalog never shares an
/// RNG stream with `catalog_2004(seed)` / `catalog_2006(seed)`.
const SYNTH_SALT: u64 = 0x5359_4E54_4800_0001;

/// One synthesized path class: the documented sampling ranges the
/// property tests check every generated path against.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassSpec {
    /// Path-name prefix; names are `<prefix>-<index>`, matching the
    /// `class-<digits>` shape `path_class` strips for per-class tables.
    pub prefix: &'static str,
    /// Discrete capacity tiers (empty → draw uniformly from
    /// `capacity_range_bps` instead).
    pub capacity_steps_bps: &'static [f64],
    /// Bottleneck capacity bounds; discrete tiers also lie inside.
    pub capacity_range_bps: (f64, f64),
    /// Round-trip propagation delay bounds.
    pub rtt_range_s: (f64, f64),
    /// Probability a path of this class is drawn congested (the
    /// paper-calibrated high-utilization regime of `draw_cross`).
    pub congested_prob: f64,
    /// Bottleneck buffer as a multiple of the path BDP: quiet paths.
    pub buffer_bdp_range: (f64, f64),
    /// Bottleneck buffer as a multiple of the path BDP: congested paths.
    pub buffer_bdp_congested_range: (f64, f64),
    /// Buffer floor in 1500-byte packets.
    pub min_buffer_packets: u32,
    /// Cross-load level shifts per trace (channel-rate variation on
    /// `cell`, the 2004 default elsewhere).
    pub shifts_range: (f64, f64),
    /// Outlier load bursts per trace.
    pub bursts_range: (f64, f64),
    /// Override of `draw_cross`'s Pareto share (`None` keeps the
    /// congestion-calibrated draw); `wless` pins it high so loss is
    /// burst-driven rather than queue-occupancy-driven.
    pub pareto_fraction_range: Option<(f64, f64)>,
}

/// The five class specs, in catalog block order. Ranges for the first
/// three mirror `catalog_2004`'s hand-written blocks (DESIGN.md §15
/// records the calibration).
pub fn class_specs() -> &'static [ClassSpec; 5] {
    const US_TIERS: &[f64] = &[10e6, 20e6, 45e6];
    static SPECS: [ClassSpec; 5] = [
        ClassSpec {
            prefix: "dsl",
            capacity_steps_bps: &[],
            capacity_range_bps: (0.8e6, 1.6e6),
            rtt_range_s: (0.030, 0.080),
            congested_prob: 0.4,
            buffer_bdp_range: (0.75, 3.0),
            buffer_bdp_congested_range: (2.0, 4.0),
            min_buffer_packets: 12,
            shifts_range: (0.0, 3.0),
            bursts_range: (0.0, 4.0),
            pareto_fraction_range: None,
        },
        ClassSpec {
            prefix: "us",
            capacity_steps_bps: US_TIERS,
            capacity_range_bps: (10e6, 45e6),
            rtt_range_s: (0.010, 0.080),
            congested_prob: 0.4,
            buffer_bdp_range: (0.75, 3.0),
            buffer_bdp_congested_range: (2.0, 4.0),
            min_buffer_packets: 12,
            shifts_range: (0.0, 3.0),
            bursts_range: (0.0, 4.0),
            pareto_fraction_range: None,
        },
        ClassSpec {
            prefix: "eu-us",
            capacity_steps_bps: US_TIERS,
            capacity_range_bps: (10e6, 45e6),
            rtt_range_s: (0.090, 0.140),
            congested_prob: 0.4,
            buffer_bdp_range: (0.75, 3.0),
            buffer_bdp_congested_range: (2.0, 4.0),
            min_buffer_packets: 12,
            shifts_range: (0.0, 3.0),
            bursts_range: (0.0, 4.0),
            pareto_fraction_range: None,
        },
        ClassSpec {
            // ECM-style cellular: modest rate, long RTT, bufferbloat
            // (multi-BDP queues), and a channel whose effective rate
            // wanders — modeled as frequent cross-load level shifts.
            prefix: "cell",
            capacity_steps_bps: &[],
            capacity_range_bps: (2e6, 8e6),
            rtt_range_s: (0.060, 0.150),
            congested_prob: 0.5,
            buffer_bdp_range: (3.0, 6.0),
            buffer_bdp_congested_range: (3.0, 6.0),
            min_buffer_packets: 16,
            shifts_range: (4.0, 12.0),
            bursts_range: (2.0, 6.0),
            pareto_fraction_range: None,
        },
        ClassSpec {
            // Lossy wireless: shallow buffers + heavily bursty
            // heavy-tailed cross load, so epochs see loss spikes that
            // are not sustained congestion.
            prefix: "wless",
            capacity_steps_bps: &[],
            capacity_range_bps: (5e6, 25e6),
            rtt_range_s: (0.020, 0.060),
            congested_prob: 0.45,
            buffer_bdp_range: (0.3, 1.0),
            buffer_bdp_congested_range: (0.3, 1.0),
            min_buffer_packets: 8,
            shifts_range: (0.0, 3.0),
            bursts_range: (4.0, 10.0),
            pareto_fraction_range: Some((0.5, 0.9)),
        },
    ];
    &SPECS
}

/// Fraction of the catalog drawn from each class. Fractions are
/// normalized by their sum, so any positive weights work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassMix {
    /// DSL-bottleneck share.
    pub dsl: f64,
    /// ≥ 10 Mbps US-path share.
    pub us: f64,
    /// Transatlantic share.
    pub transatlantic: f64,
    /// Cellular-like share.
    pub cellular: f64,
    /// Lossy-wireless share.
    pub wireless: f64,
}

impl Default for ClassMix {
    /// The `synth*` preset mix: the 2004 composition (dsl/us/eu-us)
    /// extended with the two regimes the paper never measured.
    fn default() -> Self {
        ClassMix {
            dsl: 0.15,
            us: 0.35,
            transatlantic: 0.15,
            cellular: 0.20,
            wireless: 0.15,
        }
    }
}

impl ClassMix {
    /// Apportions `n` paths across the five classes by largest
    /// remainder: totals always sum to `n`, ties break toward earlier
    /// classes, and every positive-share class rounds from its exact
    /// quota, never truncates to zero wholesale.
    pub fn counts(&self, n: usize) -> [usize; 5] {
        let shares = [
            self.dsl,
            self.us,
            self.transatlantic,
            self.cellular,
            self.wireless,
        ];
        let total: f64 = shares.iter().sum();
        assert!(
            total > 0.0 && shares.iter().all(|s| *s >= 0.0),
            "class mix needs non-negative shares with a positive sum"
        );
        let exact: Vec<f64> = shares.iter().map(|s| s / total * n as f64).collect();
        let mut counts = [0usize; 5];
        let mut assigned = 0usize;
        for (count, quota) in counts.iter_mut().zip(&exact) {
            *count = quota.floor() as usize;
            assigned += *count;
        }
        // Largest fractional remainder first; class order breaks ties
        // deterministically.
        let mut order: Vec<usize> = (0..counts.len()).collect();
        order.sort_by(|&a, &b| {
            let (ra, rb) = (exact[a] - exact[a].floor(), exact[b] - exact[b].floor());
            rb.partial_cmp(&ra)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        for k in 0..n.saturating_sub(assigned) {
            counts[order[k % counts.len()]] += 1;
        }
        counts
    }
}

/// Draws one path of `spec`'s class. `idx_in_class` numbers the path
/// within its class block (the name suffix); `id` is its catalog slot.
fn synth_path(rng: &mut StdRng, id: usize, idx_in_class: usize, spec: &ClassSpec) -> PathConfig {
    let congested = rng.random_bool(spec.congested_prob);
    let capacity_bps = if spec.capacity_steps_bps.is_empty() {
        rng.random_range(spec.capacity_range_bps.0..spec.capacity_range_bps.1)
    } else {
        spec.capacity_steps_bps[rng.random_range(0..spec.capacity_steps_bps.len())]
    };
    let rtt_s = rng.random_range(spec.rtt_range_s.0..spec.rtt_range_s.1);
    let bdp_pkts = (capacity_bps * rtt_s / 8.0 / 1500.0).max(1.0);
    let (lo, hi) = if congested {
        spec.buffer_bdp_congested_range
    } else {
        spec.buffer_bdp_range
    };
    let buffer_packets =
        ((bdp_pkts * rng.random_range(lo..hi)) as u32).max(spec.min_buffer_packets);
    let mut cross = draw_cross(rng, congested);
    cross.shifts_per_trace = rng.random_range(spec.shifts_range.0..spec.shifts_range.1);
    cross.bursts_per_trace = rng.random_range(spec.bursts_range.0..spec.bursts_range.1);
    if let Some((p_lo, p_hi)) = spec.pareto_fraction_range {
        cross.pareto_fraction = rng.random_range(p_lo..p_hi);
    }
    PathConfig {
        id,
        name: format!("{}-{:02}", spec.prefix, idx_in_class),
        capacity_bps,
        one_way: Time::from_secs_f64(rtt_s / 2.0),
        buffer_packets,
        cross,
        seed: rng.random::<u64>(),
    }
}

/// A procedural catalog of `n` paths at the [`ClassMix::default`] mix —
/// a pure function of `(n, seed)`; same inputs, bitwise-identical
/// catalog.
pub fn synth_catalog(n: usize, seed: u64) -> Vec<PathConfig> {
    synth_catalog_with_mix(n, seed, ClassMix::default())
}

/// [`synth_catalog`] with an explicit class mix. Paths are laid out in
/// class blocks (`dsl`, `us`, `eu-us`, `cell`, `wless`) with catalog
/// ids `0..n`; one RNG stream draws the whole catalog, so a path's
/// parameters depend on the mix and its position, never on wall clock
/// or host.
pub fn synth_catalog_with_mix(n: usize, seed: u64, mix: ClassMix) -> Vec<PathConfig> {
    assert!(n >= 1, "catalog needs at least one path");
    let mut rng = StdRng::seed_from_u64(seed ^ SYNTH_SALT);
    let counts = mix.counts(n);
    let mut paths = Vec::with_capacity(n);
    for (spec, &count) in class_specs().iter().zip(&counts) {
        for idx_in_class in 0..count {
            let id = paths.len();
            paths.push(synth_path(&mut rng, id, idx_in_class, spec));
        }
    }
    debug_assert_eq!(paths.len(), n);
    paths
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mix_counts_sum_and_follow_the_shares() {
        let counts = ClassMix::default().counts(1000);
        assert_eq!(counts.iter().sum::<usize>(), 1000);
        assert_eq!(counts, [150, 350, 150, 200, 150]);
        // Small n still sums exactly and favors the big classes.
        for n in 1..40 {
            let c = ClassMix::default().counts(n);
            assert_eq!(c.iter().sum::<usize>(), n, "n={n}");
        }
    }

    #[test]
    fn lopsided_mix_is_normalized() {
        let mix = ClassMix {
            dsl: 3.0,
            us: 0.0,
            transatlantic: 0.0,
            cellular: 1.0,
            wireless: 0.0,
        };
        assert_eq!(mix.counts(8), [6, 0, 0, 2, 0]);
    }

    #[test]
    fn catalog_ids_are_contiguous_and_names_follow_class_blocks() {
        let cat = synth_catalog(100, 7);
        assert_eq!(cat.len(), 100);
        for (i, p) in cat.iter().enumerate() {
            assert_eq!(p.id, i);
        }
        let counts = ClassMix::default().counts(100);
        let mut at = 0usize;
        for (spec, &count) in class_specs().iter().zip(&counts) {
            for k in 0..count {
                assert_eq!(cat[at].name, format!("{}-{:02}", spec.prefix, k));
                at += 1;
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = synth_catalog(20, 1);
        let b = synth_catalog(20, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn synth_stream_is_independent_of_handwritten_catalogs() {
        // The salt keeps synth_catalog(seed) off catalog_2004(seed)'s
        // RNG stream: same seed, unrelated paths.
        let synth = synth_catalog(10, 2004);
        let hand = crate::path::catalog_2004(10, 2004);
        assert!(synth
            .iter()
            .zip(&hand)
            .all(|(s, h)| (s.capacity_bps - h.capacity_bps).abs() > 1e-9 || s.seed != h.seed));
    }
}
