// Behavior hashing: a digest of the source trees whose code decides
// what a generated dataset contains. Module-level docs live on the
// `pub mod behavior_hash;` declaration in lib.rs: this file is also
// `include!`d by build.rs (which computes the hash of the real crates
// at compile time), where inner doc comments are not accepted — and
// for the same reason it must stay std-only and self-contained.

use std::fs;
use std::path::Path;

/// FNV-1a, 64-bit. Stable, dependency-free, and plenty for change
/// detection (this guards against staleness, not adversaries).
fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    let mut h = hash;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hashes every file under `dirs` (recursively) as a sorted sequence of
/// `(relative path, contents)` pairs, returning a hex digest. Sorting
/// makes the digest independent of directory-walk order; including the
/// relative path makes renames count as changes.
pub fn hash_source_dirs(dirs: &[&Path]) -> String {
    let mut files: Vec<(String, Vec<u8>)> = Vec::new();
    for dir in dirs {
        let mut paths = Vec::new();
        collect_files(dir, dir, &mut paths);
        for rel in paths {
            let bytes = fs::read(dir.join(&rel)).unwrap_or_default();
            files.push((rel, bytes));
        }
    }
    files.sort();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for (rel, bytes) in &files {
        h = fnv1a(h, rel.as_bytes());
        h = fnv1a(h, &[0]);
        h = fnv1a(h, bytes);
        h = fnv1a(h, &[0]);
    }
    format!("{h:016x}")
}

fn collect_files(root: &Path, dir: &Path, out: &mut Vec<String>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        if path.is_dir() {
            collect_files(root, &path, out);
        } else if let Ok(rel) = path.strip_prefix(root) {
            out.push(rel.to_string_lossy().replace('\\', "/"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join("tputpred-behavior-hash")
            .join(format!("{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn digest_changes_when_file_contents_change() {
        let dir = scratch("contents");
        fs::write(dir.join("a.rs"), "fn a() {}").unwrap();
        let before = hash_source_dirs(&[&dir]);
        fs::write(dir.join("a.rs"), "fn a() { /* edited */ }").unwrap();
        let after = hash_source_dirs(&[&dir]);
        assert_ne!(before, after);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn digest_changes_when_files_are_added_or_renamed() {
        let dir = scratch("names");
        fs::write(dir.join("a.rs"), "fn a() {}").unwrap();
        let one = hash_source_dirs(&[&dir]);
        fs::write(dir.join("b.rs"), "fn b() {}").unwrap();
        let two = hash_source_dirs(&[&dir]);
        assert_ne!(one, two);
        fs::remove_file(dir.join("b.rs")).unwrap();
        fs::rename(dir.join("a.rs"), dir.join("c.rs")).unwrap();
        let renamed = hash_source_dirs(&[&dir]);
        assert_ne!(one, renamed);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn digest_is_deterministic_and_walk_order_independent() {
        let dir = scratch("det");
        for name in ["z.rs", "a.rs", "m/mid.rs"] {
            let p = dir.join(name);
            fs::create_dir_all(p.parent().unwrap()).unwrap();
            fs::write(&p, name).unwrap();
        }
        assert_eq!(hash_source_dirs(&[&dir]), hash_source_dirs(&[&dir]));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compiled_in_hash_matches_a_fresh_walk_of_the_live_tree() {
        // The build-script hash baked into the binary must agree with
        // hashing the same directories now — otherwise the staleness
        // guard would invalidate caches spuriously (or never).
        let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
        let dirs = [
            manifest.join("../netsim/src"),
            manifest.join("../tcp/src"),
            manifest.join("../probes/src"),
            manifest.join("src"),
        ];
        let refs: Vec<&Path> = dirs.iter().map(|d| d.as_path()).collect();
        assert_eq!(crate::data::BEHAVIOR_HASH, hash_source_dirs(&refs));
    }
}
