//! # tputpred-testbed — the synthetic RON
//!
//! The paper's evaluation ran on the RON Internet testbed: 35 paths
//! (May 2004) plus 24 paths (March 2006), 7 traces per path, 150
//! measurement epochs per trace, each epoch following the Fig. 1
//! timeline: a pathload avail-bw measurement, 60 s of ping probing, and a
//! 50 s IPerf transfer (with ping continuing during the transfer). This
//! crate rebuilds that testbed on the simulator:
//!
//! * [`path`] — the path catalog: heterogeneous [`path::PathConfig`]s
//!   (DSL bottlenecks, transatlantic and trans-Pacific RTTs, US
//!   university paths) with per-path cross-traffic profiles covering the
//!   paper's diversity: utilization levels, elastic (persistent-TCP) vs
//!   inelastic (Poisson / Pareto on-off) cross traffic, and stochastic
//!   level shifts and outlier bursts.
//! * [`synth`] — procedural path catalogs (DESIGN.md §15): seeded
//!   class-mix sampling (DSL, ≥ 10 Mbps US, transatlantic,
//!   cellular-like, lossy-wireless) at any scale, calibrated against
//!   the hand-written 2004 catalog — the `synth1k`/`synth10k` presets.
//! * [`preset`] — experiment scales: [`preset::Preset::paper`] keeps the
//!   35×7×150 structure and full durations; [`preset::Preset::quick`]
//!   shrinks traces for minutes-scale regeneration;
//!   [`preset::Preset::tiny`] is CI-sized. Durations scale together so
//!   the *shape* of results is preserved.
//! * [`runner`] — epoch orchestration: per-trace simulation assembly,
//!   the epoch timeline, and parallel (rayon) dataset generation.
//! * [`faults`] — deterministic measurement fault injection: a per-trace
//!   [`faults::FaultPlan`] (drawn from the trace seed, on its own RNG
//!   stream) schedules pathload aborts, prober outages, reply-loss
//!   bursts, truncated/failed transfers, and whole missing epochs — the
//!   failure modes of the real RON testbed (DESIGN.md §10).
//! * [`data`] — the dataset model ([`data::EpochRecord`],
//!   [`data::Dataset`]) with JSON persistence, so every figure binary
//!   reuses one generated dataset instead of re-simulating. Degraded
//!   epochs carry a [`data::EpochStatus`] and `None` measurements;
//!   [`data::Dataset::complete_epochs`] yields only the fully-measured
//!   ones, as the paper's own post-processing did.

/// Behavior hashing: a digest of the source trees (netsim, tcp,
/// probes, testbed) whose code decides what a generated dataset
/// contains. Cached datasets are pure functions of (preset, seed,
/// simulator code); the first two are fingerprinted per shard, and
/// this digest covers the third so
/// [`data::Dataset::load_or_generate_sharded`] (and the legacy
/// monolithic [`data::Dataset::load_or_generate`]) regenerates caches
/// produced by different simulation code — replacing the old "remember
/// to delete `data/*` after touching netsim/tcp/probes/testbed"
/// convention with a mechanical check. `build.rs` `include!`s this
/// module to bake the current hash in as [`data::BEHAVIOR_HASH`].
pub mod behavior_hash;
pub mod data;
pub mod faults;
pub mod path;
pub mod preset;
pub mod runner;
pub mod synth;

pub use data::{
    CompleteEpoch, Dataset, EpochFaults, EpochRecord, EpochStatus, PathData, ShardStats, TraceData,
};
pub use faults::{
    draw_regimes, ConfigError, EpochFaultPlan, FaultConfig, FaultPlan, OutageRegime, RegimeConfig,
    TransferFault,
};
pub use path::{catalog_2004, catalog_2006, CrossProfile, PathConfig};
pub use preset::Preset;
pub use runner::{
    catalog_for, for_each_path, generate, generate_each, generate_path, generate_paths,
    load_or_generate_sharded, run_trace, run_trace_pooled, set_generation_workers, trace_seed,
};
pub use synth::{class_specs, synth_catalog, synth_catalog_with_mix, ClassMix, ClassSpec};
