//! Property-based invariants of the statistics primitives.

use proptest::prelude::*;
use tputpred_stats::histogram::{Binning, Histogram};
use tputpred_stats::{median, pearson, quantile, spearman, Cdf, Summary};

fn sample() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e9..1e9f64, 1..200)
}

proptest! {
    #[test]
    fn cdf_is_monotone_and_normalized(xs in sample()) {
        let cdf = Cdf::from_samples(xs.iter().copied());
        let grid = cdf.grid(20);
        for w in grid.windows(2) {
            prop_assert!(w[0].1 <= w[1].1);
        }
        prop_assert_eq!(grid.last().unwrap().1, 1.0);
        // lint:allow(float-eq): fraction_below returns exact 0/1 at the boundaries
        prop_assert!(cdf.fraction_below(cdf.min() - 1.0) == 0.0);
        // lint:allow(float-eq): fraction_below returns exact 0/1 at the boundaries
        prop_assert!(cdf.fraction_below(cdf.max()) == 1.0);
    }

    #[test]
    fn quantiles_are_ordered_and_within_range(xs in sample(), a in 0.0..1.0f64, b in 0.0..1.0f64) {
        let (lo_q, hi_q) = if a <= b { (a, b) } else { (b, a) };
        let lo = quantile(&xs, lo_q).unwrap();
        let hi = quantile(&xs, hi_q).unwrap();
        prop_assert!(lo <= hi, "q{lo_q} = {lo} > q{hi_q} = {hi}");
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(lo >= min && hi <= max);
    }

    #[test]
    fn median_is_a_location_estimate(xs in sample()) {
        let m = median(&xs).unwrap();
        let below = xs.iter().filter(|&&x| x <= m).count();
        let above = xs.iter().filter(|&&x| x >= m).count();
        // At least half the sample on each side (with interpolation slack).
        prop_assert!(below * 2 + 1 >= xs.len());
        prop_assert!(above * 2 + 1 >= xs.len());
    }

    #[test]
    fn summary_merge_is_order_independent(xs in sample(), split in 0usize..200) {
        let cut = split.min(xs.len());
        let mut ab = Summary::from_samples(xs[..cut].iter().copied());
        ab.merge(&Summary::from_samples(xs[cut..].iter().copied()));
        let mut ba = Summary::from_samples(xs[cut..].iter().copied());
        ba.merge(&Summary::from_samples(xs[..cut].iter().copied()));
        prop_assert_eq!(ab.count(), ba.count());
        let scale = 1.0 + ab.mean().abs();
        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-6 * scale);
        let vscale = 1.0 + ab.population_variance().abs();
        prop_assert!((ab.population_variance() - ba.population_variance()).abs() < 1e-4 * vscale);
    }

    #[test]
    fn histogram_conserves_observations(xs in sample(), bins in 1usize..20) {
        let mut h = Histogram::new(Binning::Linear { lo: -1e6, hi: 1e6, bins });
        for &x in &xs {
            h.push(x);
        }
        prop_assert_eq!(h.total(), xs.len() as u64);
    }

    #[test]
    fn correlation_is_symmetric_and_bounded(
        pairs in prop::collection::vec((-1e6..1e6f64, -1e6..1e6f64), 3..100)
    ) {
        let xs: Vec<f64> = pairs.iter().map(|&(x, _)| x).collect();
        let ys: Vec<f64> = pairs.iter().map(|&(_, y)| y).collect();
        if let Some(r) = pearson(&xs, &ys) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r = {r}");
            let r2 = pearson(&ys, &xs).unwrap();
            prop_assert!((r - r2).abs() < 1e-12);
        }
        if let Some(s) = spearman(&xs, &ys) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s), "rho = {s}");
        }
    }

    #[test]
    fn correlation_of_identical_samples_is_one(xs in prop::collection::vec(-1e6..1e6f64, 3..50)) {
        // Skip degenerate constant samples (undefined correlation).
        if let Some(r) = pearson(&xs, &xs) {
            prop_assert!((r - 1.0).abs() < 1e-9, "self-correlation {r}");
        }
    }
}
