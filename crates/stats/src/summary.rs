//! Streaming summary statistics (Welford's online algorithm).
//!
//! Used wherever the reproduction accumulates a long stream without storing
//! it: per-link utilization in the simulator, per-flow RTT statistics in the
//! TCP implementation, and the Coefficient of Variation (CoV = σ/μ) that
//! §6.1.3 correlates against prediction error.

use serde::{Deserialize, Serialize};

/// Incrementally accumulated mean/variance/min/max of an `f64` stream.
///
/// Welford's update is numerically stable for long streams — the simulator
/// pushes millions of queueing-delay samples through these accumulators.
///
/// # Examples
///
/// ```
/// use tputpred_stats::Summary;
/// let mut s = Summary::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    /// Same as [`Summary::new`]: an empty accumulator with `min = +∞` and
    /// `max = −∞` (a derived `Default` would zero them, corrupting the
    /// first comparison).
    fn default() -> Self {
        Summary::new()
    }
}

impl Summary {
    /// An empty accumulator.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from a complete sample in one call.
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut s = Summary::new();
        for x in samples {
            s.push(x);
        }
        s
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        debug_assert!(!x.is_nan(), "NaN pushed into Summary");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary into this one (parallel reduction).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0.0 for an empty accumulator.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divide by n); 0.0 with fewer than one sample.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divide by n−1); 0.0 with fewer than two samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Coefficient of Variation σ/μ, the variability measure of §6.1.3.
    ///
    /// Returns `None` when the mean is zero (undefined) or no samples were
    /// pushed.
    pub fn cov(&self) -> Option<f64> {
        // lint:allow(float-eq): CoV is undefined only at an exactly zero mean
        if self.count == 0 || self.mean == 0.0 {
            None
        } else {
            Some(self.std_dev() / self.mean.abs())
        }
    }

    /// Smallest observation; `+∞` for an empty accumulator.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `−∞` for an empty accumulator.
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_benign() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.cov(), None);
    }

    #[test]
    fn single_sample_has_zero_variance() {
        let s = Summary::from_samples([42.0]);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn matches_two_pass_computation() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.7).sin() * 10.0 + 5.0)
            .collect();
        let s = Summary::from_samples(xs.iter().copied());
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.population_variance() - var).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_sequential_push() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64 * 1.3).collect();
        let mut a = Summary::from_samples(xs[..40].iter().copied());
        let b = Summary::from_samples(xs[40..].iter().copied());
        a.merge(&b);
        let full = Summary::from_samples(xs.iter().copied());
        assert_eq!(a.count(), full.count());
        assert!((a.mean() - full.mean()).abs() < 1e-9);
        assert!((a.population_variance() - full.population_variance()).abs() < 1e-9);
        assert_eq!(a.min(), full.min());
        assert_eq!(a.max(), full.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::from_samples([1.0, 2.0]);
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);

        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn cov_is_ratio_of_std_to_mean() {
        let s = Summary::from_samples([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.cov().unwrap() - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn cov_of_zero_mean_sample_is_none() {
        let s = Summary::from_samples([-1.0, 1.0]);
        assert_eq!(s.cov(), None);
    }
}
