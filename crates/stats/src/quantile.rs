//! Linear-interpolation quantiles (the "R-7" estimator).
//!
//! The paper reports medians and 10/90th percentiles of the relative
//! prediction error per path (Fig. 7) and percentiles of RMSRE distributions
//! (§6.1.2, §6.1.6). R-7 is the default in R/NumPy and behaves sensibly for
//! the small per-path sample counts (7 traces) that Fig. 21 works with.

/// Returns the `q`-quantile (`0.0 ≤ q ≤ 1.0`) of `data` using linear
/// interpolation between order statistics (type-7 estimator).
///
/// The input does not need to be sorted. Returns `None` for an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or if `data` contains `NaN`.
///
/// # Examples
///
/// ```
/// use tputpred_stats::quantile;
/// let xs = [3.0, 1.0, 2.0, 4.0];
/// assert_eq!(quantile(&xs, 0.5), Some(2.5));
/// assert_eq!(quantile(&xs, 0.0), Some(1.0));
/// assert_eq!(quantile(&xs, 1.0), Some(4.0));
/// ```
pub fn quantile(data: &[f64], q: f64) -> Option<f64> {
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile level {q} outside [0, 1]"
    );
    if data.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    Some(quantile_sorted(&sorted, q))
}

/// Like [`quantile`], but for data already sorted in ascending order.
///
/// Useful when many quantiles are extracted from the same sample (e.g. the
/// median and 10/90th percentiles of Fig. 7), avoiding repeated sorts.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile level {q} outside [0, 1]"
    );
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = q * (n - 1) as f64;
    // Defensive clamp: for q ≤ 1 the product cannot exceed n-1 exactly
    // (n-1 is representable and rounding is monotone), but the index
    // math must stay in bounds even if a caller's q arrives at 1.0 via
    // an expression like `1.0 - 1e-16` (== 1.0 in f64) — the estimator
    // then degrades to the max order statistic rather than panicking.
    let lo = (h.floor() as usize).min(n - 1);
    let hi = (h.ceil() as usize).min(n - 1);
    if lo == hi {
        sorted[lo]
    } else {
        let frac = h - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Returns the median of `data`, or `None` for an empty slice.
///
/// The median is the robust location estimate used by the paper's level-shift
/// and outlier detectors (§5.2): both compare a sample against the *median*
/// of its neighbours, not the mean, so single spikes do not mask shifts.
pub fn median(data: &[f64]) -> Option<f64> {
    quantile(data, 0.5)
}

/// Median of data already sorted in ascending order.
pub fn median_sorted(sorted: &[f64]) -> f64 {
    quantile_sorted(sorted, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_has_no_quantile() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn single_element_is_every_quantile() {
        for q in [0.0, 0.1, 0.5, 0.9, 1.0] {
            assert_eq!(quantile(&[7.0], q), Some(7.0));
        }
    }

    #[test]
    fn median_of_odd_sample_is_middle_order_statistic() {
        assert_eq!(median(&[5.0, 1.0, 3.0]), Some(3.0));
    }

    #[test]
    fn median_of_even_sample_interpolates() {
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), Some(2.5));
    }

    #[test]
    fn extreme_quantiles_are_min_and_max() {
        let xs = [9.0, -2.0, 4.4, 0.0];
        assert_eq!(quantile(&xs, 0.0), Some(-2.0));
        assert_eq!(quantile(&xs, 1.0), Some(9.0));
    }

    #[test]
    fn interpolation_matches_hand_computation() {
        // h = 0.9 * 4 = 3.6 → 0.4 * x[3] + 0.6 * x[4]
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let q90 = quantile(&xs, 0.9).unwrap();
        assert!((q90 - 4.6).abs() < 1e-12);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let a = quantile(&[3.0, 1.0, 2.0], 0.5);
        let b = quantile(&[1.0, 2.0, 3.0], 0.5);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_level_panics() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn near_one_levels_never_index_out_of_bounds() {
        // `1.0 - 1e-16` rounds to `1 - 2^-53`, the largest f64 below
        // 1.0 (the half-ulp of 1.0 is ~1.1e-16). `h = q * (n-1)` then
        // lands a fraction of an ulp under n-1, so `h.ceil()` hits the
        // last index exactly — the edge the clamp guards. Every case
        // must stay in bounds and return a value in the top
        // interpolation cell, never panic.
        let q_below_one: f64 = 1.0 - 1e-16;
        assert_eq!(q_below_one, f64::from_bits(1.0f64.to_bits() - 1));
        for n in [2usize, 3, 5, 7, 100, 513, 1000] {
            let sorted: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let max = (n - 1) as f64;
            let v = quantile_sorted(&sorted, q_below_one);
            assert!(v <= max && v > max - 1.0, "n={n}: {v}");
            assert_eq!(quantile_sorted(&sorted, 1.0), max, "n={n}");
        }
    }

    #[test]
    fn quantile_sorted_agrees_with_quantile() {
        let xs = [0.5, 0.25, 0.75, 1.0, 0.0];
        let mut s = xs.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.1, 0.25, 0.33, 0.5, 0.77, 0.9] {
            assert_eq!(quantile(&xs, q), Some(quantile_sorted(&s, q)));
        }
    }
}
