//! Empirical statistics and plain-text rendering used throughout the
//! reproduction of *On the predictability of large transfer TCP throughput*
//! (He, Dovrolis, Ammar — SIGCOMM 2005 / Computer Networks 2007).
//!
//! The paper's evaluation reports empirical CDFs (Figs. 2–6, 13, 14, 16–18,
//! 19, 23), per-path quantile summaries (Fig. 7), scatter plots with
//! correlation coefficients (Figs. 8–10, 20), and bar groups (Figs. 12, 15,
//! 21, 22). This crate provides exactly those primitives:
//!
//! * [`Cdf`] — an empirical cumulative distribution function with quantile
//!   lookup and fixed-grid evaluation, the backbone of every CDF figure.
//! * [`quantile()`](quantile::quantile), [`median`] — R-7 style linear-interpolation quantiles.
//! * [`pearson`] — the correlation coefficient quoted in §6.1.3/§6.1.4.
//! * [`Summary`] — streaming mean/variance/min/max (Welford's algorithm).
//! * [`RollingCov`] — sliding-window coefficient of variation, the gate
//!   signal of the RTT-CV hybrid predictor.
//! * [`Histogram`] — linear- or log-binned counting histograms for
//!   compact textual summaries of heavy-tailed error distributions.
//! * [`render`] — fixed-width text tables and series so every figure binary
//!   prints the same rows/series the paper plots.
//!
//! All routines treat `NaN` as a programming error and say so in their docs;
//! the simulator never produces `NaN` measurements. Fault injection
//! (DESIGN.md §10) *can* leave a figure binary with an empty sample,
//! so [`Cdf::try_from_samples`] reports degenerate inputs as a typed
//! [`CdfError`] instead of panicking, and the figure binaries filter or
//! refuse accordingly.

pub mod cdf;
pub mod corr;
pub mod histogram;
pub mod quantile;
pub mod render;
pub mod rolling;
pub mod summary;

pub use cdf::{Cdf, CdfError};
pub use corr::{pearson, spearman};
pub use histogram::{Binning, Histogram};
pub use quantile::{median, quantile};
pub use rolling::RollingCov;
pub use summary::Summary;
