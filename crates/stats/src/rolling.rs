//! Rolling-window coefficient of variation.
//!
//! The RTT-CV-gated hybrid predictor (`tputpred-core`) classifies a
//! path's health from the variability of its recent RTT probes: a calm
//! path has CoV below ~0.15, a loaded one above ~0.30 (thresholds from
//! operational GridFTP monitors; see DESIGN.md §12). Unlike [`Summary`],
//! which accumulates forever, this window *forgets* — the gate must
//! react to the path's current state, not its lifetime average.

use crate::summary::Summary;
use std::collections::VecDeque;

/// Coefficient of variation (σ/μ) over a sliding window of the last
/// `capacity` samples.
///
/// # Examples
///
/// ```
/// use tputpred_stats::RollingCov;
/// let mut rc = RollingCov::new(4);
/// assert_eq!(rc.cov(), None); // needs at least two samples
/// for x in [10.0, 10.0, 10.0] {
///     rc.push(x);
/// }
/// assert!(rc.cov().unwrap() < 1e-12, "constant window: zero CoV");
/// ```
#[derive(Debug, Clone)]
pub struct RollingCov {
    window: VecDeque<f64>,
    capacity: usize,
}

impl RollingCov {
    /// Creates a window holding the last `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 2` — CoV needs a variance.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2, "RollingCov window of {capacity} < 2");
        RollingCov {
            window: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Adds one observation, evicting the oldest once full.
    ///
    /// `NaN` is a programming error, as everywhere in this crate.
    pub fn push(&mut self, x: f64) {
        debug_assert!(!x.is_nan(), "NaN pushed into RollingCov");
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(x);
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// CoV (σ/μ, population σ) of the current window, or `None` with
    /// fewer than two samples or a zero mean.
    pub fn cov(&self) -> Option<f64> {
        if self.window.len() < 2 {
            return None;
        }
        Summary::from_samples(self.window.iter().copied()).cov()
    }

    /// Forgets all samples.
    pub fn clear(&mut self) {
        self.window.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn needs_two_samples() {
        let mut rc = RollingCov::new(3);
        assert_eq!(rc.cov(), None);
        rc.push(5.0);
        assert_eq!(rc.cov(), None);
        rc.push(5.0);
        assert!(rc.cov().is_some());
    }

    #[test]
    fn matches_summary_on_a_full_window() {
        let mut rc = RollingCov::new(4);
        for x in [2.0, 4.0, 4.0, 6.0] {
            rc.push(x);
        }
        let expected = Summary::from_samples([2.0, 4.0, 4.0, 6.0]).cov();
        assert_eq!(rc.cov(), expected);
    }

    #[test]
    fn window_forgets_old_spikes() {
        let mut rc = RollingCov::new(3);
        rc.push(1000.0); // ancient spike
        for _ in 0..3 {
            rc.push(10.0);
        }
        assert!(rc.cov().unwrap() < 1e-12, "spike evicted");
        assert_eq!(rc.len(), 3);
    }

    #[test]
    fn zero_mean_has_no_cov() {
        let mut rc = RollingCov::new(2);
        rc.push(-1.0);
        rc.push(1.0);
        assert_eq!(rc.cov(), None);
    }

    #[test]
    fn clear_empties_the_window() {
        let mut rc = RollingCov::new(2);
        rc.push(1.0);
        rc.clear();
        assert!(rc.is_empty());
        assert_eq!(rc.cov(), None);
    }

    #[test]
    #[should_panic(expected = "< 2")]
    fn tiny_capacity_rejected() {
        let _ = RollingCov::new(1);
    }
}
