//! Correlation coefficients.
//!
//! §6.1.3 reports a Pearson correlation coefficient of 0.91 between the
//! per-trace CoV of the throughput time series and the HW-LSO prediction
//! RMSRE (Fig. 20); §6.1.4 reports per-path correlations between RMSRE and
//! loss rate in the 0.72–0.94 range. [`pearson`] reproduces those numbers;
//! [`spearman`] is provided as a robustness check on the same scatter data
//! (rank correlation is insensitive to the heavy upper tail of RMSRE).

/// Pearson product-moment correlation coefficient of two equal-length
/// samples.
///
/// Returns `None` when fewer than two points are given or either sample has
/// zero variance (the coefficient is undefined there).
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use tputpred_stats::pearson;
/// let xs = [1.0, 2.0, 3.0];
/// let ys = [2.0, 4.0, 6.0];
/// assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "pearson: length mismatch");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mean_x = xs.iter().sum::<f64>() / nf;
    let mean_y = ys.iter().sum::<f64>() / nf;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mean_x;
        let dy = y - mean_y;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    // lint:allow(float-eq): zero variance is exact when all samples are identical
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Spearman rank correlation: Pearson correlation of the mid-ranks.
///
/// Ties receive the average of the ranks they span.
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "spearman: length mismatch");
    let rx = ranks(xs);
    let ry = ranks(ys);
    pearson(&rx, &ry)
}

/// Mid-ranks of a sample (1-based; ties averaged).
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("NaN in rank input"));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Average rank over the tie group [i, j].
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_and_negative_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        let down: Vec<f64> = xs.iter().map(|x| -2.0 * x).collect();
        assert!((pearson(&xs, &up).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &down).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_sample_has_undefined_correlation() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), None);
        assert_eq!(pearson(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]), None);
    }

    #[test]
    fn too_few_points_is_none() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[], &[]), None);
    }

    #[test]
    fn uncorrelated_symmetric_data_is_near_zero() {
        // A symmetric cross pattern has exactly zero correlation.
        let xs = [-1.0, 1.0, -1.0, 1.0];
        let ys = [-1.0, -1.0, 1.0, 1.0];
        assert!(pearson(&xs, &ys).unwrap().abs() < 1e-12);
    }

    #[test]
    fn spearman_is_one_for_any_monotone_map() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|&x: &f64| x.exp()).collect();
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tied_ranks_are_averaged() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = pearson(&[1.0, 2.0], &[1.0]);
    }
}
