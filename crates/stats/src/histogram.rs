//! Fixed-bin histograms, linear or logarithmic.
//!
//! The error distributions of this reproduction span orders of magnitude
//! (relative errors from 0.01 to 100+), so the log-binned variant is the
//! natural way to tabulate them; the figure binaries use [`Cdf`](crate::cdf::Cdf)
//! (crate::Cdf) for the paper's CDF plots and histograms for compact
//! textual summaries.

use serde::{Deserialize, Serialize};

/// Bin-edge layout.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Binning {
    /// `bins` equal-width bins covering `[lo, hi)`.
    Linear { lo: f64, hi: f64, bins: usize },
    /// `bins` equal-ratio bins covering `[lo, hi)`; requires `0 < lo < hi`.
    Log { lo: f64, hi: f64, bins: usize },
}

/// A counting histogram with under/overflow buckets.
///
/// # Examples
///
/// ```
/// use tputpred_stats::histogram::{Binning, Histogram};
/// let mut h = Histogram::new(Binning::Log { lo: 0.01, hi: 100.0, bins: 4 });
/// for x in [0.05, 0.5, 5.0, 50.0, 5000.0] {
///     h.push(x);
/// }
/// assert_eq!(h.counts(), &[1, 1, 1, 1]);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    binning: Binning,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics on zero bins, `lo ≥ hi`, or a non-positive `lo` for log
    /// binning.
    pub fn new(binning: Binning) -> Self {
        let bins = match binning {
            Binning::Linear { lo, hi, bins } => {
                assert!(bins > 0, "histogram needs at least one bin");
                assert!(lo < hi, "empty histogram range");
                bins
            }
            Binning::Log { lo, hi, bins } => {
                assert!(bins > 0, "histogram needs at least one bin");
                assert!(lo > 0.0 && lo < hi, "log binning needs 0 < lo < hi");
                bins
            }
        };
        Histogram {
            binning,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Index of the bin containing `x`, if inside the range.
    fn bin_of(&self, x: f64) -> Result<usize, bool> {
        // Err(false) = underflow, Err(true) = overflow.
        match self.binning {
            Binning::Linear { lo, hi, bins } => {
                if x < lo {
                    Err(false)
                } else if x >= hi {
                    Err(true)
                } else {
                    Ok(((x - lo) / (hi - lo) * bins as f64) as usize)
                }
            }
            Binning::Log { lo, hi, bins } => {
                if x < lo {
                    Err(false)
                } else if x >= hi {
                    Err(true)
                } else {
                    let frac = (x / lo).ln() / (hi / lo).ln();
                    Ok(((frac * bins as f64) as usize).min(bins - 1))
                }
            }
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        debug_assert!(!x.is_nan(), "NaN observation");
        match self.bin_of(x) {
            Ok(i) => self.counts[i] += 1,
            Err(false) => self.underflow += 1,
            Err(true) => self.overflow += 1,
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's top.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations, including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// The `(lo, hi)` edges of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        match self.binning {
            Binning::Linear { lo, hi, bins } => {
                assert!(i < bins);
                let w = (hi - lo) / bins as f64;
                (lo + w * i as f64, lo + w * (i + 1) as f64)
            }
            Binning::Log { lo, hi, bins } => {
                assert!(i < bins);
                let r = (hi / lo).powf(1.0 / bins as f64);
                (lo * r.powi(i as i32), lo * r.powi(i as i32 + 1))
            }
        }
    }

    /// Renders rows of `lo..hi count` for the non-empty bins.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.underflow > 0 {
            let _ = writeln!(out, "<{:.4}\t{}", self.first_edge(), self.underflow);
        }
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                let (lo, hi) = self.bin_edges(i);
                let _ = writeln!(out, "{lo:.4}..{hi:.4}\t{c}");
            }
        }
        if self.overflow > 0 {
            let _ = writeln!(out, ">={:.4}\t{}", self.last_edge(), self.overflow);
        }
        out
    }

    fn first_edge(&self) -> f64 {
        match self.binning {
            Binning::Linear { lo, .. } | Binning::Log { lo, .. } => lo,
        }
    }

    fn last_edge(&self) -> f64 {
        match self.binning {
            Binning::Linear { hi, .. } | Binning::Log { hi, .. } => hi,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_binning_places_values() {
        let mut h = Histogram::new(Binning::Linear {
            lo: 0.0,
            hi: 10.0,
            bins: 5,
        });
        for x in [0.0, 1.9, 2.0, 9.99] {
            h.push(x);
        }
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn under_and_overflow_are_counted_separately() {
        let mut h = Histogram::new(Binning::Linear {
            lo: 0.0,
            hi: 1.0,
            bins: 2,
        });
        h.push(-1.0);
        h.push(1.0);
        h.push(99.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.counts(), &[0, 0]);
    }

    #[test]
    fn log_bins_are_equal_ratio() {
        let h = Histogram::new(Binning::Log {
            lo: 1.0,
            hi: 16.0,
            bins: 4,
        });
        assert_eq!(h.bin_edges(0), (1.0, 2.0));
        let (lo3, hi3) = h.bin_edges(3);
        assert!((lo3 - 8.0).abs() < 1e-9 && (hi3 - 16.0).abs() < 1e-9);
    }

    #[test]
    fn log_binning_places_decades() {
        let mut h = Histogram::new(Binning::Log {
            lo: 0.01,
            hi: 100.0,
            bins: 4,
        });
        for x in [0.05, 0.5, 5.0, 50.0] {
            h.push(x);
        }
        assert_eq!(h.counts(), &[1, 1, 1, 1]);
    }

    #[test]
    fn render_lists_nonempty_bins_and_tails() {
        let mut h = Histogram::new(Binning::Linear {
            lo: 0.0,
            hi: 2.0,
            bins: 2,
        });
        h.push(0.5);
        h.push(5.0);
        let r = h.render();
        assert!(r.contains("0.0000..1.0000\t1"));
        assert!(r.contains(">=2.0000\t1"));
        assert!(!r.contains("1.0000..2.0000"));
    }

    #[test]
    #[should_panic(expected = "0 < lo")]
    fn log_binning_rejects_nonpositive_lo() {
        let _ = Histogram::new(Binning::Log {
            lo: 0.0,
            hi: 1.0,
            bins: 2,
        });
    }
}
