//! Empirical cumulative distribution functions.
//!
//! Most of the paper's results are presented as CDFs of the relative
//! prediction error `E` (Figs. 2, 6, 13, 14), of RTT/loss increases during
//! the target flow (Figs. 3–5), and of per-trace RMSRE (Figs. 16–19, 23).
//! [`Cdf`] stores the sorted sample and answers both directions of lookup:
//! `F(x)` (fraction of samples ≤ x) and the quantile function `F⁻¹(q)`.

use crate::quantile::quantile_sorted;
use serde::{Deserialize, Serialize};

/// Why a [`Cdf`] could not be built from a sample.
///
/// Fault injection (DESIGN.md §10) makes empty samples a *reachable*
/// state for figure binaries — a preset with heavy faults can refuse
/// every epoch of a path — so construction offers a fallible path
/// ([`Cdf::try_from_samples`]) and callers decide whether to filter,
/// refuse, or panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CdfError {
    /// The sample contained no values at all.
    Empty,
    /// The sample contained at least this many non-finite values
    /// (`NaN` or `±inf`), which have no place in an empirical CDF.
    NonFinite {
        /// How many of the samples were non-finite.
        count: usize,
    },
}

impl std::fmt::Display for CdfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CdfError::Empty => write!(f, "empirical CDF of an empty sample"),
            CdfError::NonFinite { count } => {
                write!(f, "empirical CDF sample has {count} non-finite value(s)")
            }
        }
    }
}

impl std::error::Error for CdfError {}

/// An empirical CDF over a set of `f64` samples.
///
/// Construction sorts the sample once; lookups are `O(log n)`.
///
/// # Examples
///
/// ```
/// use tputpred_stats::Cdf;
/// let cdf = Cdf::from_samples([1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(cdf.fraction_below(2.5), 0.5);
/// assert_eq!(cdf.quantile(1.0), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds an empirical CDF from any iterator of samples.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or contains non-finite values.
    /// Callers whose sample may legitimately be degenerate (fault
    /// injection, DESIGN.md §10) should use [`Cdf::try_from_samples`].
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        match Self::try_from_samples(samples) {
            Ok(cdf) => cdf,
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds an empirical CDF, reporting degenerate samples as a typed
    /// [`CdfError`] instead of panicking.
    ///
    /// # Examples
    ///
    /// ```
    /// use tputpred_stats::{Cdf, CdfError};
    /// assert_eq!(Cdf::try_from_samples([]).unwrap_err(), CdfError::Empty);
    /// assert_eq!(
    ///     Cdf::try_from_samples([1.0, f64::NAN]).unwrap_err(),
    ///     CdfError::NonFinite { count: 1 },
    /// );
    /// assert!(Cdf::try_from_samples([1.0, 2.0]).is_ok());
    /// ```
    pub fn try_from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Result<Self, CdfError> {
        let mut sorted: Vec<f64> = samples.into_iter().collect();
        if sorted.is_empty() {
            return Err(CdfError::Empty);
        }
        let bad = sorted.iter().filter(|v| !v.is_finite()).count();
        if bad > 0 {
            return Err(CdfError::NonFinite { count: bad });
        }
        // All values are finite, so total_cmp agrees with the usual
        // partial order and never has to arbitrate NaN.
        sorted.sort_by(f64::total_cmp);
        Ok(Cdf { sorted })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always `false`: construction rejects empty samples.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The sorted sample, ascending.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// `F(x)`: the fraction of samples that are ≤ `x`.
    pub fn fraction_below(&self, x: f64) -> f64 {
        // partition_point returns the count of elements <= x because the
        // predicate holds exactly on the prefix of the sorted sample.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// `F⁻¹(q)`: the `q`-quantile of the sample (type-7 interpolation).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_sorted(&self.sorted, q)
    }

    /// Minimum sample value.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum sample value.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("CDF is never empty")
    }

    /// Evaluates the CDF on an evenly spaced grid of `points` x-values
    /// spanning `[min, max]`, returning `(x, F(x))` pairs.
    ///
    /// This is how the figure binaries emit a plottable series: the paper's
    /// CDF figures become a column of `x  F(x)` rows.
    ///
    /// # Panics
    ///
    /// Panics if `points < 2`.
    pub fn grid(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "CDF grid needs at least 2 points");
        let (lo, hi) = (self.min(), self.max());
        let step = (hi - lo) / (points - 1) as f64;
        (0..points)
            .map(|i| {
                // Pin the final grid point to the exact maximum: the
                // incremental sum can land a hair below it and miss the
                // top sample.
                let x = if i == points - 1 {
                    hi
                } else {
                    lo + step * i as f64
                };
                (x, self.fraction_below(x))
            })
            .collect()
    }

    /// Evaluates the CDF at each of the given x-values.
    ///
    /// Useful for comparing two CDFs on a common grid, as the paper does when
    /// overlaying lossy/lossless predictions (Fig. 2) or original vs revised
    /// PFTK (Fig. 13).
    pub fn at(&self, xs: &[f64]) -> Vec<(f64, f64)> {
        xs.iter().map(|&x| (x, self.fraction_below(x))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        let _ = Cdf::from_samples(std::iter::empty());
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_sample_panics() {
        let _ = Cdf::from_samples([1.0, f64::NAN, 2.0]);
    }

    #[test]
    fn try_from_samples_reports_degenerate_inputs() {
        assert_eq!(Cdf::try_from_samples([]).unwrap_err(), CdfError::Empty);
        assert_eq!(
            Cdf::try_from_samples([f64::NAN, 1.0, f64::INFINITY]).unwrap_err(),
            CdfError::NonFinite { count: 2 },
        );
        assert_eq!(
            Cdf::try_from_samples([f64::NEG_INFINITY]).unwrap_err(),
            CdfError::NonFinite { count: 1 },
        );
        let ok = Cdf::try_from_samples([2.0, 1.0]).expect("finite sample");
        assert_eq!(ok.samples(), &[1.0, 2.0]);
    }

    #[test]
    fn cdf_error_messages_name_the_problem() {
        assert!(CdfError::Empty.to_string().contains("empty"));
        assert!(CdfError::NonFinite { count: 3 }
            .to_string()
            .contains("3 non-finite"));
    }

    #[test]
    fn fraction_below_is_step_function() {
        let cdf = Cdf::from_samples([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.fraction_below(0.5), 0.0);
        assert_eq!(cdf.fraction_below(1.0), 0.25);
        assert_eq!(cdf.fraction_below(1.5), 0.25);
        assert_eq!(cdf.fraction_below(4.0), 1.0);
        assert_eq!(cdf.fraction_below(9.0), 1.0);
    }

    #[test]
    fn duplicates_count_multiply() {
        let cdf = Cdf::from_samples([2.0, 2.0, 2.0, 5.0]);
        assert_eq!(cdf.fraction_below(2.0), 0.75);
    }

    #[test]
    fn min_max_are_sample_extremes() {
        let cdf = Cdf::from_samples([3.0, -1.0, 2.0]);
        assert_eq!(cdf.min(), -1.0);
        assert_eq!(cdf.max(), 3.0);
    }

    #[test]
    fn grid_spans_range_and_is_monotone() {
        let cdf = Cdf::from_samples([0.0, 1.0, 2.0, 5.0, 10.0]);
        let grid = cdf.grid(11);
        assert_eq!(grid.len(), 11);
        assert_eq!(grid[0].0, 0.0);
        assert_eq!(grid[10].0, 10.0);
        assert_eq!(grid[10].1, 1.0);
        for w in grid.windows(2) {
            assert!(w[0].1 <= w[1].1, "CDF must be non-decreasing");
        }
    }

    #[test]
    fn quantile_round_trips_with_fraction_below() {
        let cdf = Cdf::from_samples((0..100).map(f64::from));
        let m = cdf.quantile(0.5);
        let f = cdf.fraction_below(m);
        assert!((f - 0.5).abs() <= 0.01, "median lookup near 0.5, got {f}");
    }

    #[test]
    fn at_evaluates_requested_points() {
        let cdf = Cdf::from_samples([1.0, 2.0]);
        let pts = cdf.at(&[0.0, 1.0, 2.0]);
        assert_eq!(pts, vec![(0.0, 0.0), (1.0, 0.5), (2.0, 1.0)]);
    }
}
