//! Plain-text rendering of figure data.
//!
//! The benchmark harness regenerates every figure of the paper as text: a
//! CDF becomes a two-column series, a scatter plot a two-column point list,
//! a bar group a table. Keeping rendering in one place guarantees all
//! figure binaries emit the same machine-greppable format:
//!
//! ```text
//! # fig02: CDF of relative prediction error E
//! # series: all
//! -0.95  0.0132
//! ...
//! ```

use crate::Cdf;
use std::fmt::Write as _;

/// Renders a named `(x, y)` series, one point per line, preceded by a
/// `# series: <name>` comment.
pub fn series(name: &str, points: &[(f64, f64)]) -> String {
    let mut out = String::new();
    writeln!(out, "# series: {name}").unwrap();
    for (x, y) in points {
        writeln!(out, "{x:.6}\t{y:.6}").unwrap();
    }
    out
}

/// Renders a CDF as a series of `points` grid rows.
pub fn cdf_series(name: &str, cdf: &Cdf, points: usize) -> String {
    series(name, &cdf.grid(points))
}

/// A simple fixed-width text table with a header row.
///
/// Every figure that the paper draws as bars (Figs. 12, 15, 21, 22) is
/// reproduced as one of these tables, one bar group per row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of already-formatted cells.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "table row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with padded columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}", width = widths[i]);
            }
            // Trim trailing padding so rendered width doesn't depend on the
            // last column's width.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }
}

/// Formats an `f64` with 4 significant-looking decimals, the convention all
/// figure tables use for error metrics.
pub fn f(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a throughput in Mbps with 3 decimals.
pub fn mbps(bits_per_sec: f64) -> String {
    format!("{:.3}", bits_per_sec / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_has_header_and_points() {
        let s = series("demo", &[(1.0, 0.5), (2.0, 1.0)]);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "# series: demo");
        assert!(lines[1].starts_with("1.000000\t"));
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn cdf_series_emits_requested_points() {
        let cdf = Cdf::from_samples([0.0, 1.0]);
        let s = cdf_series("c", &cdf, 5);
        assert_eq!(s.lines().count(), 6);
    }

    #[test]
    fn table_renders_padded_columns() {
        let mut t = Table::new(["path", "rmsre"]);
        t.row(["p01", "0.1234"]);
        t.row(["p02-long-name", "10.0"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("path"));
        assert!(lines[2].starts_with("p01 "));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn helpers_format_numbers() {
        assert_eq!(f(1.23456), "1.2346");
        assert_eq!(mbps(2_500_000.0), "2.500");
    }

    #[test]
    fn empty_table_reports_empty() {
        let t = Table::new(["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
