//! An empirical-conditional predictor: forecast the *median of past
//! throughputs observed under similar probe conditions*, in the spirit
//! of data-driven end-to-end predictors that learn the mapping from
//! path state to transfer rate directly from observations rather than
//! through a closed-form model (cf. arXiv:2111.14080).
//!
//! Where FB commits to Eq. (3)'s functional form and HB ignores probe
//! state entirely, this family bins history by a coarse quantisation of
//! the a-priori features — a log₂ bucket of available bandwidth and a
//! decade bucket of loss rate — and answers queries from the matching
//! bin. It therefore inherits HB's robustness to model error *and*
//! FB's ability to react instantly when probes show the path changed
//! regime (the query lands in a different, already-populated bin).

use crate::error::PredictError;
use crate::predictor::{typed_forecast, EpochFeatures, EpochObservation, Predictor, Update};
use std::collections::{BTreeMap, VecDeque};

/// Coarse, order-preserving bin key for one epoch's probe features.
///
/// `None` components are their own bin: "probe missing" is itself a
/// path condition worth conditioning on (fault injection, DESIGN.md
/// §10, produces exactly such epochs).
type BinKey = (Option<i16>, Option<u8>);

/// Predicts the median throughput of past epochs whose probe features
/// fell in the same bin.
///
/// Deterministic by construction: bins live in a [`BTreeMap`] (ordered
/// iteration) and each bin is a bounded FIFO of samples.
///
/// # Examples
///
/// ```
/// use tputpred_core::conditional::ConditionalPredictor;
/// use tputpred_core::fb::PathEstimates;
/// use tputpred_core::predictor::{EpochObservation, Predictor};
///
/// let mut c = ConditionalPredictor::new();
/// let calm = PathEstimates { rtt: 0.05, loss_rate: 0.0, avail_bw: 80e6 };
/// let busy = PathEstimates { rtt: 0.05, loss_rate: 0.02, avail_bw: 2e6 };
/// for _ in 0..5 {
///     c.observe(&EpochObservation::new(calm.into(), Some(60e6)));
///     c.observe(&EpochObservation::new(busy.into(), Some(1.5e6)));
/// }
/// // The probes alone select the right regime:
/// assert_eq!(c.try_predict(&calm.into()), Ok(60e6));
/// assert_eq!(c.try_predict(&busy.into()), Ok(1.5e6));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ConditionalPredictor {
    bins: BTreeMap<BinKey, VecDeque<f64>>,
}

/// Samples a bin retains (older ones age out FIFO).
const PER_BIN_CAP: usize = 64;

/// Samples a bin needs before it answers queries itself (below this the
/// global median answers instead).
const MIN_BIN: usize = 3;

/// Log₂ bucket of available bandwidth in Mbps, clamped to `[-8, 12]`
/// (≈ 4 kbit/s … 4 Gbit/s — beyond either end, finer distinctions
/// don't change transfer behaviour).
fn abw_bucket(avail_bw_bps: f64) -> Option<i16> {
    if avail_bw_bps <= 0.0 {
        return None;
    }
    let bucket = (avail_bw_bps / 1e6).log2().floor();
    Some((bucket as i16).clamp(-8, 12))
}

/// Decade bucket of loss rate: lossless, ≤0.1%, ≤1%, heavy.
fn loss_bucket(loss_rate: f64) -> u8 {
    if loss_rate <= 0.0 {
        0
    } else if loss_rate <= 0.001 {
        1
    } else if loss_rate <= 0.01 {
        2
    } else {
        3
    }
}

fn bin_key(features: &EpochFeatures) -> BinKey {
    (
        features.probes.avail_bw.and_then(abw_bucket),
        features.probes.loss_rate.map(loss_bucket),
    )
}

impl ConditionalPredictor {
    /// Creates an empty conditional predictor.
    pub fn new() -> Self {
        ConditionalPredictor::default()
    }

    /// Number of non-empty feature bins currently held.
    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }

    fn median_of(samples: impl Iterator<Item = f64>) -> Option<f64> {
        let xs: Vec<f64> = samples.collect();
        tputpred_stats::median(&xs)
    }
}

impl Predictor for ConditionalPredictor {
    /// Answers with the matching bin's median when that bin holds at
    /// least `MIN_BIN` samples; with the global median across all
    /// bins when it doesn't (a fresh regime borrows the path's overall
    /// level until it earns its own history); and refuses with
    /// [`PredictError::InsufficientHistory`] only before any transfer
    /// has been observed at all.
    fn try_predict(&self, features: &EpochFeatures) -> Result<f64, PredictError> {
        let key = bin_key(features);
        let bin = self
            .bins
            .get(&key)
            .filter(|bin| bin.len() >= MIN_BIN)
            .and_then(|bin| Self::median_of(bin.iter().copied()));
        let global = || Self::median_of(self.bins.values().flat_map(|bin| bin.iter().copied()));
        typed_forecast(bin.or_else(global))
    }

    /// Files the epoch's throughput under its feature bin. Epochs
    /// without a measured throughput change nothing
    /// ([`Update::Skipped`]) — in particular they do *not* create an
    /// empty bin, so prediction is a pure function of the transfers
    /// actually observed.
    fn observe(&mut self, epoch: &EpochObservation) -> Update {
        let Some(x_bps) = epoch.throughput_bps else {
            return Update::Skipped;
        };
        let bin = self.bins.entry(bin_key(&epoch.features)).or_default();
        if bin.len() == PER_BIN_CAP {
            bin.pop_front();
        }
        bin.push_back(x_bps);
        Update::Accepted
    }

    fn reset(&mut self) {
        self.bins.clear();
    }

    // lint:hot-path
    fn name(&self) -> &str {
        "conditional"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fb::PathEstimates;

    fn calm() -> EpochFeatures {
        PathEstimates {
            rtt: 0.05,
            loss_rate: 0.0,
            avail_bw: 80e6,
        }
        .into()
    }

    fn busy() -> EpochFeatures {
        PathEstimates {
            rtt: 0.05,
            loss_rate: 0.02,
            avail_bw: 2e6,
        }
        .into()
    }

    #[test]
    fn refuses_before_any_observation() {
        let c = ConditionalPredictor::new();
        assert_eq!(
            c.try_predict(&calm()),
            Err(PredictError::InsufficientHistory)
        );
    }

    #[test]
    fn conditions_on_probe_state() {
        let mut c = ConditionalPredictor::new();
        for _ in 0..MIN_BIN {
            c.observe(&EpochObservation::new(calm(), Some(60e6)));
            c.observe(&EpochObservation::new(busy(), Some(1.5e6)));
        }
        assert_eq!(c.try_predict(&calm()), Ok(60e6));
        assert_eq!(c.try_predict(&busy()), Ok(1.5e6));
        assert_eq!(c.bin_count(), 2);
    }

    #[test]
    fn thin_bin_borrows_the_global_median() {
        let mut c = ConditionalPredictor::new();
        for _ in 0..10 {
            c.observe(&EpochObservation::new(calm(), Some(60e6)));
        }
        // One sample in the busy bin: below MIN_BIN, so the global
        // median (dominated by calm samples) answers.
        c.observe(&EpochObservation::new(busy(), Some(1.5e6)));
        assert_eq!(c.try_predict(&busy()), Ok(60e6));
    }

    #[test]
    fn missing_probes_form_their_own_bin() {
        let mut c = ConditionalPredictor::new();
        for _ in 0..MIN_BIN {
            c.observe(&EpochObservation::sample(9e6));
        }
        assert_eq!(c.try_predict(&EpochFeatures::NONE), Ok(9e6));
    }

    #[test]
    fn gap_epochs_change_nothing() {
        let mut c = ConditionalPredictor::new();
        c.observe(&EpochObservation::new(calm(), Some(60e6)));
        assert_eq!(c.observe(&EpochObservation::GAP), Update::Skipped);
        assert_eq!(c.bin_count(), 1);
    }

    #[test]
    fn bins_age_out_fifo() {
        let mut c = ConditionalPredictor::new();
        for _ in 0..PER_BIN_CAP {
            c.observe(&EpochObservation::new(calm(), Some(10e6)));
        }
        for _ in 0..PER_BIN_CAP {
            c.observe(&EpochObservation::new(calm(), Some(20e6)));
        }
        // The first generation has fully aged out.
        assert_eq!(c.try_predict(&calm()), Ok(20e6));
    }

    #[test]
    fn abw_buckets_are_log2_and_clamped() {
        assert_eq!(abw_bucket(1e6), Some(0));
        assert_eq!(abw_bucket(2e6), Some(1));
        assert_eq!(abw_bucket(3e6), Some(1));
        assert_eq!(abw_bucket(80e6), Some(6));
        assert_eq!(abw_bucket(1e3), Some(-8));
        assert_eq!(abw_bucket(1e12), Some(12));
        assert_eq!(abw_bucket(0.0), None);
        assert_eq!(abw_bucket(-5.0), None);
    }

    #[test]
    fn loss_buckets_split_by_decade() {
        assert_eq!(loss_bucket(0.0), 0);
        assert_eq!(loss_bucket(1e-4), 1);
        assert_eq!(loss_bucket(5e-3), 2);
        assert_eq!(loss_bucket(0.1), 3);
    }

    #[test]
    fn reset_clears_all_bins() {
        let mut c = ConditionalPredictor::new();
        c.observe(&EpochObservation::sample(1e6));
        c.reset();
        assert_eq!(c.bin_count(), 0);
        assert_eq!(c.name(), "conditional");
    }
}
