//! The predictor registry: every family in this crate, constructible
//! by name.
//!
//! Figure binaries and the league table (`fig24_league_table`) iterate
//! [`predictor_catalog`] instead of hand-wiring constructors, so a new
//! family added here automatically appears in every cross-predictor
//! comparison. Ablations that need one specific predictor resolve it
//! with [`predictor_by_name`] — keeping the *name* the single source of
//! truth for what ran (each entry's name equals what the constructed
//! predictor reports from [`Predictor::name`], which tests enforce).

use crate::conditional::ConditionalPredictor;
use crate::fb::{FbConfig, FbPredictor, SmoothedFbPredictor};
use crate::gated::RttCvGated;
use crate::hb::{ArPredictor, Ewma, HoltWinters, MovingAverage};
use crate::hybrid::HybridPredictor;
use crate::lso::Lso;
use crate::predictor::Predictor;
use crate::regression::RegressionPredictor;
use crate::resilience::{CircuitBreaker, Fallback, LastKnownGood, Staleness};

/// A boxed predictor as the catalog hands them out.
pub type BoxedPredictor = Box<dyn Predictor + Send>;

/// One named entry of the registry.
pub struct CatalogEntry {
    /// Registry name — equal to the constructed predictor's
    /// [`Predictor::name`].
    pub name: &'static str,
    /// Constructor. The [`FbConfig`] parameterises the formula side of
    /// FB-backed entries; purely history-based entries ignore it.
    pub make: fn(&FbConfig) -> BoxedPredictor,
}

/// The history side every FB/HB combination entry uses: the paper's
/// best single predictor, HW(0.8, 0.2) under LSO (§6.1.1).
fn best_hb() -> Lso<HoltWinters> {
    Lso::new(HoltWinters::new(0.8, 0.2))
}

/// Every predictor family in the crate, in presentation order:
/// formula-based, raw history-based, LSO-wrapped, the combined
/// families, then the resilience policy combinators (DESIGN.md §13).
pub fn predictor_catalog() -> Vec<CatalogEntry> {
    vec![
        CatalogEntry {
            name: "FB",
            make: |cfg| Box::new(FbPredictor::new(*cfg)),
        },
        CatalogEntry {
            name: "FB-smoothed",
            make: |cfg| Box::new(SmoothedFbPredictor::new(*cfg, 10)),
        },
        CatalogEntry {
            name: "1-MA",
            make: |_| Box::new(MovingAverage::new(1)),
        },
        CatalogEntry {
            name: "5-MA",
            make: |_| Box::new(MovingAverage::new(5)),
        },
        CatalogEntry {
            name: "10-MA",
            make: |_| Box::new(MovingAverage::new(10)),
        },
        CatalogEntry {
            name: "20-MA",
            make: |_| Box::new(MovingAverage::new(20)),
        },
        CatalogEntry {
            name: "0.8-EWMA",
            make: |_| Box::new(Ewma::new(0.8)),
        },
        CatalogEntry {
            name: "0.8-HW",
            make: |_| Box::new(HoltWinters::new(0.8, 0.2)),
        },
        CatalogEntry {
            name: "AR(2)",
            make: |_| Box::new(ArPredictor::new(2, 64)),
        },
        CatalogEntry {
            name: "5-MA-LSO",
            make: |_| Box::new(Lso::new(MovingAverage::new(5))),
        },
        CatalogEntry {
            name: "10-MA-LSO",
            make: |_| Box::new(Lso::new(MovingAverage::new(10))),
        },
        CatalogEntry {
            name: "20-MA-LSO",
            make: |_| Box::new(Lso::new(MovingAverage::new(20))),
        },
        CatalogEntry {
            name: "0.8-HW-LSO",
            make: |_| Box::new(best_hb()),
        },
        CatalogEntry {
            name: "hybrid",
            make: |cfg| Box::new(HybridPredictor::new(FbPredictor::new(*cfg), best_hb())),
        },
        CatalogEntry {
            name: "regression",
            make: |cfg| Box::new(RegressionPredictor::new(*cfg)),
        },
        CatalogEntry {
            name: "conditional",
            make: |_| Box::new(ConditionalPredictor::new()),
        },
        CatalogEntry {
            name: "rtt-cv-gated",
            make: |cfg| Box::new(RttCvGated::new(FbPredictor::new(*cfg), best_hb())),
        },
        CatalogEntry {
            name: "LKG",
            make: |_| Box::new(LastKnownGood::new()),
        },
        CatalogEntry {
            name: "FB->0.8-HW-LSO->LKG",
            make: |cfg| {
                Box::new(Fallback::new(
                    FbPredictor::new(*cfg),
                    Fallback::new(best_hb(), LastKnownGood::new()),
                ))
            },
        },
        CatalogEntry {
            name: "stale3-0.8-HW-LSO",
            make: |_| Box::new(Staleness::new(best_hb(), 3)),
        },
        CatalogEntry {
            name: "breaker3-FB",
            make: |cfg| Box::new(CircuitBreaker::new(FbPredictor::new(*cfg), 3, 5)),
        },
        // A cold-start breaker: raw HW refuses through its warmup, so
        // this entry walks the full Open -> HalfOpen -> Closed cycle at
        // the head of every trace (the inner predictor keeps learning
        // while the breaker is open, so the half-open probe succeeds).
        CatalogEntry {
            name: "breaker2-0.8-HW",
            make: |_| Box::new(CircuitBreaker::new(HoltWinters::new(0.8, 0.2), 2, 2)),
        },
    ]
}

/// Constructs the named predictor, or `None` for a name the catalog
/// doesn't know.
pub fn predictor_by_name(name: &str, config: &FbConfig) -> Option<BoxedPredictor> {
    predictor_catalog()
        .into_iter()
        .find(|entry| entry.name == name)
        .map(|entry| (entry.make)(config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fb::PathEstimates;
    use crate::predictor::EpochObservation;

    #[test]
    fn entry_names_match_predictor_names() {
        let cfg = FbConfig::default();
        for entry in predictor_catalog() {
            let p = (entry.make)(&cfg);
            assert_eq!(p.name(), entry.name, "catalog name drift");
        }
    }

    #[test]
    fn names_are_unique() {
        let names: Vec<&str> = predictor_catalog().iter().map(|e| e.name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len(), "duplicate catalog names");
    }

    #[test]
    fn by_name_resolves_and_unknown_is_none() {
        let cfg = FbConfig::default();
        assert!(predictor_by_name("0.8-HW-LSO", &cfg).is_some());
        assert!(predictor_by_name("no-such-predictor", &cfg).is_none());
    }

    #[test]
    fn every_family_survives_a_gappy_run() {
        // Protocol smoke test: features-only, throughput-only, full and
        // empty epochs, through every entry, via the trait object.
        let cfg = FbConfig::default();
        let est = PathEstimates {
            rtt: 0.08,
            loss_rate: 0.01,
            avail_bw: 20e6,
        };
        let epochs = [
            EpochObservation::GAP,
            EpochObservation::new(est.into(), None),
            EpochObservation::sample(5e6),
            EpochObservation::new(est.into(), Some(6e6)),
            EpochObservation::sample(7e6),
        ];
        for entry in predictor_catalog() {
            let mut p = (entry.make)(&cfg);
            for epoch in &epochs {
                let _ = p.predict(&epoch.features);
                p.observe(epoch);
            }
            if let Ok(f) = p.try_predict(&est.into()) {
                assert!(
                    f.is_finite() && f > 0.0,
                    "{}: non-positive forecast {f}",
                    entry.name
                );
            }
            p.reset();
        }
    }
}
