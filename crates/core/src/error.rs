//! Typed prediction errors for degraded inputs.
//!
//! On the real RON testbed, measurements fail: pathload aborts without
//! converging, ping probes vanish in bursts, transfers are cut short. The
//! fault-injection layer (`tputpred-testbed::faults`) reproduces those
//! failures, so predictor entry points must degrade instead of dying.
//! Every fallible entry point (`FbPredictor::try_predict`,
//! `Predictor::try_predict`) returns a [`PredictError`] rather than a NaN
//! or a panic, and callers decide whether to skip the epoch or fall back.

use std::fmt;

/// Why a predictor could not produce a forecast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictError {
    /// FB (Eq. 3) cannot run without an RTT estimate `T̂` — every branch
    /// divides by it.
    MissingRtt,
    /// FB has neither a loss-rate `p̂` nor an avail-bw `Â` estimate, so
    /// neither branch of Eq. (3) is computable beyond the bare window
    /// bound; refusing is safer than returning `W/T̂` alone.
    MissingLossAndAvailBw,
    /// An estimate was present but outside its domain (named field):
    /// non-positive/non-finite RTT, loss rate outside `[0, 1]`, or
    /// negative/non-finite avail-bw.
    InvalidEstimate(&'static str),
    /// An HB predictor has not yet observed enough samples to forecast
    /// (e.g. Holt-Winters needs two to initialise its trend).
    InsufficientHistory,
    /// A [`crate::resilience::Staleness`] guard refused: the last
    /// measured throughput is older than the guard's age bound, so the
    /// wrapped history is too stale to trust through an outage.
    Stale,
    /// A [`crate::resilience::CircuitBreaker`] is open: the wrapped
    /// predictor refused too many consecutive epochs and is resting out
    /// its cooldown before a half-open probe.
    CircuitOpen,
}

impl fmt::Display for PredictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredictError::MissingRtt => write!(f, "no RTT estimate available"),
            PredictError::MissingLossAndAvailBw => {
                write!(f, "neither loss-rate nor avail-bw estimate available")
            }
            PredictError::InvalidEstimate(field) => {
                write!(f, "estimate `{field}` outside its valid domain")
            }
            PredictError::InsufficientHistory => {
                write!(f, "not enough history to forecast")
            }
            PredictError::Stale => {
                write!(f, "last observation is too old to trust")
            }
            PredictError::CircuitOpen => {
                write!(f, "circuit breaker open after repeated refusals")
            }
        }
    }
}

impl std::error::Error for PredictError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_invalid_field() {
        let msg = PredictError::InvalidEstimate("rtt").to_string();
        assert!(msg.contains("rtt"), "{msg}");
    }

    #[test]
    fn is_a_std_error() {
        fn takes_error<E: std::error::Error>(_: E) {}
        takes_error(PredictError::InsufficientHistory);
    }
}
