//! A multivariate-regression predictor in the style of Vazhkudai &
//! Schopf, *Using Regression Techniques to Predict Large Data Transfers*
//! (arXiv:cs/0304037): regress observed transfer throughput on the
//! formula's a-priori prediction and on the previous transfer, refitting
//! over a sliding window of past epochs.
//!
//! Where the paper's §7 hybrid blends FB and HB with a fixed decay, this
//! family *learns* the blend: ordinary least squares over rows
//!
//! ```text
//! target_bps ≈ c₀·fb_pred_bps + c₁·prev_bps + c₂
//! ```
//!
//! so a path where the formula is systematically 5× optimistic (the
//! congestion-limited regime of §6.2) earns `c₀ ≈ 0.2`, and a path where
//! throughput is sticky earns a large `c₁`. Until the window holds
//! [`RegressionPredictor::MIN_FIT`] rows the predictor falls back to the
//! raw formula prediction, mirroring how Vazhkudai & Schopf seed their
//! regressors from log playback.

use crate::error::PredictError;
use crate::fb::{FbConfig, FbPredictor};
use crate::predictor::{typed_forecast, EpochFeatures, EpochObservation, Predictor, Update};
use std::collections::VecDeque;

/// Number of regressors including the intercept.
const COEFFS: usize = 3;

/// Sliding-window OLS over `[fb_pred_bps, prev_bps, 1] → target_bps`.
///
/// # Examples
///
/// ```
/// use tputpred_core::fb::PathEstimates;
/// use tputpred_core::predictor::{EpochObservation, Predictor};
/// use tputpred_core::regression::RegressionPredictor;
///
/// let mut r = RegressionPredictor::default();
/// let est = PathEstimates { rtt: 0.08, loss_rate: 0.01, avail_bw: 50e6 };
/// // The path consistently delivers half the formula's prediction:
/// let fb_pred = r.try_predict(&est.into()).unwrap();
/// for _ in 0..16 {
///     r.observe(&EpochObservation::new(est.into(), Some(fb_pred / 2.0)));
/// }
/// let learned = r.try_predict(&est.into()).unwrap();
/// assert!((learned - fb_pred / 2.0).abs() / fb_pred < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct RegressionPredictor {
    fb: FbPredictor,
    /// Regression rows `[fb_pred_bps, prev_bps, target_bps]`.
    window: VecDeque<[f64; 3]>,
    capacity: usize,
    last_throughput_bps: Option<f64>,
}

impl Default for RegressionPredictor {
    fn default() -> Self {
        RegressionPredictor::new(FbConfig::default())
    }
}

impl RegressionPredictor {
    /// Rows required before the OLS fit replaces the formula fallback.
    pub const MIN_FIT: usize = 8;

    /// Creates a regression predictor over the formula configured by
    /// `config`, refit over the last [`Self::window_capacity`] epochs.
    pub fn new(config: FbConfig) -> Self {
        RegressionPredictor {
            fb: FbPredictor::new(config),
            window: VecDeque::with_capacity(32),
            capacity: 32,
            last_throughput_bps: None,
        }
    }

    /// Sliding-window length the model is refit over.
    pub fn window_capacity(&self) -> usize {
        self.capacity
    }

    /// Solves the damped normal equations `(AᵀA + λI)c = Aᵀy` for the
    /// window's rows, returning `None` when the system is degenerate
    /// (e.g. a constant formula prediction makes columns collinear —
    /// the tiny per-diagonal damping handles benign collinearity, the
    /// pivot check catches the rest).
    fn fit(&self) -> Option<[f64; COEFFS]> {
        let mut ata = [[0.0; COEFFS]; COEFFS];
        let mut aty = [0.0; COEFFS];
        for row in &self.window {
            let x = [row[0], row[1], 1.0];
            let y = row[2];
            for i in 0..COEFFS {
                for j in 0..COEFFS {
                    ata[i][j] += x[i] * x[j];
                }
                aty[i] += x[i] * y;
            }
        }
        for (i, r) in ata.iter_mut().enumerate() {
            r[i] += 1e-9 * r[i].max(1.0);
        }
        solve3(ata, aty)
    }
}

/// Gaussian elimination with partial pivoting on a 3×3 system.
fn solve3(mut m: [[f64; COEFFS]; COEFFS], mut b: [f64; COEFFS]) -> Option<[f64; COEFFS]> {
    for col in 0..COEFFS {
        let pivot = (col..COEFFS).max_by(|&i, &j| {
            m[i][col]
                .abs()
                .partial_cmp(&m[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if m[pivot][col].abs() < 1e-12 {
            return None;
        }
        m.swap(col, pivot);
        b.swap(col, pivot);
        let pivot_row = m[col];
        for row in (col + 1)..COEFFS {
            let factor = m[row][col] / pivot_row[col];
            for (cell, p) in m[row].iter_mut().zip(pivot_row).skip(col) {
                *cell -= factor * p;
            }
            b[row] -= factor * b[col];
        }
    }
    let mut c = [0.0; COEFFS];
    for col in (0..COEFFS).rev() {
        let mut acc = b[col];
        for k in (col + 1)..COEFFS {
            acc -= m[col][k] * c[k];
        }
        c[col] = acc / m[col][col];
    }
    c.iter().all(|v| v.is_finite()).then_some(c)
}

impl Predictor for RegressionPredictor {
    /// Predicts from the fitted model when enough rows are banked and a
    /// previous transfer exists; falls back to the raw formula otherwise
    /// (and whenever the fit is degenerate or extrapolates to a
    /// non-positive rate). Refuses exactly when the formula does — the
    /// regression is feature-driven and cannot run blind.
    fn try_predict(&self, features: &EpochFeatures) -> Result<f64, PredictError> {
        let fb_pred_bps = self.fb.try_predict(&features.probes)?;
        let fitted = match self.last_throughput_bps {
            Some(prev_bps) if self.window.len() >= Self::MIN_FIT => self
                .fit()
                .map(|c| c[0] * fb_pred_bps + c[1] * prev_bps + c[2]),
            _ => None,
        };
        typed_forecast(Some(match fitted {
            Some(p) if p > 0.0 => p,
            _ => fb_pred_bps,
        }))
    }

    /// Banks a regression row when the epoch carries everything the row
    /// needs — a formula prediction, a previous transfer, and a measured
    /// target — and always remembers the epoch's throughput as the next
    /// row's `prev_bps`. Feature-only and empty epochs leave the model
    /// untouched ([`Update::Skipped`]).
    fn observe(&mut self, epoch: &EpochObservation) -> Update {
        let Some(x_bps) = epoch.throughput_bps else {
            return Update::Skipped;
        };
        if let (Ok(fb_pred_bps), Some(prev_bps)) = (
            self.fb.try_predict(&epoch.features.probes),
            self.last_throughput_bps,
        ) {
            if self.window.len() == self.capacity {
                self.window.pop_front();
            }
            self.window.push_back([fb_pred_bps, prev_bps, x_bps]);
        }
        self.last_throughput_bps = Some(x_bps);
        Update::Accepted
    }

    fn reset(&mut self) {
        self.window.clear();
        self.last_throughput_bps = None;
    }

    // lint:hot-path
    fn name(&self) -> &str {
        "regression"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fb::PathEstimates;

    fn est() -> PathEstimates {
        PathEstimates {
            rtt: 0.08,
            loss_rate: 0.01,
            avail_bw: 50e6,
        }
    }

    #[test]
    fn cold_start_is_pure_formula() {
        let r = RegressionPredictor::default();
        let fb = FbPredictor::default().predict(&est());
        assert_eq!(r.try_predict(&est().into()), Ok(fb));
    }

    #[test]
    fn refuses_without_features_like_the_formula() {
        let r = RegressionPredictor::default();
        assert_eq!(
            r.try_predict(&EpochFeatures::NONE),
            Err(PredictError::MissingRtt)
        );
    }

    #[test]
    fn learns_a_constant_formula_bias() {
        let mut r = RegressionPredictor::default();
        let fb = FbPredictor::default().predict(&est());
        for _ in 0..16 {
            r.observe(&EpochObservation::new(est().into(), Some(0.5 * fb)));
        }
        let p = r.try_predict(&est().into()).unwrap();
        assert!(
            (p - 0.5 * fb).abs() / fb < 0.05,
            "should learn the 2x bias: {p} vs {}",
            0.5 * fb
        );
    }

    #[test]
    fn gap_epochs_leave_the_model_untouched() {
        let mut r = RegressionPredictor::default();
        for _ in 0..10 {
            r.observe(&EpochObservation::new(est().into(), Some(5e6)));
        }
        let before = r.try_predict(&est().into());
        assert_eq!(r.observe(&EpochObservation::GAP), Update::Skipped);
        assert_eq!(r.try_predict(&est().into()), before);
        assert_eq!(r.window.len(), 9, "10 targets, 9 (prev, target) pairs");
    }

    #[test]
    fn degenerate_fit_falls_back_to_formula() {
        let mut r = RegressionPredictor::default();
        let fb = FbPredictor::default().predict(&est());
        // Identical rows: rank-deficient beyond what damping fixes is
        // impossible to trigger here, but a near-singular system must
        // still return something sane.
        for _ in 0..9 {
            r.observe(&EpochObservation::new(est().into(), Some(fb)));
        }
        let p = r.try_predict(&est().into()).unwrap();
        assert!((p - fb).abs() / fb < 1e-3, "{p} vs {fb}");
    }

    #[test]
    fn reset_forgets_history_and_prev() {
        let mut r = RegressionPredictor::default();
        for _ in 0..12 {
            r.observe(&EpochObservation::new(est().into(), Some(3e6)));
        }
        r.reset();
        let fb = FbPredictor::default().predict(&est());
        assert_eq!(r.try_predict(&est().into()), Ok(fb));
        assert_eq!(r.name(), "regression");
    }

    #[test]
    fn solve3_recovers_known_coefficients() {
        // y = 2 x0 - 0.5 x1 + 3, via its exact normal equations.
        let rows: [[f64; 3]; 4] = [
            [1.0, 0.0, 5.0],
            [0.0, 2.0, 2.0],
            [3.0, 1.0, 8.5],
            [2.0, 5.0, 4.5],
        ];
        let mut ata = [[0.0; 3]; 3];
        let mut aty = [0.0; 3];
        for row in rows {
            let x = [row[0], row[1], 1.0];
            for i in 0..3 {
                for j in 0..3 {
                    ata[i][j] += x[i] * x[j];
                }
                aty[i] += x[i] * row[2];
            }
        }
        let c = solve3(ata, aty).unwrap();
        assert!((c[0] - 2.0).abs() < 1e-9, "{c:?}");
        assert!((c[1] + 0.5).abs() < 1e-9, "{c:?}");
        assert!((c[2] - 3.0).abs() < 1e-9, "{c:?}");
    }

    #[test]
    fn solve3_reports_singular_systems() {
        let m = [[1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [0.0, 0.0, 0.0]];
        assert_eq!(solve3(m, [1.0, 2.0, 0.0]), None);
    }
}
