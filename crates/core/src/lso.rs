//! Level-Shift and Outlier (LSO) detection (§5.2).
//!
//! The paper's central practical finding for HB prediction: the largest
//! errors come from two time-series "pathologies" — *level shifts* (a
//! sudden persistent change in the mean, e.g. after a route change) and
//! *outliers* (isolated deviant measurements). Handling them matters far
//! more than the choice of linear predictor (§5.3, §6.1.1):
//!
//! * a detected **level shift** restarts the predictor from the shift
//!   point, discarding all older history;
//! * a detected **outlier** is discarded from the history (and, per
//!   §6.1.3, excluded from RMSRE when evaluating).
//!
//! [`Detector`] implements the detection heuristics; [`Lso`] wraps any
//! [`Predictor`] with them (the paper's `MA-LSO`, `HW-LSO`, ...).
//!
//! # The detection rules
//!
//! With `{X₁, …, Xₙ}` the measurements since the last level shift,
//! outliers excluded, `Xₖ` starts an increasing (decreasing) level shift
//! iff (§5.2):
//!
//! 1. `{X₁, …, Xₖ₋₁}` are all lower (higher) than `{Xₖ, …, Xₙ}`;
//! 2. the medians of the two groups differ by a relative difference
//!    greater than `γ`;
//! 3. `k + 2 ≤ n` — at least two samples follow `Xₖ`, so an isolated
//!    outlier is not misread as a shift.
//!
//! A measurement `Xₖ` (k < n) is an outlier if it differs from the median
//! of `{X₁, …, Xₙ}` by a relative difference greater than `ψ`.
//!
//! # Reconstruction notes (documented deviations)
//!
//! The paper gives the rules declaratively; running them *online* requires
//! two decisions it leaves open, both chosen here so that the rules
//! cooperate rather than swallow each other:
//!
//! * **Confirmation delay.** A sample can only be classified an outlier
//!   once two further samples have arrived (mirroring condition 3), since
//!   until then it may turn out to be the first sample of a level shift.
//! * **Trailing-run guard.** A deviant sample is exempt from the outlier
//!   rule only while the same-side deviant run containing it extends to
//!   the end of the window — such a trailing run may be a level shift in
//!   progress (the shift rule needs two confirming successors before it
//!   can fire). A deviant run that is already *interior* — followed by a
//!   return toward the median — is a spike or dip, and every sample of
//!   it is discarded. Without this guard the outlier rule would discard
//!   new-level samples one at a time and a shift could never accumulate
//!   the successors condition 3 demands; without the interior case,
//!   multi-epoch dips (a transient burst spanning two measurement
//!   epochs) would stay in the history and poison the predictors.
//!
//! The outlier rule measures deviation relative to the median
//! (`|X − m| / m`); the shift rule compares the two segment medians with
//! the symmetric min-denominator form `|m₁ − m₂| / min(m₁, m₂)` — the same
//! convention as the paper's error metric `E` (Eq. 4), and the natural
//! reading of "lower … by more than a relative difference γ".

use crate::error::PredictError;
use crate::predictor::{typed_forecast, EpochFeatures, EpochObservation, Predictor, Update};
use serde::{Deserialize, Serialize};

/// Parameters of the LSO heuristics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LsoConfig {
    /// Minimum relative difference between segment medians for a level
    /// shift (the paper's `γ`; 0.3 performed well on its dataset).
    pub gamma: f64,
    /// Minimum relative deviation from the window median for an outlier
    /// (the paper's `ψ`; 0.4 performed well on its dataset).
    pub psi: f64,
    /// Maximum number of retained samples since the last level shift.
    /// Old samples beyond this horizon are dropped; the paper's histories
    /// are 10–150 samples, well under this cap.
    pub max_window: usize,
}

impl Default for LsoConfig {
    fn default() -> Self {
        LsoConfig {
            gamma: 0.3,
            psi: 0.4,
            max_window: 256,
        }
    }
}

/// What a [`Detector`] concluded about the sample stream after one push.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectorEvent {
    /// Absolute (0-based) positions, in the full input series, of samples
    /// confirmed as outliers by this push and removed from the window.
    pub outliers: Vec<usize>,
    /// Absolute position at which a level shift was detected to begin.
    /// All window samples before it were dropped.
    pub level_shift: Option<usize>,
}

impl DetectorEvent {
    /// True when the push changed nothing but appending the sample.
    pub fn is_plain(&self) -> bool {
        self.outliers.is_empty() && self.level_shift.is_none()
    }
}

/// Symmetric relative difference `|a − b| / min(a, b)`, the convention of
/// Eq. 4. Degenerates gracefully when the smaller value is ~0.
fn rel_diff(a: f64, b: f64) -> f64 {
    let lo = f64::min(a, b);
    (a - b).abs() / f64::max(lo, f64::EPSILON)
}

fn median_of(values: &[f64]) -> f64 {
    // lint:allow(no-unwrap): every caller passes the detector window, which holds >= 1 sample by construction
    tputpred_stats::median(values).expect("median of non-empty window")
}

/// Online level-shift and outlier detector over a positive-valued series.
///
/// Feed samples with [`Detector::push`]; the detector maintains the window
/// of samples since the last detected level shift with confirmed outliers
/// removed, available via [`Detector::window`].
#[derive(Debug, Clone)]
pub struct Detector {
    cfg: LsoConfig,
    /// `(absolute_index, value)` since the last level shift, outliers
    /// removed.
    window: Vec<(usize, f64)>,
    next_index: usize,
}

impl Detector {
    /// Creates a detector with the given thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `gamma` or `psi` is not positive, or `max_window < 4`
    /// (the shift rule needs at least 4 samples: one before the shift,
    /// the shift sample, and two after).
    pub fn new(cfg: LsoConfig) -> Self {
        assert!(cfg.gamma > 0.0, "LSO gamma must be positive");
        assert!(cfg.psi > 0.0, "LSO psi must be positive");
        assert!(
            cfg.max_window >= 4,
            "LSO window must hold at least 4 samples"
        );
        Detector {
            cfg,
            window: Vec::new(),
            next_index: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LsoConfig {
        &self.cfg
    }

    /// The retained `(absolute_index, value)` window: samples since the
    /// last level shift, confirmed outliers removed, oldest first.
    pub fn window(&self) -> &[(usize, f64)] {
        &self.window
    }

    /// Absolute index the next pushed sample will receive.
    pub fn next_index(&self) -> usize {
        self.next_index
    }

    /// Drops all state (history and index counter).
    pub fn reset(&mut self) {
        self.window.clear();
        self.next_index = 0;
    }

    /// Ingests the next sample and reports any detections.
    pub fn push(&mut self, x: f64) -> DetectorEvent {
        debug_assert!(!x.is_nan(), "NaN sample");
        let idx = self.next_index;
        self.next_index += 1;
        self.window.push((idx, x));
        if self.window.len() > self.cfg.max_window {
            self.window.remove(0);
        }

        let outliers = self.confirm_outliers();
        let level_shift = self.detect_level_shift();
        DetectorEvent {
            outliers,
            level_shift,
        }
    }

    /// Confirms and removes outliers among samples that have at least two
    /// successors (confirmation delay), exempting trailing same-side
    /// deviant runs (potential shifts in progress). Returns their
    /// absolute indices.
    fn confirm_outliers(&mut self) -> Vec<usize> {
        let n = self.window.len();
        if n < 4 {
            return Vec::new();
        }
        let values: Vec<f64> = self.window.iter().map(|&(_, v)| v).collect();
        let med = median_of(&values);
        let deviates = |v: f64| -> Option<f64> {
            // The paper's outlier rule: |v − median| / median > ψ. (The
            // shift rule below compares two *medians* and uses the
            // symmetric min-denominator form instead.)
            let dev = (v - med).abs() / f64::max(med.abs(), f64::EPSILON);
            (dev > self.cfg.psi).then(|| (v - med).signum())
        };
        let dirs: Vec<Option<f64>> = values.iter().map(|&v| deviates(v)).collect();
        // A run is trailing when it reaches the newest sample.
        let run_is_trailing = |j: usize| -> bool {
            let d = dirs[j];
            let mut e = j;
            while e + 1 < n && dirs[e + 1] == d {
                e += 1;
            }
            e == n - 1
        };
        let mut removed = Vec::new();
        // Scan only positions with ≥ 2 successors (j ≤ n−3, 0-indexed).
        for j in (0..=n.saturating_sub(3)).rev() {
            if dirs[j].is_some() && !run_is_trailing(j) {
                removed.push(self.window[j].0);
                self.window.remove(j);
            }
        }
        removed.reverse();
        removed
    }

    /// Scans the cleaned window for the most recent position satisfying
    /// the three level-shift conditions; if found, drops everything before
    /// it and returns its absolute index.
    fn detect_level_shift(&mut self) -> Option<usize> {
        let n = self.window.len();
        if n < 4 {
            return None;
        }
        let values: Vec<f64> = self.window.iter().map(|&(_, v)| v).collect();
        // Paper indices: k ∈ [2, n−2] (1-based) ⇒ s ∈ [1, n−3] (0-based).
        // Most recent shift first.
        for s in (1..=n - 3).rev() {
            let (prefix, suffix) = values.split_at(s);
            let pre_max = prefix.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let pre_min = prefix.iter().cloned().fold(f64::INFINITY, f64::min);
            let suf_max = suffix.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let suf_min = suffix.iter().cloned().fold(f64::INFINITY, f64::min);
            let increasing = pre_max < suf_min;
            let decreasing = pre_min > suf_max;
            if !increasing && !decreasing {
                continue;
            }
            let m1 = median_of(prefix);
            let m2 = median_of(suffix);
            if rel_diff(m1, m2) > self.cfg.gamma {
                let start = self.window[s].0;
                self.window.drain(..s);
                return Some(start);
            }
        }
        None
    }
}

/// An offline scan of a complete series with the LSO detector.
///
/// Returns `(level_shift_starts, outlier_positions)` as absolute 0-based
/// indices. Used by the segmented CoV of §6.1.3 and by tests.
pub fn scan_series(series: &[f64], cfg: LsoConfig) -> (Vec<usize>, Vec<usize>) {
    let mut det = Detector::new(cfg);
    let mut shifts = Vec::new();
    let mut outliers = Vec::new();
    for &x in series {
        let ev = det.push(x);
        outliers.extend(ev.outliers);
        if let Some(s) = ev.level_shift {
            shifts.push(s);
        }
    }
    (shifts, outliers)
}

/// Wraps any [`Predictor`] with the LSO heuristics: the paper's
/// `MA-LSO`, `HW-LSO`, etc.
///
/// On a detected level shift the inner predictor is restarted and re-fed
/// the post-shift window; on outlier confirmation the inner predictor is
/// rebuilt from the cleaned window. Confirmed-outlier positions accumulate
/// in [`Lso::outlier_indices`] so evaluation can exclude them from RMSRE
/// (§6.1.3).
///
/// Two guards keep "outliers are discarded from the history" true *at
/// every instant*, not just in retrospect:
///
/// * **Quarantine** — samples deviating from the window median by more
///   than ψ are withheld from the inner predictor: they are either
///   outliers awaiting their confirmation delay (a spike fed raw would
///   let trend-tracking predictors like Holt-Winters amplify it into
///   wild — even negative — forecasts) or a level shift in progress
///   (which the restart re-feeds in full the moment it is confirmed).
/// * **Positivity** — throughput forecasts fall back to the cleaned
///   window's median whenever the inner predictor extrapolates to a
///   non-positive value.
///
/// # Examples
///
/// ```
/// use tputpred_core::hb::{MovingAverage, Predictor};
/// use tputpred_core::lso::Lso;
///
/// let mut p = Lso::new(MovingAverage::new(10));
/// // A level shift from ~10 to ~20:
/// for x in [10.0, 10.5, 9.5, 10.0, 20.0, 20.5, 19.5, 20.0] {
///     p.update(x);
/// }
/// // Without LSO a 10-MA would still predict ~15; with LSO the predictor
/// // restarted at the shift and tracks the new level.
/// assert!(p.forecast().unwrap() > 19.0);
/// ```
#[derive(Debug, Clone)]
pub struct Lso<P> {
    detector: Detector,
    inner: P,
    all_outliers: Vec<usize>,
    name: String,
}

impl<P: Predictor> Lso<P> {
    /// Wraps `inner` with default thresholds (γ = 0.3, ψ = 0.4).
    pub fn new(inner: P) -> Self {
        Self::with_config(inner, LsoConfig::default())
    }

    /// Wraps `inner` with explicit thresholds.
    pub fn with_config(inner: P, cfg: LsoConfig) -> Self {
        let name = format!("{}-LSO", inner.name());
        Lso {
            detector: Detector::new(cfg),
            inner,
            all_outliers: Vec::new(),
            name,
        }
    }

    /// Absolute positions of every sample confirmed as an outlier so far.
    pub fn outlier_indices(&self) -> &[usize] {
        &self.all_outliers
    }

    /// The wrapped predictor.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The detection state.
    pub fn detector(&self) -> &Detector {
        &self.detector
    }

    /// The window values the inner predictor is allowed to see: the
    /// current *inliers* — everything within ψ of the window median.
    /// Deviant samples are either shifts in progress (the restart will
    /// re-feed them) or outliers awaiting confirmation (they will be
    /// removed); neither belongs in a forecast yet.
    fn feed_values(&self) -> Vec<f64> {
        let values: Vec<f64> = self.detector.window().iter().map(|&(_, v)| v).collect();
        if values.len() < 4 {
            return values;
        }
        let med = median_of(&values);
        let psi = self.detector.cfg.psi;
        values
            .into_iter()
            .filter(|v| (v - med).abs() / f64::max(med.abs(), f64::EPSILON) <= psi)
            .collect()
    }

    /// Re-derives the inner predictor from the feedable history.
    fn rebuild_inner(&mut self) {
        self.inner.reset();
        for v in self.feed_values() {
            self.inner.update(v);
        }
    }
}

impl<P: Predictor> Predictor for Lso<P> {
    fn try_predict(&self, features: &EpochFeatures) -> Result<f64, PredictError> {
        let window_fallback = || {
            let w = self.detector.window();
            if w.is_empty() {
                None
            } else {
                let values: Vec<f64> = w.iter().map(|&(_, v)| v).collect();
                Some(median_of(&values))
            }
        };
        let forecast = match self.inner.try_predict(features) {
            // A trend extrapolated below zero is not a throughput;
            // substitute the robust window location.
            Ok(f) if f <= 0.0 => window_fallback(),
            Ok(f) => Some(f),
            // Immediately after a restart some predictors (Holt-Winters)
            // need two samples; bridge the gap so a forecast is always
            // available once any history exists, as the paper's
            // evaluation assumes.
            Err(_) => window_fallback(),
        };
        typed_forecast(forecast)
    }

    fn observe(&mut self, epoch: &EpochObservation) -> Update {
        let Some(x) = epoch.throughput_bps else {
            return Update::Skipped;
        };
        let ev = self.detector.push(x);
        self.all_outliers.extend_from_slice(&ev.outliers);
        // The feedable set can change shape on any push (a suspect
        // appears, clears, or pairs up), so the inner predictor is
        // re-derived each time. Windows are small (≤ max_window) and the
        // predictors are O(1) per sample, so this stays cheap.
        self.rebuild_inner();
        let retained = self.detector.window().len();
        match ev.level_shift {
            Some(start) => Update::LevelShift { start, retained },
            None if !ev.outliers.is_empty() => Update::OutliersDiscarded {
                positions: ev.outliers,
                retained,
            },
            None => Update::Accepted,
        }
    }

    fn reset(&mut self) {
        self.detector.reset();
        self.inner.reset();
        self.all_outliers.clear();
    }

    // lint:hot-path
    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hb::{HoltWinters, MovingAverage};

    fn cfg() -> LsoConfig {
        LsoConfig::default()
    }

    #[test]
    fn stationary_noise_triggers_nothing() {
        let mut det = Detector::new(cfg());
        // ±10% noise around 10: below both thresholds.
        let series = [10.0, 10.8, 9.4, 10.2, 9.8, 10.5, 9.6, 10.1, 10.3, 9.9];
        for x in series {
            let ev = det.push(x);
            assert!(ev.is_plain(), "spurious detection on {x}: {ev:?}");
        }
        assert_eq!(det.window().len(), series.len());
    }

    #[test]
    fn clean_level_shift_is_detected_with_two_confirming_samples() {
        let mut det = Detector::new(cfg());
        for x in [10.0; 8] {
            det.push(x);
        }
        assert!(
            det.push(20.0).is_plain(),
            "first new-level sample: no call yet"
        );
        assert!(
            det.push(20.0).is_plain(),
            "second new-level sample: k+2>n still"
        );
        let ev = det.push(20.0);
        assert_eq!(ev.level_shift, Some(8), "shift begins at the first 20");
        assert_eq!(det.window().len(), 3);
    }

    #[test]
    fn decreasing_level_shift_is_detected_too() {
        let mut det = Detector::new(cfg());
        for x in [20.0; 6] {
            det.push(x);
        }
        det.push(10.0);
        det.push(10.0);
        let ev = det.push(10.0);
        assert_eq!(ev.level_shift, Some(6));
    }

    #[test]
    fn small_level_change_below_gamma_is_ignored() {
        // 10 → 12 is a 20% change, below γ = 0.3.
        let mut det = Detector::new(cfg());
        for x in [10.0; 6] {
            det.push(x);
        }
        for x in [12.0; 5] {
            assert_eq!(det.push(x).level_shift, None);
        }
    }

    #[test]
    fn isolated_outlier_is_confirmed_after_two_successors() {
        let mut det = Detector::new(cfg());
        for x in [10.0; 8] {
            det.push(x);
        }
        assert!(det.push(30.0).is_plain());
        assert!(
            det.push(10.0).is_plain(),
            "one successor: not confirmable yet"
        );
        let ev = det.push(10.0);
        assert_eq!(ev.outliers, vec![8], "the 30 at position 8 is an outlier");
        assert_eq!(ev.level_shift, None);
        // lint:allow(float-eq): window holds the exact literals pushed above
        assert!(det.window().iter().all(|&(_, v)| v == 10.0));
    }

    #[test]
    fn outlier_rule_does_not_eat_level_shifts() {
        // The regression the isolation guard exists for: consecutive
        // same-side deviations must be left for the shift rule.
        let series: Vec<f64> = [vec![10.0; 8], vec![20.0; 3]].concat();
        let (shifts, outliers) = scan_series(&series, cfg());
        assert_eq!(shifts, vec![8]);
        assert!(outliers.is_empty(), "no sample of the shift is an outlier");
    }

    #[test]
    fn low_outlier_is_detected() {
        let series: Vec<f64> = [vec![10.0; 8], vec![2.0], vec![10.0; 3]].concat();
        let (shifts, outliers) = scan_series(&series, cfg());
        assert!(shifts.is_empty());
        assert_eq!(outliers, vec![8]);
    }

    #[test]
    fn spike_followed_by_shift_is_eventually_cleaned() {
        let series: Vec<f64> = [vec![10.0; 6], vec![30.0], vec![20.0; 4]].concat();
        let (shifts, outliers) = scan_series(&series, cfg());
        assert!(!shifts.is_empty(), "the shift to 20 must be found");
        // The 30 spike is removed as an outlier either before or after the
        // shift is declared.
        assert!(outliers.contains(&6), "the spike is cleaned: {outliers:?}");
    }

    #[test]
    fn window_is_capped() {
        let mut det = Detector::new(LsoConfig {
            max_window: 8,
            ..cfg()
        });
        for i in 0..100 {
            det.push(10.0 + (i % 3) as f64 * 0.1);
        }
        assert!(det.window().len() <= 8);
    }

    #[test]
    fn lso_wrapper_restarts_ma_after_shift() {
        let mut with = Lso::new(MovingAverage::new(10));
        let mut without = MovingAverage::new(10);
        let series: Vec<f64> = [vec![10.0; 10], vec![20.0; 3]].concat();
        for &x in &series {
            with.update(x);
            without.update(x);
        }
        let w = with.forecast().unwrap();
        let wo = without.forecast().unwrap();
        assert!(w > 19.0, "LSO restarted onto the new level: {w}");
        assert!(wo < 15.0, "plain MA still dragged down by old level: {wo}");
    }

    #[test]
    fn lso_wrapper_discards_outliers_from_history() {
        let mut with = Lso::new(MovingAverage::new(10));
        let series: Vec<f64> = [vec![10.0; 8], vec![100.0], vec![10.0; 3]].concat();
        for &x in &series {
            with.update(x);
        }
        let f = with.forecast().unwrap();
        assert!((f - 10.0).abs() < 0.5, "outlier excluded from MA: {f}");
        assert_eq!(with.outlier_indices(), &[8]);
    }

    #[test]
    fn lso_bridges_holt_winters_warmup_after_restart() {
        let mut p = Lso::new(HoltWinters::new(0.8, 0.2));
        for x in [10.0; 8] {
            p.update(x);
        }
        p.update(20.0);
        p.update(20.0);
        p.update(20.0); // shift detected here; HW re-fed 3 samples
        assert!(p.forecast().is_some());
        assert!(p.forecast().unwrap() > 19.0);
    }

    #[test]
    fn update_reports_events() {
        let mut p = Lso::new(MovingAverage::new(5));
        for x in [10.0; 8] {
            assert_eq!(p.update(x), Update::Accepted);
        }
        p.update(20.0);
        p.update(20.0);
        assert_eq!(
            p.update(20.0),
            Update::LevelShift {
                start: 8,
                retained: 3
            }
        );
    }

    #[test]
    fn reset_clears_everything() {
        let mut p = Lso::new(MovingAverage::new(5));
        for x in [vec![10.0; 8], vec![50.0], vec![10.0; 3]].concat() {
            p.update(x);
        }
        assert!(!p.outlier_indices().is_empty());
        p.reset();
        assert!(p.outlier_indices().is_empty());
        assert_eq!(p.forecast(), None);
        assert_eq!(p.detector().next_index(), 0);
    }

    #[test]
    fn name_reflects_wrapping() {
        let p = Lso::new(MovingAverage::new(10));
        assert_eq!(p.name(), "10-MA-LSO");
    }

    #[test]
    fn gap_epochs_do_not_advance_the_detector() {
        use crate::predictor::EpochObservation;
        let mut p = Lso::new(MovingAverage::new(5));
        p.update(10.0);
        assert_eq!(p.observe(&EpochObservation::GAP), Update::Skipped);
        assert_eq!(p.detector().next_index(), 1, "gap consumed no index");
        assert_eq!(p.forecast(), Some(10.0));
    }

    #[test]
    fn successive_level_shifts_are_all_caught() {
        let series: Vec<f64> = [vec![10.0; 6], vec![20.0; 6], vec![5.0; 6]].concat();
        let (shifts, _) = scan_series(&series, cfg());
        assert_eq!(shifts, vec![6, 12]);
    }

    #[test]
    fn rel_diff_is_symmetric() {
        assert_eq!(rel_diff(10.0, 20.0), rel_diff(20.0, 10.0));
        assert!((rel_diff(10.0, 20.0) - 1.0).abs() < 1e-12);
    }
}
