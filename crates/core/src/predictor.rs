//! The unified predictor trait: one gap-tolerant API for every
//! predictor family — formula-based, history-based, and the hybrid /
//! regression / conditional families built on top of both.
//!
//! Before this module, HB predictors implemented a series-only trait
//! (`update(f64)` / `predict() -> Option<f64>`) while FB had an
//! incompatible bespoke signature (`try_predict(&PartialEstimates)`).
//! [`Predictor`] unifies them around the shapes the testbed actually
//! produces:
//!
//! * **in** — an [`EpochObservation`]: what one measurement epoch
//!   yielded. Every part is `Option`-typed because every part can be
//!   eaten by a fault (ping outage, pathload abort, failed transfer —
//!   DESIGN.md §10).
//! * **out** — `Result<f64, PredictError>`: a throughput forecast in
//!   bits/s or a typed refusal, never a NaN.
//!
//! # Gap semantics
//!
//! Observing an epoch whose parts are all `None` (a *gap*) is a state
//! no-op: the predictor must neither learn nor reset, and reports
//! [`Update::Skipped`]. This makes every predictor safe to drive over
//! faulty histories — a gap can never masquerade as a level shift or an
//! outlier — and is property-tested (`core/tests/gap_tolerance.rs` and
//! `core/tests/family_gap_tolerance.rs`): evaluating over a gappy
//! stream must equal evaluating over the same stream with the gaps
//! removed, bit for bit.

use crate::error::PredictError;
use crate::fb::{PartialEstimates, PathEstimates};

/// A-priori features of one epoch, available *before* the target
/// transfer starts: probe-derived path estimates plus derived
/// conditioning signals.
///
/// Purely historical (series-only) predictors ignore this entirely;
/// formula-backed predictors require at least `probes.rtt`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EpochFeatures {
    /// Probe measurements (RTT, loss rate, avail-bw), each possibly
    /// missing — the same shape [`crate::fb::FbPredictor::try_predict`]
    /// accepts.
    pub probes: PartialEstimates,
    /// RTT coefficient of variation over recent probe rounds, if the
    /// caller computed one (e.g. [`tputpred_stats::RollingCov`]).
    /// Consumed by [`crate::gated::RttCvGated`]; `None` lets that
    /// predictor fall back to its own internal estimate.
    pub rtt_cv: Option<f64>,
}

impl EpochFeatures {
    /// The featureless epoch: every field missing. The forecast input
    /// for pure series protocols ([`crate::metrics::evaluate_gappy`]).
    pub const NONE: EpochFeatures = EpochFeatures {
        probes: PartialEstimates {
            rtt: None,
            loss_rate: None,
            avail_bw: None,
        },
        rtt_cv: None,
    };
}

impl From<PartialEstimates> for EpochFeatures {
    fn from(probes: PartialEstimates) -> Self {
        EpochFeatures {
            probes,
            rtt_cv: None,
        }
    }
}

impl From<PathEstimates> for EpochFeatures {
    fn from(est: PathEstimates) -> Self {
        EpochFeatures {
            probes: est.into(),
            rtt_cv: None,
        }
    }
}

/// Everything one measurement epoch produced: the a-priori features
/// and, once the epoch completed, the measured transfer throughput.
///
/// `throughput_bps` is `None` when the transfer failed or went
/// unmeasured — the predictor sees the features (if any) but has no
/// target to learn from.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EpochObservation {
    /// The epoch's a-priori features.
    pub features: EpochFeatures,
    /// Measured throughput of the epoch's transfer, in bits/s.
    pub throughput_bps: Option<f64>,
}

impl EpochObservation {
    /// A fully failed epoch: no features, no throughput. Observing it
    /// must be a state no-op ([`Update::Skipped`]).
    pub const GAP: EpochObservation = EpochObservation {
        features: EpochFeatures::NONE,
        throughput_bps: None,
    };

    /// Bundles features with a (possibly missing) measured throughput.
    pub fn new(features: EpochFeatures, throughput_bps: Option<f64>) -> Self {
        EpochObservation {
            features,
            throughput_bps,
        }
    }

    /// A featureless throughput sample — the series-only protocol of
    /// the paper's HB evaluation, used by [`Predictor::update`].
    pub fn sample(throughput_bps: f64) -> Self {
        EpochObservation {
            features: EpochFeatures::NONE,
            throughput_bps: Some(throughput_bps),
        }
    }
}

/// What happened inside a predictor when an epoch was observed.
///
/// Plain linear predictors report [`Update::Accepted`] for every
/// throughput sample; the [`crate::lso::Lso`] wrapper reports the §5.2
/// events so evaluation can exclude outlier samples from RMSRE, as
/// §6.1.3 prescribes. The `retained` fields let composite predictors
/// (e.g. [`crate::hybrid::HybridPredictor`]) track the surviving
/// history length without reaching into the reporter's internals.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Update {
    /// The observation entered the predictor's history.
    #[default]
    Accepted,
    /// The observation carried nothing this predictor ingests (a gap,
    /// or a throughput-only epoch fed to a stateless formula): state
    /// is unchanged.
    Skipped,
    /// Samples (identified by their 0-based absolute positions in the
    /// ingested series) were classified as outliers and removed from
    /// the history, leaving `retained` samples.
    OutliersDiscarded {
        /// Absolute positions of the discarded samples.
        positions: Vec<usize>,
        /// History size after the removal.
        retained: usize,
    },
    /// A level shift was detected beginning at the given absolute
    /// sample position; history before it was dropped (leaving
    /// `retained` samples) and the predictor restarted.
    LevelShift {
        /// Absolute position at which the shift begins.
        start: usize,
        /// History size after the restart.
        retained: usize,
    },
}

/// Maps a raw optional forecast to the typed result contract: `None`
/// becomes [`PredictError::InsufficientHistory`], and a non-finite
/// forecast (a predictor poisoned by degraded input) becomes
/// [`PredictError::InvalidEstimate`] instead of leaking a NaN into
/// error metrics.
pub(crate) fn typed_forecast(forecast: Option<f64>) -> Result<f64, PredictError> {
    match forecast {
        None => Err(PredictError::InsufficientHistory),
        Some(f) if !f.is_finite() => Err(PredictError::InvalidEstimate("forecast")),
        Some(f) => Ok(f),
    }
}

/// A one-step-ahead throughput predictor over measurement epochs.
///
/// The contract mirrors how the paper uses predictors: before epoch
/// `i+1`'s transfer starts, [`Predictor::try_predict`] is given the
/// fresh a-priori features and must forecast the transfer's throughput
/// (bits/s) from them plus whatever history earlier
/// [`Predictor::observe`] calls accumulated — predictions use only
/// *past* transfers and *current* probes.
///
/// Implementations must:
///
/// * treat [`EpochObservation::GAP`] as a state no-op (return
///   [`Update::Skipped`]; see the module docs on gap semantics);
/// * keep [`Predictor::try_predict`] free of side effects — it may be
///   called any number of times (including zero) between observations;
/// * return a cached name: figure binaries call [`Predictor::name`]
///   in per-sample label loops.
pub trait Predictor {
    /// Forecasts the next transfer's throughput (bits/s) from the
    /// epoch's a-priori features and the accumulated history, or
    /// refuses with a typed [`PredictError`].
    fn try_predict(&self, features: &EpochFeatures) -> Result<f64, PredictError>;

    /// Ingests one completed epoch; returns what the predictor did
    /// with it.
    fn observe(&mut self, epoch: &EpochObservation) -> Update;

    /// Drops all history, returning the predictor to its initial state.
    fn reset(&mut self);

    /// Short human-readable name, e.g. `"10-MA"`, used in figure
    /// labels. Cached — no per-call allocation.
    fn name(&self) -> &str;

    /// [`Predictor::try_predict`] as an `Option`, for call sites that
    /// don't care *why* a forecast is unavailable.
    fn predict(&self, features: &EpochFeatures) -> Option<f64> {
        self.try_predict(features).ok()
    }

    /// Featureless forecast — the series-only protocol: what the
    /// predictor expects the next throughput to be from history alone.
    fn forecast(&self) -> Option<f64> {
        self.predict(&EpochFeatures::NONE)
    }

    /// Ingests a featureless throughput sample — the series-only
    /// protocol of the paper's HB evaluation (§5).
    fn update(&mut self, x: f64) -> Update {
        self.observe(&EpochObservation::sample(x))
    }
}

/// Blanket impl so `&mut P` is a predictor too.
impl<P: Predictor + ?Sized> Predictor for &mut P {
    fn try_predict(&self, features: &EpochFeatures) -> Result<f64, PredictError> {
        (**self).try_predict(features)
    }
    fn observe(&mut self, epoch: &EpochObservation) -> Update {
        (**self).observe(epoch)
    }
    fn reset(&mut self) {
        (**self).reset()
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

impl Predictor for Box<dyn Predictor + Send> {
    fn try_predict(&self, features: &EpochFeatures) -> Result<f64, PredictError> {
        (**self).try_predict(features)
    }
    fn observe(&mut self, epoch: &EpochObservation) -> Update {
        (**self).observe(epoch)
    }
    fn reset(&mut self) {
        (**self).reset()
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hb::MovingAverage;

    #[test]
    fn trait_objects_forward_calls() {
        let mut boxed: Box<dyn Predictor + Send> = Box::new(MovingAverage::new(2));
        assert_eq!(boxed.forecast(), None);
        boxed.update(1.0);
        boxed.update(3.0);
        assert_eq!(boxed.forecast(), Some(2.0));
        assert_eq!(boxed.name(), "2-MA");
        boxed.reset();
        assert_eq!(boxed.forecast(), None);
    }

    #[test]
    fn try_predict_types_the_warmup_refusal() {
        let mut ma = MovingAverage::new(2);
        assert_eq!(
            ma.try_predict(&EpochFeatures::NONE),
            Err(PredictError::InsufficientHistory)
        );
        ma.update(3.0);
        assert_eq!(ma.try_predict(&EpochFeatures::NONE), Ok(3.0));
    }

    #[test]
    fn mut_ref_is_a_predictor() {
        fn feed<P: Predictor>(mut p: P) -> Option<f64> {
            p.update(4.0);
            p.forecast()
        }
        let mut ma = MovingAverage::new(1);
        assert_eq!(feed(&mut ma), Some(4.0));
    }

    #[test]
    fn gap_observation_is_a_state_noop() {
        let mut ma = MovingAverage::new(3);
        ma.update(10.0);
        let before = ma.forecast();
        assert_eq!(ma.observe(&EpochObservation::GAP), Update::Skipped);
        assert_eq!(ma.forecast(), before);
    }

    #[test]
    fn sample_constructor_carries_only_throughput() {
        let obs = EpochObservation::sample(5e6);
        assert_eq!(obs.throughput_bps, Some(5e6));
        assert_eq!(obs.features, EpochFeatures::NONE);
    }

    #[test]
    fn features_convert_from_estimate_shapes() {
        let full = PathEstimates {
            rtt: 0.08,
            loss_rate: 0.01,
            avail_bw: 5e7,
        };
        let f: EpochFeatures = full.into();
        assert_eq!(f.probes.rtt, Some(0.08));
        assert_eq!(f.rtt_cv, None);
        let partial = PartialEstimates {
            rtt: Some(0.1),
            loss_rate: None,
            avail_bw: None,
        };
        let g: EpochFeatures = partial.into();
        assert_eq!(g.probes, partial);
    }
}
