//! Formula-Based (FB) prediction (§3).
//!
//! [`FbPredictor`] is the paper's Eq. (3): feed a-priori, non-intrusive
//! path measurements — RTT `T̂` and loss rate `p̂` from periodic probing,
//! available bandwidth `Â` from pathload-style estimation — into a TCP
//! steady-state model:
//!
//! ```text
//!       ⎧ min( PFTK(M, T̂, T̂₀, b, p̂, W),  W/T̂ )   if p̂ > 0
//! R̂  =  ⎨
//!       ⎩ min( W/T̂,  Â )                          if p̂ = 0
//! ```
//!
//! with `T̂₀ = max(1 s, 2·SRTT)` and SRTT set to the measured a-priori RTT.
//! The avail-bw branch handles lossless paths, where the loss-based models
//! are degenerate (§3.1); for window-limited flows (`W/T̂ < Â`) the window
//! term dominates instead (§4.2.8 shows such flows are far more
//! predictable).
//!
//! [`SmoothedFbPredictor`] is §4.2.10's variant: instead of the single
//! latest measurement, feed a Moving-Average-smoothed history of RTT and
//! loss-rate measurements into the same equation. The paper finds this
//! changes accuracy negligibly — the dominant FB errors are not
//! measurement noise but (a) the target flow changing the path's state
//! (§3.2) and (b) the difference between periodic probing and TCP's own
//! sampling (§3.3).

use crate::error::PredictError;
use crate::formulas::{self, pftk, pftk_full, pftk_revised, PftkParams};
use crate::hb::MovingAverage;
use crate::predictor::{EpochFeatures, EpochObservation, Predictor, Update};
use serde::{Deserialize, Serialize};

/// A-priori path measurements available before the target flow starts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathEstimates {
    /// RTT in seconds (`T̂`), e.g. the mean of periodic ping RTTs.
    pub rtt: f64,
    /// Loss rate in `[0, 1]` (`p̂`) from periodic probing. Exactly `0.0`
    /// selects the lossless branch of Eq. (3).
    pub loss_rate: f64,
    /// Available bandwidth in bits/s (`Â`) from a pathload-style
    /// estimator. Only used when `loss_rate == 0`.
    pub avail_bw: f64,
}

/// A-priori measurements where any value may be missing — the input shape
/// of a *degraded* epoch, where a fault (ping outage, pathload abort) ate
/// one or more measurements. [`FbPredictor::try_predict`] accepts this and
/// degrades per measurement instead of refusing the whole epoch.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PartialEstimates {
    /// RTT in seconds (`T̂`), if the ping prober produced a summary.
    pub rtt: Option<f64>,
    /// Loss rate in `[0, 1]` (`p̂`), if the ping prober produced a summary.
    pub loss_rate: Option<f64>,
    /// Available bandwidth in bits/s (`Â`), if pathload converged.
    pub avail_bw: Option<f64>,
}

impl From<PathEstimates> for PartialEstimates {
    fn from(est: PathEstimates) -> Self {
        PartialEstimates {
            rtt: Some(est.rtt),
            loss_rate: Some(est.loss_rate),
            avail_bw: Some(est.avail_bw),
        }
    }
}

/// Which throughput model the lossy branch of Eq. (3) plugs estimates into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FbModel {
    /// The PFTK approximation — the paper's default (Eq. 2).
    #[default]
    PftkSimple,
    /// The full PFTK model (PFTK eqs. 29–31).
    PftkFull,
    /// The revised PFTK variant (§4.2.9, Fig. 13).
    PftkRevised,
    /// The Mathis square-root law (Eq. 1), window-capped.
    Mathis,
}

/// Configuration of the FB predictor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FbConfig {
    /// Segment size `M` in bytes.
    pub mss: u32,
    /// Segments per ACK (`b`; 2 with delayed ACKs).
    pub b: f64,
    /// Maximum window `W` in bytes — the target flow's socket buffer
    /// (1 MB for the paper's congestion-limited transfers, 20 KB for the
    /// window-limited ones).
    pub max_window: u32,
    /// Throughput model for the lossy branch.
    pub model: FbModel,
}

impl Default for FbConfig {
    fn default() -> Self {
        FbConfig {
            mss: formulas::DEFAULT_MSS,
            b: formulas::DEFAULT_B,
            max_window: 1 << 20, // 1 MB, the paper's default W
            model: FbModel::PftkSimple,
        }
    }
}

/// The FB predictor of Eq. (3).
///
/// # Examples
///
/// ```
/// use tputpred_core::fb::{FbPredictor, PathEstimates};
///
/// let fb = FbPredictor::default();
/// // Lossy path: the PFTK branch applies.
/// let lossy = fb.predict(&PathEstimates { rtt: 0.08, loss_rate: 0.01, avail_bw: 50e6 });
/// // Lossless path: min(W/T̂, Â).
/// let lossless = fb.predict(&PathEstimates { rtt: 0.08, loss_rate: 0.0, avail_bw: 50e6 });
/// assert!(lossy < lossless);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct FbPredictor {
    config: FbConfig,
}

impl FbPredictor {
    /// Creates a predictor with the given configuration.
    pub fn new(config: FbConfig) -> Self {
        FbPredictor { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FbConfig {
        &self.config
    }

    /// Predicts the target flow's throughput (bits/s) from a-priori
    /// estimates, per Eq. (3).
    ///
    /// # Panics
    ///
    /// Panics (debug) on non-positive RTT, loss rate outside `[0, 1]`, or
    /// negative avail-bw.
    pub fn predict(&self, est: &PathEstimates) -> f64 {
        debug_assert!(est.rtt > 0.0, "FB: non-positive RTT estimate");
        debug_assert!(
            (0.0..=1.0).contains(&est.loss_rate),
            "FB: loss rate {} outside [0, 1]",
            est.loss_rate
        );
        debug_assert!(est.avail_bw >= 0.0, "FB: negative avail-bw");
        let window_limit = 8.0 * self.config.max_window as f64 / est.rtt;
        if est.loss_rate > 0.0 {
            f64::min(self.lossy_model_rate(est.rtt, est.loss_rate), window_limit)
        } else {
            f64::min(window_limit, est.avail_bw)
        }
    }

    /// Eq. (3)'s lossy branch: the configured model's rate, uncapped.
    fn lossy_model_rate(&self, rtt: f64, loss_rate: f64) -> f64 {
        let params = PftkParams {
            mss: self.config.mss,
            rtt,
            rto: formulas::rto_estimate(rtt),
            b: self.config.b,
            p: loss_rate,
            max_window: self.config.max_window,
        };
        match self.config.model {
            FbModel::PftkSimple => pftk(&params),
            FbModel::PftkFull => pftk_full(&params),
            FbModel::PftkRevised => pftk_revised(&params),
            FbModel::Mathis => formulas::mathis(self.config.mss, rtt, self.config.b, loss_rate),
        }
    }

    /// Eq. (3) over possibly-incomplete estimates, degrading per missing
    /// measurement instead of panicking:
    ///
    /// * `T̂` missing → [`PredictError::MissingRtt`] (every branch needs it);
    /// * `p̂ > 0` → the loss-based model, window-capped — `Â` is not needed,
    ///   so a failed pathload run costs nothing on lossy paths;
    /// * `p̂ = 0` with `Â` present → `min(W/T̂, Â)` as usual;
    /// * `p̂ = 0` with `Â` missing → the bare window bound `W/T̂` (the only
    ///   surviving term of the lossless branch);
    /// * `p̂` missing with `Â` present → `min(W/T̂, Â)`: without loss
    ///   evidence the lossless branch is the best remaining estimate;
    /// * both `p̂` and `Â` missing → [`PredictError::MissingLossAndAvailBw`].
    ///
    /// Out-of-domain values yield [`PredictError::InvalidEstimate`] naming
    /// the offending field, never a NaN.
    pub fn try_predict(&self, est: &PartialEstimates) -> Result<f64, PredictError> {
        let out = self.try_predict_inner(est);
        // Observation-only tallies; no-ops unless profiling is enabled.
        match &out {
            Ok(_) => tputpred_obs::add("core.fb.predictions", 1),
            Err(_) => tputpred_obs::add("core.fb.refusals", 1),
        }
        out
    }

    fn try_predict_inner(&self, est: &PartialEstimates) -> Result<f64, PredictError> {
        let rtt = est.rtt.ok_or(PredictError::MissingRtt)?;
        if !rtt.is_finite() || rtt <= 0.0 {
            return Err(PredictError::InvalidEstimate("rtt"));
        }
        if let Some(p) = est.loss_rate {
            if !(0.0..=1.0).contains(&p) {
                return Err(PredictError::InvalidEstimate("loss_rate"));
            }
        }
        if let Some(a) = est.avail_bw {
            if !a.is_finite() || a < 0.0 {
                return Err(PredictError::InvalidEstimate("avail_bw"));
            }
        }
        let window_limit = 8.0 * self.config.max_window as f64 / rtt;
        match (est.loss_rate, est.avail_bw) {
            (Some(p), _) if p > 0.0 => Ok(f64::min(self.lossy_model_rate(rtt, p), window_limit)),
            (Some(_), Some(a)) | (None, Some(a)) => Ok(f64::min(window_limit, a)),
            (Some(_), None) => Ok(window_limit),
            (None, None) => Err(PredictError::MissingLossAndAvailBw),
        }
    }

    /// True when the flow would be *window-limited* on this path:
    /// `W/T̂ < Â` (§4.2.8). Window-limited flows do not attempt to
    /// saturate the path and have far more predictable throughput.
    pub fn is_window_limited(&self, est: &PathEstimates) -> bool {
        8.0 * self.config.max_window as f64 / est.rtt < est.avail_bw
    }
}

/// FB on the unified trait: prediction delegates to the inherent
/// [`FbPredictor::try_predict`] over the epoch's probe features; the
/// formula is stateless, so observations are [`Update::Skipped`].
impl Predictor for FbPredictor {
    fn try_predict(&self, features: &EpochFeatures) -> Result<f64, PredictError> {
        FbPredictor::try_predict(self, &features.probes)
    }

    fn observe(&mut self, _epoch: &EpochObservation) -> Update {
        Update::Skipped
    }

    fn reset(&mut self) {}

    // lint:hot-path
    fn name(&self) -> &str {
        "FB"
    }
}

/// §4.2.10: FB prediction fed with *history-smoothed* RTT and loss-rate
/// estimates instead of the single most recent measurement.
///
/// Maintains an n-order Moving Average (the paper uses n = 10) over past
/// per-epoch measurements of `T̂` and `p̂`; prediction uses the smoothed
/// values — *including* the fresh features being predicted from — and the
/// latest avail-bw in Eq. (3). Missing probe measurements simply don't
/// enter the averages; an epoch with neither RTT nor loss is a state
/// no-op.
///
/// # Examples
///
/// ```
/// use tputpred_core::fb::{PathEstimates, SmoothedFbPredictor};
/// use tputpred_core::predictor::{EpochFeatures, EpochObservation, Predictor};
///
/// let mut s = SmoothedFbPredictor::new(Default::default(), 10);
/// let stable = PathEstimates { rtt: 0.08, loss_rate: 0.01, avail_bw: 10e6 };
/// for _ in 0..5 {
///     s.observe(&EpochObservation::new(stable.into(), None));
/// }
/// // A single noisy RTT spike barely moves the smoothed prediction.
/// let noisy = PathEstimates { rtt: 0.30, loss_rate: 0.01, avail_bw: 10e6 };
/// let smoothed = s.try_predict(&noisy.into()).unwrap();
/// let unsmoothed = tputpred_core::fb::FbPredictor::default().predict(&noisy);
/// assert!(smoothed > unsmoothed);
/// ```
#[derive(Debug, Clone)]
pub struct SmoothedFbPredictor {
    fb: FbPredictor,
    rtt_ma: MovingAverage,
    loss_ma: MovingAverage,
}

impl SmoothedFbPredictor {
    /// Creates a smoothed FB predictor averaging the last `n` measurement
    /// epochs.
    pub fn new(config: FbConfig, n: usize) -> Self {
        SmoothedFbPredictor {
            fb: FbPredictor::new(config),
            rtt_ma: MovingAverage::new(n),
            loss_ma: MovingAverage::new(n),
        }
    }
}

/// Prediction smooths the offered RTT/loss into the history *as if
/// observed* (without mutating it — the histories are cloned), exactly
/// the paper's protocol where each epoch's fresh measurement joins the
/// average before predicting. Observing an epoch then ingests its
/// features for real.
impl Predictor for SmoothedFbPredictor {
    fn try_predict(&self, features: &EpochFeatures) -> Result<f64, PredictError> {
        let mut rtt_ma = self.rtt_ma.clone();
        let mut loss_ma = self.loss_ma.clone();
        if let Some(rtt) = features.probes.rtt {
            rtt_ma.update(rtt);
        }
        if let Some(p) = features.probes.loss_rate {
            loss_ma.update(p);
        }
        let smoothed = PartialEstimates {
            rtt: rtt_ma.forecast().or(features.probes.rtt),
            loss_rate: loss_ma.forecast().or(features.probes.loss_rate),
            avail_bw: features.probes.avail_bw,
        };
        self.fb.try_predict(&smoothed)
    }

    fn observe(&mut self, epoch: &EpochObservation) -> Update {
        let mut ingested = false;
        if let Some(rtt) = epoch.features.probes.rtt {
            self.rtt_ma.update(rtt);
            ingested = true;
        }
        if let Some(p) = epoch.features.probes.loss_rate {
            self.loss_ma.update(p);
            ingested = true;
        }
        if ingested {
            Update::Accepted
        } else {
            Update::Skipped
        }
    }

    fn reset(&mut self) {
        self.rtt_ma.reset();
        self.loss_ma.reset();
    }

    // lint:hot-path
    fn name(&self) -> &str {
        "FB-smoothed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(rtt: f64, p: f64, a: f64) -> PathEstimates {
        PathEstimates {
            rtt,
            loss_rate: p,
            avail_bw: a,
        }
    }

    #[test]
    fn lossless_branch_takes_min_of_window_and_availbw() {
        let fb = FbPredictor::default(); // W = 1 MB
                                         // W/T = 8·2²⁰/0.1 ≈ 83.9 Mbps; avail-bw 10 Mbps wins.
        let r = fb.predict(&est(0.1, 0.0, 10e6));
        assert_eq!(r, 10e6);
        // Tiny window: W/T wins.
        let fb_small = FbPredictor::new(FbConfig {
            max_window: 20 * 1024,
            ..Default::default()
        });
        let r = fb_small.predict(&est(0.1, 0.0, 10e6));
        assert!((r - 8.0 * 20.0 * 1024.0 / 0.1).abs() < 1.0);
    }

    #[test]
    fn lossy_branch_uses_pftk() {
        let fb = FbPredictor::default();
        let r = fb.predict(&est(0.08, 0.01, 100e6));
        let expected = pftk(&PftkParams {
            mss: formulas::DEFAULT_MSS,
            rtt: 0.08,
            rto: 1.0,
            b: 2.0,
            p: 0.01,
            max_window: 1 << 20,
        });
        assert_eq!(r, expected);
    }

    #[test]
    fn rto_floor_affects_lossy_prediction() {
        // Same loss, RTT above the floor → RTO = 2·T̂ reduces throughput
        // more than linearly in RTT.
        let fb = FbPredictor::default();
        let r_short = fb.predict(&est(0.04, 0.05, 100e6));
        let r_long = fb.predict(&est(0.8, 0.05, 100e6));
        assert!(r_short > r_long);
    }

    #[test]
    fn higher_loss_predicts_lower_throughput() {
        let fb = FbPredictor::default();
        let r1 = fb.predict(&est(0.08, 0.001, 100e6));
        let r2 = fb.predict(&est(0.08, 0.01, 100e6));
        let r3 = fb.predict(&est(0.08, 0.1, 100e6));
        assert!(r1 > r2 && r2 > r3);
    }

    #[test]
    fn window_limited_classification() {
        let fb = FbPredictor::new(FbConfig {
            max_window: 20 * 1024,
            ..Default::default()
        });
        // W/T = 8·20·1024/0.1 ≈ 1.64 Mbps < 10 Mbps avail.
        assert!(fb.is_window_limited(&est(0.1, 0.0, 10e6)));
        // 1 MB window on the same path is not.
        assert!(!FbPredictor::default().is_window_limited(&est(0.1, 0.0, 10e6)));
    }

    #[test]
    fn all_models_are_window_capped() {
        for model in [
            FbModel::PftkSimple,
            FbModel::PftkFull,
            FbModel::PftkRevised,
            FbModel::Mathis,
        ] {
            let fb = FbPredictor::new(FbConfig {
                max_window: 16 * 1024,
                model,
                ..Default::default()
            });
            // Near-zero loss would predict huge throughput; cap must hold.
            let r = fb.predict(&est(0.05, 1e-7, 1e9));
            let cap = 8.0 * 16.0 * 1024.0 / 0.05;
            assert!(r <= cap + 1e-6, "{model:?}: {r} > cap {cap}");
        }
    }

    #[test]
    fn smoothed_predictor_resists_single_epoch_noise() {
        let mut s = SmoothedFbPredictor::new(FbConfig::default(), 10);
        let stable = est(0.05, 0.01, 10e6);
        for _ in 0..9 {
            s.observe(&EpochObservation::new(stable.into(), None));
        }
        let spike = est(0.5, 0.1, 10e6);
        let smoothed = s.try_predict(&spike.into()).unwrap();
        let unsmoothed = FbPredictor::default().predict(&spike);
        assert!(
            smoothed > 2.0 * unsmoothed,
            "smoothing should dampen the spike: {smoothed} vs {unsmoothed}"
        );
    }

    #[test]
    fn smoothed_predictor_with_no_history_matches_plain_fb() {
        let s = SmoothedFbPredictor::new(FbConfig::default(), 10);
        let e = est(0.08, 0.02, 10e6);
        let a = s.try_predict(&e.into()).unwrap();
        let b = FbPredictor::default().predict(&e);
        assert_eq!(a, b);
    }

    #[test]
    fn smoothed_predictor_skips_featureless_epochs() {
        let mut s = SmoothedFbPredictor::new(FbConfig::default(), 10);
        assert_eq!(s.observe(&EpochObservation::GAP), Update::Skipped);
        assert_eq!(
            s.observe(&EpochObservation::sample(5e6)),
            Update::Skipped,
            "throughput alone carries nothing the formula smooths"
        );
        let e = est(0.08, 0.02, 10e6);
        s.observe(&EpochObservation::new(e.into(), None));
        assert!(s.try_predict(&e.into()).is_ok());
    }

    #[test]
    fn fb_trait_impl_matches_inherent_try_predict() {
        let fb = FbPredictor::default();
        for e in [est(0.08, 0.01, 50e6), est(0.1, 0.0, 10e6)] {
            let features = EpochFeatures::from(e);
            assert_eq!(
                Predictor::try_predict(&fb, &features),
                fb.try_predict(&e.into())
            );
        }
        let mut fb = fb;
        assert_eq!(
            fb.observe(&EpochObservation::sample(5e6)),
            Update::Skipped,
            "the formula is stateless"
        );
        assert_eq!(Predictor::name(&fb), "FB");
    }

    #[test]
    fn try_predict_on_complete_estimates_matches_predict() {
        let fb = FbPredictor::default();
        for e in [est(0.08, 0.01, 50e6), est(0.1, 0.0, 10e6)] {
            assert_eq!(fb.try_predict(&e.into()), Ok(fb.predict(&e)));
        }
    }

    #[test]
    fn try_predict_lossy_path_ignores_missing_availbw() {
        // Pathload aborted, but loss evidence selects the PFTK branch,
        // which never consults Â: prediction is unchanged.
        let fb = FbPredictor::default();
        let degraded = PartialEstimates {
            rtt: Some(0.08),
            loss_rate: Some(0.01),
            avail_bw: None,
        };
        assert_eq!(
            fb.try_predict(&degraded),
            Ok(fb.predict(&est(0.08, 0.01, 50e6)))
        );
    }

    #[test]
    fn try_predict_lossless_without_availbw_degrades_to_window_bound() {
        let fb = FbPredictor::default();
        let degraded = PartialEstimates {
            rtt: Some(0.1),
            loss_rate: Some(0.0),
            avail_bw: None,
        };
        let r = fb.try_predict(&degraded).unwrap();
        assert!((r - 8.0 * (1u32 << 20) as f64 / 0.1).abs() < 1.0);
    }

    #[test]
    fn try_predict_missing_loss_uses_lossless_branch() {
        let fb = FbPredictor::default();
        let degraded = PartialEstimates {
            rtt: Some(0.1),
            loss_rate: None,
            avail_bw: Some(10e6),
        };
        assert_eq!(fb.try_predict(&degraded), Ok(10e6));
    }

    #[test]
    fn try_predict_typed_errors_for_unusable_epochs() {
        use crate::error::PredictError;
        let fb = FbPredictor::default();
        let no_rtt = PartialEstimates {
            rtt: None,
            loss_rate: Some(0.01),
            avail_bw: Some(10e6),
        };
        assert_eq!(fb.try_predict(&no_rtt), Err(PredictError::MissingRtt));
        let only_rtt = PartialEstimates {
            rtt: Some(0.1),
            loss_rate: None,
            avail_bw: None,
        };
        assert_eq!(
            fb.try_predict(&only_rtt),
            Err(PredictError::MissingLossAndAvailBw)
        );
        let bad_rtt = PartialEstimates {
            rtt: Some(-0.1),
            loss_rate: Some(0.0),
            avail_bw: Some(10e6),
        };
        assert_eq!(
            fb.try_predict(&bad_rtt),
            Err(PredictError::InvalidEstimate("rtt"))
        );
        let bad_loss = PartialEstimates {
            rtt: Some(0.1),
            loss_rate: Some(1.5),
            avail_bw: None,
        };
        assert_eq!(
            fb.try_predict(&bad_loss),
            Err(PredictError::InvalidEstimate("loss_rate"))
        );
        let bad_abw = PartialEstimates {
            rtt: Some(0.1),
            loss_rate: Some(0.0),
            avail_bw: Some(f64::NAN),
        };
        assert_eq!(
            fb.try_predict(&bad_abw),
            Err(PredictError::InvalidEstimate("avail_bw"))
        );
    }

    #[test]
    fn zero_availbw_on_lossless_path_predicts_zero() {
        // Degenerate but valid: a fully utilised lossless path.
        let fb = FbPredictor::default();
        assert_eq!(fb.predict(&est(0.1, 0.0, 0.0)), 0.0);
    }
}
