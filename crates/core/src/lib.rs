//! # tputpred-core — TCP throughput prediction
//!
//! The paper's primary contribution, as a library: predictors for the
//! average throughput of a *large* (bulk) TCP transfer on a network path,
//! computed **before** the transfer starts.
//!
//! He, Dovrolis, Ammar, *On the predictability of large transfer TCP
//! throughput*, SIGCOMM 2005 / Computer Networks 51 (2007) 3959–3977,
//! classifies predictors into two families, both implemented here:
//!
//! * **Formula-Based (FB)** — [`fb::FbPredictor`] implements the paper's
//!   Eq. (3): plug a-priori measurements (RTT `T̂` and loss rate `p̂` from
//!   periodic probing, available bandwidth `Â` from pathload-style
//!   estimation) into a TCP steady-state model. The models themselves live
//!   in [`formulas`]: the Mathis "square-root" law (Eq. 1), the PFTK
//!   approximation (Eq. 2), the full PFTK model, and a revised PFTK variant
//!   (§4.2.9). FB needs no transfer history but, as the paper shows, can be
//!   off by an order of magnitude when the target flow saturates its path.
//!
//! * **History-Based (HB)** — [`hb`] implements time-series forecasting over
//!   previous transfer throughputs on the same path: Moving Average
//!   ([`hb::MovingAverage`]), EWMA ([`hb::Ewma`]), and non-seasonal
//!   Holt-Winters ([`hb::HoltWinters`]), all behind the [`hb::Predictor`]
//!   trait. The paper's key practical finding — that detecting *level
//!   shifts* (restart the predictor) and *outliers* (discard the sample)
//!   matters more than the choice of predictor — is implemented by
//!   [`lso::Lso`], a wrapper that adds those heuristics (§5.2) to any
//!   predictor.
//!
//! Supporting modules:
//!
//! * [`metrics`] — the paper's error metrics: relative prediction error `E`
//!   (Eq. 4), `RMSRE` (Eq. 5), segment-weighted coefficient of variation
//!   (§6.1.3), predictor evaluation over a series, and down-sampling
//!   (§6.1.6).
//! * [`hybrid`] — an FB/HB hybrid predictor (the paper's future-work §7):
//!   fall back to the formula while history is short, hand over to HB as
//!   history accumulates.
//! * [`error`] — [`error::PredictError`], the typed reason a predictor
//!   declined to forecast on a degraded epoch (missing or out-of-domain
//!   measurements, insufficient history) instead of a NaN or a panic.
//!
//! ## Units
//!
//! Throughput and bandwidth are **bits per second**, times are **seconds**,
//! and segment/window sizes are **bytes** throughout the workspace.

pub mod error;
pub mod fb;
pub mod formulas;
pub mod hb;
pub mod hybrid;
pub mod lso;
pub mod metrics;

pub use error::PredictError;
pub use fb::{FbConfig, FbPredictor, PartialEstimates, PathEstimates, SmoothedFbPredictor};
pub use hb::{Ewma, HoltWinters, MovingAverage, Predictor, Update};
pub use hybrid::HybridPredictor;
pub use lso::{Detector, DetectorEvent, Lso, LsoConfig};
pub use metrics::{evaluate_gappy, relative_error, rmsre, segmented_cov};
