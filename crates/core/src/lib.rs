//! # tputpred-core — TCP throughput prediction
//!
//! The paper's primary contribution, as a library: predictors for the
//! average throughput of a *large* (bulk) TCP transfer on a network path,
//! computed **before** the transfer starts.
//!
//! He, Dovrolis, Ammar, *On the predictability of large transfer TCP
//! throughput*, SIGCOMM 2005 / Computer Networks 51 (2007) 3959–3977,
//! classifies predictors into two families, both implemented here:
//!
//! * **Formula-Based (FB)** — [`fb::FbPredictor`] implements the paper's
//!   Eq. (3): plug a-priori measurements (RTT `T̂` and loss rate `p̂` from
//!   periodic probing, available bandwidth `Â` from pathload-style
//!   estimation) into a TCP steady-state model. The models themselves live
//!   in [`formulas`]: the Mathis "square-root" law (Eq. 1), the PFTK
//!   approximation (Eq. 2), the full PFTK model, and a revised PFTK variant
//!   (§4.2.9). FB needs no transfer history but, as the paper shows, can be
//!   off by an order of magnitude when the target flow saturates its path.
//!
//! * **History-Based (HB)** — [`hb`] implements time-series forecasting over
//!   previous transfer throughputs on the same path: Moving Average
//!   ([`hb::MovingAverage`]), EWMA ([`hb::Ewma`]), non-seasonal
//!   Holt-Winters ([`hb::HoltWinters`]), and an AR(p) baseline
//!   ([`hb::ArPredictor`]). The paper's key practical finding — that
//!   detecting *level shifts* (restart the predictor) and *outliers*
//!   (discard the sample) matters more than the choice of predictor — is
//!   implemented by [`lso::Lso`], a wrapper that adds those heuristics
//!   (§5.2) to any predictor.
//!
//! Every family implements the one [`predictor::Predictor`] trait —
//! gap-tolerant epoch observation in ([`predictor::EpochObservation`]),
//! typed forecast out (`Result<f64, PredictError>`) — and registers in
//! [`catalog::predictor_catalog`], the name-based registry the
//! cross-predictor league table iterates. Three combined families build
//! on the two classics:
//!
//! * [`regression`] — multivariate OLS over the formula's prediction and
//!   the previous transfer (Vazhkudai & Schopf, arXiv:cs/0304037).
//! * [`conditional`] — empirical medians binned on probe state
//!   (cf. arXiv:2111.14080).
//! * [`gated`] — an FB/HB blend gated by RTT coefficient of variation.
//! * [`resilience`] — degradation policies as predictor combinators:
//!   fallback chains, staleness guards, and a deterministic circuit
//!   breaker, for serving through correlated measurement outages
//!   (DESIGN.md §13).
//!
//! Supporting modules:
//!
//! * [`metrics`] — the paper's error metrics: relative prediction error `E`
//!   (Eq. 4), `RMSRE` (Eq. 5), segment-weighted coefficient of variation
//!   (§6.1.3), predictor evaluation over a series, and down-sampling
//!   (§6.1.6).
//! * [`hybrid`] — an FB/HB hybrid predictor (the paper's future-work §7):
//!   fall back to the formula while history is short, hand over to HB as
//!   history accumulates.
//! * [`predictor`] — the unified [`predictor::Predictor`] trait, epoch
//!   observation types, and the [`predictor::Update`] a predictor reports
//!   per observed epoch.
//! * [`catalog`] — the name-based predictor registry.
//! * [`error`] — [`error::PredictError`], the typed reason a predictor
//!   declined to forecast on a degraded epoch (missing or out-of-domain
//!   measurements, insufficient history) instead of a NaN or a panic.
//!
//! ## Units
//!
//! Throughput and bandwidth are **bits per second**, times are **seconds**,
//! and segment/window sizes are **bytes** throughout the workspace.

pub mod catalog;
pub mod conditional;
pub mod error;
pub mod fb;
pub mod formulas;
pub mod gated;
pub mod hb;
pub mod hybrid;
pub mod lso;
pub mod metrics;
pub mod predictor;
pub mod regression;
pub mod resilience;

pub use catalog::{predictor_by_name, predictor_catalog, BoxedPredictor, CatalogEntry};
pub use conditional::ConditionalPredictor;
pub use error::PredictError;
pub use fb::{FbConfig, FbPredictor, PartialEstimates, PathEstimates, SmoothedFbPredictor};
pub use gated::RttCvGated;
pub use hb::{ArPredictor, Ewma, HoltWinters, MovingAverage};
pub use hybrid::HybridPredictor;
pub use lso::{Detector, DetectorEvent, Lso, LsoConfig};
pub use metrics::{evaluate_gappy, relative_error, rmsre, segmented_cov};
pub use predictor::{EpochFeatures, EpochObservation, Predictor, Update};
pub use regression::RegressionPredictor;
pub use resilience::{
    BreakerState, CircuitBreaker, Fallback, FallbackTier, LastKnownGood, Staleness,
};
