//! A hybrid FB/HB predictor — the paper's future-work direction (§7):
//! "it would be interesting to examine hybrid predictors, which rely on
//! TCP models as well as on recent history."
//!
//! [`HybridPredictor`] implements the natural construction: while the
//! transfer history on a path is shorter than a warm-up threshold, predict
//! with the formula (FB needs no history); once history accumulates, blend
//! the FB prediction in with a weight that decays as HB earns trust. The
//! paper's finding that HB ≫ FB in accuracy (§6.1.2) implies the blend
//! should tilt quickly toward HB — the default decay does.

use crate::fb::{FbPredictor, PathEstimates};
use crate::hb::{Predictor, Update};
use crate::lso::Lso;

/// Hybrid of an FB predictor and an LSO-wrapped HB predictor.
///
/// The blend weight on FB is `1/(h+1)` where `h` is the number of history
/// samples since the last level shift — FB alone before any transfer,
/// ~9% FB weight after ten transfers, vanishing thereafter. A level shift
/// resets `h`, so the formula regains influence exactly when history
/// stops being trustworthy.
///
/// # Examples
///
/// ```
/// use tputpred_core::fb::PathEstimates;
/// use tputpred_core::hb::HoltWinters;
/// use tputpred_core::hybrid::HybridPredictor;
///
/// let mut h = HybridPredictor::new(Default::default(), HoltWinters::new(0.8, 0.2));
/// let est = PathEstimates { rtt: 0.08, loss_rate: 0.01, avail_bw: 20e6 };
/// // No history yet: pure FB.
/// let first = h.predict(&est);
/// assert!(first > 0.0);
/// // After a few observed transfers the history dominates.
/// for _ in 0..20 {
///     h.observe(9e6);
/// }
/// let later = h.predict(&est);
/// assert!((later - 9e6).abs() / 9e6 < 0.15);
/// ```
#[derive(Debug, Clone)]
pub struct HybridPredictor<P> {
    fb: FbPredictor,
    hb: Lso<P>,
    history_len: usize,
}

impl<P: Predictor> HybridPredictor<P> {
    /// Creates a hybrid from an FB configuration and an inner HB predictor
    /// (which gets LSO-wrapped).
    pub fn new(fb: FbPredictor, hb_inner: P) -> Self {
        HybridPredictor {
            fb,
            hb: Lso::new(hb_inner),
            history_len: 0,
        }
    }

    /// Records a completed transfer's measured throughput (bits/s).
    pub fn observe(&mut self, throughput: f64) {
        match self.hb.update(throughput) {
            Update::LevelShift { .. } => {
                // History restarted: trust the formula again.
                self.history_len = self.hb.detector().window().len();
            }
            Update::OutliersDiscarded(_) => {
                self.history_len = self.hb.detector().window().len();
            }
            Update::Accepted => self.history_len += 1,
        }
    }

    /// Number of history samples currently backing the HB side.
    pub fn history_len(&self) -> usize {
        self.history_len
    }

    /// Current blend weight on the FB side.
    pub fn fb_weight(&self) -> f64 {
        1.0 / (self.history_len as f64 + 1.0)
    }

    /// Predicts the next transfer's throughput given fresh a-priori path
    /// estimates.
    pub fn predict(&self, est: &PathEstimates) -> f64 {
        let fb_pred = self.fb.predict(est);
        match self.hb.predict() {
            None => fb_pred,
            Some(hb_pred) => {
                let w = self.fb_weight();
                w * fb_pred + (1.0 - w) * hb_pred
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hb::MovingAverage;

    fn est() -> PathEstimates {
        PathEstimates {
            rtt: 0.08,
            loss_rate: 0.01,
            avail_bw: 20e6,
        }
    }

    #[test]
    fn no_history_means_pure_fb() {
        let h = HybridPredictor::new(FbPredictor::default(), MovingAverage::new(10));
        let fb_only = FbPredictor::default().predict(&est());
        assert_eq!(h.predict(&est()), fb_only);
        assert_eq!(h.fb_weight(), 1.0);
    }

    #[test]
    fn history_shifts_weight_to_hb() {
        let mut h = HybridPredictor::new(FbPredictor::default(), MovingAverage::new(10));
        for _ in 0..9 {
            h.observe(5e6);
        }
        assert!((h.fb_weight() - 0.1).abs() < 1e-12);
        let p = h.predict(&est());
        let fb_only = FbPredictor::default().predict(&est());
        // Prediction is much closer to history (5 Mbps) than to FB alone.
        assert!((p - 5e6).abs() < (p - fb_only).abs());
    }

    #[test]
    fn level_shift_restores_fb_influence() {
        let mut h = HybridPredictor::new(FbPredictor::default(), MovingAverage::new(10));
        for _ in 0..20 {
            h.observe(5e6);
        }
        let before = h.fb_weight();
        for _ in 0..3 {
            h.observe(15e6); // triggers a level shift
        }
        let after = h.fb_weight();
        assert!(after > before, "shift resets history: {after} vs {before}");
        assert!(h.history_len() <= 4);
    }

    #[test]
    fn blend_is_convex_combination() {
        let mut h = HybridPredictor::new(FbPredictor::default(), MovingAverage::new(10));
        for _ in 0..4 {
            h.observe(5e6);
        }
        let fb_only = FbPredictor::default().predict(&est());
        let p = h.predict(&est());
        let (lo, hi) = if fb_only < 5e6 {
            (fb_only, 5e6)
        } else {
            (5e6, fb_only)
        };
        assert!((lo..=hi).contains(&p));
    }
}
