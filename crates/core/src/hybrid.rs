//! A hybrid FB/HB predictor — the paper's future-work direction (§7):
//! "it would be interesting to examine hybrid predictors, which rely on
//! TCP models as well as on recent history."
//!
//! [`HybridPredictor`] implements the natural construction over any two
//! [`Predictor`]s: while the transfer history on a path is shorter than
//! a warm-up threshold, predict with the formula side (which needs no
//! history); once history accumulates, blend the formula prediction in
//! with a weight that decays as the history side earns trust. The
//! paper's finding that HB ≫ FB in accuracy (§6.1.2) implies the blend
//! should tilt quickly toward HB — the default decay does.

use crate::error::PredictError;
use crate::predictor::{EpochFeatures, EpochObservation, Predictor, Update};

/// Hybrid of a formula-side predictor (typically
/// [`crate::fb::FbPredictor`]) and a history-side predictor (typically
/// an [`crate::lso::Lso`]-wrapped HB predictor).
///
/// The blend weight on the formula side is `1/(h+1)` where `h` is the
/// number of history samples since the last level shift — formula alone
/// before any transfer, ~9% formula weight after ten transfers,
/// vanishing thereafter. A level shift resets `h` (via the `retained`
/// count the history side reports), so the formula regains influence
/// exactly when history stops being trustworthy.
///
/// # Examples
///
/// ```
/// use tputpred_core::fb::{FbPredictor, PathEstimates};
/// use tputpred_core::hb::HoltWinters;
/// use tputpred_core::hybrid::HybridPredictor;
/// use tputpred_core::lso::Lso;
/// use tputpred_core::predictor::Predictor;
///
/// let mut h = HybridPredictor::new(
///     FbPredictor::default(),
///     Lso::new(HoltWinters::new(0.8, 0.2)),
/// );
/// let est = PathEstimates { rtt: 0.08, loss_rate: 0.01, avail_bw: 20e6 };
/// // No history yet: pure FB.
/// let first = h.try_predict(&est.into()).unwrap();
/// assert!(first > 0.0);
/// // After a few observed transfers the history dominates.
/// for _ in 0..20 {
///     h.update(9e6);
/// }
/// let later = h.try_predict(&est.into()).unwrap();
/// assert!((later - 9e6).abs() / 9e6 < 0.15);
/// ```
#[derive(Debug, Clone)]
pub struct HybridPredictor<F, H> {
    formula: F,
    history: H,
    history_len: usize,
}

impl<F: Predictor, H: Predictor> HybridPredictor<F, H> {
    /// Creates a hybrid from a formula-side and a history-side predictor.
    pub fn new(formula: F, history: H) -> Self {
        HybridPredictor {
            formula,
            history,
            history_len: 0,
        }
    }

    /// Number of history samples currently backing the history side.
    pub fn history_len(&self) -> usize {
        self.history_len
    }

    /// Current blend weight on the formula side.
    // lint:hot-path
    pub fn fb_weight(&self) -> f64 {
        1.0 / (self.history_len as f64 + 1.0)
    }

    /// The formula-side predictor.
    pub fn formula(&self) -> &F {
        &self.formula
    }

    /// The history-side predictor.
    pub fn history(&self) -> &H {
        &self.history
    }
}

impl<F: Predictor, H: Predictor> Predictor for HybridPredictor<F, H> {
    /// Blends the two sides when both forecast; degrades to whichever
    /// side still can when the other refuses (a formula refusal on a
    /// degraded epoch should not silence accumulated history, and vice
    /// versa). Only when both refuse does the hybrid refuse, carrying
    /// the formula side's reason (it names *why*: missing RTT,
    /// degenerate estimates).
    fn try_predict(&self, features: &EpochFeatures) -> Result<f64, PredictError> {
        let formula_pred = self.formula.try_predict(features);
        let history_pred = self.history.try_predict(features);
        match (formula_pred, history_pred) {
            (Ok(f), Ok(h)) => {
                let w = self.fb_weight();
                Ok(w * f + (1.0 - w) * h)
            }
            (Ok(f), Err(_)) => Ok(f),
            (Err(_), Ok(h)) => Ok(h),
            (Err(e), Err(_)) => Err(e),
        }
    }

    /// Forwards the epoch to both sides and tracks the history length
    /// from the history side's [`Update`] — `retained` counts after an
    /// event, +1 per accepted throughput sample. The history side's
    /// update is returned (it carries the LSO events evaluation wants).
    fn observe(&mut self, epoch: &EpochObservation) -> Update {
        self.formula.observe(epoch);
        let up = self.history.observe(epoch);
        match &up {
            Update::Accepted => {
                if epoch.throughput_bps.is_some() {
                    self.history_len += 1;
                }
            }
            Update::Skipped => {}
            Update::OutliersDiscarded { retained, .. } | Update::LevelShift { retained, .. } => {
                self.history_len = *retained;
            }
        }
        up
    }

    fn reset(&mut self) {
        self.formula.reset();
        self.history.reset();
        self.history_len = 0;
    }

    // lint:hot-path
    fn name(&self) -> &str {
        "hybrid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fb::{FbPredictor, PathEstimates};
    use crate::hb::MovingAverage;
    use crate::lso::Lso;

    fn est() -> PathEstimates {
        PathEstimates {
            rtt: 0.08,
            loss_rate: 0.01,
            avail_bw: 20e6,
        }
    }

    fn hybrid() -> HybridPredictor<FbPredictor, Lso<MovingAverage>> {
        HybridPredictor::new(FbPredictor::default(), Lso::new(MovingAverage::new(10)))
    }

    #[test]
    fn no_history_means_pure_fb() {
        let h = hybrid();
        let fb_only = FbPredictor::default().predict(&est());
        assert_eq!(h.try_predict(&est().into()), Ok(fb_only));
        assert_eq!(h.fb_weight(), 1.0);
    }

    #[test]
    fn history_shifts_weight_to_hb() {
        let mut h = hybrid();
        for _ in 0..9 {
            h.update(5e6);
        }
        assert!((h.fb_weight() - 0.1).abs() < 1e-12);
        let p = h.try_predict(&est().into()).unwrap();
        let fb_only = FbPredictor::default().predict(&est());
        // Prediction is much closer to history (5 Mbps) than to FB alone.
        assert!((p - 5e6).abs() < (p - fb_only).abs());
    }

    #[test]
    fn level_shift_restores_fb_influence() {
        let mut h = hybrid();
        for _ in 0..20 {
            h.update(5e6);
        }
        let before = h.fb_weight();
        for _ in 0..3 {
            h.update(15e6); // triggers a level shift
        }
        let after = h.fb_weight();
        assert!(after > before, "shift resets history: {after} vs {before}");
        assert!(h.history_len() <= 4);
    }

    #[test]
    fn blend_is_convex_combination() {
        let mut h = hybrid();
        for _ in 0..4 {
            h.update(5e6);
        }
        let fb_only = FbPredictor::default().predict(&est());
        let p = h.try_predict(&est().into()).unwrap();
        let (lo, hi) = if fb_only < 5e6 {
            (fb_only, 5e6)
        } else {
            (5e6, fb_only)
        };
        assert!((lo..=hi).contains(&p));
    }

    #[test]
    fn gap_epochs_do_not_change_the_blend() {
        let mut h = hybrid();
        for _ in 0..4 {
            h.update(5e6);
        }
        let before = h.history_len();
        assert_eq!(h.observe(&EpochObservation::GAP), Update::Skipped);
        assert_eq!(h.history_len(), before);
    }

    #[test]
    fn both_sides_refusing_propagates_the_formula_reason() {
        use crate::error::PredictError;
        let h = hybrid();
        assert_eq!(
            h.try_predict(&EpochFeatures::NONE),
            Err(PredictError::MissingRtt)
        );
    }

    #[test]
    fn formula_refusal_degrades_to_history() {
        let mut h = hybrid();
        for _ in 0..5 {
            h.update(5e6);
        }
        // Featureless epoch: FB refuses, accumulated history carries.
        assert_eq!(h.try_predict(&EpochFeatures::NONE), Ok(5e6));
    }
}
