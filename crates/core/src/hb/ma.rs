//! The n-order Moving Average predictor (§5.1.1).

use super::{Predictor, Update};
use crate::error::PredictError;
use crate::predictor::{typed_forecast, EpochFeatures, EpochObservation};
use std::collections::VecDeque;

/// One-step n-order Moving Average (`n-MA`):
///
/// ```text
/// X̂ᵢ₊₁ = (1/n) · Σ_{k=i−n+1..i} X_k
/// ```
///
/// The paper's trade-off (§5.1.1): small `n` cannot smooth measurement
/// noise; large `n` adapts slowly to non-stationarities such as level
/// shifts — which is why Zhang et al.'s 128-sample MA performed poorly and
/// why the LSO wrapper makes the choice of `n` largely irrelevant (§5.3).
///
/// A prediction is available from the first sample on (the average is then
/// over however many samples are present, up to `n`) — matching the paper's
/// evaluation which starts predicting as soon as one transfer has been
/// observed.
///
/// # Examples
///
/// ```
/// use tputpred_core::hb::{MovingAverage, Predictor};
/// let mut ma = MovingAverage::new(3);
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     ma.update(x);
/// }
/// // window holds [2, 3, 4]
/// assert_eq!(ma.forecast(), Some(3.0));
/// ```
#[derive(Debug, Clone)]
pub struct MovingAverage {
    order: usize,
    window: VecDeque<f64>,
    sum: f64,
    name: String,
}

impl MovingAverage {
    /// Creates an `n`-MA predictor.
    ///
    /// # Panics
    ///
    /// Panics if `order` is zero.
    pub fn new(order: usize) -> Self {
        assert!(order > 0, "moving average of order 0");
        MovingAverage {
            order,
            window: VecDeque::with_capacity(order),
            sum: 0.0,
            name: format!("{order}-MA"),
        }
    }

    /// The order `n`.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Number of samples currently in the window (≤ `n`).
    pub fn fill(&self) -> usize {
        self.window.len()
    }
}

impl Predictor for MovingAverage {
    // lint:hot-path
    fn try_predict(&self, _features: &EpochFeatures) -> Result<f64, PredictError> {
        let forecast = if self.window.is_empty() {
            None
        } else {
            Some(self.sum / self.window.len() as f64)
        };
        typed_forecast(forecast)
    }

    fn observe(&mut self, epoch: &EpochObservation) -> Update {
        let Some(x) = epoch.throughput_bps else {
            return Update::Skipped;
        };
        debug_assert!(!x.is_nan(), "NaN sample");
        if self.window.len() == self.order {
            if let Some(old) = self.window.pop_front() {
                self.sum -= old;
            }
        }
        self.window.push_back(x);
        self.sum += x;
        // Guard against drift from incremental +/-: refresh the sum
        // periodically. The window is tiny (n ≤ ~20 in all experiments),
        // so a full re-sum is cheap.
        if self.window.len() == self.order {
            self.sum = self.window.iter().sum();
        }
        Update::Accepted
    }

    fn reset(&mut self) {
        self.window.clear();
        self.sum = 0.0;
    }

    // lint:hot-path
    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_prediction_before_first_sample() {
        let ma = MovingAverage::new(5);
        assert_eq!(ma.forecast(), None);
    }

    #[test]
    fn partial_window_averages_what_it_has() {
        let mut ma = MovingAverage::new(10);
        ma.update(2.0);
        assert_eq!(ma.forecast(), Some(2.0));
        ma.update(4.0);
        assert_eq!(ma.forecast(), Some(3.0));
    }

    #[test]
    fn full_window_slides() {
        let mut ma = MovingAverage::new(2);
        for x in [1.0, 2.0, 3.0] {
            ma.update(x);
        }
        assert_eq!(ma.forecast(), Some(2.5));
        assert_eq!(ma.fill(), 2);
    }

    #[test]
    fn order_one_tracks_last_sample() {
        let mut ma = MovingAverage::new(1);
        for x in [5.0, 9.0, 1.0] {
            ma.update(x);
            assert_eq!(ma.forecast(), Some(x));
        }
    }

    #[test]
    fn reset_clears_history() {
        let mut ma = MovingAverage::new(3);
        ma.update(1.0);
        ma.reset();
        assert_eq!(ma.forecast(), None);
        assert_eq!(ma.fill(), 0);
    }

    #[test]
    fn constant_series_predicts_the_constant() {
        let mut ma = MovingAverage::new(7);
        for _ in 0..50 {
            ma.update(3.25);
        }
        assert_eq!(ma.forecast(), Some(3.25));
    }

    #[test]
    fn long_stream_does_not_drift() {
        let mut ma = MovingAverage::new(4);
        for i in 0..100_000 {
            ma.update((i % 17) as f64 * 1e9 + 0.1);
        }
        // window is the last 4 values; compute expected directly
        let tail: Vec<f64> = (99_996..100_000)
            .map(|i| (i % 17) as f64 * 1e9 + 0.1)
            .collect();
        let expected = tail.iter().sum::<f64>() / 4.0;
        let got = ma.forecast().unwrap();
        assert!((got - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn gap_epochs_leave_the_window_untouched() {
        let mut ma = MovingAverage::new(3);
        ma.update(6.0);
        assert_eq!(ma.observe(&EpochObservation::GAP), Update::Skipped);
        assert_eq!(ma.forecast(), Some(6.0));
        assert_eq!(ma.fill(), 1);
    }

    #[test]
    #[should_panic(expected = "order 0")]
    fn zero_order_panics() {
        let _ = MovingAverage::new(0);
    }

    #[test]
    fn name_includes_order() {
        assert_eq!(MovingAverage::new(10).name(), "10-MA");
    }
}
