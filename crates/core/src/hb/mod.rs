//! History-Based (HB) throughput prediction (§5).
//!
//! HB prediction treats the throughputs of previous TCP transfers on a path
//! as a time series and forecasts the next value. The paper deliberately
//! restricts itself to simple *linear* predictors — applications typically
//! have only 10–20 past transfers, far too few to fit ARMA/ARIMA models
//! (§5, first paragraph):
//!
//! * [`MovingAverage`] — the n-order MA predictor (§5.1.1),
//! * [`Ewma`] — exponentially weighted moving average (§5.1.2),
//! * [`HoltWinters`] — non-seasonal Holt-Winters, an EWMA that also tracks
//!   the series' linear trend (§5.1.3),
//! * [`ArPredictor`] — a sliding-window AR(p) (Yule-Walker): the
//!   ARIMA-class baseline the paper cites as needing more history than
//!   applications have (§5); included so that claim is testable.
//!
//! All implement the [`Predictor`] trait, so the level-shift/outlier
//! wrapper [`crate::lso::Lso`] and the evaluation driver
//! [`crate::metrics::evaluate`] work with any of them.

mod ar;
mod ewma;
mod holt_winters;
mod ma;

use crate::error::PredictError;

pub use ar::ArPredictor;
pub use ewma::Ewma;
pub use holt_winters::HoltWinters;
pub use ma::MovingAverage;

/// What happened inside a predictor when a sample was ingested.
///
/// Plain linear predictors always report [`Update::Accepted`]. The
/// [`crate::lso::Lso`] wrapper reports the §5.2 events so evaluation can
/// exclude outlier samples from RMSRE, as §6.1.3 prescribes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Update {
    /// The sample entered the predictor's history.
    #[default]
    Accepted,
    /// The sample (or earlier samples, identified by their 0-based absolute
    /// positions in the input series) were classified as outliers and
    /// removed from the history.
    OutliersDiscarded(Vec<usize>),
    /// A level shift was detected beginning at the given absolute sample
    /// position; history before it was dropped and the predictor restarted.
    LevelShift { start: usize },
}

/// A one-step-ahead time-series forecaster.
///
/// The contract mirrors how the paper uses predictors: after observing
/// samples `X₁ … Xᵢ` via [`Predictor::update`], [`Predictor::predict`]
/// returns `X̂ᵢ₊₁`, the forecast for the *next* observation, or `None` while
/// the predictor has not yet seen enough samples (e.g. Holt-Winters needs
/// two samples to initialise its trend component).
pub trait Predictor {
    /// Ingests the next observation; returns what the predictor did with it.
    fn update(&mut self, x: f64) -> Update;

    /// One-step-ahead forecast, or `None` if not enough history yet.
    fn predict(&self) -> Option<f64>;

    /// Drops all history, returning the predictor to its initial state.
    fn reset(&mut self);

    /// Short human-readable name, e.g. `"10-MA"`, used in figure labels.
    fn name(&self) -> String;

    /// Like [`Predictor::predict`] but with a typed refusal: `None`
    /// becomes [`PredictError::InsufficientHistory`], and a non-finite
    /// forecast (a predictor poisoned by degraded input) becomes
    /// [`PredictError::InvalidEstimate`] instead of leaking a NaN into
    /// error metrics.
    fn try_predict(&self) -> Result<f64, PredictError> {
        match self.predict() {
            None => Err(PredictError::InsufficientHistory),
            Some(f) if !f.is_finite() => Err(PredictError::InvalidEstimate("forecast")),
            Some(f) => Ok(f),
        }
    }
}

/// Blanket impl so `&mut P` and boxed predictors are predictors too.
impl<P: Predictor + ?Sized> Predictor for &mut P {
    fn update(&mut self, x: f64) -> Update {
        (**self).update(x)
    }
    fn predict(&self) -> Option<f64> {
        (**self).predict()
    }
    fn reset(&mut self) {
        (**self).reset()
    }
    fn name(&self) -> String {
        (**self).name()
    }
}

impl Predictor for Box<dyn Predictor + Send> {
    fn update(&mut self, x: f64) -> Update {
        (**self).update(x)
    }
    fn predict(&self) -> Option<f64> {
        (**self).predict()
    }
    fn reset(&mut self) {
        (**self).reset()
    }
    fn name(&self) -> String {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_objects_forward_calls() {
        let mut boxed: Box<dyn Predictor + Send> = Box::new(MovingAverage::new(2));
        assert_eq!(boxed.predict(), None);
        boxed.update(1.0);
        boxed.update(3.0);
        assert_eq!(boxed.predict(), Some(2.0));
        assert_eq!(boxed.name(), "2-MA");
        boxed.reset();
        assert_eq!(boxed.predict(), None);
    }

    #[test]
    fn try_predict_types_the_warmup_refusal() {
        let mut ma = MovingAverage::new(2);
        assert_eq!(ma.try_predict(), Err(PredictError::InsufficientHistory));
        ma.update(3.0);
        assert_eq!(ma.try_predict(), Ok(3.0));
    }

    #[test]
    fn mut_ref_is_a_predictor() {
        fn feed<P: Predictor>(mut p: P) -> Option<f64> {
            p.update(4.0);
            p.predict()
        }
        let mut ma = MovingAverage::new(1);
        assert_eq!(feed(&mut ma), Some(4.0));
    }
}
