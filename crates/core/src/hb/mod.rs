//! History-Based (HB) throughput prediction (§5).
//!
//! HB prediction treats the throughputs of previous TCP transfers on a path
//! as a time series and forecasts the next value. The paper deliberately
//! restricts itself to simple *linear* predictors — applications typically
//! have only 10–20 past transfers, far too few to fit ARMA/ARIMA models
//! (§5, first paragraph):
//!
//! * [`MovingAverage`] — the n-order MA predictor (§5.1.1),
//! * [`Ewma`] — exponentially weighted moving average (§5.1.2),
//! * [`HoltWinters`] — non-seasonal Holt-Winters, an EWMA that also tracks
//!   the series' linear trend (§5.1.3),
//! * [`ArPredictor`] — a sliding-window AR(p) (Yule-Walker): the
//!   ARIMA-class baseline the paper cites as needing more history than
//!   applications have (§5); included so that claim is testable.
//!
//! All implement the unified [`Predictor`] trait (defined in
//! [`crate::predictor`]): they ingest an epoch's measured throughput via
//! [`Predictor::observe`] (ignoring the a-priori features, which only
//! formula-backed predictors consume) and treat feature-only or gap
//! epochs as state no-ops. The level-shift/outlier wrapper
//! [`crate::lso::Lso`], the evaluation drivers in [`crate::metrics`],
//! and the registry in [`crate::catalog`] work with any of them.

mod ar;
mod ewma;
mod holt_winters;
mod ma;

pub use crate::predictor::{Predictor, Update};

pub use ar::ArPredictor;
pub use ewma::Ewma;
pub use holt_winters::HoltWinters;
pub use ma::MovingAverage;
