//! The non-seasonal Holt-Winters predictor (§5.1.3).

use super::{Predictor, Update};
use crate::error::PredictError;
use crate::predictor::{typed_forecast, EpochFeatures, EpochObservation};

/// Non-seasonal Holt-Winters (double exponential smoothing): an EWMA that
/// additionally tracks the series' linear *trend*.
///
/// Separate smoothing (`X̂ˢ`) and trend (`X̂ᵗ`) components are maintained,
/// with the forecast
///
/// ```text
/// X̂ᶠᵢ   = X̂ˢᵢ + X̂ᵗᵢ
/// X̂ˢᵢ₊₁ = α·Xᵢ + (1−α)·X̂ᶠᵢ
/// X̂ᵗᵢ₊₁ = β·(X̂ˢᵢ₊₁ − X̂ˢᵢ) + (1−β)·X̂ᵗᵢ
/// ```
///
/// initialised, as in the paper, with `X̂ˢ₀ = X₀` and `X̂ᵗ₀ = X₁ − X₀` — so
/// the first forecast is available after **two** samples. (The journal
/// text prints the trend recursion with indices `X̂ᵗᵢ₊₁ = β(X̂ˢᵢ − X̂ˢᵢ₋₁) +
/// (1−β)X̂ᵗᵢ₋₁`, skipping `X̂ᵗᵢ`; we implement the standard Holt recursion
/// above, which the printed one is evidently a typo of.)
///
/// §5.3/§6.1.1: `α = 0.8, β = 0.2` are near-optimal on the paper's
/// dataset, HW-LSO is the paper's best predictor overall, and the margin
/// over MA-LSO is slight because few traces exhibit sustained linear
/// trends.
///
/// # Examples
///
/// ```
/// use tputpred_core::hb::{HoltWinters, Predictor};
/// let mut hw = HoltWinters::new(0.8, 0.2);
/// hw.update(10.0);
/// assert_eq!(hw.forecast(), None); // needs two samples
/// hw.update(12.0);
/// let f = hw.forecast().unwrap();
/// assert!(f > 12.0, "rising series forecasts above the last sample");
/// ```
#[derive(Debug, Clone)]
pub struct HoltWinters {
    alpha: f64,
    beta: f64,
    state: HwState,
    name: String,
}

#[derive(Debug, Clone)]
enum HwState {
    /// No samples yet.
    Empty,
    /// One sample seen; waiting for the second to initialise the trend.
    Priming { x0: f64 },
    /// Fully initialised.
    Running { smooth: f64, trend: f64 },
}

impl HoltWinters {
    /// Creates a Holt-Winters predictor with smoothing weight `alpha` and
    /// trend weight `beta`.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters lie in the open interval `(0, 1)`.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "Holt-Winters alpha {alpha} outside (0, 1)"
        );
        assert!(
            beta > 0.0 && beta < 1.0,
            "Holt-Winters beta {beta} outside (0, 1)"
        );
        HoltWinters {
            alpha,
            beta,
            state: HwState::Empty,
            name: format!("{alpha:.1}-HW"),
        }
    }

    /// The smoothing weight α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The trend weight β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Current trend estimate, if initialised. Exposed for tests and
    /// diagnostics (a persistent non-zero trend flags a drifting path).
    pub fn trend(&self) -> Option<f64> {
        match self.state {
            HwState::Running { trend, .. } => Some(trend),
            _ => None,
        }
    }
}

impl Predictor for HoltWinters {
    // lint:hot-path
    fn try_predict(&self, _features: &EpochFeatures) -> Result<f64, PredictError> {
        let forecast = match self.state {
            HwState::Running { smooth, trend } => Some(smooth + trend),
            _ => None,
        };
        typed_forecast(forecast)
    }

    // lint:hot-path
    fn observe(&mut self, epoch: &EpochObservation) -> Update {
        let Some(x) = epoch.throughput_bps else {
            return Update::Skipped;
        };
        debug_assert!(!x.is_nan(), "NaN sample");
        self.state = match self.state {
            HwState::Empty => HwState::Priming { x0: x },
            // Initialisation per the paper (X̂ˢ₀ = X₀, X̂ᵗ₀ = X₁ − X₀)
            // followed immediately by one recursion step on X₁, which
            // collapses to X̂ˢ₁ = X₁, X̂ᵗ₁ = X₁ − X₀. This makes the
            // predictor exact on a perfectly linear series from the first
            // forecast on.
            HwState::Priming { x0 } => HwState::Running {
                smooth: x,
                trend: x - x0,
            },
            HwState::Running { smooth, trend } => {
                let forecast = smooth + trend;
                let new_smooth = self.alpha * x + (1.0 - self.alpha) * forecast;
                let new_trend = self.beta * (new_smooth - smooth) + (1.0 - self.beta) * trend;
                HwState::Running {
                    smooth: new_smooth,
                    trend: new_trend,
                }
            }
        };
        Update::Accepted
    }

    fn reset(&mut self) {
        self.state = HwState::Empty;
    }

    // lint:hot-path
    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn needs_two_samples_before_first_forecast() {
        let mut hw = HoltWinters::new(0.5, 0.5);
        assert_eq!(hw.forecast(), None);
        hw.update(1.0);
        assert_eq!(hw.forecast(), None);
        hw.update(2.0);
        assert!(hw.forecast().is_some());
    }

    #[test]
    fn initialisation_matches_paper() {
        // After the paper's init plus one recursion step on X₁, the state
        // is X̂ˢ = X₁, X̂ᵗ = X₁ − X₀ → first forecast = 2·X₁ − X₀.
        let mut hw = HoltWinters::new(0.8, 0.2);
        hw.update(10.0);
        hw.update(14.0);
        assert_eq!(hw.forecast(), Some(18.0));
    }

    #[test]
    fn tracks_a_perfect_linear_trend_exactly() {
        // On Xᵢ = a + b·i the forecast is exact after initialisation:
        // a fixed point of the recursion.
        let mut hw = HoltWinters::new(0.4, 0.3);
        for i in 0..20 {
            let x = 5.0 + 2.0 * i as f64;
            if let Some(f) = hw.forecast() {
                assert!((f - x).abs() < 1e-9, "i={i}: forecast {f} vs {x}");
            }
            hw.update(x);
        }
        assert!((hw.trend().unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn converges_on_constant_series() {
        let mut hw = HoltWinters::new(0.8, 0.2);
        hw.update(50.0);
        hw.update(10.0); // violent init: trend −40
        for _ in 0..300 {
            hw.update(10.0);
        }
        let f = hw.forecast().unwrap();
        assert!((f - 10.0).abs() < 1e-6, "forecast {f}");
        assert!(hw.trend().unwrap().abs() < 1e-6);
    }

    #[test]
    fn outperforms_ewma_on_trending_series() {
        use crate::hb::Ewma;
        let series: Vec<f64> = (0..30).map(|i| 100.0 + 10.0 * i as f64).collect();
        let mut hw = HoltWinters::new(0.8, 0.2);
        let mut ew = Ewma::new(0.8);
        let mut hw_err = 0.0;
        let mut ew_err = 0.0;
        for &x in &series {
            if let (Some(fh), Some(fe)) = (hw.forecast(), ew.forecast()) {
                hw_err += (fh - x).abs();
                ew_err += (fe - x).abs();
            }
            hw.update(x);
            ew.update(x);
        }
        assert!(
            hw_err < ew_err,
            "HW should beat EWMA on a trend: {hw_err} vs {ew_err}"
        );
    }

    #[test]
    fn reset_returns_to_empty() {
        let mut hw = HoltWinters::new(0.8, 0.2);
        hw.update(1.0);
        hw.update(2.0);
        hw.reset();
        assert_eq!(hw.forecast(), None);
        assert_eq!(hw.trend(), None);
    }

    #[test]
    fn gap_epochs_preserve_priming_state() {
        let mut hw = HoltWinters::new(0.8, 0.2);
        hw.update(10.0);
        assert_eq!(hw.observe(&EpochObservation::GAP), Update::Skipped);
        hw.update(14.0); // second real sample initialises the trend
        assert_eq!(hw.forecast(), Some(18.0));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_rejected() {
        let _ = HoltWinters::new(0.0, 0.2);
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn bad_beta_rejected() {
        let _ = HoltWinters::new(0.5, 1.0);
    }
}
