//! An autoregressive AR(p) predictor — the ARIMA-class baseline the
//! paper declines to use (§5: "selecting their order and linear
//! coefficients requires a large number of past measurements") and that
//! Vazhkudai et al. \[14\] and Zhang et al. \[15\] found to perform no
//! better than simple averages on throughput series.
//!
//! Implemented so the claim can be *checked* rather than assumed: the
//! model is refit by Yule-Walker (Levinson-Durbin recursion) over a
//! sliding window on every update, predicting
//!
//! ```text
//! X̂ₙ₊₁ = μ + Σᵢ φᵢ·(Xₙ₋ᵢ₊₁ − μ)
//! ```
//!
//! Until the window holds `min_history` samples it falls back to the
//! window mean — mirroring how an application would actually deploy it.

use super::{Predictor, Update};
use crate::error::PredictError;
use crate::predictor::{typed_forecast, EpochFeatures, EpochObservation};
use std::collections::VecDeque;

/// Sliding-window AR(p) with Yule-Walker estimation.
///
/// # Examples
///
/// ```
/// use tputpred_core::hb::{ArPredictor, Predictor};
/// let mut ar = ArPredictor::new(2, 32);
/// // An AR(1)-ish alternating series is exactly learnable:
/// for i in 0..30 {
///     ar.update(if i % 2 == 0 { 10.0 } else { 20.0 });
/// }
/// let f = ar.forecast().unwrap();
/// assert!((f - 10.0).abs() < 2.0, "next value after a 20 is a 10: {f}");
/// ```
#[derive(Debug, Clone)]
pub struct ArPredictor {
    order: usize,
    window: VecDeque<f64>,
    capacity: usize,
    /// Minimum samples before fitting (below this: window-mean fallback).
    min_history: usize,
    name: String,
}

impl ArPredictor {
    /// Creates an AR(`order`) predictor fit over the last `capacity`
    /// samples.
    ///
    /// # Panics
    ///
    /// Panics if `order` is zero or `capacity < 4·order` (Yule-Walker on
    /// fewer samples is numerically meaningless).
    pub fn new(order: usize, capacity: usize) -> Self {
        assert!(order > 0, "AR of order 0");
        assert!(
            capacity >= 4 * order,
            "AR({order}) needs a window of at least {} samples",
            4 * order
        );
        ArPredictor {
            order,
            window: VecDeque::with_capacity(capacity),
            capacity,
            min_history: 3 * order,
            name: format!("AR({order})"),
        }
    }

    /// The model order `p`.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Sample autocovariance at the given lag (biased estimator, the
    /// standard choice for Yule-Walker: it keeps the Toeplitz system
    /// positive definite).
    fn autocovariance(xs: &[f64], mean: f64, lag: usize) -> f64 {
        let n = xs.len();
        let mut acc = 0.0;
        for i in lag..n {
            acc += (xs[i] - mean) * (xs[i - lag] - mean);
        }
        acc / n as f64
    }

    /// Levinson-Durbin recursion: solves the Yule-Walker equations for
    /// the AR coefficients given autocovariances `r[0..=p]`.
    fn levinson_durbin(r: &[f64]) -> Vec<f64> {
        let p = r.len() - 1;
        let mut a = vec![0.0; p];
        let mut e = r[0];
        if e <= 0.0 {
            return a; // constant series: all coefficients zero
        }
        for k in 0..p {
            let mut acc = r[k + 1];
            for j in 0..k {
                acc -= a[j] * r[k - j];
            }
            let reflection = acc / e;
            a[k] = reflection;
            for j in 0..k / 2 {
                let tmp = a[j] - reflection * a[k - 1 - j];
                a[k - 1 - j] -= reflection * a[j];
                a[j] = tmp;
            }
            if k % 2 == 1 {
                let mid = k / 2;
                a[mid] -= reflection * a[mid];
            }
            e *= 1.0 - reflection * reflection;
            if e <= 0.0 {
                break;
            }
        }
        a
    }

    fn fit_and_forecast(&self) -> Option<f64> {
        let xs: Vec<f64> = self.window.iter().copied().collect();
        if xs.is_empty() {
            return None;
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        if xs.len() < self.min_history {
            return Some(mean);
        }
        let p = self.order.min(xs.len() / 3);
        let r: Vec<f64> = (0..=p)
            .map(|lag| Self::autocovariance(&xs, mean, lag))
            .collect();
        if r[0] <= f64::EPSILON * mean.abs().max(1.0) {
            return Some(mean); // (near-)constant series
        }
        let phi = Self::levinson_durbin(&r);
        let mut forecast = mean;
        for (i, &coeff) in phi.iter().enumerate() {
            let x = xs[xs.len() - 1 - i];
            forecast += coeff * (x - mean);
        }
        Some(forecast)
    }
}

impl Predictor for ArPredictor {
    fn try_predict(&self, _features: &EpochFeatures) -> Result<f64, PredictError> {
        typed_forecast(self.fit_and_forecast())
    }

    fn observe(&mut self, epoch: &EpochObservation) -> Update {
        let Some(x) = epoch.throughput_bps else {
            return Update::Skipped;
        };
        debug_assert!(!x.is_nan(), "NaN sample");
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(x);
        Update::Accepted
    }

    fn reset(&mut self) {
        self.window.clear();
    }

    // lint:hot-path
    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_prediction_before_first_sample() {
        let ar = ArPredictor::new(2, 16);
        assert_eq!(ar.forecast(), None);
    }

    #[test]
    fn short_history_falls_back_to_mean() {
        let mut ar = ArPredictor::new(3, 32);
        ar.update(10.0);
        ar.update(20.0);
        assert_eq!(ar.forecast(), Some(15.0));
    }

    #[test]
    fn constant_series_predicts_the_constant() {
        let mut ar = ArPredictor::new(2, 32);
        for _ in 0..20 {
            ar.update(7.5);
        }
        let f = ar.forecast().unwrap();
        assert!((f - 7.5).abs() < 1e-9, "{f}");
    }

    #[test]
    fn learns_a_strong_ar1_process() {
        // X_{n+1} = mean + 0.9 (X_n - mean), deterministic.
        let mut ar = ArPredictor::new(1, 64);
        let mean = 100.0;
        let mut x = 150.0;
        for _ in 0..50 {
            ar.update(x);
            x = mean + 0.9 * (x - mean);
        }
        let f = ar.forecast().unwrap();
        assert!(
            (f - x).abs() / mean < 0.02,
            "AR(1) should extrapolate the decay: {f} vs {x}"
        );
    }

    #[test]
    fn learns_an_alternating_series() {
        let mut ar = ArPredictor::new(2, 64);
        for i in 0..40 {
            ar.update(if i % 2 == 0 { 10.0 } else { 20.0 });
        }
        // Last sample was 20 (i = 39): next is 10.
        let f = ar.forecast().unwrap();
        assert!((f - 10.0).abs() < 1.0, "{f}");
    }

    #[test]
    fn levinson_durbin_matches_direct_solution_for_ar1() {
        // For AR(1): phi = r1/r0.
        let r = [2.0, 1.2];
        let phi = ArPredictor::levinson_durbin(&r);
        assert!((phi[0] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn levinson_durbin_two_lags_hand_check() {
        // Yule-Walker for p=2:
        //   r1 = phi1 r0 + phi2 r1
        //   r2 = phi1 r1 + phi2 r0
        let (r0, r1, r2) = (1.0, 0.5, 0.4);
        let phi = ArPredictor::levinson_durbin(&[r0, r1, r2]);
        let e1 = (phi[0] * r0 + phi[1] * r1 - r1).abs();
        let e2 = (phi[0] * r1 + phi[1] * r0 - r2).abs();
        assert!(e1 < 1e-12 && e2 < 1e-12, "phi = {phi:?}");
    }

    #[test]
    fn window_slides_and_reset_clears() {
        let mut ar = ArPredictor::new(1, 8);
        for i in 0..100 {
            ar.update(i as f64);
        }
        assert!(ar.window.len() <= 8);
        ar.reset();
        assert_eq!(ar.forecast(), None);
        assert_eq!(ar.name(), "AR(1)");
    }

    #[test]
    fn gap_epochs_leave_the_window_untouched() {
        let mut ar = ArPredictor::new(1, 8);
        ar.update(10.0);
        assert_eq!(ar.observe(&EpochObservation::GAP), Update::Skipped);
        assert_eq!(ar.window.len(), 1);
    }

    #[test]
    fn forecast_is_finite_on_noisy_input() {
        let mut ar = ArPredictor::new(3, 32);
        for i in 0..100 {
            let x = 10.0 + ((i * 2654435761u64) % 997) as f64 / 100.0;
            ar.update(x);
            if let Some(f) = ar.forecast() {
                assert!(f.is_finite(), "blew up at {i}: {f}");
            }
        }
    }
}
