//! The Exponentially Weighted Moving Average predictor (§5.1.2).

use super::{Predictor, Update};
use crate::error::PredictError;
use crate::predictor::{typed_forecast, EpochFeatures, EpochObservation};

/// One-step EWMA:
///
/// ```text
/// X̂ᵢ₊₁ = α·Xᵢ + (1−α)·X̂ᵢ
/// ```
///
/// with `X̂₁ = X₁` (the first forecast equals the first observation).
/// Higher `α` tracks recent samples (less smoothing); lower `α` smooths
/// noise but adapts slowly (§5.1.2). The paper finds EWMA performs
/// similarly to Holt-Winters (§6.1.1) and that `α = 0.8` is near-optimal
/// for its dataset.
///
/// # Examples
///
/// ```
/// use tputpred_core::hb::{Ewma, Predictor};
/// let mut e = Ewma::new(0.5);
/// e.update(10.0);
/// e.update(20.0);
/// assert_eq!(e.forecast(), Some(15.0));
/// ```
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    forecast: Option<f64>,
    name: String,
}

impl Ewma {
    /// Creates an EWMA predictor with weight `alpha` for the latest sample.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha < 1` — the open interval the paper
    /// specifies (α = 1 would degenerate to the last-value predictor,
    /// α = 0 would never learn).
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "EWMA weight {alpha} outside (0, 1)"
        );
        Ewma {
            alpha,
            forecast: None,
            name: format!("{alpha:.1}-EWMA"),
        }
    }

    /// The smoothing weight α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Predictor for Ewma {
    // lint:hot-path
    fn try_predict(&self, _features: &EpochFeatures) -> Result<f64, PredictError> {
        typed_forecast(self.forecast)
    }

    // lint:hot-path
    fn observe(&mut self, epoch: &EpochObservation) -> Update {
        let Some(x) = epoch.throughput_bps else {
            return Update::Skipped;
        };
        debug_assert!(!x.is_nan(), "NaN sample");
        self.forecast = Some(match self.forecast {
            None => x,
            Some(prev) => self.alpha * x + (1.0 - self.alpha) * prev,
        });
        Update::Accepted
    }

    fn reset(&mut self) {
        self.forecast = None;
    }

    // lint:hot-path
    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_forecast_is_first_sample() {
        let mut e = Ewma::new(0.3);
        e.update(7.0);
        assert_eq!(e.forecast(), Some(7.0));
    }

    #[test]
    fn recurrence_matches_hand_computation() {
        let mut e = Ewma::new(0.25);
        e.update(4.0); // f = 4
        e.update(8.0); // f = 0.25*8 + 0.75*4 = 5
        e.update(0.0); // f = 0.25*0 + 0.75*5 = 3.75
        assert_eq!(e.forecast(), Some(3.75));
    }

    #[test]
    fn converges_to_constant_input() {
        let mut e = Ewma::new(0.2);
        e.update(100.0);
        for _ in 0..200 {
            e.update(5.0);
        }
        let f = e.forecast().unwrap();
        assert!((f - 5.0).abs() < 1e-12);
    }

    #[test]
    fn high_alpha_tracks_faster_than_low_alpha() {
        let series = [10.0, 10.0, 10.0, 50.0];
        let mut fast = Ewma::new(0.9);
        let mut slow = Ewma::new(0.1);
        for x in series {
            fast.update(x);
            slow.update(x);
        }
        assert!(fast.forecast().unwrap() > slow.forecast().unwrap());
    }

    #[test]
    fn reset_forgets_everything() {
        let mut e = Ewma::new(0.5);
        e.update(1.0);
        e.reset();
        assert_eq!(e.forecast(), None);
    }

    #[test]
    fn gap_epochs_do_not_move_the_forecast() {
        let mut e = Ewma::new(0.5);
        e.update(8.0);
        assert_eq!(e.observe(&EpochObservation::GAP), Update::Skipped);
        assert_eq!(e.forecast(), Some(8.0));
    }

    #[test]
    #[should_panic(expected = "outside (0, 1)")]
    fn alpha_one_is_rejected() {
        let _ = Ewma::new(1.0);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1)")]
    fn alpha_zero_is_rejected() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn forecast_is_within_observed_range() {
        // EWMA is a convex combination: forecast never escapes the hull of
        // observations.
        let mut e = Ewma::new(0.6);
        let xs = [3.0, 9.0, 4.5, 8.2, 3.3];
        for x in xs {
            e.update(x);
            let f = e.forecast().unwrap();
            assert!((3.0..=9.0).contains(&f));
        }
    }
}
