//! The paper's prediction-error metrics and evaluation drivers (§4.1,
//! §6.1.3, §6.1.6).

use crate::lso::{scan_series, LsoConfig};
use crate::predictor::{EpochObservation, Predictor, Update};
use tputpred_stats::Summary;

/// The relative prediction error of one epoch (Eq. 4):
///
/// ```text
/// E = (R̂ − R) / min(R̂, R)
/// ```
///
/// The `min` denominator makes over- and under-estimation by the same
/// factor `w` symmetric: both give `|E| = w − 1`. Positive `E` is
/// overestimation.
///
/// # Panics
///
/// Panics (debug) unless both throughputs are positive — measurements in
/// this workspace are floored at [`MIN_THROUGHPUT`] so the metric is
/// always defined.
///
/// # Examples
///
/// ```
/// use tputpred_core::metrics::relative_error;
/// assert_eq!(relative_error(20.0, 10.0), 1.0);  // 2× overestimate
/// assert_eq!(relative_error(5.0, 10.0), -1.0);  // 2× underestimate
/// assert_eq!(relative_error(10.0, 10.0), 0.0);
/// ```
pub fn relative_error(predicted: f64, actual: f64) -> f64 {
    debug_assert!(predicted > 0.0, "relative_error: non-positive prediction");
    debug_assert!(actual > 0.0, "relative_error: non-positive measurement");
    (predicted - actual) / f64::min(predicted, actual)
}

/// Floor applied to throughput values before computing Eq. 4, so that a
/// stalled transfer (0 bits/s) yields a large-but-finite error: 1 bit/s.
pub const MIN_THROUGHPUT: f64 = 1.0;

/// [`relative_error`] with both arguments floored at [`MIN_THROUGHPUT`].
pub fn relative_error_floored(predicted: f64, actual: f64) -> f64 {
    relative_error(predicted.max(MIN_THROUGHPUT), actual.max(MIN_THROUGHPUT))
}

/// Root Mean Square Relative Error over a series of relative errors
/// (Eq. 5):
///
/// ```text
/// RMSRE = sqrt( (1/n) Σ Eᵢ² )
/// ```
///
/// Returns `None` for an empty slice.
pub fn rmsre(errors: &[f64]) -> Option<f64> {
    if errors.is_empty() {
        return None;
    }
    let sum_sq: f64 = errors.iter().map(|e| e * e).sum();
    Some((sum_sq / errors.len() as f64).sqrt())
}

/// Result of running a predictor over a throughput series.
#[derive(Debug, Clone, Default)]
pub struct EvalResult {
    /// Per-sample relative error `Eᵢ`, `None` where the predictor had no
    /// forecast yet (warm-up).
    pub errors: Vec<Option<f64>>,
    /// Per-sample predictions (same indexing), for trace plots (Fig. 15).
    pub predictions: Vec<Option<f64>>,
    /// Absolute positions of samples the predictor classified as outliers
    /// (populated by LSO-wrapped predictors; excluded from RMSRE per
    /// §6.1.3).
    pub outliers: Vec<usize>,
    /// Absolute positions where level shifts were detected to begin.
    pub level_shifts: Vec<usize>,
}

impl EvalResult {
    /// RMSRE over all defined errors, excluding outlier samples (§6.1.3).
    ///
    /// Returns `None` when no errors are defined (series shorter than the
    /// predictor's warm-up).
    pub fn rmsre(&self) -> Option<f64> {
        let kept: Vec<f64> = self
            .errors
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.outliers.contains(i))
            .filter_map(|(_, e)| *e)
            .collect();
        rmsre(&kept)
    }

    /// RMSRE including outlier samples — what a predictor *without*
    /// knowledge of outliers would be scored at.
    pub fn rmsre_including_outliers(&self) -> Option<f64> {
        let kept: Vec<f64> = self.errors.iter().filter_map(|e| *e).collect();
        rmsre(&kept)
    }

    /// Number of samples with a defined prediction.
    pub fn predicted_count(&self) -> usize {
        self.errors.iter().filter(|e| e.is_some()).count()
    }

    /// Fraction of evaluated epochs for which the predictor produced a
    /// forecast — the serving-availability axis of the resilience
    /// league table (`fig25_resilience`, DESIGN.md §13). Counts
    /// `predictions` rather than `errors` so epochs whose *measurement*
    /// failed still credit the predictor for answering. `None` when
    /// nothing was evaluated.
    pub fn availability(&self) -> Option<f64> {
        if self.predictions.is_empty() {
            return None;
        }
        let answered = self.predictions.iter().filter(|p| p.is_some()).count();
        Some(answered as f64 / self.predictions.len() as f64)
    }
}

/// Runs `predictor` over `series` one-step-ahead: for each sample the
/// current forecast is scored against the observation (Eq. 4), then the
/// observation is fed to the predictor. This is exactly the paper's HB
/// evaluation protocol: predictions use only *past* transfers.
///
/// Throughput values are floored at [`MIN_THROUGHPUT`] for scoring.
pub fn evaluate<P: Predictor>(predictor: &mut P, series: &[f64]) -> EvalResult {
    let dense: Vec<Option<f64>> = series.iter().copied().map(Some).collect();
    evaluate_gappy(predictor, &dense)
}

/// [`evaluate`] over a series with *gaps*: a `None` is an epoch whose
/// transfer failed or went unmeasured (node down, aborted run). This is
/// the HB degradation rule for faulty histories — a gap is simply
/// **skipped**: the predictor neither observes it nor resets, so a gap can
/// never masquerade as a level shift or an outlier. The paper's authors do
/// the same by silently discarding failed epochs from their RON traces.
///
/// `errors`/`predictions` keep one slot per input sample (gaps score
/// `None`), and `outliers`/`level_shifts` positions are mapped back to
/// indices into the *gappy* input series, so an evaluation over a gappy
/// series is position-compatible with the series it came from.
pub fn evaluate_gappy<P: Predictor>(predictor: &mut P, series: &[Option<f64>]) -> EvalResult {
    let mut result = EvalResult::default();
    // Positions in the predictor's fed (gap-free) stream → positions in
    // `series`; predictor-reported events use the former.
    let mut fed_to_orig: Vec<usize> = Vec::new();
    let mut outliers_fed: Vec<usize> = Vec::new();
    let mut shifts_fed: Vec<usize> = Vec::new();
    for (i, &sample) in series.iter().enumerate() {
        let Some(x) = sample else {
            result.predictions.push(None);
            result.errors.push(None);
            continue;
        };
        let forecast = predictor.forecast();
        result.predictions.push(forecast);
        result
            .errors
            .push(forecast.map(|f| relative_error_floored(f, x)));
        fed_to_orig.push(i);
        match predictor.update(x) {
            Update::Accepted | Update::Skipped => {}
            Update::OutliersDiscarded { positions, .. } => outliers_fed.extend(positions),
            Update::LevelShift { start, .. } => shifts_fed.push(start),
        }
        debug_assert!(i + 1 == result.errors.len());
    }
    let remap = |fed: usize| fed_to_orig.get(fed).copied().unwrap_or(fed);
    result.outliers = outliers_fed.into_iter().map(remap).collect();
    result.level_shifts = shifts_fed.into_iter().map(remap).collect();
    result
}

/// Runs `predictor` over full [`EpochObservation`]s one-step-ahead —
/// the protocol of the cross-predictor league table (`fig24`): for each
/// epoch the predictor forecasts from the epoch's *a-priori features*
/// (probe measurements are available before the transfer starts), the
/// forecast is scored against the measured throughput (Eq. 4), and then
/// the whole epoch is observed.
///
/// Unlike [`evaluate_gappy`], the predictor *is* consulted and fed on
/// every epoch — a feature-only epoch lets formula-backed predictors
/// forecast and smooth even when the transfer failed, while series-only
/// predictors treat it as a no-op ([`Update::Skipped`]). An error is
/// recorded only where both a forecast and a measured throughput exist;
/// event positions are mapped to epoch indices as in [`evaluate_gappy`]
/// (history-side events index throughput-carrying epochs).
///
/// For series-only predictors this coincides exactly with
/// [`evaluate_gappy`] over the throughput series; for FB it reproduces
/// the paper's a-priori FB protocol (§4.1).
pub fn evaluate_epochs<P: Predictor>(predictor: &mut P, epochs: &[EpochObservation]) -> EvalResult {
    let mut result = EvalResult::default();
    // History-side event positions count ingested throughput samples;
    // map them back to epoch indices.
    let mut fed_to_orig: Vec<usize> = Vec::new();
    let mut outliers_fed: Vec<usize> = Vec::new();
    let mut shifts_fed: Vec<usize> = Vec::new();
    for (i, epoch) in epochs.iter().enumerate() {
        let forecast = predictor.predict(&epoch.features);
        result.predictions.push(forecast);
        result.errors.push(match (forecast, epoch.throughput_bps) {
            (Some(f), Some(x_bps)) => Some(relative_error_floored(f, x_bps)),
            _ => None,
        });
        if epoch.throughput_bps.is_some() {
            fed_to_orig.push(i);
        }
        match predictor.observe(epoch) {
            Update::Accepted | Update::Skipped => {}
            Update::OutliersDiscarded { positions, .. } => outliers_fed.extend(positions),
            Update::LevelShift { start, .. } => shifts_fed.push(start),
        }
    }
    let remap = |fed: usize| fed_to_orig.get(fed).copied().unwrap_or(fed);
    result.outliers = outliers_fed.into_iter().map(remap).collect();
    result.level_shifts = shifts_fed.into_iter().map(remap).collect();
    result
}

/// Down-samples a series by keeping every `factor`-th sample (§6.1.6).
///
/// The paper studies transfer intervals of 6/24/45 min by down-sampling
/// its 3-min traces at factors 2, 8, and 15.
///
/// # Panics
///
/// Panics if `factor` is zero.
pub fn downsample(series: &[f64], factor: usize) -> Vec<f64> {
    assert!(factor > 0, "downsample factor must be positive");
    series.iter().copied().step_by(factor).collect()
}

/// Segment-weighted Coefficient of Variation of a throughput series
/// (§6.1.3):
///
/// 1. detect level shifts and outliers with the LSO heuristics;
/// 2. exclude outliers; split the series into stationary segments at the
///    detected shifts;
/// 3. compute each segment's CoV (σ/μ) and average them weighted by
///    segment length.
///
/// Returns `None` for series with no computable segment (all segments
/// shorter than 2 samples or zero-mean).
pub fn segmented_cov(series: &[f64], cfg: LsoConfig) -> Option<f64> {
    let (shifts, outliers) = scan_series(series, cfg);
    let mut weighted = 0.0;
    let mut weight = 0.0;
    let mut boundaries: Vec<usize> = Vec::with_capacity(shifts.len() + 2);
    boundaries.push(0);
    boundaries.extend(shifts.iter().copied());
    boundaries.push(series.len());
    for pair in boundaries.windows(2) {
        let (start, end) = (pair[0], pair[1]);
        if end <= start {
            continue;
        }
        let seg: Vec<f64> = (start..end)
            .filter(|i| !outliers.contains(i))
            .map(|i| series[i])
            .collect();
        if seg.len() < 2 {
            continue;
        }
        let summary = Summary::from_samples(seg.iter().copied());
        if let Some(cov) = summary.cov() {
            weighted += cov * seg.len() as f64;
            weight += seg.len() as f64;
        }
    }
    (weight > 0.0).then(|| weighted / weight)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hb::{HoltWinters, MovingAverage};
    use crate::lso::Lso;

    #[test]
    fn relative_error_is_symmetric_in_factor() {
        // Over/underestimation by factor w gives |E| = w − 1.
        for w in [1.5, 2.0, 5.0, 10.0] {
            let over = relative_error(w * 10.0, 10.0);
            let under = relative_error(10.0 / w, 10.0);
            assert!((over - (w - 1.0)).abs() < 1e-12);
            assert!((under + (w - 1.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn floored_error_handles_stalled_transfers() {
        let e = relative_error_floored(10e6, 0.0);
        assert!(e.is_finite() && e > 0.0);
    }

    #[test]
    fn rmsre_matches_hand_computation() {
        let r = rmsre(&[3.0, 4.0]).unwrap();
        assert!((r - (12.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(rmsre(&[]), None);
        assert_eq!(rmsre(&[0.0, 0.0]), Some(0.0));
    }

    #[test]
    fn evaluate_scores_one_step_ahead() {
        // 1-MA predicts the previous sample.
        let mut p = MovingAverage::new(1);
        let res = evaluate(&mut p, &[10.0, 20.0, 20.0]);
        assert_eq!(res.errors[0], None, "no history before first sample");
        assert!((res.errors[1].unwrap() - (-1.0)).abs() < 1e-12); // 10 vs 20
        assert_eq!(res.errors[2], Some(0.0)); // 20 vs 20
        assert_eq!(res.predicted_count(), 2);
    }

    #[test]
    fn evaluate_collects_lso_events() {
        let mut p = Lso::new(MovingAverage::new(10));
        let series: Vec<f64> = [vec![10.0; 8], vec![100.0], vec![10.0; 3]].concat();
        let res = evaluate(&mut p, &series);
        assert_eq!(res.outliers, vec![8]);
        // The outlier's own error is excluded from RMSRE...
        let with = res.rmsre_including_outliers().unwrap();
        let without = res.rmsre().unwrap();
        assert!(without < with, "excluding the outlier lowers RMSRE");
        // The outlier sits in the MA window for one step before its
        // confirmation (two-sample delay), so the post-outlier prediction
        // is contaminated once; still a small overall RMSRE.
        assert!(
            without < 0.5,
            "remaining series is nearly perfect: {without}"
        );
    }

    #[test]
    fn lso_restart_cuts_rmsre_on_level_shift() {
        // A paper-typical moderate shift (1.6×) against a long-memory
        // MA: the plain predictor drags its ramp across the whole window
        // length, while the restart is exact three samples in. (For very
        // large jumps the quadratic metric rewards the plain MA's instant
        // partial adoption instead — the two strategies trade blows there,
        // and the paper's own shifts live in this moderate range.)
        let series: Vec<f64> = [vec![10.0; 25], vec![16.0; 25]].concat();
        let mut plain = MovingAverage::new(20);
        let mut wrapped = Lso::new(MovingAverage::new(20));
        let r_plain = evaluate(&mut plain, &series).rmsre().unwrap();
        let r_lso = evaluate(&mut wrapped, &series).rmsre().unwrap();
        assert!(
            r_lso < r_plain,
            "LSO should win on a moderate level shift: {r_lso} vs {r_plain}"
        );
    }

    #[test]
    fn lso_guards_trend_predictors_against_collapse_epochs() {
        // A starved epoch measuring ~zero throughput must not poison a
        // Holt-Winters forecast into absurdity (negative or near-zero
        // extrapolations): the isolated-suspect quarantine plus the
        // positivity fallback keep the next forecasts near the level.
        let mut series = vec![10e6; 20];
        series[10] = 2e3; // collapse epoch
        series.extend(vec![10e6; 10]);
        let mut hw = Lso::new(HoltWinters::new(0.8, 0.2));
        let res = evaluate(&mut hw, &series);
        let r = res.rmsre().unwrap();
        assert!(r < 0.5, "collapse epoch contained: RMSRE {r}");
    }

    #[test]
    fn evaluate_gappy_skips_gaps_without_resetting() {
        // 1-MA predicts the previous *observed* sample across a gap.
        let mut p = MovingAverage::new(1);
        let res = evaluate_gappy(&mut p, &[Some(10.0), None, Some(10.0)]);
        assert_eq!(res.errors[0], None);
        assert_eq!(res.errors[1], None, "gap epochs score nothing");
        assert_eq!(res.errors[2], Some(0.0), "history survives the gap");
        assert_eq!(res.predicted_count(), 1);
    }

    #[test]
    fn evaluate_gappy_event_positions_index_the_gappy_series() {
        // Same shape as `evaluate_collects_lso_events` (outlier at dense
        // position 8), but with two gaps punched in before the spike: the
        // reported outlier position must be the gappy index, 10.
        let mut series: Vec<Option<f64>> = vec![Some(10.0), None, Some(10.0), None];
        series.extend(vec![Some(10.0); 6]);
        series.push(Some(100.0));
        series.extend(vec![Some(10.0); 3]);
        let mut p = Lso::new(MovingAverage::new(10));
        let res = evaluate_gappy(&mut p, &series);
        assert_eq!(res.outliers, vec![10]);
    }

    #[test]
    fn evaluate_gappy_on_dense_series_matches_evaluate() {
        let series: Vec<f64> = [vec![10.0; 8], vec![100.0], vec![10.0; 3]].concat();
        let gappy: Vec<Option<f64>> = series.iter().copied().map(Some).collect();
        let mut a = Lso::new(MovingAverage::new(10));
        let mut b = Lso::new(MovingAverage::new(10));
        let ra = evaluate(&mut a, &series);
        let rb = evaluate_gappy(&mut b, &gappy);
        assert_eq!(ra.errors, rb.errors);
        assert_eq!(ra.predictions, rb.predictions);
        assert_eq!(ra.outliers, rb.outliers);
        assert_eq!(ra.level_shifts, rb.level_shifts);
    }

    #[test]
    fn downsample_keeps_every_kth() {
        let xs: Vec<f64> = (0..10).map(f64::from).collect();
        assert_eq!(downsample(&xs, 1), xs);
        assert_eq!(downsample(&xs, 3), vec![0.0, 3.0, 6.0, 9.0]);
        assert_eq!(downsample(&xs, 20), vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn downsample_zero_panics() {
        let _ = downsample(&[1.0], 0);
    }

    #[test]
    fn segmented_cov_of_constant_series_is_zero() {
        let cov = segmented_cov(&[10.0; 20], LsoConfig::default()).unwrap();
        assert_eq!(cov, 0.0);
    }

    #[test]
    fn segmented_cov_ignores_level_shift_between_stable_levels() {
        // Two perfectly stable levels: global CoV would be large, but the
        // per-segment CoV is ~0 — exactly the point of §6.1.3's weighting.
        let series: Vec<f64> = [vec![10.0; 20], vec![30.0; 20]].concat();
        let seg = segmented_cov(&series, LsoConfig::default()).unwrap();
        assert!(seg < 0.02, "segmented CoV ≈ 0, got {seg}");
        let global = Summary::from_samples(series.iter().copied()).cov().unwrap();
        assert!(global > 0.4, "global CoV is large: {global}");
    }

    #[test]
    fn segmented_cov_excludes_outliers() {
        let series: Vec<f64> = [vec![10.0; 10], vec![200.0], vec![10.0; 10]].concat();
        let seg = segmented_cov(&series, LsoConfig::default()).unwrap();
        assert!(seg < 0.02, "outlier excluded from CoV, got {seg}");
    }

    #[test]
    fn segmented_cov_tracks_real_variability() {
        // Alternating 9/11: CoV = 1/10 = 0.1, no shifts (alternation
        // violates the all-lower/all-higher condition) and no outliers
        // (±22% of the odd-window median, below ψ = 0.4).
        let series: Vec<f64> = (0..40)
            .map(|i| if i % 2 == 0 { 9.0 } else { 11.0 })
            .collect();
        let seg = segmented_cov(&series, LsoConfig::default()).unwrap();
        assert!((seg - 0.1).abs() < 0.02, "got {seg}");
    }

    #[test]
    fn evaluate_epochs_matches_evaluate_for_series_predictors() {
        let series: Vec<f64> = [vec![10.0; 8], vec![100.0], vec![10.0; 3]].concat();
        let epochs: Vec<EpochObservation> = series
            .iter()
            .map(|&x| EpochObservation::sample(x))
            .collect();
        let mut a = Lso::new(MovingAverage::new(10));
        let mut b = Lso::new(MovingAverage::new(10));
        let ra = evaluate(&mut a, &series);
        let rb = evaluate_epochs(&mut b, &epochs);
        assert_eq!(ra.errors, rb.errors);
        assert_eq!(ra.predictions, rb.predictions);
        assert_eq!(ra.outliers, rb.outliers);
        assert_eq!(ra.level_shifts, rb.level_shifts);
    }

    #[test]
    fn evaluate_epochs_scores_fb_from_a_priori_features() {
        use crate::fb::{FbPredictor, PathEstimates};
        let est = PathEstimates {
            rtt: 0.08,
            loss_rate: 0.01,
            avail_bw: 50e6,
        };
        let expected = FbPredictor::default().predict(&est);
        let epochs = [
            EpochObservation::new(est.into(), Some(expected)),
            EpochObservation::new(est.into(), Some(2.0 * expected)),
        ];
        let mut fb = FbPredictor::default();
        let res = evaluate_epochs(&mut fb, &epochs);
        assert_eq!(res.errors[0], Some(0.0), "exact on the first epoch");
        assert!((res.errors[1].unwrap() + 1.0).abs() < 1e-12, "2x under");
    }

    #[test]
    fn evaluate_epochs_event_positions_index_epochs() {
        // An outlier at throughput-sample position 8, with two
        // transfer-failed epochs punched in before it: the reported
        // position must be the epoch index, 10.
        let mut epochs: Vec<EpochObservation> = vec![
            EpochObservation::sample(10.0),
            EpochObservation::GAP,
            EpochObservation::sample(10.0),
            EpochObservation::GAP,
        ];
        epochs.extend(vec![EpochObservation::sample(10.0); 6]);
        epochs.push(EpochObservation::sample(100.0));
        epochs.extend(vec![EpochObservation::sample(10.0); 3]);
        let mut p = Lso::new(MovingAverage::new(10));
        let res = evaluate_epochs(&mut p, &epochs);
        assert_eq!(res.outliers, vec![10]);
    }

    #[test]
    fn holt_winters_rmsre_near_zero_on_linear_trend() {
        let series: Vec<f64> = (0..30).map(|i| 100.0 + 5.0 * i as f64).collect();
        let mut hw = HoltWinters::new(0.8, 0.2);
        let r = evaluate(&mut hw, &series).rmsre().unwrap();
        assert!(r < 1e-9, "HW tracks a pure trend exactly: {r}");
    }
}
