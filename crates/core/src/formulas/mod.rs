//! Steady-state TCP throughput models.
//!
//! These are the mathematical formulas that the paper's Formula-Based
//! predictor plugs a-priori path measurements into (§3):
//!
//! * [`mathis()`](mathis::mathis) — the "square-root" law of Mathis, Semke, Mahdavi (the
//!   paper's Eq. 1), accurate when every loss is recovered with
//!   Fast-Retransmit.
//! * [`pftk()`](pftk::pftk) — the PFTK approximation of Padhye, Firoiu, Towsley, Kurose
//!   (the paper's Eq. 2), which adds retransmission timeouts and the
//!   maximum-window cap.
//! * [`pftk::pftk_full`] — the full PFTK model (eqs. 29–31 of the PFTK
//!   paper), from which Eq. 2 is derived.
//! * [`pftk::pftk_revised`] — a revised variant in the spirit of Chen, Bu,
//!   Ammar, Towsley ("Comments on modeling TCP Reno performance", paper
//!   ref. \[26\]); §4.2.9 shows the revision changes FB prediction
//!   negligibly.
//! * [`cardwell`] — the slow-start segment-count model of Cardwell, Savage,
//!   Anderson, used in §4.2.7 to decide whether a transfer is long enough
//!   that the initial slow start can be neglected.
//!
//! # Conventions
//!
//! All functions take the segment size `mss` in **bytes**, times in
//! **seconds**, loss rates as probabilities in `[0, 1]`, and return
//! throughput in **bits per second**. `b` is the number of segments
//! acknowledged per ACK (2 with delayed ACKs, the paper's setting).

pub mod cardwell;
pub mod mathis;
pub mod pftk;

pub use cardwell::slow_start_segments;
pub use mathis::mathis;
pub use pftk::{pftk, pftk_full, pftk_revised, PftkParams};

/// Default maximum segment size in bytes (Ethernet MTU minus IP+TCP
/// headers), matching the 1500-byte packets of the paper's IPerf transfers.
pub const DEFAULT_MSS: u32 = 1448;

/// Default number of segments acknowledged by one cumulative ACK
/// (delayed ACKs acknowledge every other segment).
pub const DEFAULT_B: f64 = 2.0;

/// The paper's retransmission-timeout estimate used by FB prediction
/// (§3.1): `T̂₀ = max(1 s, 2·SRTT)` with SRTT set to the a-priori RTT.
pub fn rto_estimate(srtt: f64) -> f64 {
    f64::max(1.0, 2.0 * srtt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rto_is_floored_at_one_second() {
        assert_eq!(rto_estimate(0.010), 1.0);
        assert_eq!(rto_estimate(0.499), 1.0);
    }

    #[test]
    fn rto_is_twice_srtt_for_long_paths() {
        assert_eq!(rto_estimate(0.6), 1.2);
        assert_eq!(rto_estimate(2.0), 4.0);
    }
}
