//! The Mathis "square-root" throughput law (the paper's Eq. 1).

/// Expected throughput (bits/s) of a congestion-limited bulk TCP transfer
/// under the square-root law:
///
/// ```text
/// E[R] = M / (T · sqrt(2bp/3))
/// ```
///
/// where `M = mss` is the segment size, `T = rtt` the round-trip time,
/// `b` the segments per ACK, and `p` the loss rate the flow experiences.
/// The model assumes every loss is recovered with Fast-Retransmit (no
/// timeouts) and no maximum-window cap, which is why the paper prefers
/// PFTK (Eq. 2) for prediction; the square-root law is still used in
/// §4.2.2 to relate RTT/loss-rate increases to relative prediction error.
///
/// # Panics
///
/// Panics (debug) on non-positive `rtt`, `mss` of zero, or `p` outside
/// `(0, 1]` — a zero loss rate makes the model degenerate (infinite
/// throughput); FB prediction handles that case with the avail-bw branch
/// of Eq. 3 instead.
///
/// # Examples
///
/// ```
/// use tputpred_core::formulas::mathis;
/// // 1448-byte segments, 100 ms RTT, delayed ACKs, 1% loss:
/// let r = mathis(1448, 0.100, 2.0, 0.01);
/// // M/(T·sqrt(2·2·0.01/3)) = 1448·8/(0.1·0.11547) ≈ 1.0 Mbps
/// assert!((r / 1e6 - 1.003).abs() < 0.01);
/// ```
pub fn mathis(mss: u32, rtt: f64, b: f64, p: f64) -> f64 {
    debug_assert!(mss > 0, "mathis: zero MSS");
    debug_assert!(rtt > 0.0, "mathis: non-positive RTT");
    debug_assert!(b > 0.0, "mathis: non-positive b");
    debug_assert!(p > 0.0 && p <= 1.0, "mathis: loss rate {p} outside (0, 1]");
    let m_bits = 8.0 * mss as f64;
    m_bits / (rtt * (2.0 * b * p / 3.0).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halving_rtt_doubles_throughput() {
        let r1 = mathis(1448, 0.2, 2.0, 0.01);
        let r2 = mathis(1448, 0.1, 2.0, 0.01);
        assert!((r2 / r1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quadrupling_loss_halves_throughput() {
        let r1 = mathis(1448, 0.1, 2.0, 0.01);
        let r2 = mathis(1448, 0.1, 2.0, 0.04);
        assert!((r1 / r2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_scales_linearly_with_mss() {
        let r1 = mathis(724, 0.1, 2.0, 0.01);
        let r2 = mathis(1448, 0.1, 2.0, 0.01);
        assert!((r2 / r1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn known_value_from_hand_computation() {
        // M = 1000 B = 8000 bits, T = 1 s, b = 1, p = 2/3 → sqrt(2·1·(2/3)/3)
        // = sqrt(4/9) = 2/3 → R = 8000/(2/3) = 12000 bits/s.
        let r = mathis(1000, 1.0, 1.0, 2.0 / 3.0);
        assert!((r - 12_000.0).abs() < 1e-9);
    }

    #[test]
    fn full_loss_is_finite() {
        let r = mathis(1448, 0.1, 2.0, 1.0);
        assert!(r.is_finite() && r > 0.0);
    }
}
