//! The PFTK throughput model (Padhye, Firoiu, Towsley, Kurose, ToN 2000)
//! and its revised variant.
//!
//! Three entry points, all taking a [`PftkParams`]:
//!
//! * [`pftk`] — the well-known approximation, the paper's Eq. (2). This is
//!   what the FB predictor of Eq. (3) uses by default.
//! * [`pftk_full`] — the full PFTK model (eqs. 29–31 of the PFTK paper)
//!   from which the approximation is derived: explicit expected window
//!   `W(p)`, timeout probability `Q̂(p, w)`, and exponential-backoff factor
//!   `G(p)`, with the separate window-limited regime.
//! * [`pftk_revised`] — a revised variant in the spirit of Chen, Bu,
//!   Ammar, Towsley ("Comments on modeling TCP Reno performance", the
//!   paper's ref. \[26\]): it corrects (a) the count of segments delivered
//!   in a triple-duplicate period under the model's own "all segments
//!   after the first loss in a round are lost" assumption, and (b) the
//!   timeout-probability expression for windows of fewer than three
//!   segments. §4.2.9 / Fig. 13 of the reproduced paper shows that such
//!   revisions change FB prediction *negligibly* relative to FB's dominant
//!   error sources; the `fig13_revised_pftk` binary verifies exactly that
//!   insensitivity. (DESIGN.md records that \[26\]'s exact equations were
//!   reconstructed, not transcribed.)
//!
//! A note on the paper's Eq. (2) as printed: the Computer Networks text
//! renders the timeout term as `T₀·min(1, √(3bp/8))·p(1+32p²)`, dropping
//! the leading factor 3 inside the `min` that the original PFTK
//! approximation (and the SIGCOMM 2005 version) carries. We implement the
//! canonical PFTK form with the factor 3.

use serde::{Deserialize, Serialize};

/// Inputs to the PFTK family of models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PftkParams {
    /// Maximum segment size in bytes (`M`).
    pub mss: u32,
    /// Round-trip time in seconds (`T`).
    pub rtt: f64,
    /// Retransmission timeout period in seconds (`T₀`).
    pub rto: f64,
    /// Segments acknowledged per ACK (`b`; 2 with delayed ACKs).
    pub b: f64,
    /// Loss (congestion) event probability (`p`), in `(0, 1]`.
    pub p: f64,
    /// Maximum window in bytes (`W`): the smaller of the sender and
    /// receiver socket buffers.
    pub max_window: u32,
}

impl PftkParams {
    /// Maximum window expressed in segments, as the model's derivation
    /// counts windows (at least 1).
    fn wmax_segments(&self) -> f64 {
        f64::max(1.0, self.max_window as f64 / self.mss as f64)
    }

    fn validate(&self) {
        debug_assert!(self.mss > 0, "pftk: zero MSS");
        debug_assert!(self.rtt > 0.0, "pftk: non-positive RTT");
        debug_assert!(self.rto > 0.0, "pftk: non-positive RTO");
        debug_assert!(self.b > 0.0, "pftk: non-positive b");
        debug_assert!(
            self.p > 0.0 && self.p <= 1.0,
            "pftk: loss rate {} outside (0, 1]",
            self.p
        );
        debug_assert!(self.max_window > 0, "pftk: zero max window");
    }

    /// Converts a throughput in segments/second to bits/second.
    fn to_bps(self, segments_per_sec: f64) -> f64 {
        segments_per_sec * 8.0 * self.mss as f64
    }
}

/// The PFTK approximation — the paper's Eq. (2) — in bits per second:
///
/// ```text
/// E[R] = min( M / (T·√(2bp/3) + T₀·min(1, 3·√(3bp/8))·p·(1+32p²)),  W/T )
/// ```
///
/// # Examples
///
/// ```
/// use tputpred_core::formulas::{pftk, PftkParams};
/// let params = PftkParams {
///     mss: 1448, rtt: 0.08, rto: 1.0, b: 2.0, p: 0.0005,
///     max_window: 1 << 20,
/// };
/// let r = pftk(&params);
/// assert!(r > 0.0 && r.is_finite());
/// // A tiny window caps the prediction at W/T.
/// let capped = pftk(&PftkParams { max_window: 20 * 1024, ..params });
/// assert!((capped - 8.0 * 20.0 * 1024.0 / 0.08).abs() < 1.0);
/// ```
pub fn pftk(params: &PftkParams) -> f64 {
    params.validate();
    let PftkParams { rtt, rto, b, p, .. } = *params;
    let congestion_term = rtt * (2.0 * b * p / 3.0).sqrt();
    let timeout_term =
        rto * f64::min(1.0, 3.0 * (3.0 * b * p / 8.0).sqrt()) * p * (1.0 + 32.0 * p * p);
    let m_bits = 8.0 * params.mss as f64;
    let congestion_limited = m_bits / (congestion_term + timeout_term);
    let window_limited = 8.0 * params.max_window as f64 / rtt;
    f64::min(congestion_limited, window_limited)
}

/// Expected congestion-window size (in segments) at the end of a
/// triple-duplicate period (PFTK eq. 13):
///
/// ```text
/// W(p) = (2+b)/(3b) + √( 8(1−p)/(3bp) + ((2+b)/(3b))² )
/// ```
fn expected_window(p: f64, b: f64) -> f64 {
    let c = (2.0 + b) / (3.0 * b);
    c + (8.0 * (1.0 - p) / (3.0 * b * p) + c * c).sqrt()
}

/// Probability that a loss event in a window of `w` segments is detected
/// by a retransmission timeout rather than triple duplicate ACKs
/// (PFTK eq. 24):
///
/// ```text
/// Q̂(p, w) = min(1, (1−(1−p)³)·(1 + (1−p)³·(1−(1−p)^(w−3))) / (1−(1−p)^w))
/// ```
fn timeout_probability(p: f64, w: f64) -> f64 {
    if w <= 3.0 {
        // Fewer than three segments in flight cannot generate three
        // duplicate ACKs: every loss is a timeout.
        return 1.0;
    }
    let q = 1.0 - p;
    let denom = 1.0 - q.powf(w);
    if denom <= 0.0 {
        return 1.0;
    }
    let numer = (1.0 - q.powi(3)) * (1.0 + q.powi(3) * (1.0 - q.powf(w - 3.0)));
    f64::min(1.0, numer / denom)
}

/// Expected duration multiplier of exponential RTO backoff
/// (PFTK: G(p) = 1 + p + 2p² + 4p³ + 8p⁴ + 16p⁵ + 32p⁶).
fn backoff_factor(p: f64) -> f64 {
    1.0 + p
        + 2.0 * p.powi(2)
        + 4.0 * p.powi(3)
        + 8.0 * p.powi(4)
        + 16.0 * p.powi(5)
        + 32.0 * p.powi(6)
}

/// The full PFTK model (PFTK eq. 31), in bits per second.
///
/// For `W(p) < Wmax` (congestion-limited regime):
///
/// ```text
///            (1−p)/p + W(p)/2 + Q̂(W(p))
/// B(p) = ─────────────────────────────────────────────
///         RTT·(b/2·W(p) + 1) + Q̂(W(p))·G(p)·T₀/(1−p)
/// ```
///
/// and for `W(p) ≥ Wmax` (window-limited regime):
///
/// ```text
///            (1−p)/p + Wmax/2 + Q̂(Wmax)
/// B(p) = ──────────────────────────────────────────────────────────────
///         RTT·(b/8·Wmax + (1−p)/(p·Wmax) + 2) + Q̂(Wmax)·G(p)·T₀/(1−p)
/// ```
///
/// The result is additionally capped at `Wmax/RTT`, which the model can
/// otherwise slightly exceed at very small `p`.
pub fn pftk_full(params: &PftkParams) -> f64 {
    params.validate();
    let PftkParams { rtt, rto, b, p, .. } = *params;
    let wmax = params.wmax_segments();
    let w = expected_window(p, b);
    let rate_segments = if w < wmax {
        let q = timeout_probability(p, w);
        let numer = (1.0 - p) / p + w / 2.0 + q;
        let denom =
            rtt * (b / 2.0 * w + 1.0) + q * backoff_factor(p) * rto / (1.0 - p).max(f64::EPSILON);
        numer / denom
    } else {
        let q = timeout_probability(p, wmax);
        let numer = (1.0 - p) / p + wmax / 2.0 + q;
        let denom = rtt * (b / 8.0 * wmax + (1.0 - p) / (p * wmax) + 2.0)
            + q * backoff_factor(p) * rto / (1.0 - p).max(f64::EPSILON);
        numer / denom
    };
    params.to_bps(f64::min(rate_segments, wmax / rtt))
}

/// Revised PFTK model (§4.2.9; in the spirit of the paper's ref. \[26\]).
///
/// Two corrections relative to [`pftk_full`]:
///
/// 1. **Segments per triple-duplicate period.** Under the model's own
///    loss-correlation assumption — once a segment is lost, all later
///    segments in the same round are also lost — the TD period delivers
///    `α` segments up to and including the first loss plus the `W−1`
///    segments of the *previous* round still in flight, not the full
///    window after the loss. The packet balance then yields a corrected
///    expected window `W'(p)` solving
///    `(1−p)/p + 1 = (3b/8)·W'² + (1−b/4)·W'` (quadratic in `W'`).
/// 2. **Timeout probability for tiny windows.** `Q̂` is pinned to 1 for
///    `w ≤ 3` *before* the ratio is formed, avoiding the >1 intermediate
///    values of the original expression (the original clamps with
///    `min(1, ·)` only after the fact).
///
/// The regime split and backoff handling are identical to [`pftk_full`].
pub fn pftk_revised(params: &PftkParams) -> f64 {
    params.validate();
    let PftkParams { rtt, rto, b, p, .. } = *params;
    let wmax = params.wmax_segments();
    // Corrected packet balance: Y' = (1-p)/p + 1 segments per TD period,
    // delivered over X = b/2·W + 1 rounds ramping from W/2 to W:
    // Y' = (3b/8)W² + (1 − b/4)W  →  solve the quadratic for W.
    let y = (1.0 - p) / p + 1.0;
    let a2 = 3.0 * b / 8.0;
    let a1 = 1.0 - b / 4.0;
    let w = (-a1 + (a1 * a1 + 4.0 * a2 * y).sqrt()) / (2.0 * a2);
    let w = w.max(1.0);
    let rate_segments = if w < wmax {
        let q = timeout_probability(p, w);
        let numer = y + w / 2.0 + q;
        let denom =
            rtt * (b / 2.0 * w + 1.0) + q * backoff_factor(p) * rto / (1.0 - p).max(f64::EPSILON);
        numer / denom
    } else {
        let q = timeout_probability(p, wmax);
        let numer = y + wmax / 2.0 + q;
        let denom = rtt * (b / 8.0 * wmax + (1.0 - p) / (p * wmax) + 2.0)
            + q * backoff_factor(p) * rto / (1.0 - p).max(f64::EPSILON);
        numer / denom
    };
    params.to_bps(f64::min(rate_segments, wmax / rtt))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(p: f64) -> PftkParams {
        PftkParams {
            mss: 1448,
            rtt: 0.08,
            rto: 1.0,
            b: 2.0,
            p,
            max_window: 1 << 20,
        }
    }

    #[test]
    fn approximation_reduces_to_mathis_at_low_loss() {
        // At very low p the timeout term vanishes and Eq. 2 → Eq. 1.
        let p = 1e-5;
        let pk = pftk(&params(p));
        let ms = crate::formulas::mathis(1448, 0.08, 2.0, p);
        assert!((pk / ms - 1.0).abs() < 0.01, "pftk {pk} vs mathis {ms}");
    }

    #[test]
    fn window_cap_applies() {
        let mut pr = params(1e-6);
        pr.max_window = 16 * 1024;
        let r = pftk(&pr);
        let cap = 8.0 * 16.0 * 1024.0 / 0.08;
        assert!((r - cap).abs() < 1e-6);
    }

    #[test]
    fn throughput_decreases_with_loss() {
        let ps = [0.001, 0.005, 0.01, 0.05, 0.1, 0.3];
        for model in [pftk, pftk_full, pftk_revised] {
            let rates: Vec<f64> = ps.iter().map(|&p| model(&params(p))).collect();
            for w in rates.windows(2) {
                assert!(w[0] > w[1], "monotone in p: {rates:?}");
            }
        }
    }

    #[test]
    fn throughput_decreases_with_rtt() {
        for model in [pftk, pftk_full, pftk_revised] {
            let r1 = model(&PftkParams {
                rtt: 0.02,
                ..params(0.01)
            });
            let r2 = model(&PftkParams {
                rtt: 0.2,
                ..params(0.01)
            });
            assert!(r1 > r2);
        }
    }

    #[test]
    fn full_model_tracks_approximation_at_moderate_loss() {
        // PFTK report the approximation is within a small factor of the
        // full model for p ≲ 0.1.
        for p in [0.002, 0.01, 0.05] {
            let a = pftk(&params(p));
            let f = pftk_full(&params(p));
            let ratio = a / f;
            assert!(
                (0.5..2.0).contains(&ratio),
                "p={p}: approx {a:.0} vs full {f:.0}"
            );
        }
    }

    #[test]
    fn revised_model_is_close_to_full_model() {
        // Fig. 13's premise: the revision is a second-order effect.
        for p in [0.001, 0.01, 0.05, 0.1] {
            let f = pftk_full(&params(p));
            let r = pftk_revised(&params(p));
            let ratio = r / f;
            assert!(
                (0.4..2.5).contains(&ratio),
                "p={p}: full {f:.0} vs revised {r:.0}"
            );
        }
    }

    #[test]
    fn expected_window_matches_asymptotics() {
        // W(p) ≈ sqrt(8/(3bp)) for small p.
        let p = 1e-6;
        let w = expected_window(p, 2.0);
        let asym = (8.0 / (3.0 * 2.0 * p)).sqrt();
        assert!((w / asym - 1.0).abs() < 0.01);
    }

    #[test]
    fn timeout_probability_bounds() {
        for p in [0.001, 0.01, 0.1, 0.5, 0.99] {
            for w in [1.0, 2.0, 3.0, 5.0, 20.0, 1000.0] {
                let q = timeout_probability(p, w);
                assert!((0.0..=1.0).contains(&q), "Q({p},{w}) = {q}");
            }
        }
    }

    #[test]
    fn tiny_windows_always_time_out() {
        assert_eq!(timeout_probability(0.01, 1.0), 1.0);
        assert_eq!(timeout_probability(0.01, 3.0), 1.0);
    }

    #[test]
    fn timeout_probability_decreases_with_window() {
        let p = 0.02;
        let qs: Vec<f64> = [4.0, 8.0, 16.0, 64.0]
            .iter()
            .map(|&w| timeout_probability(p, w))
            .collect();
        for w in qs.windows(2) {
            assert!(w[0] >= w[1], "Q should shrink with w: {qs:?}");
        }
    }

    #[test]
    fn backoff_factor_at_zero_is_one() {
        assert_eq!(backoff_factor(0.0), 1.0);
        assert!(backoff_factor(0.5) > 1.0);
    }

    #[test]
    fn full_model_window_limited_regime_is_continuous_enough() {
        // Crossing the W(p) = Wmax boundary should not produce a cliff.
        let base = params(0.0005);
        let wseg = expected_window(0.0005, 2.0);
        let just_above = PftkParams {
            max_window: ((wseg + 1.0) * 1448.0) as u32,
            ..base
        };
        let just_below = PftkParams {
            max_window: ((wseg - 1.0) * 1448.0) as u32,
            ..base
        };
        let ra = pftk_full(&just_above);
        let rb = pftk_full(&just_below);
        assert!((ra / rb - 1.0).abs() < 0.35, "regime cliff: {ra} vs {rb}");
    }

    #[test]
    fn all_models_finite_across_loss_range() {
        for model in [pftk, pftk_full, pftk_revised] {
            for p in [1e-6, 1e-4, 1e-2, 0.1, 0.5, 0.9, 1.0] {
                let r = model(&params(p));
                assert!(r.is_finite() && r > 0.0, "p={p} gave {r}");
            }
        }
    }
}
