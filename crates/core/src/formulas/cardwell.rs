//! The Cardwell–Savage–Anderson slow-start segment model (§4.2.7).

/// Expected number of segments transferred during the *initial slow start*
/// of a TCP flow of `d` total segments on a path with loss rate `p`
/// (Cardwell et al., INFOCOM 2000, as quoted in the paper's §4.2.7):
///
/// ```text
/// E[d_ss] = (1 − (1−p)^d)(1−p) / p + 1
/// ```
///
/// The paper uses this to decide whether a transfer is long enough that the
/// initial slow start contributes negligibly to the average throughput —
/// the premise behind studying *large* transfers. For `p → 0` the whole
/// transfer stays in slow start (`E[d_ss] → d·(1−p) + 1 → d + 1` clipped by
/// the transfer itself); for larger `p` slow start ends after roughly `1/p`
/// segments.
///
/// # Panics
///
/// Panics (debug) if `p` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use tputpred_core::formulas::slow_start_segments;
/// // At 1% loss, slow start covers ~100 segments regardless of flow size.
/// let d_ss = slow_start_segments(100_000, 0.01);
/// assert!(d_ss > 90.0 && d_ss < 110.0);
/// ```
pub fn slow_start_segments(d: u64, p: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p), "loss rate {p} outside [0, 1]");
    // lint:allow(float-eq): p = 0 is an exact sentinel selecting the lossless limit
    if p == 0.0 {
        // Limit of the formula as p → 0: lim (1-(1-p)^d)(1-p)/p = d.
        return d as f64 + 1.0;
    }
    let q = 1.0 - p;
    (1.0 - q.powf(d as f64)) * q / p + 1.0
}

/// Returns `true` when a transfer of `d` segments is "large" in the
/// paper's sense: the initial slow start covers at most `threshold`
/// (e.g. 0.1 = 10%) of the transfer, so steady-state models apply.
pub fn slow_start_negligible(d: u64, p: f64, threshold: f64) -> bool {
    slow_start_segments(d, p) <= threshold * d as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_flow_never_leaves_slow_start() {
        assert_eq!(slow_start_segments(1000, 0.0), 1001.0);
    }

    #[test]
    fn high_loss_ends_slow_start_after_about_one_over_p() {
        let d_ss = slow_start_segments(1_000_000, 0.1);
        // (1-q^d)(1-p)/p + 1 → 0.9/0.1 + 1 = 10 for huge d.
        assert!((d_ss - 10.0).abs() < 1e-6);
    }

    #[test]
    fn short_flow_bounded_by_its_own_length() {
        // A 10-segment flow can't send more than ~11 segments in slow start.
        let d_ss = slow_start_segments(10, 0.001);
        assert!(d_ss <= 11.0);
    }

    #[test]
    fn monotone_decreasing_in_loss_rate() {
        let a = slow_start_segments(100_000, 0.001);
        let b = slow_start_segments(100_000, 0.01);
        let c = slow_start_segments(100_000, 0.1);
        assert!(a > b && b > c);
    }

    #[test]
    fn negligibility_threshold_classifies_bulk_transfers() {
        // A 50-s transfer at ~10 Mbps is ~43k segments; at 1% loss
        // slow start is ~100 segments ≈ 0.2% — negligible.
        assert!(slow_start_negligible(43_000, 0.01, 0.1));
        // A 500-segment (~0.7 MB) transfer on a nearly lossless path is
        // dominated by slow start.
        assert!(!slow_start_negligible(500, 0.0001, 0.1));
    }
}
