//! An RTT-CV-gated FB/HB hybrid: the coefficient of variation of recent
//! RTT probes decides how much to trust the formula.
//!
//! Operational transfer monitors classify a path from its RTT
//! variability — CoV below ~0.15 means a calm path, above ~0.30 a
//! loaded or impaired one (thresholds from production GridFTP health
//! probes; DESIGN.md §12). Eq. (3) is a *steady-state* model: its
//! accuracy degrades exactly when the RTT it was fed stops being
//! representative, i.e. when RTT variability is high. The gate
//! therefore hands prediction to the history side as CoV rises:
//!
//! ```text
//! w_hb = clamp((CV − 0.15) / (0.30 − 0.15), 0, 1)
//! X̂    = (1 − w_hb)·X̂_FB + w_hb·X̂_HB
//! ```
//!
//! Unlike [`crate::hybrid::HybridPredictor`], whose blend decays with
//! history *length*, this gate is driven purely by current path state —
//! a long history on a path that just went turbulent still gets a
//! turbulent-path (history-weighted) blend, and vice versa.

use crate::error::PredictError;
use crate::predictor::{EpochFeatures, EpochObservation, Predictor, Update};
use tputpred_stats::RollingCov;

/// RTT CoV below this: the path is calm, the formula is trusted fully.
pub const RTT_CV_HEALTHY: f64 = 0.15;

/// RTT CoV above this: the path is impaired, history is trusted fully.
pub const RTT_CV_IMPAIRED: f64 = 0.30;

/// RTT probes the gate's own CoV window retains when epochs don't carry
/// a precomputed [`EpochFeatures::rtt_cv`].
const RTT_WINDOW: usize = 10;

/// FB/HB hybrid gated by RTT coefficient of variation.
///
/// # Examples
///
/// ```
/// use tputpred_core::fb::{FbPredictor, PathEstimates};
/// use tputpred_core::gated::RttCvGated;
/// use tputpred_core::hb::HoltWinters;
/// use tputpred_core::lso::Lso;
/// use tputpred_core::predictor::{EpochFeatures, EpochObservation, Predictor};
///
/// let mut g = RttCvGated::new(FbPredictor::default(), Lso::new(HoltWinters::new(0.8, 0.2)));
/// let est = PathEstimates { rtt: 0.08, loss_rate: 0.01, avail_bw: 20e6 };
/// for _ in 0..10 {
///     g.observe(&EpochObservation::new(est.into(), Some(9e6)));
/// }
/// // A calm path (constant RTT ⇒ CV = 0): the formula answers.
/// let calm = g.try_predict(&est.into()).unwrap();
/// assert_eq!(calm, FbPredictor::default().predict(&est));
/// ```
#[derive(Debug, Clone)]
pub struct RttCvGated<F, H> {
    formula: F,
    history: H,
    rtt_window: RollingCov,
}

impl<F: Predictor, H: Predictor> RttCvGated<F, H> {
    /// Creates a gated hybrid from a formula-side and a history-side
    /// predictor.
    pub fn new(formula: F, history: H) -> Self {
        RttCvGated {
            formula,
            history,
            rtt_window: RollingCov::new(RTT_WINDOW),
        }
    }

    /// The linear-ramp weight on the history side for a given RTT CoV.
    // lint:hot-path
    pub fn history_weight(rtt_cv: f64) -> f64 {
        ((rtt_cv - RTT_CV_HEALTHY) / (RTT_CV_IMPAIRED - RTT_CV_HEALTHY)).clamp(0.0, 1.0)
    }

    /// The RTT CoV the gate would use right now: the epoch-supplied
    /// value if present, else the CoV of its own probe window.
    fn gate_cv(&self, features: &EpochFeatures) -> Option<f64> {
        features.rtt_cv.or_else(|| self.rtt_window.cov())
    }
}

impl<F: Predictor, H: Predictor> Predictor for RttCvGated<F, H> {
    /// Blends by [`Self::history_weight`] of the gate CoV when both
    /// sides forecast; degrades to whichever side can when the other
    /// refuses. With no CoV available at all (no `rtt_cv` feature and
    /// fewer than two banked RTT probes) the path's state is unknown
    /// and the formula side is preferred — the paper's a-priori stance.
    /// Both sides refusing propagates the formula's reason.
    fn try_predict(&self, features: &EpochFeatures) -> Result<f64, PredictError> {
        let formula_pred = self.formula.try_predict(features);
        let history_pred = self.history.try_predict(features);
        match (formula_pred, history_pred) {
            (Ok(f), Ok(h)) => Ok(match self.gate_cv(features) {
                Some(rtt_cv) => {
                    let w_hb = Self::history_weight(rtt_cv);
                    (1.0 - w_hb) * f + w_hb * h
                }
                None => f,
            }),
            (Ok(f), Err(_)) => Ok(f),
            (Err(_), Ok(h)) => Ok(h),
            (Err(e), Err(_)) => Err(e),
        }
    }

    /// Banks the epoch's RTT probe into the gate window and forwards
    /// the epoch to both sides. The history side's [`Update`] is
    /// returned — it carries the LSO events evaluation cares about.
    fn observe(&mut self, epoch: &EpochObservation) -> Update {
        if let Some(rtt_s) = epoch.features.probes.rtt {
            self.rtt_window.push(rtt_s);
        }
        self.formula.observe(epoch);
        self.history.observe(epoch)
    }

    fn reset(&mut self) {
        self.formula.reset();
        self.history.reset();
        self.rtt_window.clear();
    }

    // lint:hot-path
    fn name(&self) -> &str {
        "rtt-cv-gated"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fb::{FbPredictor, PathEstimates};
    use crate::hb::MovingAverage;

    fn est() -> PathEstimates {
        PathEstimates {
            rtt: 0.08,
            loss_rate: 0.01,
            avail_bw: 20e6,
        }
    }

    fn gated() -> RttCvGated<FbPredictor, MovingAverage> {
        RttCvGated::new(FbPredictor::default(), MovingAverage::new(10))
    }

    fn with_cv(rtt_cv: f64) -> EpochFeatures {
        EpochFeatures {
            rtt_cv: Some(rtt_cv),
            ..est().into()
        }
    }

    #[test]
    fn ramp_endpoints_and_midpoint() {
        assert_eq!(
            RttCvGated::<FbPredictor, MovingAverage>::history_weight(0.05),
            0.0
        );
        assert_eq!(
            RttCvGated::<FbPredictor, MovingAverage>::history_weight(0.50),
            1.0
        );
        let mid = RttCvGated::<FbPredictor, MovingAverage>::history_weight(0.225);
        assert!((mid - 0.5).abs() < 1e-12);
    }

    #[test]
    fn calm_cv_is_pure_formula() {
        let mut g = gated();
        for _ in 0..5 {
            g.update(5e6);
        }
        let fb = FbPredictor::default().predict(&est());
        assert_eq!(g.try_predict(&with_cv(0.05)), Ok(fb));
    }

    #[test]
    fn impaired_cv_is_pure_history() {
        let mut g = gated();
        for _ in 0..5 {
            g.update(5e6);
        }
        assert_eq!(g.try_predict(&with_cv(0.9)), Ok(5e6));
    }

    #[test]
    fn stressed_cv_blends_linearly() {
        let mut g = gated();
        for _ in 0..5 {
            g.update(5e6);
        }
        let fb = FbPredictor::default().predict(&est());
        let p = g.try_predict(&with_cv(0.225)).unwrap();
        assert!((p - 0.5 * (fb + 5e6)).abs() < 1e-6, "{p}");
    }

    #[test]
    fn gate_falls_back_to_banked_rtt_probes() {
        let mut g = gated();
        // Volatile RTT probes: CoV of {0.02, 0.30, 0.02, 0.30, ...} ≫ 0.30.
        for i in 0..10 {
            let rtt_s = if i % 2 == 0 { 0.02 } else { 0.30 };
            g.observe(&EpochObservation::new(
                EpochFeatures {
                    probes: crate::fb::PartialEstimates {
                        rtt: Some(rtt_s),
                        loss_rate: Some(0.01),
                        avail_bw: Some(20e6),
                    },
                    rtt_cv: None,
                },
                Some(5e6),
            ));
        }
        // No rtt_cv on the query either: the banked window gates.
        assert_eq!(g.try_predict(&est().into()), Ok(5e6));
    }

    #[test]
    fn unknown_state_prefers_the_formula() {
        let mut g = gated();
        for _ in 0..5 {
            g.update(5e6); // throughput-only epochs: no RTT banked
        }
        let fb = FbPredictor::default().predict(&est());
        assert_eq!(g.try_predict(&est().into()), Ok(fb));
    }

    #[test]
    fn formula_refusal_degrades_to_history() {
        let mut g = gated();
        for _ in 0..5 {
            g.update(5e6);
        }
        assert_eq!(g.try_predict(&EpochFeatures::NONE), Ok(5e6));
    }

    #[test]
    fn history_refusal_degrades_to_formula() {
        let g = gated();
        let fb = FbPredictor::default().predict(&est());
        assert_eq!(g.try_predict(&with_cv(0.9)), Ok(fb));
    }

    #[test]
    fn both_refusing_propagates_the_formula_reason() {
        let g = gated();
        assert_eq!(
            g.try_predict(&EpochFeatures::NONE),
            Err(PredictError::MissingRtt)
        );
    }

    #[test]
    fn gap_epochs_are_a_noop() {
        let mut g = gated();
        g.update(5e6);
        assert_eq!(g.observe(&EpochObservation::GAP), Update::Skipped);
        assert_eq!(g.try_predict(&with_cv(0.9)), Ok(5e6));
        assert_eq!(g.name(), "rtt-cv-gated");
    }

    #[test]
    fn reset_clears_the_gate_window() {
        let mut g = gated();
        for i in 0..10 {
            let rtt_s = if i % 2 == 0 { 0.02 } else { 0.30 };
            g.observe(&EpochObservation::new(
                EpochFeatures {
                    probes: crate::fb::PartialEstimates {
                        rtt: Some(rtt_s),
                        loss_rate: None,
                        avail_bw: None,
                    },
                    rtt_cv: None,
                },
                Some(5e6),
            ));
        }
        g.reset();
        let fb = FbPredictor::default().predict(&est());
        // Unknown state again after reset: formula preferred.
        assert_eq!(g.try_predict(&est().into()), Ok(fb));
    }
}
