//! Degradation policies for serving predictions through outages:
//! fallback chains, staleness guards, and circuit breakers — each a
//! [`Predictor`] combinator, so policies register in the catalog and
//! score in the league table like any other family (DESIGN.md §13).
//!
//! The paper's campaign could *discard* failed epochs after the fact; a
//! prediction service cannot. When the correlated-outage regime process
//! (`tputpred-testbed::faults`, DESIGN.md §13) takes a path's probes
//! down for many consecutive epochs, a bare FB predictor refuses every
//! one of them and a bare HB predictor serves increasingly fossilised
//! history. This module supplies the policy layer between those
//! failure modes:
//!
//! * [`Fallback`] — try a primary, hand refusals to a fallback
//!   (chainable: FB → HB → [`LastKnownGood`]), reporting which tier
//!   answered via [`Fallback::try_predict_tiered`] and `obs` counters.
//! * [`Staleness`] — refuse ([`PredictError::Stale`]) once the last
//!   *measured* throughput is older than N epochs: an honest "I don't
//!   know" beats serving a forecast from before the outage.
//! * [`CircuitBreaker`] — after K consecutive inner refusals, stop
//!   consulting the inner predictor ([`PredictError::CircuitOpen`])
//!   for a cooldown, then half-open-probe it; the classic serving
//!   pattern, made deterministic (epoch-counted, no wall clock).
//!
//! # Contract
//!
//! Combinators obey the full [`Predictor`] contract: observing
//! [`EpochObservation::GAP`] is a state no-op (policy clocks — staleness
//! age, breaker cooldown — advance only on non-gap epochs, so a gappy
//! stream stays bit-equal to its compacted form; proptested in
//! `core/tests/family_gap_tolerance.rs`), [`Predictor::try_predict`]
//! never mutates policy state (breaker transitions happen in
//! [`Predictor::observe`]), and [`Predictor::name`] is cached at
//! construction. All state is integer epoch counting on deterministic
//! inputs: the same observation sequence replays every policy decision
//! bit-identically.

use crate::error::PredictError;
use crate::predictor::{EpochFeatures, EpochObservation, Predictor, Update};
use tputpred_obs as obs;

/// Which tier of a [`Fallback`] produced a forecast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackTier {
    /// The primary answered.
    Primary,
    /// The primary refused; the fallback answered.
    Fallback,
}

/// Returns `true` for the all-`None` epoch, which every combinator must
/// treat as a state no-op.
// lint:hot-path
fn is_gap(epoch: &EpochObservation) -> bool {
    *epoch == EpochObservation::GAP
}

/// The deepest rung of a fallback chain: replays the last measured
/// throughput, verbatim, forever.
///
/// Persistence ("tomorrow equals today") is the zero-parameter HB
/// predictor — `1-MA` without even a window. As a chain terminator it
/// guarantees an answer on any epoch after the first measured one, at
/// whatever accuracy the outage leaves on the table; pair it with a
/// [`Staleness`] guard to bound how long it may parrot.
#[derive(Debug, Clone, Default)]
pub struct LastKnownGood {
    last_throughput_bps: Option<f64>,
}

impl LastKnownGood {
    /// A guard with no history yet.
    pub fn new() -> Self {
        LastKnownGood::default()
    }
}

impl Predictor for LastKnownGood {
    // lint:hot-path
    fn try_predict(&self, _features: &EpochFeatures) -> Result<f64, PredictError> {
        self.last_throughput_bps
            .ok_or(PredictError::InsufficientHistory)
    }

    fn observe(&mut self, epoch: &EpochObservation) -> Update {
        match epoch.throughput_bps {
            Some(throughput_bps) => {
                self.last_throughput_bps = Some(throughput_bps);
                Update::Accepted
            }
            None => Update::Skipped,
        }
    }

    fn reset(&mut self) {
        self.last_throughput_bps = None;
    }

    // lint:hot-path
    fn name(&self) -> &str {
        "LKG"
    }
}

/// Serve the primary's forecast; on refusal, the fallback's.
///
/// Both sides observe every epoch, so the fallback's history is warm
/// the moment it is needed. Chains compose by nesting:
/// `Fallback::new(fb, Fallback::new(hb, LastKnownGood::new()))` is the
/// catalog's `FB->0.8-HW-LSO->LKG` three-tier chain. Which tier
/// answered is visible two ways: [`Fallback::try_predict_tiered`]
/// returns it, and the `core.resilience.fallback.*` `obs` counters
/// accumulate it across a run.
#[derive(Debug, Clone)]
pub struct Fallback<P, Q> {
    primary: P,
    fallback: Q,
    name: String,
}

impl<P: Predictor, Q: Predictor> Fallback<P, Q> {
    /// Chains `primary` over `fallback`. The combinator's name is
    /// `"{primary}->{fallback}"`, built once here.
    pub fn new(primary: P, fallback: Q) -> Self {
        let name = format!("{}->{}", primary.name(), fallback.name());
        Fallback {
            primary,
            fallback,
            name,
        }
    }

    /// [`Predictor::try_predict`] plus *which tier answered*. Both
    /// sides refusing propagates the primary's error — the more
    /// specific diagnosis, mirroring [`crate::gated::RttCvGated`].
    // lint:hot-path
    pub fn try_predict_tiered(
        &self,
        features: &EpochFeatures,
    ) -> Result<(f64, FallbackTier), PredictError> {
        match self.primary.try_predict(features) {
            Ok(forecast) => Ok((forecast, FallbackTier::Primary)),
            Err(primary_err) => match self.fallback.try_predict(features) {
                Ok(forecast) => Ok((forecast, FallbackTier::Fallback)),
                Err(_) => Err(primary_err),
            },
        }
    }
}

impl<P: Predictor, Q: Predictor> Predictor for Fallback<P, Q> {
    // lint:hot-path
    fn try_predict(&self, features: &EpochFeatures) -> Result<f64, PredictError> {
        match self.try_predict_tiered(features) {
            Ok((forecast, FallbackTier::Primary)) => {
                obs::add("core.resilience.fallback.primary", 1);
                Ok(forecast)
            }
            Ok((forecast, FallbackTier::Fallback)) => {
                obs::add("core.resilience.fallback.fallback", 1);
                Ok(forecast)
            }
            Err(e) => {
                obs::add("core.resilience.fallback.refused", 1);
                Err(e)
            }
        }
    }

    /// Forwards the epoch to both tiers. The returned [`Update`] is the
    /// primary's unless it skipped and the fallback accepted — an
    /// event-carrying update (LSO outlier/shift) always wins over a
    /// plain `Accepted`.
    fn observe(&mut self, epoch: &EpochObservation) -> Update {
        let primary_update = self.primary.observe(epoch);
        let fallback_update = self.fallback.observe(epoch);
        let has_event = |u: &Update| {
            matches!(
                u,
                Update::OutliersDiscarded { .. } | Update::LevelShift { .. }
            )
        };
        if has_event(&primary_update) {
            primary_update
        } else if has_event(&fallback_update) {
            fallback_update
        } else if matches!(primary_update, Update::Accepted) {
            primary_update
        } else {
            // Primary skipped: report whatever the fallback did with
            // the sample (Accepted if it banked it, Skipped on a gap).
            fallback_update
        }
    }

    fn reset(&mut self) {
        self.primary.reset();
        self.fallback.reset();
    }

    // lint:hot-path
    fn name(&self) -> &str {
        &self.name
    }
}

/// Refuse once the last measured throughput is older than `max_age`
/// epochs.
///
/// The age clock counts *observed non-gap epochs since a throughput
/// measurement*: a fresh measurement resets it to zero, a measurement-
/// less epoch (probes came back but the transfer failed) advances it,
/// and a gap leaves it untouched (gap semantics). Until the first
/// measurement the guard defers to the inner predictor — refusing a
/// formula that needs no history would be the guard inventing policy.
/// Refusals are typed [`PredictError::Stale`] and counted on
/// `core.resilience.staleness.refusals`.
#[derive(Debug, Clone)]
pub struct Staleness<P> {
    inner: P,
    max_age: usize,
    /// Non-gap epochs since the last measured throughput; `None` until
    /// one is measured.
    age: Option<usize>,
    name: String,
}

impl<P: Predictor> Staleness<P> {
    /// Guards `inner`, refusing when the last measurement is `max_age`
    /// or more epochs old. `max_age` is floored at 1 (0 would refuse
    /// always). The name is `"stale{N}-{inner}"`.
    pub fn new(inner: P, max_age: usize) -> Self {
        let max_age = max_age.max(1);
        let name = format!("stale{}-{}", max_age, inner.name());
        Staleness {
            inner,
            max_age,
            age: None,
            name,
        }
    }

    /// Non-gap epochs since the last measured throughput (`None` before
    /// the first measurement).
    pub fn age(&self) -> Option<usize> {
        self.age
    }
}

impl<P: Predictor> Predictor for Staleness<P> {
    // lint:hot-path
    fn try_predict(&self, features: &EpochFeatures) -> Result<f64, PredictError> {
        match self.age {
            Some(age) if age >= self.max_age => {
                obs::add("core.resilience.staleness.refusals", 1);
                Err(PredictError::Stale)
            }
            _ => self.inner.try_predict(features),
        }
    }

    fn observe(&mut self, epoch: &EpochObservation) -> Update {
        if !is_gap(epoch) {
            match (epoch.throughput_bps, self.age) {
                (Some(_), _) => self.age = Some(0),
                (None, Some(age)) => self.age = Some(age + 1),
                (None, None) => {}
            }
        }
        self.inner.observe(epoch)
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.age = None;
    }

    // lint:hot-path
    fn name(&self) -> &str {
        &self.name
    }
}

/// The breaker's position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BreakerState {
    /// Normal operation: forecasts flow from the inner predictor.
    #[default]
    Closed,
    /// Tripped: every forecast refuses [`PredictError::CircuitOpen`]
    /// while the cooldown counts down.
    Open,
    /// Cooldown elapsed: the next non-gap epoch is a probe — the inner
    /// predictor's success or refusal on it decides Closed vs re-Open.
    HalfOpen,
}

/// Open after `trip_after` consecutive inner refusals, rest for
/// `cooldown` epochs, then half-open-probe.
///
/// A wrapper around the classic serving-layer breaker, with every clock
/// an epoch counter on the observation stream, so runs replay
/// bit-identically:
///
/// ```text
/// Closed ──(trip_after consecutive refusals)──▶ Open
/// Open ──(cooldown non-gap epochs)──▶ HalfOpen
/// HalfOpen ──(probe answers)──▶ Closed   (probe refuses)──▶ Open
/// ```
///
/// "Refusal" is judged in [`Predictor::observe`]: each non-gap epoch,
/// the inner predictor's `try_predict` on the epoch's own features is
/// checked (before the epoch is ingested, matching the serving order:
/// forecast first, learn after). `try_predict` itself never mutates
/// breaker state. Transitions are counted on
/// `core.resilience.breaker.{opened,half_open,closed,reopened}` and
/// while open, refusals on `core.resilience.breaker.open_refusals`.
#[derive(Debug, Clone)]
pub struct CircuitBreaker<P> {
    inner: P,
    trip_after: usize,
    cooldown: usize,
    state: BreakerState,
    consecutive_refusals: usize,
    cooldown_left: usize,
    name: String,
}

impl<P: Predictor> CircuitBreaker<P> {
    /// Wraps `inner`, opening after `trip_after` consecutive refusals
    /// and resting `cooldown` epochs before the half-open probe. Both
    /// knobs are floored at 1. The name is `"breaker{K}-{inner}"`.
    pub fn new(inner: P, trip_after: usize, cooldown: usize) -> Self {
        let trip_after = trip_after.max(1);
        let name = format!("breaker{}-{}", trip_after, inner.name());
        CircuitBreaker {
            inner,
            trip_after,
            cooldown: cooldown.max(1),
            state: BreakerState::Closed,
            consecutive_refusals: 0,
            cooldown_left: 0,
            name,
        }
    }

    /// The breaker's current position.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Runs the state machine for one non-gap epoch. `answered` is
    /// whether the inner predictor could forecast on this epoch's
    /// features.
    fn step(&mut self, answered: bool) {
        match self.state {
            BreakerState::Closed => {
                if answered {
                    self.consecutive_refusals = 0;
                } else {
                    self.consecutive_refusals += 1;
                    if self.consecutive_refusals >= self.trip_after {
                        self.state = BreakerState::Open;
                        self.cooldown_left = self.cooldown;
                        obs::add("core.resilience.breaker.opened", 1);
                    }
                }
            }
            BreakerState::Open => {
                self.cooldown_left = self.cooldown_left.saturating_sub(1);
                if self.cooldown_left == 0 {
                    self.state = BreakerState::HalfOpen;
                    obs::add("core.resilience.breaker.half_open", 1);
                }
            }
            BreakerState::HalfOpen => {
                if answered {
                    self.state = BreakerState::Closed;
                    self.consecutive_refusals = 0;
                    obs::add("core.resilience.breaker.closed", 1);
                } else {
                    self.state = BreakerState::Open;
                    self.cooldown_left = self.cooldown;
                    obs::add("core.resilience.breaker.reopened", 1);
                }
            }
        }
    }
}

impl<P: Predictor> Predictor for CircuitBreaker<P> {
    // lint:hot-path
    fn try_predict(&self, features: &EpochFeatures) -> Result<f64, PredictError> {
        if self.state == BreakerState::Open {
            obs::add("core.resilience.breaker.open_refusals", 1);
            return Err(PredictError::CircuitOpen);
        }
        self.inner.try_predict(features)
    }

    fn observe(&mut self, epoch: &EpochObservation) -> Update {
        if !is_gap(epoch) {
            let answered = self.inner.try_predict(&epoch.features).is_ok();
            self.step(answered);
        }
        self.inner.observe(epoch)
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.state = BreakerState::Closed;
        self.consecutive_refusals = 0;
        self.cooldown_left = 0;
    }

    // lint:hot-path
    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fb::{FbPredictor, PartialEstimates, PathEstimates};
    use crate::hb::MovingAverage;

    fn est() -> PathEstimates {
        PathEstimates {
            rtt: 0.08,
            loss_rate: 0.01,
            avail_bw: 20e6,
        }
    }

    fn measured(throughput_bps: f64) -> EpochObservation {
        EpochObservation::new(est().into(), Some(throughput_bps))
    }

    /// Probes came back but the transfer failed: features, no target.
    fn unmeasured() -> EpochObservation {
        EpochObservation::new(est().into(), None)
    }

    #[test]
    fn lkg_replays_the_last_measurement() {
        let mut lkg = LastKnownGood::new();
        assert_eq!(
            lkg.try_predict(&EpochFeatures::NONE),
            Err(PredictError::InsufficientHistory)
        );
        assert_eq!(lkg.update(5e6), Update::Accepted);
        assert_eq!(lkg.update(7e6), Update::Accepted);
        assert_eq!(lkg.try_predict(&EpochFeatures::NONE), Ok(7e6));
        // Measurement-less epochs neither advance nor clear it.
        assert_eq!(lkg.observe(&unmeasured()), Update::Skipped);
        assert_eq!(lkg.try_predict(&EpochFeatures::NONE), Ok(7e6));
        lkg.reset();
        assert_eq!(
            lkg.try_predict(&EpochFeatures::NONE),
            Err(PredictError::InsufficientHistory)
        );
        assert_eq!(lkg.name(), "LKG");
    }

    #[test]
    fn fallback_reports_the_answering_tier() {
        let mut chain = Fallback::new(FbPredictor::default(), LastKnownGood::new());
        assert_eq!(chain.name(), "FB->LKG");
        // Probes present: the formula answers.
        let (_, tier) = chain.try_predict_tiered(&est().into()).unwrap();
        assert_eq!(tier, FallbackTier::Primary);
        // No probes, no history: both refuse, primary's error surfaces.
        assert_eq!(
            chain.try_predict(&EpochFeatures::NONE),
            Err(PredictError::MissingRtt)
        );
        // After a measurement, LKG catches the formula's refusal.
        chain.observe(&measured(5e6));
        assert_eq!(
            chain.try_predict_tiered(&EpochFeatures::NONE),
            Ok((5e6, FallbackTier::Fallback))
        );
    }

    #[test]
    fn fallback_three_tier_chain_degrades_rung_by_rung() {
        let mut chain = Fallback::new(
            FbPredictor::default(),
            Fallback::new(MovingAverage::new(2), LastKnownGood::new()),
        );
        assert_eq!(chain.name(), "FB->2-MA->LKG");
        chain.observe(&measured(4e6));
        // Tier 1 with probes.
        let (_, tier) = chain.try_predict_tiered(&est().into()).unwrap();
        assert_eq!(tier, FallbackTier::Primary);
        // Tier 2 without probes (MA answers; LKG is shadowed).
        assert_eq!(
            chain.try_predict_tiered(&EpochFeatures::NONE),
            Ok((4e6, FallbackTier::Fallback))
        );
    }

    #[test]
    fn fallback_forwards_observations_to_both_tiers() {
        let mut chain = Fallback::new(MovingAverage::new(1), LastKnownGood::new());
        chain.update(3e6);
        // Both tiers saw the sample: compare against fresh singles.
        assert_eq!(chain.primary.forecast(), Some(3e6));
        assert_eq!(chain.fallback.forecast(), Some(3e6));
    }

    #[test]
    fn fallback_gap_is_a_noop_and_reset_clears_both() {
        let mut chain = Fallback::new(MovingAverage::new(1), LastKnownGood::new());
        chain.update(3e6);
        assert_eq!(chain.observe(&EpochObservation::GAP), Update::Skipped);
        assert_eq!(chain.forecast(), Some(3e6));
        chain.reset();
        assert_eq!(chain.forecast(), None);
    }

    #[test]
    fn staleness_refuses_after_max_age_unmeasured_epochs() {
        let mut guard = Staleness::new(LastKnownGood::new(), 2);
        assert_eq!(guard.name(), "stale2-LKG");
        // Before any measurement: defer to the inner predictor.
        assert_eq!(
            guard.try_predict(&EpochFeatures::NONE),
            Err(PredictError::InsufficientHistory)
        );
        guard.observe(&measured(5e6));
        assert_eq!(guard.age(), Some(0));
        assert_eq!(guard.try_predict(&EpochFeatures::NONE), Ok(5e6));
        guard.observe(&unmeasured());
        assert_eq!(guard.try_predict(&EpochFeatures::NONE), Ok(5e6));
        guard.observe(&unmeasured());
        assert_eq!(guard.age(), Some(2));
        assert_eq!(
            guard.try_predict(&EpochFeatures::NONE),
            Err(PredictError::Stale)
        );
        // A fresh measurement revives it.
        guard.observe(&measured(6e6));
        assert_eq!(guard.try_predict(&EpochFeatures::NONE), Ok(6e6));
    }

    #[test]
    fn staleness_gaps_do_not_age_the_guard() {
        let mut guard = Staleness::new(LastKnownGood::new(), 1);
        guard.observe(&measured(5e6));
        for _ in 0..10 {
            assert_eq!(guard.observe(&EpochObservation::GAP), Update::Skipped);
        }
        assert_eq!(guard.age(), Some(0));
        assert_eq!(guard.try_predict(&EpochFeatures::NONE), Ok(5e6));
        guard.reset();
        assert_eq!(guard.age(), None);
    }

    #[test]
    fn breaker_walks_the_full_state_machine() {
        // MA(1) refuses until it has one sample: drive refusals with
        // unmeasured epochs, then revive with a measured one.
        let mut breaker = CircuitBreaker::new(MovingAverage::new(1), 2, 2);
        assert_eq!(breaker.name(), "breaker2-1-MA");
        assert_eq!(breaker.state(), BreakerState::Closed);

        // Two consecutive refusals trip it.
        breaker.observe(&unmeasured());
        assert_eq!(breaker.state(), BreakerState::Closed);
        breaker.observe(&unmeasured());
        assert_eq!(breaker.state(), BreakerState::Open);
        assert_eq!(
            breaker.try_predict(&EpochFeatures::NONE),
            Err(PredictError::CircuitOpen)
        );

        // Cooldown of 2: one epoch still open, the next goes half-open.
        breaker.observe(&unmeasured());
        assert_eq!(breaker.state(), BreakerState::Open);
        breaker.observe(&unmeasured());
        assert_eq!(breaker.state(), BreakerState::HalfOpen);

        // Half-open probe refuses (MA still empty): re-open.
        breaker.observe(&unmeasured());
        assert_eq!(breaker.state(), BreakerState::Open);

        // Cooldown again, then a successful probe closes it. The probe
        // epoch's measurement also feeds the MA *after* the probe, so
        // the closing decision uses pre-epoch state.
        breaker.observe(&unmeasured());
        breaker.observe(&unmeasured());
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        breaker.observe(&measured(5e6)); // probe still refuses: MA empty pre-epoch
        assert_eq!(breaker.state(), BreakerState::Open);
        breaker.observe(&unmeasured());
        breaker.observe(&unmeasured());
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        breaker.observe(&unmeasured()); // probe answers now: MA holds 5e6
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert_eq!(breaker.try_predict(&EpochFeatures::NONE), Ok(5e6));
    }

    #[test]
    fn breaker_success_resets_the_refusal_streak() {
        let mut breaker = CircuitBreaker::new(LastKnownGood::new(), 2, 1);
        breaker.observe(&unmeasured()); // refusal 1
        breaker.observe(&measured(5e6)); // refusal 2? No: LKG still empty pre-epoch.
        assert_eq!(breaker.state(), BreakerState::Open);
        // With history, one refusal then a success keeps it closed.
        breaker.reset();
        breaker.observe(&measured(5e6)); // refusal (empty pre-epoch): streak 1
        breaker.observe(&unmeasured()); // answers from history: streak 0
        breaker.observe(&unmeasured()); // answers: still closed
        assert_eq!(breaker.state(), BreakerState::Closed);
    }

    #[test]
    fn breaker_gaps_freeze_every_clock() {
        let mut breaker = CircuitBreaker::new(MovingAverage::new(1), 1, 3);
        breaker.observe(&unmeasured());
        assert_eq!(breaker.state(), BreakerState::Open);
        for _ in 0..10 {
            assert_eq!(breaker.observe(&EpochObservation::GAP), Update::Skipped);
        }
        // Ten gaps later the cooldown has not moved.
        assert_eq!(breaker.state(), BreakerState::Open);
        breaker.observe(&EpochObservation::sample(5e6));
        breaker.observe(&EpochObservation::GAP);
        breaker.observe(&EpochObservation::sample(5e6));
        assert_eq!(breaker.state(), BreakerState::Open, "cooldown 3: one left");
        breaker.observe(&EpochObservation::sample(5e6));
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn breaker_try_predict_never_mutates_state() {
        let breaker = CircuitBreaker::new(MovingAverage::new(1), 1, 1);
        for _ in 0..5 {
            let _ = breaker.try_predict(&EpochFeatures::NONE);
        }
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert_eq!(breaker.consecutive_refusals, 0);
    }

    #[test]
    fn knobs_are_floored_at_one() {
        let breaker = CircuitBreaker::new(MovingAverage::new(1), 0, 0);
        assert_eq!(breaker.trip_after, 1);
        assert_eq!(breaker.cooldown, 1);
        let guard = Staleness::new(LastKnownGood::new(), 0);
        assert_eq!(guard.max_age, 1);
        assert_eq!(guard.name(), "stale1-LKG");
    }

    #[test]
    fn policies_replay_bit_identically() {
        let build = || {
            CircuitBreaker::new(
                Staleness::new(
                    Fallback::new(FbPredictor::default(), LastKnownGood::new()),
                    3,
                ),
                2,
                2,
            )
        };
        let epochs = [
            measured(5e6),
            unmeasured(),
            EpochObservation::GAP,
            unmeasured(),
            measured(6e6),
            EpochObservation::GAP,
            unmeasured(),
            unmeasured(),
            unmeasured(),
            unmeasured(),
            measured(4e6),
        ];
        let (mut a, mut b) = (build(), build());
        for epoch in &epochs {
            assert_eq!(
                a.try_predict(&epoch.features),
                b.try_predict(&epoch.features)
            );
            assert_eq!(a.observe(epoch), b.observe(epoch));
            assert_eq!(a.state(), b.state());
        }
        assert_eq!(a.name(), "breaker2-stale3-FB->LKG");
    }

    #[test]
    fn partial_features_are_not_gaps() {
        // An epoch with any field present must advance policy clocks.
        let mut guard = Staleness::new(LastKnownGood::new(), 1);
        guard.observe(&measured(5e6));
        let probes_only = EpochObservation::new(
            EpochFeatures {
                probes: PartialEstimates {
                    rtt: Some(0.08),
                    loss_rate: None,
                    avail_bw: None,
                },
                rtt_cv: None,
            },
            None,
        );
        guard.observe(&probes_only);
        assert_eq!(
            guard.try_predict(&EpochFeatures::NONE),
            Err(PredictError::Stale)
        );
    }
}
