//! Property: evaluating any predictor family over a gappy *epoch*
//! stream is exactly the evaluation of the same stream with the empty
//! epochs removed — the epoch-level mirror of `gap_tolerance.rs`, over
//! full [`EpochObservation`]s instead of bare throughput series.
//!
//! An "empty" epoch here is one carrying neither probe features nor a
//! measured throughput (every tool faulted, DESIGN.md §10). The
//! contract covers the feature-driven families too: FB, smoothed FB,
//! the hybrid, and the three registry newcomers (regression,
//! conditional, RTT-CV-gated) must all treat a fully dark epoch as a
//! non-event — same forecasts bit for bit, same RMSRE, afterwards.
//!
//! The resilience policy combinators (DESIGN.md §13) are held to the
//! same law *twice*: the registry policy entries ride in `FAMILIES`,
//! and `policy_wrapped_families_stay_gap_tolerant` additionally wraps
//! *every* family in each combinator — a staleness age or breaker
//! cooldown that ticked on a gap would break stream equality here.

use proptest::prelude::*;
use tputpred_core::catalog::{predictor_by_name, BoxedPredictor};
use tputpred_core::fb::{FbConfig, PartialEstimates};
use tputpred_core::metrics::evaluate_epochs;
use tputpred_core::predictor::{EpochFeatures, EpochObservation};
use tputpred_core::resilience::{CircuitBreaker, Fallback, LastKnownGood, Staleness};

/// Every family the league table runs, via the registry.
const FAMILIES: &[&str] = &[
    "FB",
    "FB-smoothed",
    "10-MA",
    "0.8-EWMA",
    "0.8-HW",
    "AR(2)",
    "10-MA-LSO",
    "0.8-HW-LSO",
    "hybrid",
    "regression",
    "conditional",
    "rtt-cv-gated",
    "LKG",
    "FB->0.8-HW-LSO->LKG",
    "stale3-0.8-HW-LSO",
    "breaker3-FB",
    "breaker2-0.8-HW",
];

/// Each resilience combinator around a registry family, exercising the
/// policy clocks with tight knobs (small age bound, hair-trigger
/// breaker) so refusal windows actually open inside short streams.
fn policy_wrapped(name: &str) -> [BoxedPredictor; 3] {
    [
        Box::new(Fallback::new(by_name(name), LastKnownGood::new())),
        Box::new(Staleness::new(by_name(name), 3)),
        Box::new(CircuitBreaker::new(by_name(name), 2, 3)),
    ]
}

fn by_name(name: &str) -> BoxedPredictor {
    predictor_by_name(name, &FbConfig::default())
        .unwrap_or_else(|| panic!("{name} not in the registry"))
}

/// One synthetic epoch: probe features and throughput each present or
/// absent by the bits of `mask`; `gap_sel == 0` forces a fully dark
/// epoch regardless (about 1-in-6 of slots).
fn epoch(
    (rtt_s, loss, abw_bps, tput_bps): (f64, f64, f64, f64),
    mask: u8,
    gap_sel: u8,
) -> EpochObservation {
    if gap_sel == 0 {
        return EpochObservation::GAP;
    }
    EpochObservation::new(
        EpochFeatures {
            probes: PartialEstimates {
                rtt: (mask & 1 != 0).then_some(rtt_s),
                loss_rate: (mask & 2 != 0).then_some(loss),
                avail_bw: (mask & 4 != 0).then_some(abw_bps),
            },
            rtt_cv: None,
        },
        (mask & 8 != 0).then_some(tput_bps),
    )
}

fn epoch_stream() -> impl Strategy<Value = Vec<EpochObservation>> {
    prop::collection::vec(
        (
            (0.005..0.5f64, 0.0..0.1f64, 1e5..1e8f64, 1e3..1e8f64),
            0u8..16,
            0u8..6,
        ),
        0..60,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(vals, mask, gap_sel)| epoch(vals, mask, gap_sel))
            .collect()
    })
}

proptest! {
    #[test]
    fn gappy_epochs_equal_the_compacted_stream(epochs in epoch_stream()) {
        let compact: Vec<EpochObservation> = epochs
            .iter()
            .copied()
            .filter(|e| *e != EpochObservation::GAP)
            .collect();
        for name in FAMILIES {
            let mut on_gappy = by_name(name);
            let mut on_compact = by_name(name);
            let g = evaluate_epochs(&mut on_gappy, &epochs);
            let c = evaluate_epochs(&mut on_compact, &compact);

            // Same scores — exact equality: the same arithmetic must run
            // in the same order on both streams.
            prop_assert_eq!(g.rmsre(), c.rmsre(), "{}: rmsre diverged", name);

            // Forecasts at non-empty slots are the compact forecasts bit
            // for bit (empty slots may still get a forecast from
            // history-backed families; state, not output, is the
            // invariant there).
            let g_preds: Vec<Option<f64>> = epochs
                .iter()
                .zip(&g.predictions)
                .filter(|(e, _)| **e != EpochObservation::GAP)
                .map(|(_, &p)| p)
                .collect();
            prop_assert_eq!(&g_preds, &c.predictions, "{}: forecasts diverged", name);

            // Event positions index non-empty epochs of the gappy stream.
            for &i in g.outliers.iter().chain(&g.level_shifts) {
                prop_assert!(epochs[i] != EpochObservation::GAP, "{}: event at a gap", name);
            }
            prop_assert_eq!(g.outliers.len(), c.outliers.len(), "{}: outlier count", name);
            prop_assert_eq!(g.level_shifts.len(), c.level_shifts.len(), "{}: shift count", name);
        }
    }

    #[test]
    fn policy_wrapped_families_stay_gap_tolerant(epochs in epoch_stream()) {
        let compact: Vec<EpochObservation> = epochs
            .iter()
            .copied()
            .filter(|e| *e != EpochObservation::GAP)
            .collect();
        for name in FAMILIES {
            for (mut on_gappy, mut on_compact) in
                policy_wrapped(name).into_iter().zip(policy_wrapped(name))
            {
                let label = on_gappy.name().to_string();
                let g = evaluate_epochs(&mut on_gappy, &epochs);
                let c = evaluate_epochs(&mut on_compact, &compact);
                prop_assert_eq!(g.rmsre(), c.rmsre(), "{}: rmsre diverged", label);
                let g_preds: Vec<Option<f64>> = epochs
                    .iter()
                    .zip(&g.predictions)
                    .filter(|(e, _)| **e != EpochObservation::GAP)
                    .map(|(_, &p)| p)
                    .collect();
                prop_assert_eq!(&g_preds, &c.predictions, "{}: forecasts diverged", label);
            }
        }
    }

    #[test]
    fn policy_wrapped_families_replay_bit_identically(epochs in epoch_stream()) {
        for name in FAMILIES {
            for (mut first, mut second) in
                policy_wrapped(name).into_iter().zip(policy_wrapped(name))
            {
                let label = first.name().to_string();
                let a = evaluate_epochs(&mut first, &epochs);
                let b = evaluate_epochs(&mut second, &epochs);
                prop_assert_eq!(&a.predictions, &b.predictions, "{}: replay diverged", label);
                prop_assert_eq!(&a.errors, &b.errors, "{}: errors diverged", label);
                prop_assert_eq!(&a.outliers, &b.outliers, "{}: outliers diverged", label);
                prop_assert_eq!(
                    &a.level_shifts, &b.level_shifts,
                    "{}: shifts diverged", label
                );
            }
        }
    }

    #[test]
    fn all_dark_streams_score_nothing(len in 0usize..30) {
        let epochs = vec![EpochObservation::GAP; len];
        for name in FAMILIES {
            let mut p = by_name(name);
            let r = evaluate_epochs(&mut p, &epochs);
            prop_assert_eq!(r.rmsre(), None, "{}: scored a dark stream", name);
            prop_assert!(
                r.errors.iter().all(Option::is_none),
                "{}: error on a dark epoch", name
            );
        }
    }
}
