//! Property: HB evaluation over a gappy series is *exactly* the dense
//! evaluation of the same series with the gaps removed — a missing epoch
//! never perturbs the predictor's state, only the positions reported for
//! outliers and level shifts (which index the gappy series).
//!
//! This is the graceful-degradation contract of `evaluate_gappy`
//! (DESIGN.md §10): node outages thin the history, they do not reset it
//! or masquerade as level shifts.

use proptest::prelude::*;
use tputpred_core::hb::{Ewma, HoltWinters, MovingAverage, Predictor};
use tputpred_core::lso::Lso;
use tputpred_core::metrics::{evaluate, evaluate_gappy};

/// Positive throughput-like series with `None` gaps sprinkled in.
///
/// Drawn as `(value, tag)` pairs — a tag of 0 (1-in-4) turns the slot
/// into a gap — because the vendored proptest stub has no `prop_oneof!`.
fn gappy_series() -> impl Strategy<Value = Vec<Option<f64>>> {
    prop::collection::vec((1e3..1e8f64, 0u8..4), 0..80).prop_map(|v| {
        v.into_iter()
            .map(|(x, tag)| (tag > 0).then_some(x))
            .collect()
    })
}

fn predictors() -> Vec<(&'static str, Box<dyn Predictor + Send>)> {
    vec![
        ("1-MA", Box::new(MovingAverage::new(1))),
        ("10-MA", Box::new(MovingAverage::new(10))),
        ("0.8-EWMA", Box::new(Ewma::new(0.8))),
        ("0.8-HW-LSO", Box::new(Lso::new(HoltWinters::new(0.8, 0.2)))),
    ]
}

proptest! {
    #[test]
    fn gappy_eval_equals_dense_eval_of_the_compacted_series(series in gappy_series()) {
        let dense: Vec<f64> = series.iter().filter_map(|&x| x).collect();
        for (name, _) in predictors() {
            let mut on_gappy = predictors()
                .into_iter()
                .find(|(n, _)| *n == name)
                .map(|(_, p)| p)
                .unwrap();
            let mut on_dense = predictors()
                .into_iter()
                .find(|(n, _)| *n == name)
                .map(|(_, p)| p)
                .unwrap();
            let g = evaluate_gappy(&mut on_gappy, &series);
            let d = evaluate(&mut on_dense, &dense);

            // Identical scores — exact equality, not tolerance: the same
            // arithmetic must run in the same order.
            prop_assert_eq!(g.rmsre(), d.rmsre(), "{}: rmsre diverged", name);

            // The gappy result's predictions, with gaps dropped, are the
            // dense predictions bit for bit.
            let g_preds: Vec<Option<f64>> = series
                .iter()
                .zip(&g.predictions)
                .filter(|(x, _)| x.is_some())
                .map(|(_, &p)| p)
                .collect();
            prop_assert_eq!(&g_preds, &d.predictions, "{}: predictions diverged", name);

            // Event positions map through: every reported event indexes a
            // non-gap slot of the gappy series.
            for &i in g.outliers.iter().chain(&g.level_shifts) {
                prop_assert!(series[i].is_some(), "{}: event at a gap", name);
            }
            prop_assert_eq!(g.outliers.len(), d.outliers.len());
            prop_assert_eq!(g.level_shifts.len(), d.level_shifts.len());
        }
    }

    #[test]
    fn all_gaps_yields_the_empty_evaluation(len in 0usize..30) {
        let series = vec![None; len];
        let mut p = Lso::new(HoltWinters::new(0.8, 0.2));
        let r = evaluate_gappy(&mut p, &series);
        prop_assert_eq!(r.rmsre(), None);
        prop_assert!(r.predictions.iter().all(Option::is_none));
    }
}
