//! The rule registry and the built-in rules.
//!
//! The original rules are token/line-level checks over
//! [`ClassifiedLine`]s — cheap, dependency-free, and aimed at the
//! invariants DESIGN.md records in prose: determinism, panic-free
//! degradation, unit discipline, float comparisons, and rustdoc
//! citation escaping. The semantic rules (`unit-flow`,
//! `wall-clock-reach`, `hot-path-alloc`) live in their own modules on
//! top of [`crate::model`] and register here alongside them. Each rule
//! documents exactly what it matches so a `lint:allow` reviewer can
//! judge a suppression.

use crate::classify::ClassifiedLine;
use crate::diag::Diagnostic;
use std::path::Path;

/// A registered rule.
pub struct Rule {
    /// Stable name used in diagnostics and `lint:allow(...)`.
    pub name: &'static str,
    /// One-line description for `xtask rules`.
    pub summary: &'static str,
    /// Whether the rule applies to a given workspace-relative path.
    pub applies: fn(&Path) -> bool,
    /// The check itself. For workspace rules this is the *single-file*
    /// fallback used when the CLI is pointed at explicit paths.
    pub check: fn(&Path, &[ClassifiedLine]) -> Vec<Diagnostic>,
    /// Workspace rules need every file at once (the call graph); in
    /// `check_workspace` they run as one cross-file pass instead of
    /// per file.
    pub workspace: bool,
}

/// All rules, in reporting order.
pub fn registry() -> Vec<Rule> {
    vec![
        Rule {
            name: "nondeterminism",
            summary: "forbid wall clocks, entropy-seeded RNGs, and hash-order iteration \
                      in simulation crates",
            applies: in_simulation_crates,
            check: check_nondeterminism,
            workspace: false,
        },
        Rule {
            name: "units",
            summary: "unit-suffixed identifiers in library code must use the canonical \
                      suffixes (_bps, _s, _ns, _bytes) and not mix units across +/-",
            applies: in_library_sources,
            check: check_units,
            workspace: false,
        },
        Rule {
            name: "unit-flow",
            summary: "unit-dimension dataflow: lets, assignments, returns, and additive \
                      arithmetic must not mix _s/_ns/_bps/_bytes dimensions",
            applies: in_library_sources,
            check: crate::unit_flow::check,
            workspace: false,
        },
        Rule {
            name: "no-unwrap",
            summary: "no .unwrap()/.expect() in non-test simulation-crate code; degrade \
                      via Option/Result instead of panicking on faulty measurements",
            applies: in_simulation_crates,
            check: check_no_unwrap,
            workspace: false,
        },
        Rule {
            name: "wall-clock-reach",
            summary: "pub simulation fns must not reach wall clocks, OS entropy, threads, \
                      or env reads through the call graph; obs is the one gateway",
            applies: in_simulation_crates,
            check: check_wall_clock_reach_single,
            workspace: true,
        },
        Rule {
            name: "hot-path-alloc",
            summary: "no heap allocation (format!/vec!, Vec::new, .collect, container \
                      growth) inside fns tagged // lint:hot-path",
            applies: all_rust_sources,
            check: crate::hot_path::check,
            workspace: false,
        },
        Rule {
            name: "float-eq",
            summary: "no ==/!= against float literals; compare with a tolerance",
            applies: all_rust_sources,
            check: check_float_eq,
            workspace: false,
        },
        Rule {
            name: "rustdoc-citation",
            summary: "citation brackets like [26] in doc comments must be escaped \\[26\\]",
            applies: all_rust_sources,
            check: check_rustdoc_citation,
            workspace: false,
        },
    ]
}

/// Single-file fallback for `wall-clock-reach`: direct sinks and
/// intra-file chains only. When the file lies outside the simulation
/// crates (a fixture named on the CLI), every pub fn is a root.
fn check_wall_clock_reach_single(path: &Path, lines: &[ClassifiedLine]) -> Vec<Diagnostic> {
    let fm = crate::model::FileModel::build(path, lines);
    let force = !crate::graph::in_simulation_src(path);
    crate::graph::check(std::slice::from_ref(&fm), force)
}

fn all_rust_sources(_: &Path) -> bool {
    true
}

/// Library code: `crates/*/src/**` excluding `src/bin/`. Figure
/// generators, tests, benches, and examples speak the paper's axis
/// units (ms, Mbps, KB grids) by design; the canonical-suffix contract
/// binds the code that computes, not the code that presents.
fn in_library_sources(path: &Path) -> bool {
    let p = path.to_string_lossy().replace('\\', "/");
    p.contains("/src/") && !p.contains("/src/bin/") && p.starts_with("crates/")
}

/// The crates whose behavior feeds simulation results. A wall clock or
/// hash-order walk anywhere in them can change a dataset between runs.
fn in_simulation_crates(path: &Path) -> bool {
    let p = path.to_string_lossy();
    ["netsim", "tcp", "probes", "testbed", "core"]
        .iter()
        .any(|c| {
            p.contains(&format!("crates/{c}/src/")) || p.contains(&format!("crates/{c}\\src\\"))
        })
}

/// Iterator over `(line_idx, col, ident)` for every identifier-shaped
/// token in the code channel.
fn idents(lines: &[ClassifiedLine]) -> impl Iterator<Item = (usize, usize, &str)> {
    lines.iter().enumerate().flat_map(|(li, cl)| {
        IdentIter {
            line: &cl.code,
            pos: 0,
        }
        .map(move |(col, id)| (li, col, id))
    })
}

struct IdentIter<'a> {
    line: &'a str,
    pos: usize,
}

impl<'a> Iterator for IdentIter<'a> {
    type Item = (usize, &'a str);
    fn next(&mut self) -> Option<(usize, &'a str)> {
        let bytes = self.line.as_bytes();
        while self.pos < bytes.len() {
            let b = bytes[self.pos];
            if b.is_ascii_alphabetic() || b == b'_' {
                let start = self.pos;
                while self.pos < bytes.len()
                    && (bytes[self.pos].is_ascii_alphanumeric() || bytes[self.pos] == b'_')
                {
                    self.pos += 1;
                }
                return Some((start, &self.line[start..self.pos]));
            }
            // Skip numbers wholesale so `1e6` doesn't yield ident `e6`.
            if b.is_ascii_digit() {
                while self.pos < bytes.len()
                    && (bytes[self.pos].is_ascii_alphanumeric()
                        || bytes[self.pos] == b'.'
                        || bytes[self.pos] == b'_')
                {
                    self.pos += 1;
                }
                continue;
            }
            self.pos += 1;
        }
        None
    }
}

// --- nondeterminism -----------------------------------------------------

/// Identifiers that introduce wall-clock time, OS entropy, or
/// hash-order iteration into simulation code.
const FORBIDDEN_IDENTS: &[(&str, &str)] = &[
    (
        "Instant",
        "wall-clock time; simulations must use netsim::Time",
    ),
    (
        "SystemTime",
        "wall-clock time; simulations must use netsim::Time",
    ),
    (
        "thread_rng",
        "entropy-seeded RNG; use StdRng::seed_from_u64",
    ),
    (
        "from_entropy",
        "entropy-seeded RNG; use StdRng::seed_from_u64",
    ),
    (
        "from_os_rng",
        "entropy-seeded RNG; use StdRng::seed_from_u64",
    ),
    ("random_os", "entropy-seeded RNG; use StdRng::seed_from_u64"),
    (
        "HashMap",
        "iteration order varies between runs; use BTreeMap or sort before iterating",
    ),
    (
        "HashSet",
        "iteration order varies between runs; use BTreeSet or sort before iterating",
    ),
];

fn check_nondeterminism(file: &Path, lines: &[ClassifiedLine]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (li, col, id) in idents(lines) {
        if let Some((_, why)) = FORBIDDEN_IDENTS.iter().find(|(w, _)| *w == id) {
            out.push(Diagnostic::error(
                file.to_path_buf(),
                li + 1,
                col + 1,
                "nondeterminism",
                format!("forbidden identifier `{id}`: {why}"),
            ));
        }
    }
    out
}

// --- no-unwrap ----------------------------------------------------------

/// Flags `unwrap(` / `expect(` calls in simulation-crate code outside
/// the trailing `#[cfg(test)]` module. A panic in the measurement
/// pipeline turns one faulty epoch into a lost dataset; degraded
/// measurements must flow out as `Option`/`Result` (DESIGN.md §10).
/// Longer idents (`unwrap_or`, `unwrap_or_default`, `expect_err`) are
/// the approved alternatives and do not match.
fn check_no_unwrap(file: &Path, lines: &[ClassifiedLine]) -> Vec<Diagnostic> {
    // Test modules live at the bottom of each file in this codebase;
    // everything from the first `#[cfg(test)]` attribute on is test code,
    // where panicking on broken expectations is the point.
    let test_start = lines
        .iter()
        .position(|cl| cl.code.contains("#[cfg(test)]"))
        .unwrap_or(lines.len());
    let mut out = Vec::new();
    for (li, col, id) in idents(&lines[..test_start]) {
        if id != "unwrap" && id != "expect" {
            continue;
        }
        let rest = lines[li].code[col + id.len()..].trim_start();
        if !rest.starts_with('(') {
            continue; // e.g. a path like `Option::unwrap` in a turbofish-free ref
        }
        out.push(Diagnostic::error(
            file.to_path_buf(),
            li + 1,
            col + 1,
            "no-unwrap",
            format!(
                "`.{id}()` in simulation code; propagate the absence \
                 (Option/Result, unwrap_or*) so faulty measurements degrade \
                 instead of panicking"
            ),
        ));
    }
    out
}

// --- units --------------------------------------------------------------

/// Canonical unit suffix classes: same-class identifiers may be added or
/// subtracted, cross-class may not.
fn unit_class(ident: &str) -> Option<&'static str> {
    let suffix = ident.rsplit('_').next()?;
    if suffix.len() == ident.len() {
        return None; // no underscore, no suffix
    }
    match suffix {
        "bps" => Some("bandwidth"),
        "s" | "ns" => Some("time"),
        "bytes" => Some("size"),
        _ => None,
    }
}

/// Suffixes that look like units but are not the canonical ones.
fn noncanonical_unit(ident: &str) -> Option<&'static str> {
    let suffix = ident.rsplit('_').next()?;
    if suffix.len() == ident.len() {
        return None;
    }
    match suffix {
        "kbps" | "mbps" | "gbps" => {
            Some("bandwidth is always bits/s; use a `_bps` identifier and scale the value")
        }
        "ms" | "us" | "usec" | "msec" => {
            Some("time is seconds (`_s`) or netsim::Time nanoseconds (`_ns`)")
        }
        "kb" | "mb" | "gb" | "kib" | "mib" => Some("sizes are bytes; use `_bytes`"),
        _ => None,
    }
}

fn check_units(file: &Path, lines: &[ClassifiedLine]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (li, cl) in lines.iter().enumerate() {
        let mut toks: Vec<(usize, &str)> = Vec::new();
        let it = IdentIter {
            line: &cl.code,
            pos: 0,
        };
        for (col, id) in it {
            if let Some(reason) = noncanonical_unit(id) {
                out.push(Diagnostic::error(
                    file.to_path_buf(),
                    li + 1,
                    col + 1,
                    "units",
                    format!("non-canonical unit suffix on `{id}`: {reason}"),
                ));
            }
            toks.push((col, id));
        }
        // Mixed-unit addition/subtraction: `a_bps + b_s` style. Only the
        // immediate ident-op-ident pattern is checked; anything subtler
        // needs a human (or an allowlist with a reason).
        for pair in toks.windows(2) {
            let (c1, id1) = pair[0];
            let (c2, id2) = pair[1];
            let (Some(u1), Some(u2)) = (unit_class(id1), unit_class(id2)) else {
                continue;
            };
            if u1 == u2 {
                continue;
            }
            let between = &cl.code[c1 + id1.len()..c2];
            let trimmed = between.trim();
            if trimmed == "+" || trimmed == "-" || trimmed == "+=" || trimmed == "-=" {
                out.push(Diagnostic::error(
                    file.to_path_buf(),
                    li + 1,
                    c1 + 1,
                    "units",
                    format!(
                        "`{id1}` ({u1}) and `{id2}` ({u2}) mixed across `{trimmed}`; \
                         additive arithmetic requires matching units"
                    ),
                ));
            }
        }
    }
    out
}

// --- float-eq -----------------------------------------------------------

fn is_float_literal(tok: &str) -> bool {
    let t = tok
        .trim_end_matches("f64")
        .trim_end_matches("f32")
        .trim_end_matches('_');
    if t.is_empty() {
        return false;
    }
    let mut has_digit = false;
    let mut has_marker = false;
    for (i, c) in t.char_indices() {
        match c {
            '0'..='9' => has_digit = true,
            '.' => has_marker = true,
            'e' | 'E' if i > 0 => has_marker = true,
            '+' | '-' | '_' => {}
            _ => return false,
        }
    }
    has_digit && (has_marker || tok.ends_with("f64") || tok.ends_with("f32"))
}

/// The token (non-space run) immediately left of byte `pos`.
fn token_left(line: &str, pos: usize) -> &str {
    let left = line[..pos].trim_end();
    let start = left
        .rfind(|c: char| {
            !(c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-' || c == '+')
        })
        .map(|i| i + 1)
        .unwrap_or(0);
    &left[start..]
}

/// The token immediately right of byte `pos`.
fn token_right(line: &str, pos: usize) -> &str {
    let right = line[pos..].trim_start();
    let end = right
        .find(|c: char| {
            !(c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-' || c == '+')
        })
        .unwrap_or(right.len());
    &right[..end]
}

fn check_float_eq(file: &Path, lines: &[ClassifiedLine]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (li, cl) in lines.iter().enumerate() {
        let code = &cl.code;
        let bytes = code.as_bytes();
        let mut i = 0;
        while i + 1 < bytes.len() {
            let two = &code[i..i + 2];
            if two != "==" && two != "!=" {
                i += 1;
                continue;
            }
            // Skip `===`? Not Rust. Skip `<=`, `>=`: the second byte of
            // those is not at an `==` start. Skip `!=`/`==` inside
            // longer operators is impossible in Rust.
            let lhs = token_left(code, i);
            let rhs = token_right(code, i + 2);
            if is_float_literal(lhs) || is_float_literal(rhs) {
                let lit = if is_float_literal(lhs) { lhs } else { rhs };
                out.push(Diagnostic::error(
                    file.to_path_buf(),
                    li + 1,
                    i + 1,
                    "float-eq",
                    format!(
                        "`{two}` against float literal `{lit}`; compare with a tolerance \
                         or justify exactness"
                    ),
                ));
            }
            i += 2;
        }
    }
    out
}

// --- rustdoc-citation ---------------------------------------------------

fn check_rustdoc_citation(file: &Path, lines: &[ClassifiedLine]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for (li, cl) in lines.iter().enumerate() {
        let doc = &cl.doc;
        if doc.trim().is_empty() {
            continue;
        }
        if doc.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        // Blank out inline code spans: `[26]` inside backticks is fine.
        let mut cleaned: Vec<u8> = doc.bytes().collect();
        let mut open: Option<usize> = None;
        for j in 0..cleaned.len() {
            if cleaned[j] == b'`' {
                match open {
                    None => open = Some(j),
                    Some(s) => {
                        for c in &mut cleaned[s..=j] {
                            *c = b' ';
                        }
                        open = None;
                    }
                }
            }
        }
        let cleaned = String::from_utf8_lossy(&cleaned).into_owned();
        let bytes = cleaned.as_bytes();
        for (j, &b) in bytes.iter().enumerate() {
            if b != b'[' {
                continue;
            }
            if j > 0 && bytes[j - 1] == b'\\' {
                continue; // escaped
            }
            let rest = &bytes[j + 1..];
            let digits = rest.iter().take_while(|c| c.is_ascii_digit()).count();
            if digits == 0 || rest.get(digits) != Some(&b']') {
                continue;
            }
            // `[26](...)` is a real markdown link; leave it alone.
            if rest.get(digits + 1) == Some(&b'(') {
                continue;
            }
            out.push(Diagnostic::error(
                file.to_path_buf(),
                li + 1,
                j + 1,
                "rustdoc-citation",
                format!(
                    "unescaped citation `{}` in doc comment; rustdoc reads it as an \
                     intra-doc link — write `\\{}`",
                    &cleaned[j..j + digits + 2],
                    &cleaned[j..j + digits + 2],
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;

    fn run(rule_name: &str, src: &str) -> Vec<Diagnostic> {
        let rules = registry();
        let rule = rules.iter().find(|r| r.name == rule_name).unwrap();
        let lines = classify(src);
        (rule.check)(Path::new("crates/netsim/src/test.rs"), &lines)
    }

    #[test]
    fn nondeterminism_catches_each_forbidden_ident() {
        for (ident, _) in FORBIDDEN_IDENTS {
            let src = format!("let x = {ident}::anything();");
            let out = run("nondeterminism", &src);
            assert_eq!(out.len(), 1, "{ident}");
            assert!(out[0].message.contains(ident));
        }
    }

    #[test]
    fn nondeterminism_ignores_strings_comments_and_substrings() {
        assert!(run("nondeterminism", r#"let s = "Instant::now";"#).is_empty());
        assert!(run("nondeterminism", "// Instant::now in prose").is_empty());
        assert!(run("nondeterminism", "let my_instant_like = 1;").is_empty());
        assert!(run("nondeterminism", "let instantaneous = 1;").is_empty());
    }

    #[test]
    fn nondeterminism_scope_is_simulation_crates() {
        let rules = registry();
        let rule = rules.iter().find(|r| r.name == "nondeterminism").unwrap();
        assert!((rule.applies)(Path::new("crates/netsim/src/engine.rs")));
        assert!((rule.applies)(Path::new("crates/testbed/src/runner.rs")));
        assert!(!(rule.applies)(Path::new("crates/stats/src/cdf.rs")));
        assert!(!(rule.applies)(Path::new("crates/xtask/src/rules.rs")));
        assert!(!(rule.applies)(Path::new(
            "crates/netsim/tests/invariants.rs"
        )));
    }

    #[test]
    fn no_unwrap_flags_unwrap_and_expect_calls() {
        let out = run("no-unwrap", "let x = maybe.unwrap();");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("unwrap"));
        assert_eq!(
            run("no-unwrap", r#"let x = maybe.expect("set above");"#).len(),
            1
        );
    }

    #[test]
    fn no_unwrap_ignores_the_approved_alternatives() {
        assert!(run("no-unwrap", "let x = maybe.unwrap_or(0.0);").is_empty());
        assert!(run("no-unwrap", "let x = maybe.unwrap_or_default();").is_empty());
        assert!(run("no-unwrap", "let x = maybe.unwrap_or_else(|| 1);").is_empty());
        assert!(run("no-unwrap", "let e = res.expect_err(\"bad\");").is_empty());
        assert!(run("no-unwrap", "// unwrap() discussed in prose").is_empty());
        assert!(run("no-unwrap", r#"let s = "unwrap()";"#).is_empty());
    }

    #[test]
    fn no_unwrap_exempts_trailing_test_modules() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
                   #[cfg(test)]\n\
                   mod tests {\n    fn g() { None::<u8>.unwrap(); }\n}\n";
        let out = run("no-unwrap", src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn no_unwrap_scope_is_simulation_crates() {
        let rules = registry();
        let rule = rules.iter().find(|r| r.name == "no-unwrap").unwrap();
        assert!((rule.applies)(Path::new("crates/testbed/src/runner.rs")));
        assert!((rule.applies)(Path::new("crates/core/src/fb.rs")));
        assert!(!(rule.applies)(Path::new("crates/bench/src/analysis.rs")));
        assert!(!(rule.applies)(Path::new("crates/stats/src/cdf.rs")));
        assert!(!(rule.applies)(Path::new(
            "crates/testbed/tests/zero_fault_pin.rs"
        )));
    }

    #[test]
    fn units_scope_is_library_code() {
        let rules = registry();
        let rule = rules.iter().find(|r| r.name == "units").unwrap();
        assert!((rule.applies)(Path::new("crates/netsim/src/engine.rs")));
        assert!((rule.applies)(Path::new("crates/stats/src/corr.rs")));
        assert!(!(rule.applies)(Path::new(
            "crates/bench/src/bin/abl_nws.rs"
        )));
        assert!(!(rule.applies)(Path::new(
            "crates/tcp/tests/tcp_properties.rs"
        )));
        assert!(!(rule.applies)(Path::new("examples/parallel_download.rs")));
        assert!(!(rule.applies)(Path::new("tests/properties.rs")));
    }

    #[test]
    fn units_flags_noncanonical_suffixes() {
        let out = run("units", "let rtt_ms = 5.0;");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("rtt_ms"));
        assert!(run("units", "let cap_mbps = 10.0;").len() == 1);
        assert!(run("units", "let buf_kb = 20;").len() == 1);
        assert!(run("units", "let rtt_s = 0.05; let cap_bps = 1e6;").is_empty());
    }

    #[test]
    fn units_flags_cross_class_additive_arithmetic() {
        let out = run("units", "let x = cap_bps + rtt_s;");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("bandwidth"));
        assert!(out[0].message.contains("time"));
        // Same class is fine; multiplicative mixing is fine.
        assert!(run("units", "let x = rtt_s + delay_s;").is_empty());
        assert!(run("units", "let x = cap_bps * rtt_s;").is_empty());
        assert!(run("units", "let bdp_bytes = cap_bps * rtt_s / 8.0;").is_empty());
    }

    #[test]
    fn units_ignores_unsuffixed_identifiers() {
        assert!(run("units", "let shifts = a + b; let stats = x - y;").is_empty());
    }

    #[test]
    fn float_eq_flags_literal_comparisons() {
        assert_eq!(run("float-eq", "if x == 0.0 { }").len(), 1);
        assert_eq!(run("float-eq", "if 1e-9 != tolerance { }").len(), 1);
        assert_eq!(run("float-eq", "if x == 1.5e3 { }").len(), 1);
        assert_eq!(run("float-eq", "if x == 3f64 { }").len(), 1);
    }

    #[test]
    fn float_eq_ignores_integers_and_ranges() {
        assert!(run("float-eq", "if x == 0 { }").is_empty());
        assert!(run("float-eq", "if n == count { }").is_empty());
        assert!(run("float-eq", "for i in 0..10 { }").is_empty());
        assert!(run("float-eq", "if a <= 1.0 { }").is_empty());
        assert!(run("float-eq", "assert_eq!(x, 0.5);").is_empty());
    }

    #[test]
    fn citation_flags_unescaped_brackets_only() {
        let out = run("rustdoc-citation", "/// As shown in [26], loss matters.");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("[26]"));
        assert!(run("rustdoc-citation", r"/// As shown in \[26\], loss matters.").is_empty());
        assert!(run("rustdoc-citation", "/// A [real](https://x) link [26](y).").is_empty());
        assert!(run("rustdoc-citation", "/// Inline `[26]` code span.").is_empty());
        assert!(run("rustdoc-citation", "// plain comment [26]").is_empty());
        assert!(run("rustdoc-citation", "let x = arr[26];").is_empty());
    }

    #[test]
    fn citation_skips_fenced_code_blocks() {
        let src = "/// Example:\n/// ```\n/// let x = arr[26];\n/// ```\n/// But [26] here fires.";
        let out = run("rustdoc-citation", src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 5);
    }
}
