//! `hot-path-alloc`: heap allocation inside `// lint:hot-path` fns.
//!
//! ROADMAP item 1 (the netsim hot-path overhaul) needs the per-event
//! and per-packet paths to stay allocation-free; this rule makes that
//! a checked property instead of a review note. A function opts in by
//! carrying a `// lint:hot-path` tag on its signature line or in the
//! attribute/comment run directly above it ([`crate::model`] resolves
//! the tag). Inside a tagged function the rule flags:
//!
//! * allocating macros (`format!`, `vec!`);
//! * constructors of owning containers (`Vec::new`, `Box::new`,
//!   `String::with_capacity`, `BinaryHeap::from`, ...);
//! * allocation-shaped adaptors (`.collect()`, `.to_string()`,
//!   `.to_vec()`, `.to_owned()`);
//! * growth calls (`.push`, `.push_back`, `.insert`, `.extend`,
//!   `.append`) on anything *except* a bare `self` receiver — a tagged
//!   engine method calling its own `self.push(...)` API is dispatch,
//!   not allocation, but `self.heap.push(...)` grows a container.
//!
//! Growth calls on retained-capacity containers are often fine in
//! steady state; that judgement is exactly what a justified
//! `lint:allow(hot-path-alloc)` records (DESIGN.md §8).

use crate::classify::ClassifiedLine;
use crate::diag::Diagnostic;
use crate::model::FileModel;
use std::path::Path;

/// Macros that allocate on every expansion.
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// Owning-container types whose constructors allocate (or arm an
/// allocation on first growth).
const ALLOC_TYPES: &[&str] = &[
    "Vec",
    "VecDeque",
    "String",
    "Box",
    "Rc",
    "Arc",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "HashMap",
    "HashSet",
];

/// Constructor names that pair with [`ALLOC_TYPES`].
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from"];

/// Method calls that materialize a new owned value.
const ALLOC_ADAPTORS: &[&str] = &["collect", "to_string", "to_vec", "to_owned"];

/// Method calls that grow a container (allocate when capacity is
/// exhausted).
const GROWTH_CALLS: &[&str] = &[
    "push",
    "push_back",
    "push_front",
    "insert",
    "extend",
    "append",
];

const HINT: &str = "hoist the allocation out of the hot path or reuse a retained buffer; \
                    a deliberate steady-state growth call needs a justified \
                    lint:allow(hot-path-alloc)";

/// Entry point: builds the file model and checks tagged functions.
pub fn check(path: &Path, lines: &[ClassifiedLine]) -> Vec<Diagnostic> {
    let fm = FileModel::build(path, lines);
    let mut out = Vec::new();
    for f in &fm.fns {
        if !f.hot_path || f.is_test {
            continue;
        }
        let diag = |line: usize, col: usize, what: String| {
            Diagnostic::error(
                fm.path.clone(),
                line,
                col,
                "hot-path-alloc",
                format!("{what} inside hot-path fn `{}`", f.qualified()),
            )
            .with_hint(HINT)
        };
        for m in &f.macros {
            if ALLOC_MACROS.contains(&m.name.as_str()) {
                out.push(diag(
                    m.line,
                    m.col,
                    format!("allocating macro `{}!`", m.name),
                ));
            }
        }
        for c in &f.calls {
            let name = c.name.as_str();
            if ALLOC_CTORS.contains(&name)
                && c.path
                    .last()
                    .map(|p| ALLOC_TYPES.contains(&p.as_str()))
                    .unwrap_or(false)
            {
                out.push(diag(
                    c.line,
                    c.col,
                    format!("allocating constructor `{}::{}`", c.path.join("::"), c.name),
                ));
                continue;
            }
            if !c.is_method {
                continue;
            }
            if ALLOC_ADAPTORS.contains(&name) {
                out.push(diag(
                    c.line,
                    c.col,
                    format!("allocating call `.{}()`", c.name),
                ));
                continue;
            }
            if GROWTH_CALLS.contains(&name) && c.receiver.as_deref() != Some("self") {
                out.push(diag(
                    c.line,
                    c.col,
                    format!("container growth call `.{}(..)`", c.name),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;

    fn run(src: &str) -> Vec<Diagnostic> {
        check(Path::new("crates/netsim/src/hp.rs"), &classify(src))
    }

    #[test]
    fn untagged_fns_are_never_checked() {
        let out = run("fn f() { let v = Vec::new(); format!(\"{v:?}\"); }\n");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn tagged_fn_flags_macros_ctors_and_adaptors() {
        let out = run(
            "// lint:hot-path\nfn f() {\n    let s = format!(\"x\");\n    \
             let v = Vec::new();\n    let w: Vec<u8> = it.collect();\n}\n",
        );
        let msgs: Vec<&str> = out.iter().map(|d| d.message.as_str()).collect();
        assert_eq!(out.len(), 3, "{msgs:?}");
        assert!(msgs[0].contains("`format!`"));
        assert!(msgs[1].contains("`Vec::new`"));
        assert!(msgs[2].contains("`.collect()`"));
        assert!(out.iter().all(|d| d.hint.is_some()));
    }

    #[test]
    fn self_api_calls_pass_but_field_growth_flags() {
        let out = run(
            "impl Sim {\n    // lint:hot-path\n    fn step(&mut self) {\n        \
             self.push(1);\n        self.heap.push(2);\n        q.push_back(3);\n    }\n}\n",
        );
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out[0].message.contains("`.push(..)`"));
        assert!(out[0].message.contains("Sim::step"));
        assert!(out[1].message.contains("`.push_back(..)`"));
    }

    #[test]
    fn test_region_fns_are_exempt() {
        let out = run(
            "#[cfg(test)]\nmod tests {\n    // lint:hot-path\n    fn t() { \
             let v = Vec::new(); }\n}\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn non_alloc_calls_in_tagged_fns_are_clean() {
        let out = run(
            "// lint:hot-path\nfn f(&mut self) {\n    self.count += 1;\n    \
             let t = self.now.max(other);\n    helper(t);\n}\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }
}
