//! Line classification: splitting each source line into *code*, *doc
//! text*, and *comment text* so rules fire only where they should.
//!
//! This is a token/line-level pass, not a full parser: it tracks just
//! enough lexical state (block comments, raw strings) across lines to
//! blank out string-literal and comment contents from the code channel,
//! and to extract doc-comment text for the rustdoc rules. Positions are
//! preserved — every channel is the same length as the input line, with
//! out-of-channel bytes replaced by spaces — so column numbers in
//! diagnostics point at the real source.

/// One input line split into channels. All strings have the byte length
/// of the original line.
#[derive(Debug, Clone)]
pub struct ClassifiedLine {
    /// Code with comments and string/char contents blanked. String
    /// delimiters remain so tokenizers can still see "a literal was
    /// here".
    pub code: String,
    /// Doc-comment text (`///`, `//!`, `/** */`, `/*! */`), blanked
    /// elsewhere.
    pub doc: String,
    /// All comment text including doc comments, blanked elsewhere. The
    /// allowlist scanner reads this channel.
    pub comment: String,
}

/// Lexical state carried across lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Code,
    /// Inside `/* */`; the depth handles Rust's nested block comments,
    /// and `doc` records whether the comment opened as `/**` or `/*!`.
    Block {
        depth: u32,
        doc: bool,
    },
    /// Inside a multi-line `"..."` string.
    Str,
    /// Inside a raw string with `hashes` `#` marks.
    RawStr {
        hashes: u8,
    },
}

/// Classifies a whole file, returning one [`ClassifiedLine`] per input
/// line.
pub fn classify(source: &str) -> Vec<ClassifiedLine> {
    let mut mode = Mode::Code;
    source
        .lines()
        .map(|line| classify_line(line, &mut mode))
        .collect()
}

fn classify_line(line: &str, mode: &mut Mode) -> ClassifiedLine {
    let bytes = line.as_bytes();
    let n = bytes.len();
    let mut code = vec![b' '; n];
    let mut doc = vec![b' '; n];
    let mut comment = vec![b' '; n];
    let mut i = 0;

    while i < n {
        match *mode {
            Mode::Block { depth, doc: is_doc } => {
                // Look for nested open/close.
                if bytes[i..].starts_with(b"/*") {
                    *mode = Mode::Block {
                        depth: depth + 1,
                        doc: is_doc,
                    };
                    comment[i] = b'/';
                    comment[i + 1] = b'*';
                    i += 2;
                } else if bytes[i..].starts_with(b"*/") {
                    *mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::Block {
                            depth: depth - 1,
                            doc: is_doc,
                        }
                    };
                    i += 2;
                } else {
                    comment[i] = bytes[i];
                    if is_doc {
                        doc[i] = bytes[i];
                    }
                    i += 1;
                }
            }
            Mode::Str => {
                if bytes[i] == b'\\' && i + 1 < n {
                    i += 2;
                } else if bytes[i] == b'"' {
                    code[i] = b'"';
                    *mode = Mode::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            Mode::RawStr { hashes } => {
                if bytes[i] == b'"' {
                    let close = &bytes[i + 1..];
                    let want = hashes as usize;
                    if close.len() >= want && close[..want].iter().all(|&b| b == b'#') {
                        code[i] = b'"';
                        *mode = Mode::Code;
                        i += 1 + want;
                        continue;
                    }
                }
                i += 1;
            }
            Mode::Code => {
                let rest = &bytes[i..];
                if rest.starts_with(b"//") {
                    // Line comment; `///` and `//!` are doc text. (`////`
                    // and longer runs are plain comments, like rustdoc.)
                    let is_doc = (rest.starts_with(b"///") && !rest.starts_with(b"////"))
                        || rest.starts_with(b"//!");
                    for j in i..n {
                        comment[j] = bytes[j];
                        if is_doc && j >= i + 3 {
                            doc[j] = bytes[j];
                        }
                    }
                    i = n;
                } else if rest.starts_with(b"/*") {
                    let is_doc = (rest.starts_with(b"/**") && !rest.starts_with(b"/***"))
                        || rest.starts_with(b"/*!");
                    *mode = Mode::Block {
                        depth: 1,
                        doc: is_doc,
                    };
                    comment[i] = b'/';
                    comment[i + 1] = b'*';
                    i += 2;
                } else if bytes[i] == b'"' {
                    code[i] = b'"';
                    *mode = Mode::Str;
                    i += 1;
                } else if bytes[i] == b'r'
                    && (i == 0 || !is_ident_byte(bytes[i - 1]))
                    && raw_string_open(rest).is_some()
                {
                    let hashes = raw_string_open(rest).unwrap();
                    code[i] = b'r';
                    *mode = Mode::RawStr { hashes };
                    i += 1 + hashes as usize + 1;
                } else if bytes[i] == b'b' && rest.len() > 1 && rest[1] == b'"' {
                    code[i] = b'b';
                    code[i + 1] = b'"';
                    *mode = Mode::Str;
                    i += 2;
                } else if bytes[i] == b'\'' {
                    // Char literal vs lifetime. A lifetime is `'ident`
                    // with no closing quote right after the identifier.
                    if let Some(len) = char_literal_len(rest) {
                        code[i] = b'\'';
                        i += len;
                    } else {
                        code[i] = b'\'';
                        i += 1;
                    }
                } else {
                    code[i] = bytes[i];
                    i += 1;
                }
            }
        }
    }

    // A string/char never spans lines in this codebase except raw/normal
    // multi-line strings, which the mode handles; line comments end here.
    ClassifiedLine {
        code: String::from_utf8_lossy(&code).into_owned(),
        doc: String::from_utf8_lossy(&doc).into_owned(),
        comment: String::from_utf8_lossy(&comment).into_owned(),
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// If `rest` starts a raw string (`r"`, `r#"`, `r##"`, ...), the number
/// of hashes.
fn raw_string_open(rest: &[u8]) -> Option<u8> {
    if rest.first() != Some(&b'r') {
        return None;
    }
    let mut hashes = 0u8;
    let mut j = 1;
    while rest.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    (rest.get(j) == Some(&b'"')).then_some(hashes)
}

/// If `rest` starts a char literal (`'a'`, `'\n'`, `'\u{1F600}'`), its
/// byte length; `None` for lifetimes.
fn char_literal_len(rest: &[u8]) -> Option<usize> {
    debug_assert_eq!(rest.first(), Some(&b'\''));
    if rest.len() < 3 {
        return None;
    }
    if rest[1] == b'\\' {
        // Escaped: scan to the closing quote.
        let mut j = 2;
        while j < rest.len() && j < 12 {
            if rest[j] == b'\'' {
                return Some(j + 1);
            }
            j += 1;
        }
        return None;
    }
    // `'x'` — but `'a` (lifetime) has no close. Multi-byte chars allowed.
    let mut j = 1;
    while j < rest.len() && j <= 5 {
        if rest[j] == b'\'' {
            return (j > 1).then_some(j + 1);
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(line: &str) -> ClassifiedLine {
        classify(line).remove(0)
    }

    #[test]
    fn line_comments_leave_the_code_channel() {
        let c = one("let x = 1; // SystemTime mention");
        assert!(c.code.contains("let x = 1;"));
        assert!(!c.code.contains("SystemTime"));
        assert!(c.comment.contains("SystemTime"));
        assert!(c.doc.trim().is_empty());
    }

    #[test]
    fn doc_comments_land_in_the_doc_channel() {
        let c = one("/// See \\[26\\] for details");
        assert!(c.doc.contains("[26"));
        assert!(c.code.trim().is_empty());
        let c = one("//! module docs [3]");
        assert!(c.doc.contains("[3]"));
    }

    #[test]
    fn quad_slash_is_not_doc() {
        let c = one("//// separator [3]");
        assert!(c.doc.trim().is_empty());
        assert!(c.comment.contains("[3]"));
    }

    #[test]
    fn string_contents_are_blanked_from_code() {
        let c = one(r#"let s = "Instant::now inside string";"#);
        assert!(!c.code.contains("Instant"));
        assert!(c.code.contains("let s ="));
    }

    #[test]
    fn raw_strings_and_escapes_are_handled() {
        let c = one(r##"let s = r#"quote " inside"# + "a\"b";"##);
        assert!(!c.code.contains("quote"));
        assert!(!c.code.contains("inside"));
        let lines = classify("let s = \"multi\nline SystemTime\";\nlet y = 2;");
        assert!(!lines[1].code.contains("SystemTime"));
        assert!(lines[2].code.contains("let y = 2;"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let lines = classify("a /* one /* two */ still */ b\n/* open\nInstant::now()\n*/ c");
        assert!(lines[0].code.contains('a') && lines[0].code.contains('b'));
        assert!(!lines[0].code.contains("still"));
        assert!(!lines[2].code.contains("Instant"));
        assert!(lines[2].comment.contains("Instant"));
        assert!(lines[3].code.contains('c'));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let c = one("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(c.code.contains("fn f<'a>"));
        let c = one("let c = 'x'; let d = '\\n';");
        assert!(c.code.contains("let c ="));
        assert!(!c.code.contains('x'));
    }

    #[test]
    fn columns_are_preserved() {
        let line = "let t = 1; // tail";
        let c = one(line);
        assert_eq!(c.code.len(), line.len());
        assert_eq!(c.comment.len(), line.len());
        assert_eq!(c.code.find("t =").unwrap(), line.find("t =").unwrap());
    }
}
