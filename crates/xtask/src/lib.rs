//! `tputpred-xtask` — the workspace invariant linter.
//!
//! The reproduction's validity rests on invariants the compiler cannot
//! see: simulations must be deterministic, quantities carry their units
//! in identifier suffixes, floats are never compared exactly, and doc
//! comments escape citation brackets so rustdoc does not read them as
//! intra-doc links. `cargo run -p tputpred-xtask -- check` enforces all
//! of them mechanically; `-- rules` lists them.
//!
//! Violations that are actually sound are suppressed in place with
//! `// lint:allow(rule): justification` — the justification is
//! mandatory, and a directive that suppresses nothing is itself an
//! error, so the allowlist cannot silently rot.
//!
//! On top of the line rules sits a small semantic model
//! ([`lexer`] → [`model`] → [`graph`]) powering three deeper rules:
//! `unit-flow` (unit-dimension dataflow), `wall-clock-reach`
//! (call-graph reachability to nondeterminism sinks), and
//! `hot-path-alloc` (allocation in `// lint:hot-path` functions).

pub mod allow;
pub mod classify;
pub mod diag;
pub mod graph;
pub mod hot_path;
pub mod lexer;
pub mod model;
pub mod rules;
pub mod scan;
pub mod unit_flow;

use diag::Diagnostic;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Lints one file's contents, applying every applicable rule and the
/// file's allowlist directives. Rule scope filters (e.g. units only in
/// library code) are respected.
pub fn check_source(path: &Path, source: &str, only_rule: Option<&str>) -> Vec<Diagnostic> {
    check_source_inner(path, source, only_rule, true)
}

/// Like [`check_source`] but ignoring rule scope filters: every rule
/// runs. The CLI uses this for explicitly-named files — when the user
/// points at a file, they want all rules' opinions on it.
pub fn check_source_all_rules(
    path: &Path,
    source: &str,
    only_rule: Option<&str>,
) -> Vec<Diagnostic> {
    check_source_inner(path, source, only_rule, false)
}

fn check_source_inner(
    path: &Path,
    source: &str,
    only_rule: Option<&str>,
    respect_scope: bool,
) -> Vec<Diagnostic> {
    let registry = rules::registry();
    let known: Vec<&str> = registry.iter().map(|r| r.name).collect();
    let lines = classify::classify(source);

    let mut diags = Vec::new();
    for rule in &registry {
        if let Some(only) = only_rule {
            if rule.name != only {
                continue;
            }
        }
        if respect_scope && !(rule.applies)(path) {
            continue;
        }
        diags.extend((rule.check)(path, &lines));
    }

    let directives = allow::collect(&lines);
    let mut out = allow::apply(path, &directives, diags, &known);
    // With --rule, unused-directive noise for other rules is expected;
    // keep only findings for the selected rule in that case.
    if let Some(only) = only_rule {
        out.retain(|d| d.rule == only);
    }
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

/// Lints every workspace source under `root`. Per-file rules run file
/// by file; workspace rules (`wall-clock-reach`) run once over the
/// whole file set so call chains cross crate boundaries. Allow
/// directives apply uniformly to both kinds. Returns diagnostics in
/// stable (path, line, col) order.
pub fn check_workspace(root: &Path, only_rule: Option<&str>) -> Vec<Diagnostic> {
    let registry = rules::registry();
    let known: Vec<&str> = registry.iter().map(|r| r.name).collect();

    let mut classified: Vec<(PathBuf, Vec<classify::ClassifiedLine>)> = Vec::new();
    for rel in scan::rust_sources(root) {
        let Ok(source) = fs::read_to_string(root.join(&rel)) else {
            continue;
        };
        classified.push((rel, classify::classify(&source)));
    }

    let mut by_file: BTreeMap<PathBuf, Vec<Diagnostic>> = BTreeMap::new();
    for (rel, lines) in &classified {
        let mut diags = Vec::new();
        for rule in &registry {
            if rule.workspace {
                continue; // runs once, below
            }
            if let Some(only) = only_rule {
                if rule.name != only {
                    continue;
                }
            }
            if !(rule.applies)(rel) {
                continue;
            }
            diags.extend((rule.check)(rel, lines));
        }
        by_file.insert(rel.clone(), diags);
    }

    // The cross-file pass: every file is a node source, simulation
    // crates are the roots (graph.rs decides), obs is the gateway.
    if only_rule.map(|o| o == "wall-clock-reach").unwrap_or(true) {
        let models: Vec<model::FileModel> = classified
            .iter()
            .map(|(rel, lines)| model::FileModel::build(rel, lines))
            .collect();
        for d in graph::check(&models, false) {
            by_file.entry(d.file.clone()).or_default().push(d);
        }
    }

    let mut out = Vec::new();
    for (rel, lines) in &classified {
        let directives = allow::collect(lines);
        let diags = by_file.remove(rel).unwrap_or_default();
        let mut kept = allow::apply(rel, &directives, diags, &known);
        if let Some(only) = only_rule {
            kept.retain(|d| d.rule == only);
        }
        out.extend(kept);
    }
    out.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_source_applies_allowlist() {
        let src = "let x = a == 0.0; // lint:allow(float-eq): golden sentinel\n";
        let out = check_source(Path::new("crates/stats/src/x.rs"), src, None);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn check_source_rule_filter_limits_output() {
        let src = "/// cite [26]\nlet rtt_ms = if x == 0.5 { 1 } else { 2 };\n";
        let path = Path::new("crates/stats/src/x.rs");
        let all = check_source(path, src, None);
        assert!(all.iter().any(|d| d.rule == "units"));
        assert!(all.iter().any(|d| d.rule == "float-eq"));
        assert!(all.iter().any(|d| d.rule == "rustdoc-citation"));
        let only = check_source(path, src, Some("units"));
        assert!(only.iter().all(|d| d.rule == "units"));
        assert_eq!(only.len(), 1);
    }

    #[test]
    fn fixtures_trip_every_rule() {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        for (fixture, rule) in [
            ("nondeterminism.rs", "nondeterminism"),
            ("no_unwrap.rs", "no-unwrap"),
            ("units.rs", "units"),
            ("float_eq.rs", "float-eq"),
            ("rustdoc_citation.rs", "rustdoc-citation"),
            ("bad_allow.rs", "lint-allow"),
        ] {
            let src = fs::read_to_string(dir.join(fixture)).unwrap();
            // Fixtures pose as simulation-crate files so every rule is in
            // scope.
            let out = check_source(Path::new("crates/netsim/src/fixture.rs"), &src, None);
            assert!(
                out.iter().any(|d| d.rule == rule),
                "{fixture} should trip {rule}: {out:?}"
            );
        }
    }

    #[test]
    fn clean_fixture_is_clean() {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        let src = fs::read_to_string(dir.join("clean.rs")).unwrap();
        let out = check_source(Path::new("crates/netsim/src/fixture.rs"), &src, None);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn workspace_is_lint_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let out = check_workspace(&root, None);
        assert!(
            out.is_empty(),
            "workspace has lint violations:\n{}",
            out.iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
