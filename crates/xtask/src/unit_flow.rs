//! `unit-flow`: unit-dimension dataflow over expressions.
//!
//! The line-level `units` rule sees `a_bps + b_bytes` only when the two
//! identifiers are adjacent on one line, and it lumps `_s` and `_ns`
//! into one "time" class. This rule works on the token stream of each
//! function body ([`crate::model::FileModel`]) and checks *dataflow*:
//!
//! * additive arithmetic between operands of different dimensions,
//!   through field chains, calls, parens, and indexing
//!   (`t1_ns - t0.as_secs_f64()` is a finding; so is `x_ns - y_s`,
//!   which the old rule considered same-class);
//! * `let` bindings whose suffix contradicts the initializer
//!   (`let dt_ns = a_s - b_s;`);
//! * assignments (`x_bytes = y_bps;`, `acc_s += d_ns;`);
//! * returns from a unit-suffixed function (`fn avail_bw_bps` returning
//!   a `_bytes` expression).
//!
//! Inference is deliberately conservative: multiplicative operators,
//! casts, struct literals, and control flow make an expression
//! *opaque*, and opaque never fires. Conversion helpers are
//! whitelisted — `as_secs_f64()` yields seconds, `Time::from_millis`
//! yields an opaque `Time` — so explicit conversions silence the rule
//! by construction. Dimension grammar: DESIGN.md §8.

use crate::classify::ClassifiedLine;
use crate::diag::Diagnostic;
use crate::lexer::{matching_close, matching_open, Tok, TokKind};
use crate::model::{dim_of_ident, Dim, FileModel, FnModel};
use std::path::Path;

/// Conversion helpers: calling one yields the mapped dimension
/// (`None` = an opaque wrapper type such as `netsim::Time`, which ends
/// dataflow — the type system takes over from there).
const CONVERSIONS: &[(&str, Option<Dim>)] = &[
    ("from_secs", None),
    ("from_secs_f64", None),
    ("from_millis", None),
    ("from_micros", None),
    ("from_nanos", None),
    ("tx_time", None),
    ("as_secs_f64", Some(Dim::Secs)),
    ("as_secs", Some(Dim::Secs)),
    ("as_nanos", Some(Dim::Nanos)),
    ("as_millis", None),
    ("from_bits", None),
    ("to_bits", None),
];

/// Methods that preserve their receiver's dimension.
const PRESERVING: &[&str] = &[
    "max",
    "min",
    "abs",
    "clamp",
    "floor",
    "ceil",
    "round",
    "saturating_add",
    "saturating_sub",
    "wrapping_add",
    "wrapping_sub",
];

const HINT_CONVERT: &str =
    "insert an explicit conversion (Time::from_*, as_secs_f64, …) or align the suffixes";
const HINT_RENAME: &str =
    "rename the binding or convert the value; canonical suffixes are load-bearing (DESIGN.md §8)";

/// Entry point: builds the file model and checks every function.
pub fn check(path: &Path, lines: &[ClassifiedLine]) -> Vec<Diagnostic> {
    let fm = FileModel::build(path, lines);
    let mut out = Vec::new();
    for f in &fm.fns {
        check_fn(&fm, f, &mut out);
    }
    out
}

fn check_fn(fm: &FileModel, f: &FnModel, out: &mut Vec<Diagnostic>) {
    let toks = &fm.toks[f.body.clone()];
    check_additive_mixes(fm, toks, out);
    check_lets(fm, toks, out);
    check_assignments(fm, toks, out);
    check_returns(fm, f, toks, out);
}

/// Renders an operand token slice back to compact source text.
fn render(toks: &[Tok]) -> String {
    let mut s = String::new();
    for t in toks {
        if !s.is_empty()
            && (t.kind == TokKind::Ident || t.kind == TokKind::Number)
            && s.chars()
                .last()
                .map(|c| c.is_ascii_alphanumeric() || c == '_')
                .unwrap_or(false)
        {
            s.push(' ');
        }
        s.push_str(&t.text);
    }
    s
}

/// The dimension of a *primary* operand (a path, field chain, call, or
/// indexed/parenthesized expression), inferred from its final segment.
fn operand_dim(toks: &[Tok]) -> Option<Dim> {
    let last = toks.last()?;
    match last.text.as_str() {
        ")" => {
            let open = matching_open(toks, toks.len() - 1)?;
            if open == 0 {
                // Parenthesized subexpression: analyze as a full expr.
                return expr_dim(&toks[1..toks.len() - 1]);
            }
            let callee = &toks[open - 1];
            if callee.kind != TokKind::Ident {
                return None;
            }
            if let Some((_, d)) = CONVERSIONS.iter().find(|(n, _)| *n == callee.text) {
                return *d;
            }
            if open >= 2 && toks[open - 2].is_punct(".") {
                if PRESERVING.contains(&callee.text.as_str()) {
                    // `x_s.max(y_s)`: the receiver's dimension carries.
                    return operand_dim(&toks[..open - 2]);
                }
                return dim_of_ident(&callee.text);
            }
            // Free or path call: the callee's own suffix declares the
            // return dimension (`avail_bw_bps(...)`).
            dim_of_ident(&callee.text)
        }
        "]" => {
            // Indexing preserves the element dimension of the base.
            let open = matching_open(toks, toks.len() - 1)?;
            operand_dim(&toks[..open])
        }
        _ if last.kind == TokKind::Ident => dim_of_ident(&last.text),
        _ => None,
    }
}

/// The dimension of a full expression slice, or `None` when opaque.
/// Multiplication, division, casts, braces, and `?` all make an
/// expression opaque — dimension algebra is out of scope by design.
fn expr_dim(toks: &[Tok]) -> Option<Dim> {
    if toks.is_empty() {
        return None;
    }
    let mut depth = 0i32;
    let mut operands: Vec<(usize, usize)> = Vec::new(); // (start, end) inclusive
    let mut start = 0usize;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" | "}" | ";" | "?" | "|" => return None,
            "as" if t.kind == TokKind::Ident && depth == 0 => return None,
            "*" | "/" | "%" if depth == 0 && i > 0 && ends_operand(&toks[i - 1]) => return None,
            "+" | "-" if depth == 0 && i > 0 && ends_operand(&toks[i - 1]) => {
                operands.push((start, i - 1));
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    operands.push((start, toks.len() - 1));
    let mut dim: Option<Dim> = None;
    for (s, e) in operands {
        if s > e {
            return None;
        }
        let d = operand_dim(&toks[s..=e]);
        match (dim, d) {
            (_, None) => {}
            (None, Some(d)) => dim = Some(d),
            (Some(a), Some(b)) if a != b => return None, // mixed — reported elsewhere
            _ => {}
        }
    }
    dim
}

/// Whether a token can end an operand (making a following `+`/`-`
/// binary rather than unary).
fn ends_operand(t: &Tok) -> bool {
    t.kind == TokKind::Ident && !is_keyword(&t.text)
        || t.kind == TokKind::Number
        || matches!(t.text.as_str(), ")" | "]" | "\"" | "'")
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "return"
            | "if"
            | "else"
            | "match"
            | "in"
            | "as"
            | "let"
            | "mut"
            | "break"
            | "continue"
            | "while"
            | "for"
            | "loop"
            | "move"
            | "ref"
            | "where"
            | "fn"
    )
}

/// Start index (inclusive) of the primary operand ending at `end`.
fn operand_start(toks: &[Tok], end: usize) -> Option<usize> {
    let mut start;
    let mut j = end;
    loop {
        match toks[j].text.as_str() {
            ")" | "]" => {
                let o = matching_open(&toks[..=j], j)?;
                start = o;
                if o > 0 && toks[o - 1].kind == TokKind::Ident && !is_keyword(&toks[o - 1].text) {
                    start = o - 1; // include the callee / indexed base
                }
            }
            _ if toks[j].kind == TokKind::Ident && !is_keyword(&toks[j].text) => start = j,
            _ if toks[j].kind == TokKind::Number => start = j,
            _ => return None,
        }
        if start >= 2
            && (toks[start - 1].is_punct(".") || toks[start - 1].is_punct("::"))
            && (toks[start - 2].kind == TokKind::Ident
                || toks[start - 2].kind == TokKind::Number
                || matches!(toks[start - 2].text.as_str(), ")" | "]"))
        {
            j = start - 2;
            continue;
        }
        return Some(start);
    }
}

/// End index (inclusive) of the primary operand starting at or after
/// `begin` (skipping unary prefixes).
fn operand_end(toks: &[Tok], begin: usize) -> Option<usize> {
    let mut j = begin;
    while j < toks.len()
        && (matches!(toks[j].text.as_str(), "-" | "!" | "&" | "*" | "&&")
            || toks[j].is_ident("mut"))
    {
        j += 1;
    }
    let mut end;
    loop {
        let t = toks.get(j)?;
        match t.text.as_str() {
            "(" => end = matching_close(toks, j)?,
            _ if t.kind == TokKind::Ident && !is_keyword(&t.text) => end = j,
            _ if t.kind == TokKind::Number => end = j,
            _ => return None,
        }
        // Trailing call/index groups bind tighter than any operator.
        while end + 1 < toks.len() && (toks[end + 1].is_punct("(") || toks[end + 1].is_punct("[")) {
            end = matching_close(toks, end + 1)?;
        }
        if end + 2 < toks.len()
            && (toks[end + 1].is_punct(".") || toks[end + 1].is_punct("::"))
            && (toks[end + 2].kind == TokKind::Ident || toks[end + 2].kind == TokKind::Number)
        {
            j = end + 2;
            continue;
        }
        return Some(end);
    }
}

/// Flags `lhs ± rhs` where both operand dimensions are known and differ.
fn check_additive_mixes(fm: &FileModel, toks: &[Tok], out: &mut Vec<Diagnostic>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Punct || !matches!(t.text.as_str(), "+" | "-") {
            continue;
        }
        if i == 0 || !ends_operand(&toks[i - 1]) {
            continue; // unary
        }
        let Some(ls) = operand_start(toks, i - 1) else {
            continue;
        };
        let Some(re) = operand_end(toks, i + 1) else {
            continue;
        };
        let (lhs, rhs) = (&toks[ls..i], &toks[i + 1..=re]);
        let (Some(ld), Some(rd)) = (operand_dim(lhs), operand_dim(rhs)) else {
            continue;
        };
        if ld == rd {
            continue;
        }
        out.push(
            Diagnostic::error(
                fm.path.clone(),
                t.line + 1,
                t.col + 1,
                "unit-flow",
                format!(
                    "`{}` ({}) and `{}` ({}) mixed across `{}`; additive arithmetic requires \
                     one dimension",
                    render(lhs),
                    ld.name(),
                    render(rhs),
                    rd.name(),
                    t.text,
                ),
            )
            .with_hint(HINT_CONVERT),
        );
    }
}

/// Flags `let name_<dim> = expr;` where the initializer's inferred
/// dimension contradicts the binding's suffix.
fn check_lets(fm: &FileModel, toks: &[Tok], out: &mut Vec<Diagnostic>) {
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).map(|t| t.is_ident("mut")).unwrap_or(false) {
            j += 1;
        }
        let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) else {
            i += 1;
            continue;
        };
        // `let Some(x) = ...`, `let (a, b) = ...`: patterns are skipped.
        let after = toks.get(j + 1).map(|t| t.text.as_str());
        if !matches!(after, Some(":") | Some("=")) {
            i += 1;
            continue;
        }
        let Some(dim) = dim_of_ident(&name.text) else {
            i += 1;
            continue;
        };
        // Find the `=` (skipping a type annotation) and the closing `;`.
        let mut k = j + 1;
        let mut depth = 0i32;
        let mut eq = None;
        while k < toks.len() {
            match toks[k].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "=" if depth == 0 && toks[k].kind == TokKind::Punct => {
                    eq = Some(k);
                    break;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        let Some(eq) = eq else {
            i = k + 1;
            continue;
        };
        let mut end = eq + 1;
        let mut depth = 0i32;
        while end < toks.len() {
            match toks[end].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth == 0 => break,
                _ => {}
            }
            end += 1;
        }
        if let Some(rhs_dim) = expr_dim(&toks[eq + 1..end]) {
            if rhs_dim != dim {
                out.push(
                    Diagnostic::error(
                        fm.path.clone(),
                        name.line + 1,
                        name.col + 1,
                        "unit-flow",
                        format!(
                            "`let {}` declares {} but is initialized from a {} expression \
                             (`{}`)",
                            name.text,
                            dim.name(),
                            rhs_dim.name(),
                            render(&toks[eq + 1..end]),
                        ),
                    )
                    .with_hint(HINT_RENAME),
                );
            }
        }
        i = end + 1;
    }
}

/// Flags `lhs = rhs;` / `lhs += rhs;` / `lhs -= rhs;` where the sides'
/// dimensions are known and differ.
fn check_assignments(fm: &FileModel, toks: &[Tok], out: &mut Vec<Diagnostic>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Punct || !matches!(t.text.as_str(), "=" | "+=" | "-=") {
            continue;
        }
        // Skip `let` initializers (handled above with suffix semantics).
        let mut b = i;
        let mut in_let = false;
        while b > 0 {
            b -= 1;
            match toks[b].text.as_str() {
                ";" | "{" | "}" => break,
                "let" => {
                    in_let = true;
                    break;
                }
                _ => {}
            }
        }
        if in_let || i == 0 {
            continue;
        }
        let Some(ls) = operand_start(toks, i - 1) else {
            continue;
        };
        let lhs = &toks[ls..i];
        let Some(ld) = operand_dim(lhs) else {
            continue;
        };
        let mut end = i + 1;
        let mut depth = 0i32;
        while end < toks.len() {
            match toks[end].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" if depth == 0 => break,
                ")" | "]" | "}" => depth -= 1,
                ";" | "," if depth == 0 => break,
                _ => {}
            }
            end += 1;
        }
        if let Some(rd) = expr_dim(&toks[i + 1..end]) {
            if rd != ld {
                out.push(
                    Diagnostic::error(
                        fm.path.clone(),
                        t.line + 1,
                        t.col + 1,
                        "unit-flow",
                        format!(
                            "`{}` ({}) assigned from a {} expression (`{}`)",
                            render(lhs),
                            ld.name(),
                            rd.name(),
                            render(&toks[i + 1..end]),
                        ),
                    )
                    .with_hint(HINT_CONVERT),
                );
            }
        }
    }
}

/// Flags `return expr;` and simple tail expressions whose dimension
/// contradicts the function's own name suffix.
fn check_returns(fm: &FileModel, f: &FnModel, toks: &[Tok], out: &mut Vec<Diagnostic>) {
    let Some(ret) = f.ret_dim else {
        return;
    };
    let report = |expr: &[Tok], line: usize, col: usize, out: &mut Vec<Diagnostic>| {
        if let Some(d) = expr_dim(expr) {
            if d != ret {
                out.push(
                    Diagnostic::error(
                        fm.path.clone(),
                        line,
                        col,
                        "unit-flow",
                        format!(
                            "fn `{}` returns {} by suffix, but this expression is {} (`{}`)",
                            f.qualified(),
                            ret.name(),
                            d.name(),
                            render(expr),
                        ),
                    )
                    .with_hint(HINT_RENAME),
                );
            }
        }
    };
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("return") {
            continue;
        }
        let mut end = i + 1;
        let mut depth = 0i32;
        while end < toks.len() {
            match toks[end].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth == 0 => break,
                _ => {}
            }
            end += 1;
        }
        if end > i + 1 {
            report(&toks[i + 1..end], t.line + 1, t.col + 1, out);
        }
    }
    // Tail expression: everything after the last top-level `;` (or the
    // whole body), analyzed only when brace-free — control-flow tails
    // are opaque by design.
    let mut depth = 0i32;
    let mut tail_start = 0usize;
    for (i, t) in toks.iter().enumerate() {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            ";" if depth == 0 => tail_start = i + 1,
            _ => {}
        }
    }
    let tail = &toks[tail_start.min(toks.len())..];
    if !tail.is_empty() && !tail.iter().any(|t| matches!(t.text.as_str(), "{" | "}")) {
        report(tail, tail[0].line + 1, tail[0].col + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;

    fn run(src: &str) -> Vec<Diagnostic> {
        check(Path::new("crates/netsim/src/uf.rs"), &classify(src))
    }

    fn run_in_fn(body: &str) -> Vec<Diagnostic> {
        run(&format!("fn f() {{\n{body}\n}}\n"))
    }

    #[test]
    fn ns_minus_s_is_the_canonical_finding() {
        let out = run_in_fn("let dt = t1_ns - t0_s;");
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("nanoseconds"));
        assert!(out[0].message.contains("seconds"));
        assert!(out[0].hint.is_some());
    }

    #[test]
    fn mixes_reach_through_fields_calls_and_parens() {
        assert_eq!(run_in_fn("let x = self.cap_bps + cfg.win_bytes;").len(), 1);
        assert_eq!(run_in_fn("let x = rtt_s() + size_bytes();").len(), 1);
        assert_eq!(run_in_fn("let x = (a_s + b_s) + c_bytes;").len(), 1);
        assert_eq!(run_in_fn("let x = arr_s[i] + d_ns;").len(), 1);
        assert_eq!(run_in_fn("let x = t.as_secs_f64() + d_ns;").len(), 1);
    }

    #[test]
    fn same_dim_and_opaque_operands_are_clean() {
        assert!(run_in_fn("let x_s = a_s + b_s;").is_empty());
        assert!(run_in_fn("let x = a_s + b;").is_empty());
        assert!(run_in_fn("let bdp_bytes = cap_bps * rtt_s / 8.0;").is_empty());
        assert!(run_in_fn("let x_s = y_s.max(z_s);").is_empty());
        assert!(run_in_fn("let t = Time::from_millis(5) + Time::from_millis(2);").is_empty());
    }

    #[test]
    fn let_binding_contradiction_is_flagged() {
        let out = run_in_fn("let dt_ns = a_s - b_s;");
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("let dt_ns"));
        assert!(out[0].message.contains("nanoseconds"));
    }

    #[test]
    fn let_with_conversion_or_cast_is_clean() {
        assert!(run_in_fn("let dt_ns = ((a_s - b_s) * 1e9) as u64;").is_empty());
        assert!(run_in_fn("let dt_s = t.as_secs_f64();").is_empty());
        assert!(run_in_fn("let dt_ns = t.as_nanos();").is_empty());
        assert!(run_in_fn("let w = Time::from_secs(x_s);").is_empty());
    }

    #[test]
    fn assignment_and_compound_assignment_are_checked() {
        assert_eq!(run_in_fn("x_bytes = y_bps;").len(), 1);
        assert_eq!(run_in_fn("acc_s += d_ns;").len(), 1);
        assert!(run_in_fn("acc_s += d_s;").is_empty());
        assert!(run_in_fn("self.total_bytes += p.size_bytes;").is_empty());
    }

    #[test]
    fn return_dimension_must_match_the_fn_suffix() {
        let out = run("fn avail_bw_bps() -> f64 { window_bytes }\n");
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("avail_bw_bps"));
        let out = run("fn avail_bw_bps(x_bps: f64) -> f64 { x_bps }\n");
        assert!(out.is_empty(), "{out:?}");
        let out = run("fn delay_s() -> f64 { return d_ns; }\n");
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn control_flow_tails_are_opaque() {
        assert!(run("fn delay_s(c: bool) -> f64 { if c { a_ns } else { b_ns } }\n").is_empty());
    }

    #[test]
    fn generic_bounds_and_unary_minus_do_not_fire() {
        assert!(run_in_fn("let x = -a_s;").is_empty());
        assert!(run("fn f<T: Add + Sub>(x: T) {}\n").is_empty());
        assert!(run_in_fn("let x = f(a_s, -b_ns);").is_empty());
    }
}
