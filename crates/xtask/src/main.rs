//! CLI for the workspace invariant linter.
//!
//! ```text
//! cargo run -p tputpred-xtask -- check [--rule NAME] [--format text|json] [PATH...]
//! cargo run -p tputpred-xtask -- rules
//! ```
//!
//! `check` exits 0 when clean, 1 when any diagnostic fires, 2 on usage
//! errors. With no PATH it lints the whole workspace (located from this
//! crate's manifest dir so it works from any cwd), respecting each
//! rule's scope; explicitly-named PATHs are checked against every rule.
//! `--format json` emits the structured document from
//! [`tputpred_xtask::diag::to_json`] for CI archival and gating.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use tputpred_xtask::{check_source_all_rules, check_workspace, diag, rules};

fn workspace_root() -> PathBuf {
    // crates/xtask -> workspace root, two levels up.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn usage() -> ExitCode {
    eprintln!("usage: tputpred-xtask <check [--rule NAME] [--format text|json] [PATH...] | rules>");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("rules") => {
            for rule in rules::registry() {
                println!("{:<18} {}", rule.name, rule.summary);
            }
            println!(
                "{:<18} meta-rule: malformed, unjustified, or unused `lint:allow` directives",
                "lint-allow"
            );
            ExitCode::SUCCESS
        }
        Some("check") => {
            let mut only_rule: Option<String> = None;
            let mut json = false;
            let mut paths: Vec<PathBuf> = Vec::new();
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--rule" => match it.next() {
                        Some(name) => only_rule = Some(name.clone()),
                        None => return usage(),
                    },
                    "--format" => match it.next().map(String::as_str) {
                        Some("json") => json = true,
                        Some("text") => json = false,
                        _ => return usage(),
                    },
                    _ => paths.push(PathBuf::from(arg)),
                }
            }
            if let Some(name) = &only_rule {
                let known = rules::registry();
                if !known.iter().any(|r| r.name == name) {
                    eprintln!("unknown rule `{name}`; run `tputpred-xtask rules` for the list");
                    return ExitCode::from(2);
                }
            }

            let diags = if paths.is_empty() {
                check_workspace(&workspace_root(), only_rule.as_deref())
            } else {
                let mut out = Vec::new();
                for path in &paths {
                    match std::fs::read_to_string(path) {
                        Ok(source) => {
                            out.extend(check_source_all_rules(path, &source, only_rule.as_deref()))
                        }
                        Err(err) => {
                            eprintln!("cannot read {}: {err}", path.display());
                            return ExitCode::from(2);
                        }
                    }
                }
                out
            };

            if json {
                println!("{}", diag::to_json(&diags));
            } else {
                for d in &diags {
                    println!("{d}");
                }
            }
            if diags.is_empty() {
                eprintln!("xtask check: clean");
                ExitCode::SUCCESS
            } else {
                eprintln!("xtask check: {} violation(s)", diags.len());
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}
