//! A small Rust tokenizer over the classified *code* channel.
//!
//! The line rules in [`crate::rules`] operate on raw channel text; the
//! semantic rules (`unit-flow`, `wall-clock-reach`, `hot-path-alloc`)
//! need a token stream they can walk structurally — balanced groups,
//! paths, call sites. This lexer is deliberately small: it runs *after*
//! [`crate::classify`], so string and comment contents are already
//! blanked and it only has to split identifiers, numbers, and
//! punctuation while preserving (line, col) positions for diagnostics.

use crate::classify::ClassifiedLine;

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`let`, `fn`, `rtt_s`, ...).
    Ident,
    /// A numeric literal (lexed wholesale; `1.5e6` is one token).
    Number,
    /// Punctuation, including multi-byte operators (`::`, `->`, `==`).
    Punct,
    /// A string/char delimiter left behind by classification (contents
    /// are blanked, so only the quote bytes survive).
    Quote,
}

/// One token with its source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// 0-based line index.
    pub line: usize,
    /// 0-based byte column.
    pub col: usize,
    /// The token text (for `Quote`, just the delimiter byte).
    pub text: String,
    pub kind: TokKind,
}

impl Tok {
    /// Whether this token is the punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text == p
    }

    /// Whether this token is the identifier/keyword `id`.
    pub fn is_ident(&self, id: &str) -> bool {
        self.kind == TokKind::Ident && self.text == id
    }
}

/// Multi-byte operators, longest first so maximal munch works.
const MULTI_PUNCT: &[&str] = &[
    "..=", "...", "<<=", ">>=", "::", "->", "=>", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=",
    "%=", "&&", "||", "..", "<<", ">>", "&=", "|=", "^=",
];

/// Tokenizes the code channel of classified lines.
pub fn tokenize(lines: &[ClassifiedLine]) -> Vec<Tok> {
    let mut out = Vec::new();
    for (li, cl) in lines.iter().enumerate() {
        let bytes = cl.code.as_bytes();
        let n = bytes.len();
        let mut i = 0;
        while i < n {
            let b = bytes[i];
            if b == b' ' || b == b'\t' {
                i += 1;
                continue;
            }
            if b.is_ascii_alphabetic() || b == b'_' {
                let start = i;
                while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Tok {
                    line: li,
                    col: start,
                    text: cl.code[start..i].to_string(),
                    kind: TokKind::Ident,
                });
                continue;
            }
            if b.is_ascii_digit() {
                let start = i;
                // Lex the whole numeric literal (digits, `_`, `.` between
                // digits, exponent letters) so `1e6` never yields `e6`.
                while i < n
                    && (bytes[i].is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || (bytes[i] == b'.'
                            && i + 1 < n
                            && bytes[i + 1].is_ascii_digit()
                            && !cl.code[start..i].contains('.')))
                {
                    i += 1;
                }
                out.push(Tok {
                    line: li,
                    col: start,
                    text: cl.code[start..i].to_string(),
                    kind: TokKind::Number,
                });
                continue;
            }
            if b == b'"' || b == b'\'' {
                out.push(Tok {
                    line: li,
                    col: i,
                    text: (b as char).to_string(),
                    kind: TokKind::Quote,
                });
                i += 1;
                continue;
            }
            if let Some(p) = MULTI_PUNCT.iter().find(|p| cl.code[i..].starts_with(*p)) {
                out.push(Tok {
                    line: li,
                    col: i,
                    text: (*p).to_string(),
                    kind: TokKind::Punct,
                });
                i += p.len();
                continue;
            }
            out.push(Tok {
                line: li,
                col: i,
                text: (b as char).to_string(),
                kind: TokKind::Punct,
            });
            i += 1;
        }
    }
    out
}

/// Index of the token matching the opening group delimiter at `open`
/// (`(`, `[`, or `{`), or `None` if unbalanced.
pub fn matching_close(toks: &[Tok], open: usize) -> Option<usize> {
    let (o, c) = match toks[open].text.as_str() {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        "{" => ("{", "}"),
        _ => return None,
    };
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            if t.text == o {
                depth += 1;
            } else if t.text == c {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
        }
    }
    None
}

/// Index of the token matching the closing group delimiter at `close`,
/// scanning backwards, or `None` if unbalanced.
pub fn matching_open(toks: &[Tok], close: usize) -> Option<usize> {
    let (o, c) = match toks[close].text.as_str() {
        ")" => ("(", ")"),
        "]" => ("[", "]"),
        "}" => ("{", "}"),
        _ => return None,
    };
    let mut depth = 0usize;
    for j in (0..=close).rev() {
        let t = &toks[j];
        if t.kind == TokKind::Punct {
            if t.text == c {
                depth += 1;
            } else if t.text == o {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(&classify(src))
    }

    #[test]
    fn idents_numbers_and_puncts_split_with_positions() {
        let t = toks("let rtt_s = 0.05 + x1;");
        let texts: Vec<&str> = t.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["let", "rtt_s", "=", "0.05", "+", "x1", ";"]);
        assert_eq!(t[1].col, 4);
        assert_eq!(t[1].kind, TokKind::Ident);
        assert_eq!(t[3].kind, TokKind::Number);
    }

    #[test]
    fn multibyte_operators_lex_as_one_token() {
        let t = toks("a::b -> c => d == e != f += g ..= h");
        let puncts: Vec<&str> = t
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(puncts, vec!["::", "->", "=>", "==", "!=", "+=", "..="]);
    }

    #[test]
    fn scientific_literals_stay_whole() {
        let t = toks("x = 1.5e6 + 2e-3;");
        assert!(t.iter().any(|t| t.text == "1.5e6"));
        // `2e` then `-` then `3`: the exponent sign splits, which is fine
        // — numbers are unitless either way.
        assert!(t.iter().all(|t| t.text != "e6"));
    }

    #[test]
    fn strings_are_already_blanked() {
        let t = toks(r#"let s = "Instant::now";"#);
        assert!(t.iter().all(|t| t.text != "Instant"));
        assert!(t.iter().any(|t| t.kind == TokKind::Quote));
    }

    #[test]
    fn group_matching_works_both_ways() {
        let t = toks("f(a, (b + c)[0]) + g");
        let open = t.iter().position(|t| t.is_punct("(")).unwrap();
        let close = matching_close(&t, open).unwrap();
        assert!(t[close].is_punct(")"));
        assert_eq!(matching_open(&t, close), Some(open));
        // The matched close is the outer one (after `[0]`).
        assert!(t[close + 1].is_punct("+"));
    }

    #[test]
    fn positions_span_lines() {
        let t = toks("let a = 1;\nlet b_ns = 2;");
        let b = t.iter().find(|t| t.text == "b_ns").unwrap();
        assert_eq!(b.line, 1);
        assert_eq!(b.col, 4);
    }
}
