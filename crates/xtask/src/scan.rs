//! Workspace file discovery.
//!
//! Walks the repository for Rust sources the lint pass should see,
//! skipping `vendor/` (stub crates are not held to simulation
//! invariants), `target/`, and the linter's own `fixtures/` (those files
//! violate rules on purpose).

use std::fs;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["vendor", "target", "fixtures", ".git", "data", "results"];

/// Returns every `.rs` file under `root` that the lint pass covers,
/// sorted so diagnostics come out in a stable order.
pub fn rust_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    walk(root, root, &mut out);
    out.sort();
    out
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.filter_map(Result::ok).collect();
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(root, &path, out);
        } else if name.ends_with(".rs") {
            out.push(
                path.strip_prefix(root)
                    .map(Path::to_path_buf)
                    .unwrap_or(path),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_workspace_sources_and_skips_vendor_and_fixtures() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = rust_sources(&root);
        assert!(files
            .iter()
            .any(|f| f.ends_with("crates/netsim/src/lib.rs")));
        assert!(files
            .iter()
            .any(|f| f.ends_with("crates/xtask/src/scan.rs")));
        assert!(!files
            .iter()
            .any(|f| f.to_string_lossy().contains("vendor/")));
        assert!(!files
            .iter()
            .any(|f| f.to_string_lossy().contains("fixtures/")));
        assert!(!files
            .iter()
            .any(|f| f.to_string_lossy().contains("target/")));
        // Stable order.
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
    }
}
