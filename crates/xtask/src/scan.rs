//! Workspace file discovery.
//!
//! Walks the repository for Rust sources the lint pass should see. A
//! path is excluded when **any** component — at any depth, not just the
//! root — names a skipped directory: `vendor/` (stub crates are not
//! held to simulation invariants), `target/` (generated), the linter's
//! own `fixtures/` (those files violate rules on purpose), `.git/`,
//! and the `data/`/`results/` output trees. Everything else is in:
//! `src/`, `src/bin/`, and notably each crate's `examples/` and
//! `tests/` directories, which carry the same invariants as the code
//! they exercise.

use std::fs;
use std::path::{Path, PathBuf};

/// Directory names never descended into, wherever they appear.
const SKIP_DIRS: &[&str] = &["vendor", "target", "fixtures", ".git", "data", "results"];

/// Whether any component of `path` names a skipped directory. Public so
/// tests can assert the policy directly.
pub fn has_skipped_component(path: &Path) -> bool {
    path.components().any(|c| {
        c.as_os_str()
            .to_str()
            .map(|s| SKIP_DIRS.contains(&s))
            .unwrap_or(false)
    })
}

/// Returns every `.rs` file under `root` that the lint pass covers,
/// workspace-relative and sorted so diagnostics come out in a stable
/// order.
pub fn rust_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    walk(root, root, &mut out);
    // The walk already prunes skipped directories; this re-filter makes
    // the by-component policy hold even for paths that arrive through
    // links or future walk changes.
    out.retain(|p| !has_skipped_component(p));
    out.sort();
    out
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.filter_map(Result::ok).collect();
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(root, &path, out);
        } else if name.ends_with(".rs") {
            out.push(
                path.strip_prefix(root)
                    .map(Path::to_path_buf)
                    .unwrap_or(path),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_workspace_sources_and_skips_vendor_and_fixtures() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = rust_sources(&root);
        assert!(files
            .iter()
            .any(|f| f.ends_with("crates/netsim/src/lib.rs")));
        assert!(files
            .iter()
            .any(|f| f.ends_with("crates/xtask/src/scan.rs")));
        assert!(!files
            .iter()
            .any(|f| f.to_string_lossy().contains("vendor/")));
        assert!(!files
            .iter()
            .any(|f| f.to_string_lossy().contains("fixtures/")));
        assert!(!files
            .iter()
            .any(|f| f.to_string_lossy().contains("target/")));
        // Stable order.
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
    }

    #[test]
    fn examples_and_tests_dirs_are_covered() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = rust_sources(&root);
        assert!(
            files
                .iter()
                .any(|f| f.to_string_lossy().contains("/tests/")),
            "crate tests/ dirs must be linted"
        );
    }

    #[test]
    fn skip_policy_is_by_path_component_at_any_depth() {
        assert!(has_skipped_component(Path::new("vendor/serde/src/lib.rs")));
        assert!(has_skipped_component(Path::new(
            "crates/netsim/target/debug/gen.rs"
        )));
        assert!(has_skipped_component(Path::new("deep/nested/vendor/x.rs")));
        assert!(has_skipped_component(Path::new(
            "crates/xtask/tests/fixtures/unit_flow_bad.rs"
        )));
        assert!(!has_skipped_component(Path::new(
            "crates/netsim/examples/one_link.rs"
        )));
        assert!(!has_skipped_component(Path::new(
            "crates/tcp/tests/tcp_properties.rs"
        )));
        // A *file* named like a skip dir is not a directory component
        // match problem we care about, but the policy is uniform anyway.
        assert!(!has_skipped_component(Path::new("crates/core/src/lso.rs")));
    }
}
