//! A lightweight semantic model of one source file: functions with
//! their signatures, bodies, call sites, and hot-path tags.
//!
//! Built on [`crate::lexer`] tokens, this is the shared substrate for
//! the semantic rules: `unit-flow` walks bodies as expressions,
//! `wall-clock-reach` links call sites into a workspace graph
//! ([`crate::graph`]), and `hot-path-alloc` scans the bodies of
//! functions tagged `// lint:hot-path`. It is *not* a parser — it
//! tracks just enough structure (brace depth, `impl` owners, the
//! trailing `#[cfg(test)]` region) to attribute tokens to functions.

use crate::classify::ClassifiedLine;
use crate::lexer::{matching_close, matching_open, tokenize, Tok, TokKind};
use std::ops::Range;
use std::path::{Path, PathBuf};

/// A unit dimension inferred from a canonical identifier suffix
/// (DESIGN.md §8). Unlike the line-level `units` rule, seconds and
/// nanoseconds are *distinct* dimensions here: `t1_ns - t0_s` is
/// exactly the class of bug `unit-flow` exists to catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dim {
    /// `_s` — seconds.
    Secs,
    /// `_ns` — nanoseconds (`netsim::Time` resolution).
    Nanos,
    /// `_bps` — bits per second.
    Bps,
    /// `_bytes` — sizes.
    Bytes,
}

impl Dim {
    /// Human-readable dimension name for diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Dim::Secs => "seconds (_s)",
            Dim::Nanos => "nanoseconds (_ns)",
            Dim::Bps => "bits/s (_bps)",
            Dim::Bytes => "bytes (_bytes)",
        }
    }
}

/// The dimension an identifier's canonical suffix declares, if any.
pub fn dim_of_ident(ident: &str) -> Option<Dim> {
    let suffix = ident.rsplit('_').next()?;
    if suffix.len() == ident.len() {
        return None; // no underscore, no suffix
    }
    match suffix {
        "s" => Some(Dim::Secs),
        "ns" => Some(Dim::Nanos),
        "bps" => Some(Dim::Bps),
        "bytes" => Some(Dim::Bytes),
        _ => None,
    }
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called identifier (`push`, `as_secs_f64`, `generate`).
    pub name: String,
    /// Path segments before the name (`obs` in `obs::add(...)`,
    /// `Time` in `Time::from_secs(...)`); empty for bare calls.
    pub path: Vec<String>,
    /// Whether this is a `.name(...)` method call.
    pub is_method: bool,
    /// For method calls, the identifier immediately left of the dot
    /// (`self` in `self.push(...)`, `heap` in `self.heap.push(...)`).
    pub receiver: Option<String>,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
}

/// One macro invocation (`format!`, `vec!`) inside a function body.
#[derive(Debug, Clone)]
pub struct MacroSite {
    pub name: String,
    pub line: usize,
    pub col: usize,
}

/// One function with everything the semantic rules need.
#[derive(Debug, Clone)]
pub struct FnModel {
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl` type, when any (`Simulator` for its methods).
    pub owner: Option<String>,
    /// Whether the function is `pub` (any visibility restriction counts).
    pub is_pub: bool,
    /// Whether the function sits in the trailing `#[cfg(test)]` region.
    pub is_test: bool,
    /// Whether a `// lint:hot-path` tag covers the signature.
    pub hot_path: bool,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Parameter names paired with their declared dimensions.
    pub params: Vec<(String, Option<Dim>)>,
    /// Dimension the function's own name-suffix declares for its return
    /// value (`fn avail_bw_bps(...)` returns bits/s).
    pub ret_dim: Option<Dim>,
    /// Token range of the body, *exclusive* of the outer braces. Empty
    /// for trait-method declarations without a body.
    pub body: Range<usize>,
    /// Call sites inside the body, in source order.
    pub calls: Vec<CallSite>,
    /// Macro invocations inside the body, in source order.
    pub macros: Vec<MacroSite>,
}

impl FnModel {
    /// `Owner::name` when the fn has an impl owner, else just `name`.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The model of one file.
#[derive(Debug)]
pub struct FileModel {
    pub path: PathBuf,
    pub toks: Vec<Tok>,
    pub fns: Vec<FnModel>,
}

/// Rust keywords that can precede `(` without being calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "let", "mut", "pub", "fn", "impl",
    "use", "mod", "struct", "enum", "trait", "where", "else", "move", "ref", "break", "continue",
    "unsafe", "dyn", "type", "const", "static", "crate", "super",
];

impl FileModel {
    /// Builds the model for one file from its classified lines.
    pub fn build(path: &Path, lines: &[ClassifiedLine]) -> FileModel {
        let toks = tokenize(lines);
        let test_start_line = lines
            .iter()
            .position(|cl| cl.code.contains("#[cfg(test)]"))
            .unwrap_or(usize::MAX);
        let hot_tag: Vec<bool> = lines
            .iter()
            .map(|cl| cl.comment.contains("lint:hot-path"))
            .collect();
        let attr_or_blank: Vec<bool> = lines
            .iter()
            .map(|cl| {
                let code = cl.code.trim();
                code.is_empty() || code.starts_with("#[") || code.starts_with("#!")
            })
            .collect();

        // Pass 1: impl owners by token range.
        let mut impl_ranges: Vec<(Range<usize>, String)> = Vec::new();
        let mut i = 0;
        while i < toks.len() {
            if toks[i].is_ident("impl") {
                if let Some((name, open)) = impl_owner(&toks, i) {
                    if let Some(close) = matching_close(&toks, open) {
                        impl_ranges.push((open..close, name));
                    }
                }
            }
            i += 1;
        }

        // Pass 2: functions.
        let mut fns = Vec::new();
        let mut i = 0;
        while i < toks.len() {
            if !toks[i].is_ident("fn") {
                i += 1;
                continue;
            }
            let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
                i += 1;
                continue;
            };
            let sig_line = toks[i].line;
            let is_pub = i > 0
                && (toks[i - 1].is_ident("pub")
                    || (toks[i - 1].is_punct(")")
                        && matching_open(&toks, i - 1)
                            .and_then(|o| o.checked_sub(1))
                            .map(|p| toks[p].is_ident("pub"))
                            .unwrap_or(false)));
            // `lint:hot-path` covers the signature line or any line in
            // the contiguous attribute/comment run directly above it.
            let mut hot = hot_tag.get(sig_line).copied().unwrap_or(false);
            let mut l = sig_line;
            while l > 0 && attr_or_blank.get(l - 1).copied().unwrap_or(false) {
                l -= 1;
                if hot_tag.get(l).copied().unwrap_or(false) {
                    hot = true;
                }
            }

            // Params: the first `(` after the name (skipping generics).
            let mut j = i + 2;
            let mut angle = 0i32;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "(" if angle <= 0 => break,
                    "{" | ";" => break,
                    _ => {}
                }
                j += 1;
            }
            let (params, after_params) = if j < toks.len() && toks[j].is_punct("(") {
                let close = matching_close(&toks, j).unwrap_or(j);
                (parse_params(&toks, j + 1..close), close + 1)
            } else {
                (Vec::new(), j)
            };

            // Body: the next `{` before a `;` at this nesting.
            let mut k = after_params;
            let mut body = 0..0;
            while k < toks.len() {
                if toks[k].is_punct(";") {
                    break; // trait declaration without a body
                }
                if toks[k].is_punct("{") {
                    let close = matching_close(&toks, k).unwrap_or(k);
                    body = k + 1..close;
                    break;
                }
                k += 1;
            }

            let owner = impl_ranges
                .iter()
                .filter(|(r, _)| r.contains(&i))
                .min_by_key(|(r, _)| r.end - r.start)
                .map(|(_, n)| n.clone());

            let (calls, macros) = scan_body(&toks, body.clone());
            fns.push(FnModel {
                name: name_tok.text.clone(),
                owner,
                is_pub,
                is_test: sig_line >= test_start_line,
                hot_path: hot,
                line: sig_line + 1,
                params,
                ret_dim: dim_of_ident(&name_tok.text),
                body,
                calls,
                macros,
            });
            i += 2;
        }

        FileModel {
            path: path.to_path_buf(),
            toks,
            fns,
        }
    }
}

/// For an `impl` at token `at`, the implemented type name and the index
/// of the opening `{`.
fn impl_owner(toks: &[Tok], at: usize) -> Option<(String, usize)> {
    let mut j = at + 1;
    let mut last_ident: Option<String> = None;
    let mut angle = 0i32;
    while j < toks.len() {
        let t = &toks[j];
        match t.text.as_str() {
            "<" => angle += 1,
            ">" => angle -= 1,
            "{" if angle <= 0 => return last_ident.map(|n| (n, j)),
            ";" => return None,
            _ => {
                if t.kind == TokKind::Ident && angle <= 0 && t.text != "for" && t.text != "where" {
                    last_ident = Some(t.text.clone());
                }
            }
        }
        j += 1;
    }
    None
}

/// Parses a parameter list token range into (name, dim) pairs.
fn parse_params(toks: &[Tok], range: Range<usize>) -> Vec<(String, Option<Dim>)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start_of_param = true;
    let mut j = range.start;
    while j < range.end {
        let t = &toks[j];
        match t.text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth -= 1,
            "," if depth == 0 => start_of_param = true,
            _ => {
                if start_of_param && t.kind == TokKind::Ident {
                    if t.text == "mut" || t.text == "self" {
                        // `mut name` keeps looking; a bare `self`
                        // receiver is not a unit-bearing parameter.
                        if t.text == "self" {
                            start_of_param = false;
                        }
                    } else {
                        out.push((t.text.clone(), dim_of_ident(&t.text)));
                        start_of_param = false;
                    }
                } else if t.kind == TokKind::Punct && !matches!(t.text.as_str(), "&" | "'") {
                    // A pattern (e.g. `(a, b): (f64, f64)`) — give up on
                    // this parameter, it has no single name.
                    start_of_param = false;
                }
            }
        }
        j += 1;
    }
    out
}

/// Collects call and macro sites inside a body token range.
fn scan_body(toks: &[Tok], body: Range<usize>) -> (Vec<CallSite>, Vec<MacroSite>) {
    let mut calls = Vec::new();
    let mut macros = Vec::new();
    for j in body.clone() {
        let t = &toks[j];
        if t.kind != TokKind::Ident || NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        let next = toks.get(j + 1);
        // Macro: `ident ! (` / `ident ! [` / `ident ! {`.
        if next.map(|n| n.is_punct("!")).unwrap_or(false)
            && toks
                .get(j + 2)
                .map(|n| matches!(n.text.as_str(), "(" | "[" | "{"))
                .unwrap_or(false)
        {
            macros.push(MacroSite {
                name: t.text.clone(),
                line: t.line + 1,
                col: t.col + 1,
            });
            continue;
        }
        if !next.map(|n| n.is_punct("(")).unwrap_or(false) {
            continue;
        }
        // Not a definition (`fn name(`).
        if j >= 1 && toks[j - 1].is_ident("fn") {
            continue;
        }
        let is_method = j >= 1 && toks[j - 1].is_punct(".");
        let receiver = if is_method && j >= 2 && toks[j - 2].kind == TokKind::Ident {
            Some(toks[j - 2].text.clone())
        } else {
            None
        };
        // Collect `::`-path segments going left.
        let mut path = Vec::new();
        let mut p = j;
        while p >= 2 && toks[p - 1].is_punct("::") && toks[p - 2].kind == TokKind::Ident {
            path.push(toks[p - 2].text.clone());
            p -= 2;
        }
        path.reverse();
        calls.push(CallSite {
            name: t.text.clone(),
            path,
            is_method,
            receiver,
            line: t.line + 1,
            col: t.col + 1,
        });
    }
    (calls, macros)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;

    fn model(src: &str) -> FileModel {
        FileModel::build(Path::new("crates/netsim/src/m.rs"), &classify(src))
    }

    #[test]
    fn fn_signatures_and_owners_extract() {
        let m = model(
            "impl Simulator {\n    pub fn step(&mut self) -> bool { true }\n}\n\
             fn helper(rtt_s: f64, n: u32) -> f64 { rtt_s }\n",
        );
        assert_eq!(m.fns.len(), 2);
        let step = &m.fns[0];
        assert_eq!(step.name, "step");
        assert_eq!(step.owner.as_deref(), Some("Simulator"));
        assert!(step.is_pub);
        assert_eq!(step.qualified(), "Simulator::step");
        let helper = &m.fns[1];
        assert!(!helper.is_pub);
        assert_eq!(helper.owner, None);
        assert_eq!(
            helper.params,
            vec![
                ("rtt_s".to_string(), Some(Dim::Secs)),
                ("n".to_string(), None)
            ]
        );
    }

    #[test]
    fn ret_dim_comes_from_the_fn_name_suffix() {
        let m = model("fn avail_bw_bps() -> f64 { 0.0 }\nfn plain() -> f64 { 0.0 }\n");
        assert_eq!(m.fns[0].ret_dim, Some(Dim::Bps));
        assert_eq!(m.fns[1].ret_dim, None);
    }

    #[test]
    fn calls_record_path_method_and_receiver() {
        let m = model(
            "fn f(&mut self) {\n    obs::add(\"x\", 1);\n    self.heap.push(1);\n    \
             self.push(2);\n    Time::from_secs(3);\n    helper();\n}\n",
        );
        let calls = &m.fns[0].calls;
        let named: Vec<(&str, bool)> = calls
            .iter()
            .map(|c| (c.name.as_str(), c.is_method))
            .collect();
        assert_eq!(
            named,
            vec![
                ("add", false),
                ("push", true),
                ("push", true),
                ("from_secs", false),
                ("helper", false)
            ]
        );
        assert_eq!(calls[0].path, vec!["obs"]);
        assert_eq!(calls[1].receiver.as_deref(), Some("heap"));
        assert_eq!(calls[2].receiver.as_deref(), Some("self"));
        assert_eq!(calls[3].path, vec!["Time"]);
    }

    #[test]
    fn macros_are_collected_not_called() {
        let m = model("fn f() { format!(\"x\"); vec![1]; assert!(true); }\n");
        let names: Vec<&str> = m.fns[0].macros.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["format", "vec", "assert"]);
        assert!(m.fns[0].calls.is_empty());
    }

    #[test]
    fn hot_path_tag_covers_signature_and_attribute_run() {
        let m = model(
            "/// Docs.\n// lint:hot-path\n#[inline]\npub fn hot() {}\n\
             pub fn cold() {}\n\
             pub fn inline_tagged() {} // lint:hot-path\n",
        );
        assert!(m.fns[0].hot_path, "tag above attributes covers the fn");
        assert!(!m.fns[1].hot_path);
        assert!(m.fns[2].hot_path, "same-line tag covers the fn");
    }

    #[test]
    fn trailing_test_region_marks_fns_as_test() {
        let m = model("fn real() {}\n#[cfg(test)]\nmod tests {\n    fn fake() {}\n}\n");
        assert!(!m.fns[0].is_test);
        assert!(m.fns[1].is_test);
    }

    #[test]
    fn bodyless_trait_methods_have_empty_bodies() {
        let m = model("trait T {\n    fn must(&self) -> f64;\n}\n");
        assert_eq!(m.fns[0].body, 0..0);
    }
}
