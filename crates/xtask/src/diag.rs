//! Diagnostics: what a rule reports and how it prints.

use std::fmt;
use std::path::PathBuf;

/// One finding, pointing at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// File the finding is in (workspace-relative when possible).
    pub file: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (byte offset into the line).
    pub col: usize,
    /// The rule that fired.
    pub rule: &'static str,
    /// Human-readable explanation with the offending token named.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.col,
            self.rule,
            self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_file_line_col_rule_message() {
        let d = Diagnostic {
            file: "crates/netsim/src/engine.rs".into(),
            line: 12,
            col: 5,
            rule: "nondeterminism",
            message: "forbidden identifier `Instant`".into(),
        };
        assert_eq!(
            d.to_string(),
            "crates/netsim/src/engine.rs:12:5: [nondeterminism] forbidden identifier `Instant`"
        );
    }
}
