//! Diagnostics: what a rule reports and how it prints — as
//! `file:line:col` text for humans, or as structured JSON for CI
//! (`--format json`), so findings can be diffed and archived.

use std::fmt;
use std::path::PathBuf;

/// One finding, pointing at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// File the finding is in (workspace-relative when possible).
    pub file: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (byte offset into the line).
    pub col: usize,
    /// The rule that fired.
    pub rule: &'static str,
    /// How serious the finding is. Every current rule reports `error`
    /// (the exit code and CI gate key off it); the field exists so the
    /// JSON schema can grow advisory levels without breaking consumers.
    pub severity: &'static str,
    /// Human-readable explanation with the offending token named.
    pub message: String,
    /// A short suggestion for fixing the finding, when the rule has one.
    pub hint: Option<String>,
}

impl Diagnostic {
    /// An `error`-severity diagnostic without a fix hint.
    pub fn error(
        file: PathBuf,
        line: usize,
        col: usize,
        rule: &'static str,
        message: String,
    ) -> Self {
        Diagnostic {
            file,
            line,
            col,
            rule,
            severity: "error",
            message,
            hint: None,
        }
    }

    /// Attaches a fix hint.
    pub fn with_hint(mut self, hint: &str) -> Self {
        self.hint = Some(hint.to_string());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.col,
            self.rule,
            self.message
        )
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders diagnostics as the stable `--format json` document:
///
/// ```text
/// { "version": 1,
///   "diagnostics": [
///     { "rule": "...", "severity": "error", "file": "...",
///       "line": 1, "col": 1, "message": "...", "hint": "..."|null },
///     ... ] }
/// ```
///
/// Hand-rolled (std-only crate); the schema is pinned by a CLI test.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\"version\":1,\"diagnostics\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let hint = match &d.hint {
            Some(h) => format!("\"{}\"", json_escape(h)),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"severity\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\
             \"message\":\"{}\",\"hint\":{}}}",
            json_escape(d.rule),
            json_escape(d.severity),
            json_escape(&d.file.display().to_string().replace('\\', "/")),
            d.line,
            d.col,
            json_escape(&d.message),
            hint,
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_file_line_col_rule_message() {
        let d = Diagnostic::error(
            "crates/netsim/src/engine.rs".into(),
            12,
            5,
            "nondeterminism",
            "forbidden identifier `Instant`".into(),
        );
        assert_eq!(
            d.to_string(),
            "crates/netsim/src/engine.rs:12:5: [nondeterminism] forbidden identifier `Instant`"
        );
    }

    #[test]
    fn json_document_has_version_and_escaped_fields() {
        let d = Diagnostic::error("a.rs".into(), 1, 2, "units", "bad \"quote\"".into())
            .with_hint("use `_bps`");
        let j = to_json(std::slice::from_ref(&d));
        assert!(j.starts_with("{\"version\":1,\"diagnostics\":["));
        assert!(j.contains("\"rule\":\"units\""));
        assert!(j.contains("\"severity\":\"error\""));
        assert!(j.contains("\\\"quote\\\""));
        assert!(j.contains("\"hint\":\"use `_bps`\""));
        let none = to_json(&[]);
        assert_eq!(none, "{\"version\":1,\"diagnostics\":[]}");
    }

    #[test]
    fn json_hint_is_null_when_absent() {
        let d = Diagnostic::error("a.rs".into(), 1, 2, "units", "m".into());
        assert!(to_json(std::slice::from_ref(&d)).contains("\"hint\":null"));
    }
}
